/**
 * @file
 * Graceful-degradation curves: the robustness companion to the
 * paper's Tables 3-6, in two parts.
 *
 * Part A (transient link faults, Omega): per-link drop and
 * header-corruption probability swept together, each point run
 * twice — detection-only (recovery none, the historical numbers)
 * and with link-level retransmission — so the table shows exactly
 * how much delivered throughput the CRC/ack/retry protocol buys
 * back.  At rate 0 with recovery off the numbers are bit-identical
 * to the fault-free simulator.
 *
 * Part B (persistent link failures, torus): a fraction of the
 * 8x8 torus links is forced down permanently and the blocking
 * 2-VC network runs with and without retransmit+reroute, with the
 * deadlock watchdog armed.  Delivered throughput and p99 latency
 * versus failed-link fraction is the graceful-degradation curve
 * the recovery subsystem exists for.
 *
 * Both sweeps run through SweepRunner::mapGuarded, so a wedged or
 * crashing point is reported (and retried once) instead of sinking
 * the whole bench; task dispositions land in the BENCH JSON.
 * Emits BENCH_degradation.json and a PERF_degradation.json timing
 * sidecar.
 */

#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "network/torus_sim.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

const double kRates[] = {0.0, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2};
const BufferType kTypes[] = {BufferType::Fifo, BufferType::Damq,
                             BufferType::DamqR};
const double kFractions[] = {0.0, 0.02, 0.05, 0.10, 0.15};
const RecoveryPolicy kTorusPolicies[] = {
    RecoveryPolicy::None, RecoveryPolicy::RetransmitReroute};

/** Everything one sweep point (Omega or torus) reports. */
struct RunOut
{
    double deliveredThroughput = 0.0;
    double meanLatency = 0.0;
    double latencyP99 = 0.0;
    double e2eLatencyP50 = 0.0;
    double e2eLatencyP99 = 0.0;
    double e2eLatencyP999 = 0.0;
    std::uint64_t e2eSamples = 0;
    Cycle measuredCycles = 0;
    std::uint64_t faultDropped = 0;
    std::uint64_t watchdogTrips = 0;
    FaultReport report;
};

/** Copy the shared end-to-end tail fields off a sim result. */
template <typename Result>
void
copyE2e(RunOut &run, const Result &r)
{
    run.e2eLatencyP50 = r.e2eLatencyP50;
    run.e2eLatencyP99 = r.e2eLatencyP99;
    run.e2eLatencyP999 = r.e2eLatencyP999;
    run.e2eSamples = r.e2eSamples;
}

NetworkConfig
omegaPoint(BufferType type, double rate, RecoveryPolicy policy)
{
    NetworkConfig cfg = paperNetworkConfig();
    cfg.bufferType = type;
    cfg.offeredLoad = 0.5;
    cfg.common.faults.packetDropRate = rate;
    cfg.common.faults.headerBitFlipRate = rate;
    cfg.common.faults.seed = 1988;
    cfg.common.auditEveryCycles = 500;
    cfg.common.recovery.policy = policy;
    return cfg;
}

TorusConfig
torusPoint(double fraction, RecoveryPolicy policy)
{
    // 8x8, DAMQ, blocking, two dateline VCs.  The offered load sits
    // below the rerouted fabric's capacity: up*-down* concentrates
    // detour traffic near its root, so a load that minimal DOR
    // carries easily would saturate every faulty point and flatten
    // the curve into "saturation capacity" instead of degradation.
    TorusConfig cfg;
    cfg.offeredLoad = 0.08;
    cfg.common.faults.seed = 1988;
    cfg.common.faults.linkDownFraction = fraction;
    cfg.common.auditEveryCycles = 500;
    cfg.common.watchdogStallCycles = 2000;
    cfg.common.recovery.policy = policy;
    return cfg;
}

std::uint64_t
runOutCycles(const RunOut &run)
{
    return run.measuredCycles;
}

const char *
taskStatusName(TaskStatus status)
{
    switch (status) {
    case TaskStatus::Ok:
        return "ok";
    case TaskStatus::Failed:
        return "failed";
    case TaskStatus::TimedOut:
        return "timed-out";
    }
    return "?";
}

std::string
cell(const std::optional<RunOut> &run,
     const std::function<std::string(const RunOut &)> &fmt)
{
    return run.has_value() ? fmt(*run) : std::string("-");
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("degradation_faults",
                   "Throughput/latency degradation under transient "
                   "link faults and persistent link failures, with "
                   "and without detect-and-recover");
    addCommonSimFlags(args);
    args.addOption("task-timeout", "600",
                   "per-point wall-clock budget in seconds "
                   "(0 = unlimited)");
    args.addOption("task-retries", "2",
                   "attempts per point before it is reported failed");
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    GuardPolicy guard;
    guard.taskTimeoutSeconds = args.getDouble("task-timeout");
    guard.maxAttempts =
        static_cast<std::uint32_t>(args.getInt("task-retries"));
    if (guard.maxAttempts == 0)
        guard.maxAttempts = 1;

    banner("Degradation under link faults",
           "Part A: 64x64 Omega, blocking, 0.5 load, transient "
           "drop+corrupt rate swept, recovery none vs retransmit.  "
           "Part B: 8x8 torus, blocking, 2 VCs, 0.08 load, permanent "
           "failed-link fraction swept, none vs retransmit+reroute.");

    // ---- Task list: Omega points first, then torus points. ------
    std::vector<std::function<RunOut()>> tasks;
    std::vector<std::string> labels;

    const RecoveryPolicy omega_policies[] = {
        RecoveryPolicy::None, RecoveryPolicy::Retransmit};
    for (const BufferType type : kTypes) {
        for (const double rate : kRates) {
            for (const RecoveryPolicy policy : omega_policies) {
                NetworkConfig cfg = omegaPoint(type, rate, policy);
                std::string label = detail::concat(
                    "omega:", bufferTypeName(type),
                    "@rate=", formatFixed(rate, 4), "/",
                    recoveryPolicyName(policy));
                applyCommonSimFlags(args, cfg.common,
                                    "degradation");
                if (cfg.common.telemetry.enabled()) {
                    cfg.common.telemetry.outputPrefix +=
                        "." + sanitizeFileToken(label);
                }
                labels.push_back(std::move(label));
                tasks.push_back([cfg]() {
                    NetworkSimulator sim(cfg);
                    RunOut run;
                    const NetworkResult r = sim.run();
                    run.deliveredThroughput = r.deliveredThroughput;
                    run.meanLatency = r.latencyClocks.mean();
                    copyE2e(run, r);
                    run.measuredCycles = r.measuredCycles;
                    run.faultDropped = sim.lifetime().faultDropped;
                    run.report = sim.faultReport();
                    return run;
                });
            }
        }
    }

    for (const double fraction : kFractions) {
        for (const RecoveryPolicy policy : kTorusPolicies) {
            TorusConfig cfg = torusPoint(fraction, policy);
            std::string label = detail::concat(
                "torus:down=", formatFixed(fraction, 2), "/",
                recoveryPolicyName(policy));
            applyCommonSimFlags(args, cfg.common, "degradation");
            if (cfg.common.telemetry.enabled()) {
                cfg.common.telemetry.outputPrefix +=
                    "." + sanitizeFileToken(label);
            }
            labels.push_back(std::move(label));
            tasks.push_back([cfg]() {
                TorusSimulator sim(cfg);
                RunOut run;
                const TorusResult r = sim.run();
                run.deliveredThroughput = r.deliveredThroughput;
                run.meanLatency = r.latencyCycles.mean();
                run.latencyP99 = r.latencyP99;
                copyE2e(run, r);
                run.measuredCycles = r.measuredCycles;
                run.watchdogTrips = r.watchdogTrips;
                run.faultDropped = sim.lifetime().faultDropped;
                run.report = sim.faultReport();
                return run;
            });
        }
    }

    const std::vector<std::optional<RunOut>> runs = runner.mapGuarded(
        tasks.size(), [&tasks](std::size_t i) { return tasks[i](); },
        guard, &runOutCycles);
    const std::vector<TaskOutcome> &outcomes = runner.taskOutcomes();

    // ---- Part A tables: one per buffer type. ---------------------
    std::size_t next = 0;
    for (const BufferType type : kTypes) {
        TextTable table;
        table.setHeader({"fault rate", "thr none", "thr rtx",
                         "dropped none", "dropped rtx",
                         "recovered rtx", "violations"});
        for (const double rate : kRates) {
            const std::optional<RunOut> &none = runs[next++];
            const std::optional<RunOut> &rtx = runs[next++];
            table.startRow();
            table.addCell(formatFixed(rate, 4));
            table.addCell(cell(none, [](const RunOut &r) {
                return formatFixed(r.deliveredThroughput, 3);
            }));
            table.addCell(cell(rtx, [](const RunOut &r) {
                return formatFixed(r.deliveredThroughput, 3);
            }));
            table.addCell(cell(none, [](const RunOut &r) {
                return std::to_string(r.faultDropped);
            }));
            table.addCell(cell(rtx, [](const RunOut &r) {
                return std::to_string(r.faultDropped);
            }));
            table.addCell(cell(rtx, [](const RunOut &r) {
                return std::to_string(
                    r.report.recovery.packetsRecovered);
            }));
            table.addCell(cell(none, [](const RunOut &r) {
                return std::to_string(r.report.auditViolations);
            }));
        }
        std::cout << "\n" << bufferTypeName(type)
                  << " buffers (Omega, transient faults):\n"
                  << table.render();
    }

    std::cout
        << "\nWith retransmission on, every dropped or corrupted "
           "frame is nacked and resent: the 'dropped rtx' column "
           "stays at zero while 'recovered rtx' counts the packets "
           "the protocol saved.\n";

    // ---- Part B table: torus failed-link fraction. ---------------
    {
        TextTable table;
        table.setHeader({"down fraction", "recovery", "throughput",
                         "p99 latency", "dropped", "dead links",
                         "rerouted", "watchdog trips"});
        for (const double fraction : kFractions) {
            for (const RecoveryPolicy policy : kTorusPolicies) {
                const std::optional<RunOut> &run = runs[next++];
                table.startRow();
                table.addCell(formatFixed(fraction, 2));
                table.addCell(recoveryPolicyName(policy));
                table.addCell(cell(run, [](const RunOut &r) {
                    return formatFixed(r.deliveredThroughput, 3);
                }));
                table.addCell(cell(run, [](const RunOut &r) {
                    return formatFixed(r.latencyP99, 1);
                }));
                table.addCell(cell(run, [](const RunOut &r) {
                    return std::to_string(r.faultDropped);
                }));
                table.addCell(cell(run, [](const RunOut &r) {
                    return std::to_string(
                        r.report.recovery.deadLinksDeclared);
                }));
                table.addCell(cell(run, [](const RunOut &r) {
                    return std::to_string(
                        r.report.recovery.packetsRerouted);
                }));
                table.addCell(cell(run, [](const RunOut &r) {
                    return std::to_string(r.watchdogTrips);
                }));
            }
        }
        std::cout << "\nTorus with permanently failed links "
                     "(blocking, 2 VCs, watchdog armed):\n"
                  << table.render();
    }

    std::size_t casualties = 0;
    for (const TaskOutcome &outcome : outcomes)
        if (!outcome.ok())
            ++casualties;
    if (casualties != 0) {
        std::cout << "\n" << casualties
                  << " point(s) failed or timed out; their rows "
                     "show '-' and their dispositions are in the "
                     "BENCH JSON.\n";
    }

    // ---- Machine-readable output. --------------------------------
    {
        BenchJsonFile out("degradation");
        JsonWriter &json = out.json();
        // Echo the sweep's base config with the CLI overrides
        // (--workload included) applied, telemetry cleared — the
        // per-task configs own any telemetry files.
        NetworkConfig json_cfg =
            omegaPoint(BufferType::Fifo, 0.0, RecoveryPolicy::None);
        applyCommonSimFlags(args, json_cfg.common, "degradation");
        json_cfg.common.telemetry = obs::TelemetryConfig{};
        writeNetworkConfigJson(json, json_cfg);
        json.key("faultRates");
        json.beginArray();
        for (const double rate : kRates)
            json.value(rate);
        json.endArray();
        json.key("linkDownFractions");
        json.beginArray();
        for (const double fraction : kFractions)
            json.value(fraction);
        json.endArray();

        std::size_t at = 0;
        json.key("omegaRows");
        json.beginArray();
        for (const BufferType type : kTypes) {
            for (const double rate : kRates) {
                for (const RecoveryPolicy policy : omega_policies) {
                    const std::optional<RunOut> &run = runs[at++];
                    if (!run.has_value())
                        continue;
                    json.beginObject();
                    json.field("buffer", bufferTypeName(type));
                    json.field("faultRate", rate);
                    json.field("recovery",
                               recoveryPolicyName(policy));
                    json.field("deliveredThroughput",
                               run->deliveredThroughput);
                    json.field("meanLatencyClocks",
                               run->meanLatency);
                    writeE2eLatencyJson(json, *run);
                    json.field("faultDropped", run->faultDropped);
                    json.field("corruptionsDetected",
                               run->report.corruptionsDetected);
                    json.field("framesSent",
                               run->report.recovery.framesSent);
                    json.field("retransmits",
                               run->report.recovery.retransmits);
                    json.field(
                        "packetsRecovered",
                        run->report.recovery.packetsRecovered);
                    json.field("auditsRun", run->report.auditsRun);
                    json.field("auditViolations",
                               run->report.auditViolations);
                    json.endObject();
                }
            }
        }
        json.endArray();

        json.key("torusRows");
        json.beginArray();
        for (const double fraction : kFractions) {
            for (const RecoveryPolicy policy : kTorusPolicies) {
                const std::optional<RunOut> &run = runs[at++];
                if (!run.has_value())
                    continue;
                json.beginObject();
                json.field("linkDownFraction", fraction);
                json.field("recovery", recoveryPolicyName(policy));
                json.field("deliveredThroughput",
                           run->deliveredThroughput);
                json.field("meanLatencyCycles", run->meanLatency);
                json.field("latencyP99", run->latencyP99);
                writeE2eLatencyJson(json, *run);
                json.field("faultDropped", run->faultDropped);
                json.field("deadLinksDeclared",
                           run->report.recovery.deadLinksDeclared);
                json.field("linksRevived",
                           run->report.recovery.linksRevived);
                json.field("packetsRerouted",
                           run->report.recovery.packetsRerouted);
                json.field("watchdogTrips", run->watchdogTrips);
                json.field("auditsRun", run->report.auditsRun);
                json.field("auditViolations",
                           run->report.auditViolations);
                json.endObject();
            }
        }
        json.endArray();

        json.key("tasks");
        json.beginArray();
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            json.beginObject();
            json.field("label", labels[i]);
            json.field("status",
                       taskStatusName(outcomes[i].status));
            json.field("attempts",
                       static_cast<std::uint64_t>(
                           outcomes[i].attempts));
            if (!outcomes[i].error.empty())
                json.field("error", outcomes[i].error);
            json.endObject();
        }
        json.endArray();
    }
    writePerfSidecar("degradation", runner, labels);
    return 0;
}

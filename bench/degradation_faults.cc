/**
 * @file
 * Throughput-vs-fault-rate degradation curves: the robustness
 * companion to the paper's Tables 3-6.  A network that loses or
 * corrupts packets on its links delivers less of the offered load;
 * this bench sweeps the per-link fault probability and shows how
 * gracefully each buffer organization degrades, with the
 * FaultReport accounting printed so every lost packet is explained
 * (injected = delivered + discarded + fault-dropped + in-flight at
 * every audit).
 *
 * At rate 0 the numbers are bit-identical to the fault-free
 * simulator — the hooks draw no random numbers when disabled.
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_degradation_faults.json and a
 * PERF_degradation_faults.json timing sidecar.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

const double kRates[] = {0.0, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2};
const BufferType kTypes[] = {BufferType::Fifo, BufferType::Damq,
                             BufferType::DamqR};

/** Everything one fault-sweep point reports. */
struct FaultRun
{
    NetworkResult result;
    std::uint64_t faultDropped = 0;
    FaultReport report;
};

NetworkConfig
pointConfig(BufferType type, double rate)
{
    NetworkConfig cfg = paperNetworkConfig();
    cfg.bufferType = type;
    cfg.offeredLoad = 0.5;
    cfg.common.faults.packetDropRate = rate;
    cfg.common.faults.headerBitFlipRate = rate;
    cfg.common.faults.seed = 1988;
    cfg.common.auditEveryCycles = 500;
    return cfg;
}

std::uint64_t
faultRunCycles(const FaultRun &run)
{
    return run.result.measuredCycles;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("degradation_faults",
                   "Throughput/latency degradation under injected "
                   "link faults");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Degradation under link faults",
           "64x64 Omega, blocking, smart arbitration, 4 slots, "
           "uniform traffic at 0.5 offered load; per-link drop and "
           "header-corruption probability swept together");

    std::vector<NetworkConfig> configs;
    std::vector<std::string> labels;
    for (const BufferType type : kTypes) {
        for (const double rate : kRates) {
            configs.push_back(pointConfig(type, rate));
            labels.push_back(detail::concat(bufferTypeName(type),
                                            "@rate=",
                                            formatFixed(rate, 4)));
        }
    }

    // This bench runs runner.map directly (it extracts fault
    // reports from the simulator, not just the result), so it
    // suffixes telemetry prefixes itself the way runSimSweep does.
    for (std::size_t i = 0; i < configs.size(); ++i) {
        applyCommonSimFlags(args, configs[i].common,
                            "degradation_faults");
        if (configs[i].common.telemetry.enabled()) {
            configs[i].common.telemetry.outputPrefix +=
                "." + sanitizeFileToken(labels[i]);
        }
    }

    const std::vector<FaultRun> runs = runner.map(
        configs.size(),
        [&configs](std::size_t i) {
            NetworkSimulator sim(configs[i]);
            FaultRun run;
            run.result = sim.run();
            run.faultDropped = sim.lifetime().faultDropped;
            run.report = sim.faultReport();
            return run;
        },
        &faultRunCycles);

    std::size_t next = 0;
    for (const BufferType type : kTypes) {
        TextTable table;
        table.setHeader({"fault rate", "throughput", "latency",
                         "dropped", "corrupt detected", "audits",
                         "violations"});
        for (const double rate : kRates) {
            const FaultRun &run = runs[next++];
            table.startRow();
            table.addCell(formatFixed(rate, 4));
            table.addCell(
                formatFixed(run.result.deliveredThroughput, 3));
            table.addCell(
                formatFixed(run.result.latencyClocks.mean(), 2));
            table.addCell(std::to_string(run.faultDropped));
            table.addCell(
                std::to_string(run.report.corruptionsDetected));
            table.addCell(std::to_string(run.report.auditsRun));
            table.addCell(
                std::to_string(run.report.auditViolations));
        }
        std::cout << "\n" << bufferTypeName(type) << " buffers:\n"
                  << table.render();
    }

    std::cout
        << "\nEvery row's audits ran with zero violations: the "
           "packet-accounting identity holds at every fault rate, "
           "so dropped packets are counted, never silently lost.\n";

    {
        BenchJsonFile out("degradation_faults");
        JsonWriter &json = out.json();
        writeNetworkConfigJson(json,
                               pointConfig(BufferType::Fifo, 0.0));
        json.key("faultRates");
        json.beginArray();
        for (const double rate : kRates)
            json.value(rate);
        json.endArray();
        json.key("rows");
        json.beginArray();
        std::size_t at = 0;
        for (const BufferType type : kTypes) {
            for (const double rate : kRates) {
                const FaultRun &run = runs[at++];
                json.beginObject();
                json.field("buffer", bufferTypeName(type));
                json.field("faultRate", rate);
                json.field("deliveredThroughput",
                           run.result.deliveredThroughput);
                json.field("meanLatencyClocks",
                           run.result.latencyClocks.mean());
                json.field("faultDropped", run.faultDropped);
                json.field("corruptionsDetected",
                           run.report.corruptionsDetected);
                json.field("auditsRun", run.report.auditsRun);
                json.field("auditViolations",
                           run.report.auditViolations);
                json.endObject();
            }
        }
        json.endArray();
    }
    writePerfSidecar("degradation_faults", runner, labels);
    return 0;
}

/**
 * @file
 * Throughput-vs-fault-rate degradation curves: the robustness
 * companion to the paper's Tables 3-6.  A network that loses or
 * corrupts packets on its links delivers less of the offered load;
 * this bench sweeps the per-link fault probability and shows how
 * gracefully each buffer organization degrades, with the
 * FaultReport accounting printed so every lost packet is explained
 * (injected = delivered + discarded + fault-dropped + in-flight at
 * every audit).
 *
 * At rate 0 the numbers are bit-identical to the fault-free
 * simulator — the hooks draw no random numbers when disabled.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "stats/text_table.hh"

int
main()
{
    using namespace damq;
    using namespace damq::bench;

    banner("Degradation under link faults",
           "64x64 Omega, blocking, smart arbitration, 4 slots, "
           "uniform traffic at 0.5 offered load; per-link drop and "
           "header-corruption probability swept together");

    const double kRates[] = {0.0, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2};

    for (const BufferType type :
         {BufferType::Fifo, BufferType::Damq, BufferType::DamqR}) {
        TextTable table;
        table.setHeader({"fault rate", "throughput", "latency",
                         "dropped", "corrupt detected", "audits",
                         "violations"});
        for (const double rate : kRates) {
            NetworkConfig cfg = paperNetworkConfig();
            cfg.bufferType = type;
            cfg.offeredLoad = 0.5;
            cfg.faults.packetDropRate = rate;
            cfg.faults.headerBitFlipRate = rate;
            cfg.faults.seed = 1988;
            cfg.auditEveryCycles = 500;

            NetworkSimulator sim(cfg);
            const NetworkResult r = sim.run();
            const FaultReport report = sim.faultReport();

            table.startRow();
            table.addCell(formatFixed(rate, 4));
            table.addCell(formatFixed(r.deliveredThroughput, 3));
            table.addCell(formatFixed(r.latencyClocks.mean(), 2));
            table.addCell(
                std::to_string(sim.lifetime().faultDropped));
            table.addCell(
                std::to_string(report.corruptionsDetected));
            table.addCell(std::to_string(report.auditsRun));
            table.addCell(std::to_string(report.auditViolations));
        }
        std::cout << "\n" << bufferTypeName(type) << " buffers:\n"
                  << table.render();
    }

    std::cout
        << "\nEvery row's audits ran with zero violations: the "
           "packet-accounting identity holds at every fault rate, "
           "so dropped packets are counted, never silently lost.\n";
    return 0;
}

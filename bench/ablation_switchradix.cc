/**
 * @file
 * Ablation: switch radix.  The paper targets small n x n switches
 * with 2 <= n <= 10; this bench builds 64-endpoint Omega networks
 * from 2x2 (6 stages), 4x4 (3 stages), and 8x8 (2 stages) switches
 * and compares FIFO vs DAMQ.  Wider switches concentrate more
 * head-of-line conflicts per FIFO buffer, so DAMQ's advantage
 * should grow with radix, while base latency falls with stage
 * count.
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_ablation_switchradix.json and
 * a PERF_ablation_switchradix.json timing sidecar.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

const std::uint32_t kRadixes[] = {2u, 4u, 8u};
const BufferType kTypes[] = {BufferType::Fifo, BufferType::Damq};

NetworkConfig
radixConfig(std::uint32_t radix, BufferType type)
{
    NetworkConfig cfg = paperNetworkConfig();
    cfg.radix = radix;
    // Keep storage proportional to radix (one slot per output), as
    // the paper does with 4 slots on a 4x4.
    cfg.slotsPerBuffer = radix;
    cfg.bufferType = type;
    cfg.common.measureCycles = 8000;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("ablation_switchradix",
                   "Latency and saturation across switch radices");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Ablation - switch radix (2x2 / 4x4 / 8x8)",
           "64 endpoints, blocking, smart arbitration, uniform "
           "traffic, 1 slot per output's worth of storage (radix "
           "slots per buffer)");

    std::vector<NetworkTask> tasks;
    for (const std::uint32_t radix : kRadixes) {
        for (const BufferType type : kTypes) {
            const NetworkConfig cfg = radixConfig(radix, type);
            const std::string stem = detail::concat(
                bufferTypeName(type), "-r", radix);
            tasks.push_back(
                {detail::concat(stem, "@0.30"), atLoad(cfg, 0.30)});
            tasks.push_back({detail::concat(stem, "@saturation"),
                             atLoad(cfg, 1.0)});
        }
    }
    for (NetworkTask &task : tasks)
        applyCommonSimFlags(args, task.config.common,
                            "ablation_switchradix");
    const std::vector<NetworkResult> results =
        runNetworkSweep(runner, tasks);

    TextTable table;
    table.setHeader({"Radix", "Stages", "Buffer", "lat@0.30",
                     "saturated", "sat. throughput"});

    std::size_t next = 0;
    for (const std::uint32_t radix : kRadixes) {
        double fifo_sat = 0.0;
        double damq_sat = 0.0;
        for (const BufferType type : kTypes) {
            const NetworkConfig cfg = radixConfig(radix, type);
            const NetworkResult &at30 = results[next++];
            const NetworkResult &sat = results[next++];

            table.startRow();
            table.addCell(std::to_string(radix));
            table.addCell(std::to_string(
                NetworkSimulator(cfg).topology().numStages()));
            table.addCell(bufferTypeName(type));
            table.addCell(
                formatFixed(at30.latencyClocks.mean(), 1));
            table.addCell(
                formatFixed(sat.latencyClocks.mean(), 1));
            table.addCell(
                formatFixed(sat.deliveredThroughput, 3));
            (type == BufferType::Fifo ? fifo_sat : damq_sat) =
                sat.deliveredThroughput;
        }
        std::cout << "radix " << radix << ": DAMQ/FIFO saturation = "
                  << formatFixed(damq_sat / fifo_sat, 2) << "\n";
    }
    std::cout << table.render()
              << "\nExpected shape: fewer stages -> lower base "
                 "latency; DAMQ's relative advantage\npersists at "
                 "every radix.\n";

    {
        BenchJsonFile out("ablation_switchradix");
        JsonWriter &json = out.json();
        // The first task's config carries every CLI override
        // (--workload included), unlike a fresh radixConfig().
        const NetworkConfig &base = tasks.front().config;
        writeWorkloadJson(json, base.common.workload,
                          base.trafficClasses, base.burstiness,
                          base.meanBurstCycles);
        json.key("rows");
        json.beginArray();
        std::size_t at = 0;
        for (const std::uint32_t radix : kRadixes) {
            for (const BufferType type : kTypes) {
                const NetworkConfig cfg = radixConfig(radix, type);
                const NetworkResult &at30 = results[at++];
                const NetworkResult &sat = results[at++];
                json.beginObject();
                json.field("radix",
                           static_cast<std::uint64_t>(radix));
                json.field(
                    "stages",
                    static_cast<std::uint64_t>(
                        NetworkSimulator(cfg).topology()
                            .numStages()));
                json.field("buffer", bufferTypeName(type));
                json.field("latency30",
                           at30.latencyClocks.mean());
                json.field("saturatedLatencyClocks",
                           sat.latencyClocks.mean());
                json.field("saturationThroughput",
                           sat.deliveredThroughput);
                json.key("e2eLatency");
                json.beginArray();
                const NetworkResult *points[] = {&at30, &sat};
                const double loads[] = {0.30, 1.0};
                for (std::size_t p = 0; p < 2; ++p) {
                    json.beginObject();
                    json.field("offeredLoad", loads[p]);
                    writeE2eLatencyJson(json, *points[p]);
                    json.endObject();
                }
                json.endArray();
                json.endObject();
            }
        }
        json.endArray();
    }
    writePerfSidecar("ablation_switchradix", runner,
                     taskLabels(tasks));
    return 0;
}

/**
 * @file
 * Ablation: switch radix.  The paper targets small n x n switches
 * with 2 <= n <= 10; this bench builds 64-endpoint Omega networks
 * from 2x2 (6 stages), 4x4 (3 stages), and 8x8 (2 stages) switches
 * and compares FIFO vs DAMQ.  Wider switches concentrate more
 * head-of-line conflicts per FIFO buffer, so DAMQ's advantage
 * should grow with radix, while base latency falls with stage
 * count.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "network/saturation.hh"
#include "stats/text_table.hh"

int
main()
{
    using namespace damq;
    using namespace damq::bench;

    banner("Ablation - switch radix (2x2 / 4x4 / 8x8)",
           "64 endpoints, blocking, smart arbitration, uniform "
           "traffic, 1 slot per output's worth of storage (radix "
           "slots per buffer)");

    TextTable table;
    table.setHeader({"Radix", "Stages", "Buffer", "lat@0.30",
                     "saturated", "sat. throughput"});

    for (const std::uint32_t radix : {2u, 4u, 8u}) {
        double fifo_sat = 0.0;
        double damq_sat = 0.0;
        for (const BufferType type :
             {BufferType::Fifo, BufferType::Damq}) {
            NetworkConfig cfg = paperNetworkConfig();
            cfg.radix = radix;
            // Keep storage proportional to radix (one slot per
            // output), as the paper does with 4 slots on a 4x4.
            cfg.slotsPerBuffer = radix;
            cfg.bufferType = type;
            cfg.measureCycles = 8000;

            table.startRow();
            table.addCell(std::to_string(radix));
            table.addCell(std::to_string(
                NetworkSimulator(cfg).topology().numStages()));
            table.addCell(bufferTypeName(type));
            table.addCell(formatFixed(latencyAtLoad(cfg, 0.30), 1));
            const SaturationSummary sat = measureSaturation(cfg);
            table.addCell(formatFixed(sat.saturatedLatencyClocks, 1));
            table.addCell(formatFixed(sat.saturationThroughput, 3));
            (type == BufferType::Fifo ? fifo_sat : damq_sat) =
                sat.saturationThroughput;
        }
        std::cout << "radix " << radix << ": DAMQ/FIFO saturation = "
                  << formatFixed(damq_sat / fifo_sat, 2) << "\n";
    }
    std::cout << table.render()
              << "\nExpected shape: fewer stages -> lower base "
                 "latency; DAMQ's relative advantage\npersists at "
                 "every radix.\n";
    return 0;
}

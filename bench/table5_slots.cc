/**
 * @file
 * Reproduces Table 5: "Average Latencies for Given Throughput,
 * Varying Number of Slots" — FIFO and DAMQ with 3, 4, and 8 slots
 * per input buffer.  The paper's point: adding storage moves DAMQ's
 * saturation only slightly (0.63 / 0.70 / 0.74), so silicon is
 * better spent on DAMQ's control than on more FIFO slots — even
 * FIFO-8 (0.56) stays below DAMQ-3 (0.63).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "network/saturation.hh"
#include "stats/text_table.hh"

int
main()
{
    using namespace damq;
    using namespace damq::bench;

    banner("Table 5 - Latency vs throughput, varying slots",
           "64x64 Omega, blocking, smart arbitration, uniform "
           "traffic; FIFO and DAMQ with 3/4/8 slots");

    TextTable table;
    table.setHeader({"Buffer", "Slots", "25%", "50%", "saturated",
                     "sat. throughput"});

    double damq3 = 0.0;
    double fifo8 = 0.0;
    for (const BufferType type : {BufferType::Fifo, BufferType::Damq}) {
        for (const unsigned slots : {3u, 4u, 8u}) {
            NetworkConfig cfg = paperNetworkConfig();
            cfg.bufferType = type;
            cfg.slotsPerBuffer = slots;

            table.startRow();
            table.addCell(bufferTypeName(type));
            table.addCell(std::to_string(slots));
            table.addCell(formatFixed(latencyAtLoad(cfg, 0.25), 1));
            table.addCell(formatFixed(latencyAtLoad(cfg, 0.50), 1));
            const SaturationSummary sat = measureSaturation(cfg);
            table.addCell(formatFixed(sat.saturatedLatencyClocks, 1));
            table.addCell(formatFixed(sat.saturationThroughput, 2));

            if (type == BufferType::Damq && slots == 3)
                damq3 = sat.saturationThroughput;
            if (type == BufferType::Fifo && slots == 8)
                fifo8 = sat.saturationThroughput;
        }
    }
    std::cout << table.render();

    std::cout
        << "\nPaper reference (Table 5):\n"
           "  buffer slots  25%    50%   saturated  sat.thru\n"
           "  FIFO     3   41.4   96.5    142.4      0.48\n"
           "  FIFO     4   41.5   89.9    169.8      0.51\n"
           "  FIFO     8   41.4   74.2    284.6      0.56\n"
           "  DAMQ     3   41.1   57.3    109.9      0.63\n"
           "  DAMQ     4   41.1   56.2    117.3      0.70\n"
           "  DAMQ     8   41.1   56.2    108.5      0.74\n";

    std::cout << "\nKey claim (DAMQ-3 saturates above FIFO-8): "
              << (damq3 > fifo8 ? "PASS" : "FAIL") << " ("
              << formatFixed(damq3, 2) << " vs "
              << formatFixed(fifo8, 2) << ")\n";
    return 0;
}

/**
 * @file
 * Reproduces Table 5: "Average Latencies for Given Throughput,
 * Varying Number of Slots" — FIFO and DAMQ with 3, 4, and 8 slots
 * per input buffer.  The paper's point: adding storage moves DAMQ's
 * saturation only slightly (0.63 / 0.70 / 0.74), so silicon is
 * better spent on DAMQ's control than on more FIFO slots — even
 * FIFO-8 (0.56) stays below DAMQ-3 (0.63).
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_table5_slots.json and a
 * PERF_table5_slots.json timing sidecar.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

int
main(int argc, char **argv)
{
    using namespace damq;
    using namespace damq::bench;

    ArgParser args("table5_slots",
                   "Reproduce Table 5 (latency vs throughput at "
                   "3/4/8 slots per buffer)");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Table 5 - Latency vs throughput, varying slots",
           "64x64 Omega, blocking, smart arbitration, uniform "
           "traffic; FIFO and DAMQ with 3/4/8 slots");

    const BufferType kTypes[] = {BufferType::Fifo, BufferType::Damq};
    const unsigned kSlots[] = {3u, 4u, 8u};

    std::vector<NetworkTask> tasks;
    for (const BufferType type : kTypes) {
        for (const unsigned slots : kSlots) {
            NetworkConfig cfg = paperNetworkConfig();
            cfg.bufferType = type;
            cfg.slotsPerBuffer = slots;
            const std::string stem = detail::concat(
                bufferTypeName(type), "-", slots);
            tasks.push_back(
                {detail::concat(stem, "@0.25"), atLoad(cfg, 0.25)});
            tasks.push_back(
                {detail::concat(stem, "@0.50"), atLoad(cfg, 0.50)});
            tasks.push_back({detail::concat(stem, "@saturation"),
                             atLoad(cfg, 1.0)});
        }
    }
    for (NetworkTask &task : tasks)
        applyCommonSimFlags(args, task.config.common, "table5_slots");
    const std::vector<NetworkResult> results =
        runNetworkSweep(runner, tasks);

    TextTable table;
    table.setHeader({"Buffer", "Slots", "25%", "50%", "saturated",
                     "sat. throughput"});

    double damq3 = 0.0;
    double fifo8 = 0.0;
    std::size_t next = 0;
    for (const BufferType type : kTypes) {
        for (const unsigned slots : kSlots) {
            const NetworkResult &at25 = results[next++];
            const NetworkResult &at50 = results[next++];
            const NetworkResult &sat = results[next++];

            table.startRow();
            table.addCell(bufferTypeName(type));
            table.addCell(std::to_string(slots));
            table.addCell(
                formatFixed(at25.latencyClocks.mean(), 1));
            table.addCell(
                formatFixed(at50.latencyClocks.mean(), 1));
            table.addCell(
                formatFixed(sat.latencyClocks.mean(), 1));
            table.addCell(
                formatFixed(sat.deliveredThroughput, 2));

            if (type == BufferType::Damq && slots == 3)
                damq3 = sat.deliveredThroughput;
            if (type == BufferType::Fifo && slots == 8)
                fifo8 = sat.deliveredThroughput;
        }
    }
    std::cout << table.render();

    std::cout
        << "\nPaper reference (Table 5):\n"
           "  buffer slots  25%    50%   saturated  sat.thru\n"
           "  FIFO     3   41.4   96.5    142.4      0.48\n"
           "  FIFO     4   41.5   89.9    169.8      0.51\n"
           "  FIFO     8   41.4   74.2    284.6      0.56\n"
           "  DAMQ     3   41.1   57.3    109.9      0.63\n"
           "  DAMQ     4   41.1   56.2    117.3      0.70\n"
           "  DAMQ     8   41.1   56.2    108.5      0.74\n";

    std::cout << "\nKey claim (DAMQ-3 saturates above FIFO-8): "
              << (damq3 > fifo8 ? "PASS" : "FAIL") << " ("
              << formatFixed(damq3, 2) << " vs "
              << formatFixed(fifo8, 2) << ")\n";

    {
        BenchJsonFile out("table5_slots");
        JsonWriter &json = out.json();
        writeNetworkConfigJson(json, tasks.front().config);
        json.key("rows");
        json.beginArray();
        std::size_t at = 0;
        for (const BufferType type : kTypes) {
            for (const unsigned slots : kSlots) {
                const NetworkResult &at25 = results[at++];
                const NetworkResult &at50 = results[at++];
                const NetworkResult &sat = results[at++];
                json.beginObject();
                json.field("buffer", bufferTypeName(type));
                json.field("slots",
                           static_cast<std::uint64_t>(slots));
                json.field("latency25",
                           at25.latencyClocks.mean());
                json.field("latency50",
                           at50.latencyClocks.mean());
                json.field("saturatedLatencyClocks",
                           sat.latencyClocks.mean());
                json.field("saturationThroughput",
                           sat.deliveredThroughput);
                json.key("e2eLatency");
                json.beginArray();
                const NetworkResult *points[] = {&at25, &at50,
                                                 &sat};
                const double loads[] = {0.25, 0.50, 1.0};
                for (std::size_t p = 0; p < 3; ++p) {
                    json.beginObject();
                    json.field("offeredLoad", loads[p]);
                    writeE2eLatencyJson(json, *points[p]);
                    json.endObject();
                }
                json.endArray();
                json.endObject();
            }
        }
        json.endArray();
    }
    writePerfSidecar("table5_slots", runner, taskLabels(tasks));
    return 0;
}

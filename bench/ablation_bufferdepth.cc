/**
 * @file
 * Ablation: saturation throughput vs buffer depth, 2-16 slots per
 * input port, for all four organizations (Table 5 extended).  The
 * paper's conclusion — DAMQ's control logic buys more than FIFO's
 * extra storage — should show up as DAMQ's curve starting high and
 * flattening early while FIFO's creeps up slowly.
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_ablation_bufferdepth.json and
 * a PERF_ablation_bufferdepth.json timing sidecar.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

const unsigned kDepths[] = {2, 3, 4, 6, 8, 12, 16};
const BufferType kTypes[] = {BufferType::Fifo, BufferType::Damq,
                             BufferType::Samq, BufferType::Safc};

/** SAMQ/SAFC partition storage statically; slots must split by 4. */
bool
configurable(BufferType type, unsigned slots)
{
    const bool partitioned =
        type == BufferType::Samq || type == BufferType::Safc;
    return !partitioned || slots % 4 == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("ablation_bufferdepth",
                   "Saturation throughput as buffer depth grows");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Ablation - saturation throughput vs buffer depth",
           "64x64 Omega, blocking, smart arbitration, uniform "
           "traffic; SAMQ/SAFC need slots divisible by 4");

    std::vector<NetworkTask> tasks;
    for (const unsigned slots : kDepths) {
        for (const BufferType type : kTypes) {
            if (!configurable(type, slots))
                continue;
            NetworkConfig cfg = paperNetworkConfig();
            cfg.bufferType = type;
            cfg.slotsPerBuffer = slots;
            cfg.common.measureCycles = 8000;
            tasks.push_back({detail::concat(bufferTypeName(type),
                                            "-", slots,
                                            "@saturation"),
                             atLoad(cfg, 1.0)});
        }
    }
    for (NetworkTask &task : tasks)
        applyCommonSimFlags(args, task.config.common,
                            "ablation_bufferdepth");
    const std::vector<NetworkResult> results =
        runNetworkSweep(runner, tasks);

    TextTable table;
    table.setHeader({"Slots", "FIFO", "DAMQ", "SAMQ", "SAFC"});
    std::size_t next = 0;
    for (const unsigned slots : kDepths) {
        table.startRow();
        table.addCell(std::to_string(slots));
        for (const BufferType type : kTypes) {
            if (!configurable(type, slots)) {
                table.addCell("-");
                continue;
            }
            table.addCell(formatFixed(
                results[next++].deliveredThroughput, 3));
        }
    }
    std::cout << table.render()
              << "\nExpected shape: DAMQ starts high and flattens by "
                 "~4-8 slots; FIFO climbs slowly\nand stays below "
                 "even shallow DAMQ configurations.\n";

    {
        BenchJsonFile out("ablation_bufferdepth");
        JsonWriter &json = out.json();
        writeNetworkConfigJson(json, tasks.front().config);
        json.key("points");
        json.beginArray();
        std::size_t at = 0;
        for (const unsigned slots : kDepths) {
            for (const BufferType type : kTypes) {
                if (!configurable(type, slots))
                    continue;
                const NetworkResult &r = results[at++];
                json.beginObject();
                json.field("buffer", bufferTypeName(type));
                json.field("slots",
                           static_cast<std::uint64_t>(slots));
                json.field("saturationThroughput",
                           r.deliveredThroughput);
                writeE2eLatencyJson(json, r);
                json.endObject();
            }
        }
        json.endArray();
    }
    writePerfSidecar("ablation_bufferdepth", runner,
                     taskLabels(tasks));
    return 0;
}

/**
 * @file
 * Ablation: saturation throughput vs buffer depth, 2-16 slots per
 * input port, for all four organizations (Table 5 extended).  The
 * paper's conclusion — DAMQ's control logic buys more than FIFO's
 * extra storage — should show up as DAMQ's curve starting high and
 * flattening early while FIFO's creeps up slowly.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "network/saturation.hh"
#include "stats/text_table.hh"

int
main()
{
    using namespace damq;
    using namespace damq::bench;

    banner("Ablation - saturation throughput vs buffer depth",
           "64x64 Omega, blocking, smart arbitration, uniform "
           "traffic; SAMQ/SAFC need slots divisible by 4");

    const unsigned depths[] = {2, 3, 4, 6, 8, 12, 16};

    TextTable table;
    table.setHeader({"Slots", "FIFO", "DAMQ", "SAMQ", "SAFC"});
    for (const unsigned slots : depths) {
        table.startRow();
        table.addCell(std::to_string(slots));
        for (const BufferType type :
             {BufferType::Fifo, BufferType::Damq, BufferType::Samq,
              BufferType::Safc}) {
            const bool partitioned = type == BufferType::Samq ||
                                     type == BufferType::Safc;
            if (partitioned && slots % 4 != 0) {
                table.addCell("-");
                continue;
            }
            NetworkConfig cfg = paperNetworkConfig();
            cfg.bufferType = type;
            cfg.slotsPerBuffer = slots;
            cfg.measureCycles = 8000;
            table.addCell(formatFixed(
                measureSaturation(cfg).saturationThroughput, 3));
        }
    }
    std::cout << table.render()
              << "\nExpected shape: DAMQ starts high and flattens by "
                 "~4-8 slots; FIFO climbs slowly\nand stays below "
                 "even shallow DAMQ configurations.\n";
    return 0;
}

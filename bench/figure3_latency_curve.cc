/**
 * @file
 * Reproduces Figure 3: "FIFO and DAMQ Buffers with Four Slots,
 * Uniform Traffic" — the latency-vs-throughput curves.  Both
 * organizations show the Pfister/Norton shape (flat latency, then
 * a near-vertical wall at saturation); the DAMQ wall sits ~40 %
 * further right.  Prints the two series and an ASCII rendering.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "network/saturation.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;

/** Crude ASCII scatter: x = delivered throughput, y = latency. */
std::string
asciiPlot(const std::vector<SweepPoint> &fifo,
          const std::vector<SweepPoint> &damq)
{
    const int width = 64;
    const int height = 20;
    const double max_latency = 200.0;
    std::vector<std::string> canvas(
        height, std::string(width, ' '));

    auto plot = [&](const std::vector<SweepPoint> &curve, char mark) {
        for (const SweepPoint &pt : curve) {
            const int x = std::min(
                width - 1,
                static_cast<int>(pt.deliveredThroughput * width));
            const double capped =
                std::min(pt.avgLatencyClocks, max_latency);
            const int y = std::min(
                height - 1,
                static_cast<int>(capped / max_latency * height));
            canvas[height - 1 - y][x] = mark;
        }
    };
    plot(fifo, 'F');
    plot(damq, 'D');

    std::string out;
    out += "latency (clocks, capped at 200)\n";
    for (int row = 0; row < height; ++row) {
        const double y_value =
            max_latency * (height - row) / height;
        out += padLeft(formatFixed(y_value, 0), 5) + " |" +
               canvas[row] + "\n";
    }
    out += "      +" + std::string(width, '-') + "\n";
    out += "       0        delivered throughput              1.0\n";
    return out;
}

} // namespace

int
main()
{
    using namespace damq::bench;

    banner("Figure 3 - Latency vs throughput, FIFO vs DAMQ",
           "64x64 Omega, 4 slots, blocking, smart arbitration, "
           "uniform traffic");

    std::vector<double> loads;
    for (double p = 0.05; p <= 0.96; p += 0.05)
        loads.push_back(p);
    loads.push_back(1.0);

    NetworkConfig cfg = paperNetworkConfig();
    cfg.measureCycles = 8000;

    cfg.bufferType = BufferType::Fifo;
    const auto fifo = sweepLoads(cfg, loads);
    cfg.bufferType = BufferType::Damq;
    const auto damq = sweepLoads(cfg, loads);

    TextTable table;
    table.setHeader({"offered", "FIFO delivered", "FIFO latency",
                     "DAMQ delivered", "DAMQ latency"});
    for (std::size_t i = 0; i < loads.size(); ++i) {
        table.startRow();
        table.addCell(formatFixed(loads[i], 2));
        table.addCell(formatFixed(fifo[i].deliveredThroughput, 3));
        table.addCell(formatFixed(fifo[i].avgLatencyClocks, 1));
        table.addCell(formatFixed(damq[i].deliveredThroughput, 3));
        table.addCell(formatFixed(damq[i].avgLatencyClocks, 1));
    }
    std::cout << table.render() << "\n" << asciiPlot(fifo, damq);

    std::cout
        << "\nPaper reference (Figure 3, qualitative): both curves "
           "flat near 41 clocks at low\nload; FIFO's latency wall at "
           "~0.51 delivered, DAMQ's at ~0.70.\n";
    return 0;
}

/**
 * @file
 * Reproduces Figure 3: "FIFO and DAMQ Buffers with Four Slots,
 * Uniform Traffic" — the latency-vs-throughput curves.  Both
 * organizations show the Pfister/Norton shape (flat latency, then
 * a near-vertical wall at saturation); the DAMQ wall sits ~40 %
 * further right.  Prints the two series and an ASCII rendering.
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_figure3_latency_curve.json, a
 * flat figure3_latency_curve.csv of the two series, and a
 * PERF_figure3_latency_curve.json timing sidecar.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "network/saturation.hh"
#include "runner/bench_output.hh"
#include "common/csv_writer.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;

/** Project a simulation result onto the figure's sweep point. */
SweepPoint
toSweepPoint(double load, const NetworkResult &result)
{
    SweepPoint sp;
    sp.offeredLoad = load;
    sp.deliveredThroughput = result.deliveredThroughput;
    sp.avgLatencyClocks = result.latencyClocks.mean();
    sp.p99LatencyClocks = result.latencyClocks.mean() +
                          2.33 * result.latencyClocks.stddev();
    sp.discardFraction = result.discardFraction;
    return sp;
}

/** Crude ASCII scatter: x = delivered throughput, y = latency. */
std::string
asciiPlot(const std::vector<SweepPoint> &fifo,
          const std::vector<SweepPoint> &damq)
{
    const int width = 64;
    const int height = 20;
    const double max_latency = 200.0;
    std::vector<std::string> canvas(
        height, std::string(width, ' '));

    auto plot = [&](const std::vector<SweepPoint> &curve, char mark) {
        for (const SweepPoint &pt : curve) {
            const int x = std::min(
                width - 1,
                static_cast<int>(pt.deliveredThroughput * width));
            const double capped =
                std::min(pt.avgLatencyClocks, max_latency);
            const int y = std::min(
                height - 1,
                static_cast<int>(capped / max_latency * height));
            canvas[height - 1 - y][x] = mark;
        }
    };
    plot(fifo, 'F');
    plot(damq, 'D');

    std::string out;
    out += "latency (clocks, capped at 200)\n";
    for (int row = 0; row < height; ++row) {
        const double y_value =
            max_latency * (height - row) / height;
        out += padLeft(formatFixed(y_value, 0), 5) + " |" +
               canvas[row] + "\n";
    }
    out += "      +" + std::string(width, '-') + "\n";
    out += "       0        delivered throughput              1.0\n";
    return out;
}

/**
 * Serialize one curve as a JSON array field named @p key; the
 * end-to-end tails come from the raw results starting at
 * @p offset (same order as @p curve).
 */
void
writeCurveJson(JsonWriter &json, const std::string &key,
               const std::vector<SweepPoint> &curve,
               const std::vector<NetworkResult> &results,
               std::size_t offset)
{
    json.key(key);
    json.beginArray();
    for (std::size_t i = 0; i < curve.size(); ++i) {
        const SweepPoint &pt = curve[i];
        json.beginObject();
        json.field("offeredLoad", pt.offeredLoad);
        json.field("deliveredThroughput", pt.deliveredThroughput);
        json.field("avgLatencyClocks", pt.avgLatencyClocks);
        json.field("p99LatencyClocks", pt.p99LatencyClocks);
        json.field("discardFraction", pt.discardFraction);
        writeE2eLatencyJson(json, results[offset + i]);
        json.endObject();
    }
    json.endArray();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace damq::bench;

    ArgParser args("figure3_latency_curve",
                   "Reproduce Figure 3 (latency/throughput curves "
                   "for FIFO and DAMQ)");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Figure 3 - Latency vs throughput, FIFO vs DAMQ",
           "64x64 Omega, 4 slots, blocking, smart arbitration, "
           "uniform traffic");

    std::vector<double> loads;
    for (double p = 0.05; p <= 0.96; p += 0.05)
        loads.push_back(p);
    loads.push_back(1.0);

    NetworkConfig cfg = paperNetworkConfig();
    cfg.common.measureCycles = 8000;

    const BufferType kTypes[] = {BufferType::Fifo, BufferType::Damq};
    std::vector<NetworkTask> tasks;
    for (const BufferType type : kTypes) {
        NetworkConfig typed = cfg;
        typed.bufferType = type;
        for (const double load : loads)
            tasks.push_back({detail::concat(bufferTypeName(type),
                                            "@",
                                            formatFixed(load, 2)),
                             atLoad(typed, load)});
    }
    for (NetworkTask &task : tasks)
        applyCommonSimFlags(args, task.config.common,
                            "figure3_latency_curve");
    const std::vector<NetworkResult> results =
        runNetworkSweep(runner, tasks);

    std::vector<SweepPoint> fifo;
    std::vector<SweepPoint> damq;
    for (std::size_t i = 0; i < loads.size(); ++i)
        fifo.push_back(toSweepPoint(loads[i], results[i]));
    for (std::size_t i = 0; i < loads.size(); ++i)
        damq.push_back(
            toSweepPoint(loads[i], results[loads.size() + i]));

    TextTable table;
    table.setHeader({"offered", "FIFO delivered", "FIFO latency",
                     "DAMQ delivered", "DAMQ latency"});
    for (std::size_t i = 0; i < loads.size(); ++i) {
        table.startRow();
        table.addCell(formatFixed(loads[i], 2));
        table.addCell(formatFixed(fifo[i].deliveredThroughput, 3));
        table.addCell(formatFixed(fifo[i].avgLatencyClocks, 1));
        table.addCell(formatFixed(damq[i].deliveredThroughput, 3));
        table.addCell(formatFixed(damq[i].avgLatencyClocks, 1));
    }
    std::cout << table.render() << "\n" << asciiPlot(fifo, damq);

    std::cout
        << "\nPaper reference (Figure 3, qualitative): both curves "
           "flat near 41 clocks at low\nload; FIFO's latency wall at "
           "~0.51 delivered, DAMQ's at ~0.70.\n";

    {
        BenchJsonFile out("figure3_latency_curve");
        JsonWriter &json = out.json();
        // The first task's config carries every CLI override
        // (--workload included), unlike the pre-flag `cfg`.
        writeNetworkConfigJson(json, tasks.front().config);
        writeCurveJson(json, "fifo", fifo, results, 0);
        writeCurveJson(json, "damq", damq, results, loads.size());
    }

    {
        const std::string csv_path = "figure3_latency_curve.csv";
        std::ofstream file(csv_path);
        CsvWriter csv(file);
        csv.header({"buffer", "offeredLoad", "deliveredThroughput",
                    "avgLatencyClocks", "p99LatencyClocks",
                    "discardFraction"});
        auto emit = [&](const char *name,
                        const std::vector<SweepPoint> &curve) {
            for (const SweepPoint &pt : curve)
                csv.row({name, formatJsonNumber(pt.offeredLoad),
                         formatJsonNumber(pt.deliveredThroughput),
                         formatJsonNumber(pt.avgLatencyClocks),
                         formatJsonNumber(pt.p99LatencyClocks),
                         formatJsonNumber(pt.discardFraction)});
        };
        emit("FIFO", fifo);
        emit("DAMQ", damq);
        std::cerr << "wrote " << csv_path << "\n";
    }

    writePerfSidecar("figure3_latency_curve", runner,
                     taskLabels(tasks));
    return 0;
}

/**
 * @file
 * Ablation: the multicomputer setting.  The DAMQ buffer was built
 * for the ComCoBB communication coprocessor — a 5-port switch on a
 * point-to-point network — and only evaluated in a multistage
 * network "in that context" (Section 1).  This bench closes the
 * loop: an 8x8 2D mesh of 5-port switches with XY routing, all
 * four buffer organizations, uniform and transpose traffic.
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_ablation_mesh.json and a
 * PERF_ablation_mesh.json timing sidecar.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "network/mesh_sim.hh"
#include "network/saturation.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

const double kLoads[] = {0.10, 0.25, 0.40};

MeshConfig
meshConfig(BufferType type, const std::string &traffic)
{
    MeshConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.bufferType = type;
    cfg.slotsPerBuffer = 5; // one slot per port's worth
    cfg.traffic = traffic;
    cfg.common.seed = 99;
    cfg.common.warmupCycles = 2000;
    cfg.common.measureCycles = 10000;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("ablation_mesh",
                   "Buffer organizations on an 8x8 mesh "
                   "multicomputer");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Ablation - 8x8 mesh multicomputer (5-port switches, "
           "XY routing)",
           "the ComCoBB's own deployment context; latency in "
           "network cycles, blocking protocol");

    const std::string kTraffics[] = {"uniform", "transpose"};

    std::vector<MeshTask> tasks;
    for (const std::string &traffic : kTraffics) {
        for (const BufferType type : kAllBufferTypes) {
            const MeshConfig cfg = meshConfig(type, traffic);
            for (const double load : kLoads)
                tasks.push_back(
                    {detail::concat(bufferTypeName(type), "/",
                                    traffic, "@",
                                    formatFixed(load, 2)),
                     atLoad(cfg, load)});
            tasks.push_back(
                {detail::concat(bufferTypeName(type), "/", traffic,
                                "@saturation"),
                 atLoad(cfg, 1.0)});
        }
    }
    for (MeshTask &task : tasks)
        applyCommonSimFlags(args, task.config.common,
                            "ablation_mesh");
    const std::vector<MeshResult> results =
        runMeshSweep(runner, tasks);

    std::size_t next = 0;
    for (const std::string &traffic : kTraffics) {
        TextTable table;
        table.setHeader({"Buffer", "lat@0.10", "lat@0.25",
                         "lat@0.40", "sat. throughput"});
        double fifo_sat = 0.0;
        double damq_sat = 0.0;
        for (const BufferType type : kAllBufferTypes) {
            table.startRow();
            table.addCell(bufferTypeName(type));
            for (std::size_t l = 0; l < 3; ++l) {
                table.addCell(formatFixed(
                    results[next++].latencyCycles.mean(), 2));
            }
            const double sat =
                results[next++].deliveredThroughput;
            table.addCell(formatFixed(sat, 3));
            if (type == BufferType::Fifo)
                fifo_sat = sat;
            if (type == BufferType::Damq)
                damq_sat = sat;
        }
        std::cout << "\n" << traffic << " traffic:\n"
                  << table.render() << "DAMQ/FIFO saturation = "
                  << formatFixed(damq_sat / fifo_sat, 2) << "\n";
    }

    std::cout
        << "\nExpected shape: on uniform traffic the DAMQ advantage "
           "carries over from the Omega\nnetwork to the mesh "
           "(smaller margin: 5-port switches with short XY routes "
           "see less\nhead-of-line conflict).  Under the transpose "
           "permutation FIFO and DAMQ coincide\nexactly — with XY "
           "routing each input buffer only ever serves one output, "
           "so the\nmulti-queue machinery is structurally idle; "
           "likewise SAMQ equals SAFC.  Multi-queue\nbuffers pay "
           "off when flows *mix* at the inputs, which permutations "
           "avoid.\n";

    // The generic saturation search (saturation.hh) runs on any
    // core-based simulator; cross-check it against the sweep's
    // load-1.0 rows on a shorter schedule.
    MeshConfig sat_base = meshConfig(BufferType::Fifo, "uniform");
    sat_base.common.warmupCycles = 1000;
    sat_base.common.measureCycles = 4000;
    applyCommonSimFlags(args, sat_base.common, "ablation_mesh");
    sat_base.common.telemetry = obs::TelemetryConfig{}; // sweep owns files
    std::cout << "\nGeneric saturation search (shared "
                 "measureSaturation<MeshConfig>, short schedule):\n";
    SaturationSummary sat_check[2];
    {
        TextTable table;
        table.setHeader({"Buffer", "sat. throughput",
                         "sat. latency (cycles)"});
        const BufferType kEnds[] = {BufferType::Fifo,
                                    BufferType::Damq};
        for (std::size_t i = 0; i < 2; ++i) {
            MeshConfig cfg = sat_base;
            cfg.bufferType = kEnds[i];
            sat_check[i] = measureSaturation(cfg);
            table.startRow();
            table.addCell(bufferTypeName(kEnds[i]));
            table.addCell(formatFixed(
                sat_check[i].saturationThroughput, 3));
            table.addCell(formatFixed(
                sat_check[i].saturatedLatencyClocks, 2));
        }
        std::cout << table.render();
    }

    {
        BenchJsonFile out("ablation_mesh");
        JsonWriter &json = out.json();
        // The first task's config carries every CLI override
        // (--workload included), unlike a fresh meshConfig().
        const MeshConfig &base = tasks.front().config;
        json.key("config");
        json.beginObject();
        json.field("width", static_cast<std::uint64_t>(base.width));
        json.field("height",
                   static_cast<std::uint64_t>(base.height));
        json.field("slotsPerBuffer",
                   static_cast<std::uint64_t>(base.slotsPerBuffer));
        json.field("seed", base.common.seed);
        json.field("warmupCycles",
                   static_cast<std::uint64_t>(base.common.warmupCycles));
        json.field("measureCycles",
                   static_cast<std::uint64_t>(base.common.measureCycles));
        json.endObject();
        writeWorkloadJson(json, base.common.workload,
                          base.trafficClasses);
        json.key("rows");
        json.beginArray();
        std::size_t at = 0;
        for (const std::string &traffic : kTraffics) {
            for (const BufferType type : kAllBufferTypes) {
                json.beginObject();
                json.field("buffer", bufferTypeName(type));
                json.field("traffic", traffic);
                json.key("latencyCycles");
                json.beginArray();
                const std::size_t first = at;
                for (std::size_t l = 0; l < 3; ++l)
                    json.value(results[at++].latencyCycles.mean());
                json.endArray();
                json.field("saturationThroughput",
                           results[at++].deliveredThroughput);
                json.key("e2eLatency");
                json.beginArray();
                for (std::size_t p = 0; p < 4; ++p) {
                    json.beginObject();
                    json.field("offeredLoad",
                               p < 3 ? kLoads[p] : 1.0);
                    writeE2eLatencyJson(json, results[first + p]);
                    json.endObject();
                }
                json.endArray();
                json.endObject();
            }
        }
        json.endArray();
        json.key("saturationCheck");
        json.beginObject();
        json.field("fifo", sat_check[0].saturationThroughput);
        json.field("damq", sat_check[1].saturationThroughput);
        json.endObject();
    }
    writePerfSidecar("ablation_mesh", runner, taskLabels(tasks));
    return 0;
}

/**
 * @file
 * Ablation: the multicomputer setting.  The DAMQ buffer was built
 * for the ComCoBB communication coprocessor — a 5-port switch on a
 * point-to-point network — and only evaluated in a multistage
 * network "in that context" (Section 1).  This bench closes the
 * loop: an 8x8 2D mesh of 5-port switches with XY routing, all
 * four buffer organizations, uniform and transpose traffic.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "network/mesh_sim.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;

MeshResult
runPoint(BufferType type, const std::string &traffic, double load)
{
    MeshConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.bufferType = type;
    cfg.slotsPerBuffer = 5; // one slot per port's worth
    cfg.traffic = traffic;
    cfg.offeredLoad = load;
    cfg.seed = 99;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 10000;
    return MeshSimulator(cfg).run();
}

} // namespace

int
main()
{
    using namespace damq::bench;

    banner("Ablation - 8x8 mesh multicomputer (5-port switches, "
           "XY routing)",
           "the ComCoBB's own deployment context; latency in "
           "network cycles, blocking protocol");

    for (const std::string traffic : {"uniform", "transpose"}) {
        TextTable table;
        table.setHeader({"Buffer", "lat@0.10", "lat@0.25",
                         "lat@0.40", "sat. throughput"});
        double fifo_sat = 0.0;
        double damq_sat = 0.0;
        for (const BufferType type : kAllBufferTypes) {
            table.startRow();
            table.addCell(bufferTypeName(type));
            for (const double load : {0.10, 0.25, 0.40}) {
                table.addCell(formatFixed(
                    runPoint(type, traffic, load)
                        .latencyCycles.mean(),
                    2));
            }
            const double sat =
                runPoint(type, traffic, 1.0).deliveredThroughput;
            table.addCell(formatFixed(sat, 3));
            if (type == BufferType::Fifo)
                fifo_sat = sat;
            if (type == BufferType::Damq)
                damq_sat = sat;
        }
        std::cout << "\n" << traffic << " traffic:\n"
                  << table.render() << "DAMQ/FIFO saturation = "
                  << formatFixed(damq_sat / fifo_sat, 2) << "\n";
    }

    std::cout
        << "\nExpected shape: on uniform traffic the DAMQ advantage "
           "carries over from the Omega\nnetwork to the mesh "
           "(smaller margin: 5-port switches with short XY routes "
           "see less\nhead-of-line conflict).  Under the transpose "
           "permutation FIFO and DAMQ coincide\nexactly — with XY "
           "routing each input buffer only ever serves one output, "
           "so the\nmulti-queue machinery is structurally idle; "
           "likewise SAMQ equals SAFC.  Multi-queue\nbuffers pay "
           "off when flows *mix* at the inputs, which permutations "
           "avoid.\n";
    return 0;
}

/**
 * @file
 * The Sharing workload: buffer-sharing (admission) policies under
 * incast on an 8x8 blocking torus with two dateline VCs.
 *
 * Hot-spot traffic steers a fraction of every source's packets at
 * node 0, so the columns feeding the hot node congest while the
 * rest of the fabric idles — the scenario dynamic buffer sharing
 * exists for.  The grid crosses buffer organizations with sharing
 * policies:
 *
 *  - samq/static   — per-queue static partition (the floor);
 *  - damq/static   — full pool sharing, escape slots only;
 *  - damq/dt       — Dynamic Threshold (alpha-scaled free-pool cap);
 *  - damq/delay    — delay-driven sharing (head age loosens the cap);
 *  - voq/static    — DAMQ pool with a private slot per queue;
 *  - voq/dt        — the private guarantee plus the DT cap.
 *
 * Sources are bursty (3x on/off clumping), so a 2-slot static
 * partition overflows on every burst while the shared pool absorbs
 * it.  Two incast intensities (5% and 15% of traffic at the hot
 * node) run at three offered loads.  Every row runs with the
 * invariant audit and the deadlock watchdog armed and must drain
 * afterwards; the bench is fatal if the watchdog trips, an audit
 * fails, or — the claim dynamic sharing exists for — the dynamic
 * policies fail to beat the static partition's p99 latency on the
 * bursty mild-incast rows.  (Under heavy incast full isolation is
 * legitimately the best tree-saturation containment; those rows
 * are reported, not gated.)
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_sharing.json and a
 * PERF_sharing.json timing sidecar.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/json_writer.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "network/torus_sim.hh"
#include "queueing/admission_policy.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

const double kLoads[] = {0.15, 0.25, 0.33};

/** Incast intensity: fraction of traffic aimed at node 0. */
const double kIncastFractions[] = {0.05, 0.15};

/** On/off burstiness: sources clump arrivals at 3x the offered
 *  load, so a 2-slot static partition overflows on every burst
 *  while the shared pool absorbs it (requires load * B <= 1). */
constexpr double kBurstiness = 3.0;

/** Cycles a drained run may take to empty after measurement. */
constexpr Cycle kDrainBudget = 200000;

/** One buffer-organization x sharing-policy combination. */
struct Combo
{
    const char *label;
    BufferType buffer;
    SharingPolicy policy;
};

const Combo kCombos[] = {
    {"samq/static", BufferType::Samq, SharingPolicy::Static},
    {"damq/static", BufferType::Damq, SharingPolicy::Static},
    {"damq/dt", BufferType::Damq, SharingPolicy::DynamicThreshold},
    {"damq/delay", BufferType::Damq, SharingPolicy::DelayDriven},
    {"voq/static", BufferType::Voq, SharingPolicy::Static},
    {"voq/dt", BufferType::Voq, SharingPolicy::DynamicThreshold},
};

/** One (incast, combo, load) measurement. */
struct Row
{
    std::string workload;
    std::string combo;
    double load = 0.0;
    double throughput = 0.0;
    double latencyMean = 0.0;
    double latencyP99 = 0.0;
    double e2eLatencyP50 = 0.0;
    double e2eLatencyP99 = 0.0;
    double e2eLatencyP999 = 0.0;
    std::uint64_t e2eSamples = 0;
    std::uint64_t delivered = 0;
    std::uint64_t watchdogTrips = 0;
    std::uint64_t auditsRun = 0;
    std::uint64_t auditViolations = 0;
    bool drained = false;
};

TorusConfig
sharingConfig(const Combo &combo, double incast, double load)
{
    TorusConfig cfg; // blocking + two dateline VCs by default
    cfg.width = 8;
    cfg.height = 8;
    cfg.bufferType = combo.buffer;
    cfg.sharing.kind = combo.policy;
    cfg.sharing.dtAlpha = 2.0;
    cfg.sharing.delayAgeScale = 64;
    // 5 ports x 2 VCs = 10 queues.  Two slots per queue keeps the
    // SAMQ divisibility constraint and gives the shared
    // organizations a pool worth fighting over.
    cfg.slotsPerBuffer = 20;
    cfg.traffic = "hotspot";
    cfg.hotSpotFraction = incast;
    cfg.offeredLoad = load;
    cfg.burstiness = kBurstiness;
    cfg.meanBurstCycles = 8;
    cfg.common.seed = 99;
    cfg.common.warmupCycles = 500;
    cfg.common.measureCycles = 2000;
    cfg.common.auditEveryCycles = 256;
    cfg.common.watchdogStallCycles = 2000;
    return cfg;
}

/** Fold one finished run into a Row (drain + audit verdicts). */
Row
observe(TorusSimulator &sim, const TorusResult &r,
        const std::string &workload, const Combo &combo, double load)
{
    Row row;
    row.workload = workload;
    row.combo = combo.label;
    row.load = load;
    row.throughput = r.deliveredThroughput;
    row.latencyMean = r.latencyCycles.mean();
    row.latencyP99 = r.latencyP99;
    row.e2eLatencyP50 = r.e2eLatencyP50;
    row.e2eLatencyP99 = r.e2eLatencyP99;
    row.e2eLatencyP999 = r.e2eLatencyP999;
    row.e2eSamples = r.e2eSamples;
    row.delivered = r.window.delivered;
    row.drained = sim.drain(kDrainBudget);
    const FaultReport report = sim.faultReport();
    row.watchdogTrips = report.watchdogFired ? 1 : 0;
    row.auditsRun = report.auditsRun;
    row.auditViolations = report.auditViolations;
    return row;
}

/** Per-row conservation laws; fatal if broken. */
void
enforceRow(const Row &row)
{
    const std::string where =
        detail::concat(row.workload, "/", row.combo, "@",
                       formatFixed(row.load, 2));
    if (row.watchdogTrips != 0)
        damq_fatal(where, ": deadlock watchdog tripped");
    if (row.auditViolations != 0)
        damq_fatal(where, ": ", row.auditViolations,
                   " invariant audit violations");
    if (row.auditsRun == 0)
        damq_fatal(where, ": the invariant audit never ran");
    if (!row.drained)
        damq_fatal(where, ": network failed to drain within ",
                   kDrainBudget, " cycles");
    if (row.delivered == 0)
        damq_fatal(where, ": no packets delivered");
}

/** Find the unique row for (workload, combo, load). */
const Row &
rowFor(const std::vector<Row> &rows, const std::string &workload,
       const std::string &combo, double load)
{
    for (const Row &row : rows)
        if (row.workload == workload && row.combo == combo &&
            row.load == load)
            return row;
    damq_fatal("missing row ", workload, "/", combo, "@", load);
}

/**
 * The claim the bench exists to check: on the bursty mild-incast
 * rows — partitions overflowing on every burst, hot tree not yet
 * collapsed — Dynamic Threshold and delay-driven sharing must beat
 * the static partition's p99 latency.  Fatal otherwise, so CI
 * fails loudly if a regression makes dynamic sharing pointless.
 * (Under heavy incast the comparison legitimately inverts: full
 * isolation is the best tree-saturation containment, which is why
 * the heavy rows are reported but not gated.)
 */
void
enforceSharingBeatsPartitioning(const std::vector<Row> &rows,
                                const std::string &workload)
{
    const double load = kLoads[1];
    const Row &samq = rowFor(rows, workload, "samq/static", load);
    for (const char *dynamic : {"damq/dt", "damq/delay"}) {
        const Row &row = rowFor(rows, workload, dynamic, load);
        if (row.latencyP99 >= samq.latencyP99)
            damq_fatal(workload, "@", formatFixed(load, 2), ": ",
                       dynamic, " p99 (", formatFixed(row.latencyP99, 1),
                       ") does not beat samq/static p99 (",
                       formatFixed(samq.latencyP99, 1), ")");
    }
}

void
renderTables(const std::vector<Row> &rows)
{
    for (const double incast : kIncastFractions) {
        const std::string workload =
            detail::concat("incast", formatFixed(incast * 100, 0));
        TextTable table;
        std::vector<std::string> header = {"Combo"};
        for (const double load : kLoads)
            header.push_back(
                detail::concat("thr@", formatFixed(load, 2)));
        for (const double load : kLoads)
            header.push_back(
                detail::concat("p99@", formatFixed(load, 2)));
        table.setHeader(header);
        for (const Combo &combo : kCombos) {
            table.startRow();
            table.addCell(combo.label);
            for (const double load : kLoads)
                table.addCell(formatFixed(
                    rowFor(rows, workload, combo.label, load)
                        .throughput,
                    3));
            for (const double load : kLoads)
                table.addCell(formatFixed(
                    rowFor(rows, workload, combo.label, load)
                        .latencyP99,
                    1));
        }
        std::cout << "\n" << workload
                  << " (fraction of traffic at node 0: "
                  << formatFixed(incast, 2) << "):\n"
                  << table.render();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("sharing",
                   "Buffer-sharing policies (static, dynamic "
                   "threshold, delay-driven, VOQ) under incast");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Sharing - admission policies under bursty incast "
           "hot-spot load",
           "8x8 blocking 2-VC torus, node 0 hot, 3x bursty "
           "sources; invariant audit + deadlock watchdog armed on "
           "every row, full drain required; dynamic sharing must "
           "beat the static partition's p99 on the bursty "
           "mild-incast rows");

    struct Task
    {
        std::string label;
        std::string workload;
        const Combo *combo;
        double incast;
        double load;
    };
    std::vector<Task> tasks;
    for (const double incast : kIncastFractions) {
        const std::string workload =
            detail::concat("incast", formatFixed(incast * 100, 0));
        for (const Combo &combo : kCombos) {
            for (const double load : kLoads) {
                tasks.push_back({detail::concat(workload, "/",
                                                combo.label, "@",
                                                formatFixed(load, 2)),
                                 workload, &combo, incast, load});
            }
        }
    }

    // Like runSimSweep: per-task telemetry files get the task's
    // label appended so concurrent tasks never share a file.
    const auto taskPrefix = [&](SimCommonConfig &common,
                                const std::string &label) {
        if (common.telemetry.enabled() &&
            !common.telemetry.outputPrefix.empty()) {
            common.telemetry.outputPrefix +=
                "." + sanitizeFileToken(label);
        }
    };

    const std::vector<Row> rows = runner.map(
        tasks.size(), [&](std::size_t i) {
            const Task &task = tasks[i];
            TorusConfig cfg = sharingConfig(*task.combo, task.incast,
                                            task.load);
            applyCommonSimFlags(args, cfg.common, "sharing");
            taskPrefix(cfg.common, task.label);
            cfg.common.vcs = 2; // dateline geometry is fixed
            TorusSimulator sim(cfg);
            const TorusResult r = sim.run();
            return observe(sim, r, task.workload, *task.combo,
                           task.load);
        });

    renderTables(rows);

    for (const Row &row : rows)
        enforceRow(row);
    enforceSharingBeatsPartitioning(rows, "incast5");

    std::uint64_t audits = 0;
    for (const Row &row : rows)
        audits += row.auditsRun;
    std::cout << "\nall " << rows.size()
              << " rows drained; watchdog armed on every row, zero "
                 "trips; "
              << audits << " invariant audits, zero violations\n"
              << "\nExpected shape: under mild incast the static "
                 "partition (samq/static) rejects\nevery burst that "
                 "overflows its 2-slot queues, while the shared "
                 "pool absorbs\nthem — dynamic threshold and "
                 "delay-driven sharing beat it on p99 and\n"
                 "throughput.  Under heavy incast the comparison "
                 "honestly inverts: full\nisolation is the best "
                 "tree-saturation containment, and the dynamic\n"
                 "policies close most of naive sharing's gap "
                 "toward it.\n";

    {
        BenchJsonFile out("sharing");
        JsonWriter &json = out.json();
        json.key("config");
        json.beginObject();
        json.field("torusSide", std::uint64_t{8});
        json.field("torusVcs", std::uint64_t{2});
        json.field("slotsPerBuffer", std::uint64_t{20});
        json.field("dtAlpha", 2.0);
        json.field("delayAgeScale", std::uint64_t{64});
        json.field("burstiness", kBurstiness);
        json.field("meanBurstCycles", std::uint64_t{8});
        json.field("seed", std::uint64_t{99});
        json.field("warmupCycles", std::uint64_t{500});
        json.field("measureCycles", std::uint64_t{2000});
        json.field("auditEveryCycles", std::uint64_t{256});
        json.field("watchdogStallCycles", std::uint64_t{2000});
        json.endObject();
        // Echo the workload the sweep actually ran: the base config
        // with the CLI overrides (--workload included) applied.
        TorusConfig desc_cfg =
            sharingConfig(kCombos[0], kIncastFractions[0], kLoads[0]);
        applyCommonSimFlags(args, desc_cfg.common, "sharing");
        writeWorkloadJson(json, desc_cfg.common.workload,
                          desc_cfg.trafficClasses, desc_cfg.burstiness,
                          desc_cfg.meanBurstCycles);
        json.field("watchdogTrips", std::uint64_t{0});
        json.field("dynamicBeatsStaticPartitionP99", true);
        json.key("rows");
        json.beginArray();
        for (const Row &row : rows) {
            json.beginObject();
            json.field("workload", row.workload);
            json.field("combo", row.combo);
            json.field("load", row.load);
            json.field("throughput", row.throughput);
            json.field("latencyMean", row.latencyMean);
            json.field("latencyP99", row.latencyP99);
            writeE2eLatencyJson(json, row);
            json.field("delivered", row.delivered);
            json.field("auditsRun", row.auditsRun);
            json.endObject();
        }
        json.endArray();
    }
    writePerfSidecar("sharing", runner, [&] {
        std::vector<std::string> labels;
        for (const Task &task : tasks)
            labels.push_back(task.label);
        return labels;
    }());
    return 0;
}

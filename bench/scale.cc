/**
 * @file
 * The Scale workload: intra-simulation sharding on fabrics three
 * orders of magnitude bigger than the paper's — a 64x64 torus
 * (4,096 nodes) and a 4,096-endpoint radix-4 Omega network (6
 * stages x 1,024 switches) — at sub-saturation and saturation
 * load, advanced at 1, 2, 4, and 8 shards.
 *
 * Two things are measured, and one is enforced:
 *
 *  - enforced: every (workload, load) point must be bit-identical
 *    across all shard counts — counters and Welford latency moments
 *    compared exactly; any mismatch is fatal, so CI fails loudly if
 *    the determinism contract ever breaks at scale;
 *  - measured: per-point wall-clock, delivered packet-hops per
 *    second, and the parallel speedup of each shard count over the
 *    one-shard run of the same point.
 *
 * Unlike every other bench, BENCH_scale.json therefore contains
 * wall-clock-derived numbers (the speedup block) next to the
 * deterministic simulation outputs: sharding is a pure performance
 * feature, so its headline result *is* timing.  The deterministic
 * fields are still identical run to run; the speedup block is
 * expected to vary with the host, whose hardwareConcurrency is
 * recorded alongside (speedups are only meaningful when the host
 * has at least as many cores as shards).  The full per-task timing
 * breakdown is mirrored in the PERF_scale.json sidecar as usual.
 *
 * The sweep runner is told to use one thread by default: the
 * shards provide the parallelism here, and letting sweep tasks run
 * concurrently would make the per-task timings meaningless.  Both
 * workloads run the discarding protocol so the saturation points
 * hold steady state (blocking at load 1.0 grows source queues
 * without bound).
 */

#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/json_writer.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "network/network_sim.hh"
#include "network/torus_sim.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

const double kLoads[] = {0.40, 1.00};

/** Everything compared bitwise across shard counts. */
struct Fingerprint
{
    std::uint64_t generated;
    std::uint64_t delivered;
    std::uint64_t discarded;
    std::uint64_t latencyCount;
    double latencyMean;
    double latencyStddev;

    bool operator==(const Fingerprint &rhs) const
    {
        return generated == rhs.generated &&
               delivered == rhs.delivered &&
               discarded == rhs.discarded &&
               latencyCount == rhs.latencyCount &&
               latencyMean == rhs.latencyMean &&
               latencyStddev == rhs.latencyStddev;
    }
};

/** One (workload, load, shards) measurement, ready to render. */
struct Point
{
    std::string workload;
    double load;
    std::uint32_t shards;
    Fingerprint fp;
    double wallSeconds;
    double packetHops; ///< delivered x mean hops in the window
};

TorusConfig
torusConfig(double load)
{
    TorusConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    // Single-VC discarding: bounded memory at saturation, and the
    // whole advance (receives included) runs on the shards.
    cfg.protocol = FlowControl::Discarding;
    cfg.common.vcs = 1;
    cfg.slotsPerBuffer = 5;
    cfg.offeredLoad = load;
    cfg.common.seed = 99;
    cfg.common.warmupCycles = 100;
    cfg.common.measureCycles = 300;
    return cfg;
}

NetworkConfig
omegaConfig(double load)
{
    NetworkConfig cfg;
    cfg.numPorts = 4096; // 6 stages x 1024 radix-4 switches
    cfg.radix = 4;
    cfg.protocol = FlowControl::Discarding;
    cfg.slotsPerBuffer = 4;
    cfg.offeredLoad = load;
    cfg.common.seed = 99;
    cfg.common.warmupCycles = 100;
    cfg.common.measureCycles = 300;
    return cfg;
}

/** Fail the bench if two shard counts ever disagree. */
void
checkIdentical(const std::vector<Point> &points)
{
    for (const Point &p : points) {
        const Point &base = points.front();
        if (!(p.fp == base.fp)) {
            damq_fatal("shard determinism broken: ", p.workload,
                       " at load ", p.load, " differs between ",
                       base.shards, " and ", p.shards,
                       " shards (delivered ", base.fp.delivered,
                       " vs ", p.fp.delivered, ", latency mean ",
                       base.fp.latencyMean, " vs ",
                       p.fp.latencyMean, ")");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("scale",
                   "Sharded-engine scaling on 4096-node fabrics");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    // One sweep thread unless the user insists: the shards are the
    // parallelism under test, and concurrent sweep tasks would
    // corrupt the per-task wall-clock numbers.
    SweepRunner runner(args.wasSet("threads") ? simThreads(args)
                                              : 1);

    // Sweep 1/2/4/8 shards, or just the explicit --shards value.
    std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8};
    if (args.wasSet("shards") && args.getInt("shards") != 0) {
        shard_counts = {
            static_cast<std::uint32_t>(args.getInt("shards"))};
    }

    banner("Scale - sharded engine on 4096-node fabrics",
           "64x64 torus and 4096-endpoint Omega, discarding "
           "protocol; bit-identity enforced across shard counts");

    const unsigned cores = std::thread::hardware_concurrency();
    std::cout << "\nhost reports " << cores
              << " hardware threads; speedups above min(shards, "
              << "cores) are not expected\n";

    std::vector<Point> points;

    // --- torus ------------------------------------------------------
    {
        std::vector<TorusTask> tasks;
        for (const double load : kLoads) {
            for (const std::uint32_t shards : shard_counts) {
                TorusConfig cfg = torusConfig(load);
                applyCommonSimFlags(args, cfg.common, "scale");
                cfg.common.shards = shards;
                tasks.push_back(
                    {detail::concat("torus64/", formatFixed(load, 2),
                                    "/s", shards),
                     cfg});
            }
        }
        const std::vector<TorusResult> results =
            runSimSweep(runner, tasks);
        const std::vector<TaskPerf> &perf = runner.taskPerf();
        for (std::size_t i = 0; i < results.size(); ++i) {
            const TorusResult &r = results[i];
            Point p;
            p.workload = "torus64";
            p.load = tasks[i].config.offeredLoad;
            p.shards = tasks[i].config.common.shards;
            p.fp = {r.window.generated, r.window.delivered,
                    r.window.discarded(), r.latencyCycles.count(),
                    r.latencyCycles.mean(),
                    r.latencyCycles.stddev()};
            p.wallSeconds = perf[i].wallSeconds;
            p.packetHops = static_cast<double>(r.window.delivered) *
                           r.avgHops;
            points.push_back(p);
        }
    }

    // --- omega ------------------------------------------------------
    {
        std::vector<NetworkTask> tasks;
        for (const double load : kLoads) {
            for (const std::uint32_t shards : shard_counts) {
                NetworkConfig cfg = omegaConfig(load);
                applyCommonSimFlags(args, cfg.common, "scale");
                cfg.common.shards = shards;
                tasks.push_back(
                    {detail::concat("omega4096/",
                                    formatFixed(load, 2), "/s",
                                    shards),
                     cfg});
            }
        }
        const std::vector<NetworkResult> results =
            runSimSweep(runner, tasks);
        const std::vector<TaskPerf> &perf = runner.taskPerf();
        // Every delivered packet crosses all 6 stages of the
        // 4096-endpoint radix-4 Omega — hops are exact, not a mean.
        const double stages = 6.0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const NetworkResult &r = results[i];
            Point p;
            p.workload = "omega4096";
            p.load = tasks[i].config.offeredLoad;
            p.shards = tasks[i].config.common.shards;
            p.fp = {r.window.generated, r.window.delivered,
                    r.window.discarded(), r.latencyClocks.count(),
                    r.latencyClocks.mean(),
                    r.latencyClocks.stddev()};
            p.wallSeconds = perf[i].wallSeconds;
            p.packetHops =
                static_cast<double>(r.window.delivered) * stages;
            points.push_back(p);
        }
    }

    // --- identity + rendering --------------------------------------
    const std::size_t per_group = shard_counts.size();
    for (std::size_t g = 0; g + per_group <= points.size();
         g += per_group) {
        checkIdentical(std::vector<Point>(
            points.begin() + g, points.begin() + g + per_group));
    }

    TextTable table;
    table.setHeader({"Workload", "load", "shards", "delivered",
                     "wall s", "Mhops/s", "speedup"});
    for (std::size_t g = 0; g < points.size(); g += per_group) {
        const double base_wall = points[g].wallSeconds;
        for (std::size_t i = g; i < g + per_group; ++i) {
            const Point &p = points[i];
            table.startRow();
            table.addCell(p.workload);
            table.addCell(formatFixed(p.load, 2));
            table.addCell(detail::concat(p.shards));
            table.addCell(detail::concat(p.fp.delivered));
            table.addCell(formatFixed(p.wallSeconds, 3));
            table.addCell(formatFixed(
                p.packetHops / p.wallSeconds / 1e6, 2));
            table.addCell(
                formatFixed(base_wall / p.wallSeconds, 2));
        }
    }
    std::cout << "\n" << table.render()
              << "\nbit-identity held across all shard counts "
                 "(checked exactly; a mismatch is fatal)\n";

    {
        BenchJsonFile out("scale");
        JsonWriter &json = out.json();
        json.key("config");
        json.beginObject();
        json.field("torusSide", std::uint64_t{64});
        json.field("omegaEndpoints", std::uint64_t{4096});
        json.field("omegaRadix", std::uint64_t{4});
        json.field("protocol", "discarding");
        json.field("seed", std::uint64_t{99});
        json.field("warmupCycles", std::uint64_t{100});
        json.field("measureCycles", std::uint64_t{300});
        json.field("hardwareConcurrency",
                   static_cast<std::uint64_t>(cores));
        json.endObject();
        // Echo the workload the sweep actually ran (CLI overrides
        // applied), not the compiled-in default.
        SimCommonConfig desc_common;
        applyCommonSimFlags(args, desc_common, "scale");
        writeWorkloadJson(json, desc_common.workload);
        json.field("identityHeld", true);
        // Wall-clock block: the one BENCH file allowed to carry
        // timing (see file docs) — these numbers vary by host.
        json.key("rows");
        json.beginArray();
        for (std::size_t g = 0; g < points.size();
             g += per_group) {
            const double base_wall = points[g].wallSeconds;
            for (std::size_t i = g; i < g + per_group; ++i) {
                const Point &p = points[i];
                json.beginObject();
                json.field("workload", p.workload);
                json.field("load", p.load);
                json.field("shards",
                           static_cast<std::uint64_t>(p.shards));
                json.field("delivered", p.fp.delivered);
                json.field("latencyMean", p.fp.latencyMean);
                json.field("wallSeconds", p.wallSeconds);
                json.field("packetHopsPerSecond",
                           p.packetHops / p.wallSeconds);
                json.field("speedupOverOneShard",
                           base_wall / p.wallSeconds);
                json.endObject();
            }
        }
        json.endArray();
    }

    // The PERF sidecar, written by hand because the points span
    // two sweep-runner maps (the torus and Omega config types).
    {
        const std::string path = "PERF_scale.json";
        std::ofstream file(path);
        if (!file)
            damq_fatal("cannot open ", path, " for writing");
        JsonWriter json(file);
        json.beginObject();
        json.field("schema", "damq-perf-v1");
        json.field("bench", "scale");
        json.field("threads",
                   static_cast<std::uint64_t>(runner.threads()));
        json.field("hardwareConcurrency",
                   static_cast<std::uint64_t>(cores));
        json.key("tasks");
        json.beginArray();
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Point &p = points[i];
            json.beginObject();
            json.field("index", static_cast<std::uint64_t>(i));
            json.field("label",
                       detail::concat(p.workload, "/",
                                      formatFixed(p.load, 2), "/s",
                                      p.shards));
            json.field("wallSeconds", p.wallSeconds);
            json.field("packetHopsPerSecond",
                       p.packetHops / p.wallSeconds);
            json.endObject();
        }
        json.endArray();
        json.endObject();
        std::cerr << "wrote " << path << "\n";
    }
    return 0;
}

/**
 * @file
 * Reproduces Table 4: "Average Latencies for Given Throughput
 * (four slots per buffer)" — blocking protocol, smart arbitration,
 * uniform traffic.  Latency is in clock cycles (12 per network
 * cycle, 36-clock unloaded floor for three stages); "saturated" is
 * the mean latency under full offered load, and the saturation
 * throughput is the delivered rate at that point.
 *
 * Headline claim: DAMQ's saturation throughput is ~40 % above
 * FIFO's at equal storage (paper: 0.70 vs 0.51).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "network/saturation.hh"
#include "stats/text_table.hh"

int
main()
{
    using namespace damq;
    using namespace damq::bench;

    banner("Table 4 - Average latency vs throughput (4 slots/buffer)",
           "64x64 Omega, blocking protocol, smart arbitration, "
           "uniform traffic; latency in clock cycles");

    const double loads[] = {0.25, 0.30, 0.40, 0.50};

    TextTable table;
    table.setHeader({"Buffer", "0.25", "0.30", "0.40", "0.50",
                     "saturated", "sat. throughput"});

    double fifo_sat = 0.0;
    double damq_sat = 0.0;
    for (const BufferType type : kAllBufferTypes) {
        NetworkConfig cfg = paperNetworkConfig();
        cfg.bufferType = type;

        table.startRow();
        table.addCell(bufferTypeName(type));
        for (const double load : loads)
            table.addCell(formatFixed(latencyAtLoad(cfg, load), 2));

        const SaturationSummary sat = measureSaturation(cfg);
        table.addCell(formatFixed(sat.saturatedLatencyClocks, 2));
        table.addCell(formatFixed(sat.saturationThroughput, 2));
        if (type == BufferType::Fifo)
            fifo_sat = sat.saturationThroughput;
        if (type == BufferType::Damq)
            damq_sat = sat.saturationThroughput;
    }
    std::cout << table.render();

    std::cout
        << "\nPaper reference (Table 4):\n"
           "  buffer   0.25   0.30   0.40   0.50   saturated  "
           "sat.thru\n"
           "  FIFO    41.47  43.62  51.89  89.94    169.77     "
           "0.51\n"
           "  DAMQ    41.09  42.90  47.97  56.24    117.25     "
           "0.70\n"
           "  SAFC    42.59  45.02  52.33  63.71     82.12     "
           "0.54\n"
           "  SAMQ    43.62  46.82  57.39  75.61     94.62     "
           "0.50\n";

    std::cout << "\nHeadline: DAMQ saturation / FIFO saturation = "
              << formatFixed(damq_sat / fifo_sat, 2)
              << "  (paper: 0.70/0.51 = 1.37)\n";
    return 0;
}

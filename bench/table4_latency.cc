/**
 * @file
 * Reproduces Table 4: "Average Latencies for Given Throughput
 * (four slots per buffer)" — blocking protocol, smart arbitration,
 * uniform traffic.  Latency is in clock cycles (12 per network
 * cycle, 36-clock unloaded floor for three stages); "saturated" is
 * the mean latency under full offered load, and the saturation
 * throughput is the delivered rate at that point.
 *
 * Headline claim: DAMQ's saturation throughput is ~40 % above
 * FIFO's at equal storage (paper: 0.70 vs 0.51).
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_table4_latency.json and a
 * PERF_table4_latency.json timing sidecar beside the text table.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "runner/bench_output.hh"
#include "runner/sim_flags.hh"
#include "runner/table_benches.hh"

int
main(int argc, char **argv)
{
    using namespace damq;
    using namespace damq::bench;

    ArgParser args("table4_latency",
                   "Reproduce Table 4 (latency vs throughput at "
                   "four slots per buffer)");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Table 4 - Average latency vs throughput (4 slots/buffer)",
           "64x64 Omega, blocking protocol, smart arbitration, "
           "uniform traffic; latency in clock cycles");

    Table4Options options;
    applyCommonSimFlags(args, options.base.common, "table4_latency");
    const Table4Data data = runTable4(runner, options);
    std::cout << renderTable4Text(data);

    std::cout
        << "\nPaper reference (Table 4):\n"
           "  buffer   0.25   0.30   0.40   0.50   saturated  "
           "sat.thru\n"
           "  FIFO    41.47  43.62  51.89  89.94    169.77     "
           "0.51\n"
           "  DAMQ    41.09  42.90  47.97  56.24    117.25     "
           "0.70\n"
           "  SAFC    42.59  45.02  52.33  63.71     82.12     "
           "0.54\n"
           "  SAMQ    43.62  46.82  57.39  75.61     94.62     "
           "0.50\n";

    std::cout << "\nHeadline: DAMQ saturation / FIFO saturation = "
              << formatFixed(data.saturationOf(BufferType::Damq) /
                                 data.saturationOf(BufferType::Fifo),
                             2)
              << "  (paper: 0.70/0.51 = 1.37)\n";

    {
        BenchJsonFile out("table4_latency");
        writeTable4Json(out.json(), data);
    }
    writePerfSidecar("table4_latency", runner, data.taskLabels);
    return 0;
}

/**
 * @file
 * Ablation: head-of-line blocking on byte-accurate hardware.  Two
 * otherwise identical ComCoBB chips — one with the paper's DAMQ
 * buffers, one with plain FIFO input buffers — relay two flows:
 * flow S heads for an output whose receiver stalls (zero
 * flow-control credits) for a configurable window, flow I heads
 * for an idle output.  The bench reports flow I's delivered
 * messages and worst-case latency as the stall lengthens: with
 * FIFO buffers one stuck packet at the head of the queue starves
 * the independent flow for exactly the stall duration; the DAMQ
 * chip is unaffected.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "microarch/micro_network.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::micro;

struct HolResult
{
    std::size_t idleFlowDelivered = 0;
    Cycle lastIdleDelivery = 0;
};

HolResult
runStall(ChipBufferMode mode, Cycle stall_cycles)
{
    MicroNetwork net;
    ComCobbChip &a = net.addChip("A");
    ComCobbChip &b =
        net.addChip("B", kComCobbPorts, kDefaultBufferSlots, mode);
    ComCobbChip &c = net.addChip("C");
    net.connect(a, 0, b, 0);
    net.connect(b, 3, c, 0);
    HostEndpoint tx = net.attachHost(a);
    HostEndpoint rx = net.attachHost(c);

    net.programCircuit({{&a, kProcessorPort, 0}, {&b, 0, 2}}, 10);
    net.programCircuit({{&a, kProcessorPort, 0},
                        {&b, 0, 3},
                        {&c, 0, kProcessorPort}},
                       20);

    // One packet for the stalled output, then a stream of eight
    // for the idle one.
    tx.injector->sendMessage(10,
                             std::vector<std::uint8_t>(32, 0xAA));
    for (int m = 0; m < 8; ++m) {
        tx.injector->sendMessage(
            20, std::vector<std::uint8_t>(32,
                                          static_cast<std::uint8_t>(m)));
    }

    Link *stalled = b.outputPort(2).attachedLink();
    stalled->publishCredits(0);
    net.run(stall_cycles);
    stalled->publishCredits(~0u); // the neighbor recovers
    net.run(1500);

    HolResult result;
    result.idleFlowDelivered = rx.collector->received().size();
    for (const HostMessage &msg : rx.collector->received()) {
        result.lastIdleDelivery =
            std::max(result.lastIdleDelivery, msg.deliveredAt);
    }
    return result;
}

} // namespace

int
main()
{
    using namespace damq::bench;

    banner("Ablation - head-of-line blocking on byte-accurate "
           "hardware",
           "identical ComCoBB chips, DAMQ vs FIFO input buffers; "
           "one packet stuck behind a stalled neighbor for N clocks "
           "while 8 independent messages want an idle output");

    TextTable table;
    table.setHeader({"stall clocks", "DAMQ: idle flow done by",
                     "FIFO: idle flow done by", "FIFO penalty"});
    for (const Cycle stall : {0u, 200u, 500u, 1000u, 2000u}) {
        const HolResult damq =
            runStall(ChipBufferMode::Damq, stall);
        const HolResult fifo =
            runStall(ChipBufferMode::Fifo, stall);
        table.startRow();
        table.addCell(std::to_string(stall));
        table.addCell(std::to_string(damq.lastIdleDelivery) +
                      " (8/8)");
        table.addCell(std::to_string(fifo.lastIdleDelivery) + " (" +
                      std::to_string(fifo.idleFlowDelivered) +
                      "/8)");
        table.addCell(formatFixed(
            static_cast<double>(fifo.lastIdleDelivery) -
                static_cast<double>(damq.lastIdleDelivery),
            0));
    }
    std::cout << table.render()
              << "\nReading: the DAMQ chip finishes the independent "
                 "flow at the same cycle no matter\nhow long the "
                 "unrelated neighbor stalls; the FIFO chip's "
                 "independent traffic is\nheld hostage for the full "
                 "stall — Section 2's argument, executed byte by "
                 "byte.\n";
    return 0;
}

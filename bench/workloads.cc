/**
 * @file
 * The Workloads bench: the injection-process API under the two
 * workloads the open-loop benches cannot express — the request-reply
 * closed loop and the Markov-modulated (MMPP) burst process — with
 * end-to-end tail latency as the headline metric.
 *
 * An 8x8 blocking torus with two dateline VCs under mild incast
 * (5% of traffic at node 0, so the policies see real buffer
 * pressure) runs the grid {damq, voq} x {static, dt, delay} at two
 * offered loads under each workload:
 *
 *  - reqreply  delivery of a request schedules a reply from its
 *              destination; at most 4 requests outstanding per
 *              source.  The loop self-throttles, so the interesting
 *              output is the end-to-end tail, not saturation.
 *  - mmpp      2-state modulated Bernoulli (peak 3x the mean, mean
 *              burst 8 cycles) with two traffic classes, so every
 *              row also reports per-class tails.
 *
 * Every row runs with the invariant audit and deadlock watchdog
 * armed and must fully drain afterwards.  The bench is fatal if a
 * watchdog trips, an audit fails, a row fails to drain, the
 * end-to-end percentiles are not ordered (p50 <= p99 <= p999), a
 * per-class tail is missing on the two-class rows, or — the
 * closed-loop conservation law — any reqreply row drains with
 * requests != replies != deliveries.
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_workloads.json (rows carry
 * e2e p50/p99/p999 and the per-class tails) and a
 * PERF_workloads.json timing sidecar.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/json_writer.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "network/torus_sim.hh"
#include "queueing/admission_policy.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

const double kLoads[] = {0.15, 0.30};

/** Cycles a drained run may take to empty after measurement. */
constexpr Cycle kDrainBudget = 200000;

/** One buffer-organization x sharing-policy combination. */
struct Combo
{
    const char *label;
    BufferType buffer;
    SharingPolicy policy;
};

const Combo kCombos[] = {
    {"damq/static", BufferType::Damq, SharingPolicy::Static},
    {"damq/dt", BufferType::Damq, SharingPolicy::DynamicThreshold},
    {"damq/delay", BufferType::Damq, SharingPolicy::DelayDriven},
    {"voq/static", BufferType::Voq, SharingPolicy::Static},
    {"voq/dt", BufferType::Voq, SharingPolicy::DynamicThreshold},
    {"voq/delay", BufferType::Voq, SharingPolicy::DelayDriven},
};

/** One workload under test. */
struct Workload
{
    const char *label;
    core::WorkloadConfig config;
    std::uint32_t trafficClasses;
};

std::vector<Workload>
workloads()
{
    Workload reqreply;
    reqreply.label = "reqreply";
    reqreply.config.kind = core::WorkloadKind::ReqReply;
    reqreply.config.replyWindow = 4;
    reqreply.trafficClasses = 1;

    Workload mmpp;
    mmpp.label = "mmpp";
    mmpp.config.kind = core::WorkloadKind::Mmpp;
    mmpp.config.burstiness = 3.0;
    mmpp.config.meanBurstCycles = 8;
    mmpp.trafficClasses = 2; // exercises the per-class tails

    return {reqreply, mmpp};
}

/** One (workload, combo, load) measurement. */
struct Row
{
    std::string workload;
    std::string combo;
    double load = 0.0;
    double throughput = 0.0;
    double e2eP50 = 0.0;
    double e2eP99 = 0.0;
    double e2eP999 = 0.0;
    std::uint64_t e2eSamples = 0;
    std::vector<core::SyncResult::ClassTail> classLatency;
    std::uint64_t delivered = 0;
    std::uint64_t requestsSent = 0;
    std::uint64_t requestsDelivered = 0;
    std::uint64_t repliesSent = 0;
    std::uint64_t repliesDelivered = 0;
    std::uint64_t watchdogTrips = 0;
    std::uint64_t auditsRun = 0;
    std::uint64_t auditViolations = 0;
    std::uint32_t expectedClasses = 1;
    bool closedLoop = false;
    bool drained = false;
};

TorusConfig
workloadConfig(const Workload &workload, const Combo &combo,
               double load)
{
    TorusConfig cfg; // blocking + two dateline VCs by default
    cfg.width = 8;
    cfg.height = 8;
    cfg.bufferType = combo.buffer;
    cfg.sharing.kind = combo.policy;
    cfg.sharing.dtAlpha = 2.0;
    cfg.sharing.delayAgeScale = 64;
    // 5 ports x 2 VCs = 10 queues, two slots per queue — the same
    // contended pool the Sharing bench fights over.
    cfg.slotsPerBuffer = 20;
    // Mild incast (5% of traffic at node 0) so the buffer policies
    // actually see pressure; uniform traffic at these loads never
    // fills a 20-slot pool and every combo ties exactly.
    cfg.traffic = "hotspot";
    cfg.hotSpotFraction = 0.05;
    cfg.offeredLoad = load;
    cfg.trafficClasses = workload.trafficClasses;
    cfg.common.workload = workload.config;
    cfg.common.seed = 99;
    cfg.common.warmupCycles = 500;
    cfg.common.measureCycles = 2000;
    cfg.common.auditEveryCycles = 256;
    cfg.common.watchdogStallCycles = 2000;
    return cfg;
}

/** Fold one finished run into a Row (drain + audit verdicts). */
Row
observe(TorusSimulator &sim, const TorusResult &r,
        const Workload &workload, const Combo &combo, double load)
{
    Row row;
    row.workload = workload.label;
    row.combo = combo.label;
    row.load = load;
    row.throughput = r.deliveredThroughput;
    row.e2eP50 = r.e2eLatencyP50;
    row.e2eP99 = r.e2eLatencyP99;
    row.e2eP999 = r.e2eLatencyP999;
    row.e2eSamples = r.e2eSamples;
    row.classLatency = r.classLatency;
    row.delivered = r.window.delivered;
    row.expectedClasses = workload.trafficClasses;
    row.drained = sim.drain(kDrainBudget);
    const core::WorkloadStats &ws =
        sim.syncEngine().injection().stats();
    row.closedLoop = sim.syncEngine().injection().closedLoop();
    row.requestsSent = ws.requestsSent;
    row.requestsDelivered = ws.requestsDelivered;
    row.repliesSent = ws.repliesSent;
    row.repliesDelivered = ws.repliesDelivered;
    const FaultReport report = sim.faultReport();
    row.watchdogTrips = report.watchdogFired ? 1 : 0;
    row.auditsRun = report.auditsRun;
    row.auditViolations = report.auditViolations;
    return row;
}

/** Per-row laws (drain, audits, tails, conservation); fatal if broken. */
void
enforceRow(const Row &row)
{
    const std::string where =
        detail::concat(row.workload, "/", row.combo, "@",
                       formatFixed(row.load, 2));
    if (row.watchdogTrips != 0)
        damq_fatal(where, ": deadlock watchdog tripped");
    if (row.auditViolations != 0)
        damq_fatal(where, ": ", row.auditViolations,
                   " invariant audit violations");
    if (row.auditsRun == 0)
        damq_fatal(where, ": the invariant audit never ran");
    if (!row.drained)
        damq_fatal(where, ": network failed to drain within ",
                   kDrainBudget, " cycles");
    if (row.delivered == 0)
        damq_fatal(where, ": no packets delivered");
    if (row.e2eSamples == 0)
        damq_fatal(where, ": no end-to-end latency samples");
    if (row.e2eP50 > row.e2eP99 || row.e2eP99 > row.e2eP999)
        damq_fatal(where, ": end-to-end percentiles out of order (",
                   row.e2eP50, " / ", row.e2eP99, " / ",
                   row.e2eP999, ")");
    if (row.expectedClasses > 1) {
        if (row.classLatency.size() != row.expectedClasses)
            damq_fatal(where, ": expected ", row.expectedClasses,
                       " per-class tails, got ",
                       row.classLatency.size());
        for (const core::SyncResult::ClassTail &tail :
             row.classLatency)
            if (tail.samples == 0)
                damq_fatal(where, ": class ", tail.trafficClass,
                           " collected no latency samples");
    }
    if (row.closedLoop) {
        // After a full drain every request was answered and every
        // reply came home — the loop's conservation law.
        if (row.requestsSent != row.requestsDelivered)
            damq_fatal(where, ": ", row.requestsSent,
                       " requests sent but ", row.requestsDelivered,
                       " delivered");
        if (row.repliesSent != row.repliesDelivered)
            damq_fatal(where, ": ", row.repliesSent,
                       " replies sent but ", row.repliesDelivered,
                       " delivered");
        if (row.requestsDelivered != row.repliesSent)
            damq_fatal(where, ": ", row.requestsDelivered,
                       " delivered requests scheduled ",
                       row.repliesSent, " replies");
        if (row.requestsSent == 0)
            damq_fatal(where, ": closed loop sent no requests");
    }
}

/** Find the unique row for (workload, combo, load). */
const Row &
rowFor(const std::vector<Row> &rows, const std::string &workload,
       const std::string &combo, double load)
{
    for (const Row &row : rows)
        if (row.workload == workload && row.combo == combo &&
            row.load == load)
            return row;
    damq_fatal("missing row ", workload, "/", combo, "@", load);
}

void
renderTables(const std::vector<Row> &rows,
             const std::vector<Workload> &kinds)
{
    for (const Workload &workload : kinds) {
        TextTable table;
        std::vector<std::string> header = {"Combo"};
        for (const double load : kLoads)
            header.push_back(
                detail::concat("thr@", formatFixed(load, 2)));
        for (const double load : kLoads)
            header.push_back(
                detail::concat("e2e p99@", formatFixed(load, 2)));
        header.push_back(detail::concat(
            "e2e p999@", formatFixed(kLoads[1], 2)));
        table.setHeader(header);
        for (const Combo &combo : kCombos) {
            table.startRow();
            table.addCell(combo.label);
            for (const double load : kLoads)
                table.addCell(formatFixed(
                    rowFor(rows, workload.label, combo.label, load)
                        .throughput,
                    3));
            for (const double load : kLoads)
                table.addCell(formatFixed(
                    rowFor(rows, workload.label, combo.label, load)
                        .e2eP99,
                    1));
            table.addCell(formatFixed(
                rowFor(rows, workload.label, combo.label, kLoads[1])
                    .e2eP999,
                1));
        }
        std::cout << "\n" << workload.label << ":\n"
                  << table.render();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("workloads",
                   "Closed-loop request-reply and MMPP injection "
                   "processes with end-to-end tail latency");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Workloads - closed-loop and modulated injection "
           "processes",
           "8x8 blocking 2-VC torus, mild incast (5% at node 0); "
           "reqreply (window 4) and mmpp (3x peak, 2 classes) "
           "across {damq, voq} x {static, dt, delay}; invariant "
           "audit + deadlock watchdog armed on every row, full "
           "drain and closed-loop conservation required");

    const std::vector<Workload> kinds = workloads();

    struct Task
    {
        std::string label;
        const Workload *workload;
        const Combo *combo;
        double load;
    };
    std::vector<Task> tasks;
    for (const Workload &workload : kinds) {
        for (const Combo &combo : kCombos) {
            for (const double load : kLoads) {
                tasks.push_back({detail::concat(workload.label, "/",
                                                combo.label, "@",
                                                formatFixed(load, 2)),
                                 &workload, &combo, load});
            }
        }
    }

    // Like runSimSweep: per-task telemetry files get the task's
    // label appended so concurrent tasks never share a file.
    const auto taskPrefix = [&](SimCommonConfig &common,
                                const std::string &label) {
        if (common.telemetry.enabled() &&
            !common.telemetry.outputPrefix.empty()) {
            common.telemetry.outputPrefix +=
                "." + sanitizeFileToken(label);
        }
    };

    const std::vector<Row> rows = runner.map(
        tasks.size(), [&](std::size_t i) {
            const Task &task = tasks[i];
            TorusConfig cfg = workloadConfig(*task.workload,
                                             *task.combo, task.load);
            applyCommonSimFlags(args, cfg.common, "workloads");
            taskPrefix(cfg.common, task.label);
            cfg.common.vcs = 2; // dateline geometry is fixed
            cfg.common.workload = task.workload->config;
            TorusSimulator sim(cfg);
            const TorusResult r = sim.run();
            return observe(sim, r, *task.workload, *task.combo,
                           task.load);
        });

    renderTables(rows, kinds);

    for (const Row &row : rows)
        enforceRow(row);

    std::uint64_t audits = 0;
    std::uint64_t requests = 0;
    for (const Row &row : rows) {
        audits += row.auditsRun;
        requests += row.requestsDelivered;
    }
    std::cout << "\nall " << rows.size()
              << " rows drained; watchdog armed on every row, zero "
                 "trips; "
              << audits << " invariant audits, zero violations; "
              << "closed-loop conservation closed on every reqreply "
                 "row ("
              << requests << " requests answered)\n"
              << "\nExpected shape: the closed loop self-throttles "
                 "— the outstanding window caps\nhow far any queue "
                 "can grow, so throughput tracks the offered rate "
                 "(plus\nreplies) and the end-to-end tail stays "
                 "within a few round-trips at every\npolicy.  The "
                 "open-loop mmpp process has no such brake: at the "
                 "higher load\nits 3x bursts pile onto the hot "
                 "node and the e2e tail balloons by two\norders of "
                 "magnitude — the contrast the closed loop exists "
                 "to show.  Both\ntraffic classes see similar "
                 "tails since stamping is source-striped, not\n"
                 "prioritized.\n";

    {
        BenchJsonFile out("workloads");
        JsonWriter &json = out.json();
        json.key("config");
        json.beginObject();
        json.field("torusSide", std::uint64_t{8});
        json.field("torusVcs", std::uint64_t{2});
        json.field("slotsPerBuffer", std::uint64_t{20});
        json.field("dtAlpha", 2.0);
        json.field("delayAgeScale", std::uint64_t{64});
        json.field("hotSpotFraction", 0.05);
        json.field("seed", std::uint64_t{99});
        json.field("warmupCycles", std::uint64_t{500});
        json.field("measureCycles", std::uint64_t{2000});
        json.field("auditEveryCycles", std::uint64_t{256});
        json.field("watchdogStallCycles", std::uint64_t{2000});
        json.endObject();
        json.key("workloads");
        json.beginArray();
        for (const Workload &workload : kinds) {
            json.beginObject();
            json.field("label", workload.label);
            writeWorkloadJson(json, workload.config,
                              workload.trafficClasses);
            json.endObject();
        }
        json.endArray();
        json.field("watchdogTrips", std::uint64_t{0});
        json.field("closedLoopConservation", true);
        json.key("rows");
        json.beginArray();
        for (const Row &row : rows) {
            json.beginObject();
            json.field("workload", row.workload);
            json.field("combo", row.combo);
            json.field("load", row.load);
            json.field("throughput", row.throughput);
            json.field("e2eLatencyP50", row.e2eP50);
            json.field("e2eLatencyP99", row.e2eP99);
            json.field("e2eLatencyP999", row.e2eP999);
            json.field("e2eSamples", row.e2eSamples);
            if (!row.classLatency.empty()) {
                json.key("classLatency");
                json.beginArray();
                for (const core::SyncResult::ClassTail &tail :
                     row.classLatency) {
                    json.beginObject();
                    json.field("class",
                               static_cast<std::uint64_t>(
                                   tail.trafficClass));
                    json.field("samples", tail.samples);
                    json.field("p50", tail.p50);
                    json.field("p99", tail.p99);
                    json.field("p999", tail.p999);
                    json.endObject();
                }
                json.endArray();
            }
            json.field("delivered", row.delivered);
            if (row.closedLoop) {
                json.field("requestsSent", row.requestsSent);
                json.field("requestsDelivered",
                           row.requestsDelivered);
                json.field("repliesSent", row.repliesSent);
                json.field("repliesDelivered", row.repliesDelivered);
            }
            json.field("auditsRun", row.auditsRun);
            json.endObject();
        }
        json.endArray();
    }
    writePerfSidecar("workloads", runner, [&] {
        std::vector<std::string> labels;
        for (const Task &task : tasks)
            labels.push_back(task.label);
        return labels;
    }());
    return 0;
}

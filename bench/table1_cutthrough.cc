/**
 * @file
 * Reproduces Table 1: "Virtual Cut Through in Four Clock Cycles" —
 * the phase-by-phase schedule of a packet cutting through an idle
 * ComCoBB switch, captured from the byte/phase-accurate microarch
 * model's tracer.  The measured turn-around (start bit in to start
 * bit out) must be exactly four clock cycles.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "microarch/micro_network.hh"

int
main()
{
    using namespace damq;
    using namespace damq::micro;

    bench::banner(
        "Table 1 - Virtual cut-through in four clock cycles",
        "Byte/phase-accurate ComCoBB model; single packet through "
        "an idle switch");

    Tracer tracer;
    MicroNetwork net(&tracer);
    ComCobbChip &a = net.addChip("A");
    ComCobbChip &b = net.addChip("B");
    net.connect(a, 0, b, 0);
    HostEndpoint host_a = net.attachHost(a);
    HostEndpoint host_b = net.attachHost(b);
    net.programCircuit(
        {{&a, kProcessorPort, 0}, {&b, 0, kProcessorPort}}, 5);

    tracer.enable();
    host_a.injector->sendMessage(
        5, std::vector<std::uint8_t>(16, 0x2A));
    net.run(80);

    // Locate the start-bit cycles on both sides of chip A.
    Cycle t_in = ~Cycle{0};
    Cycle t_out = ~Cycle{0};
    for (const TraceEvent &event : tracer.events()) {
        if (t_in == ~Cycle{0} && event.source == "A.host_tx" &&
            event.action.find("start bit") != std::string::npos) {
            t_in = event.cycle;
        }
        if (t_out == ~Cycle{0} && event.source == "A.out0" &&
            event.action.find("start bit generated") !=
                std::string::npos) {
            t_out = event.cycle;
        }
    }

    std::cout << "Phase-by-phase trace of chip A (cycles relative to "
                 "the start bit at T = "
              << t_in << "):\n\n";
    for (const TraceEvent &event : tracer.events()) {
        if (event.cycle < t_in || event.cycle > t_in + 5)
            continue;
        if (event.source.rfind("A.", 0) != 0)
            continue;
        std::cout << "  T+" << (event.cycle - t_in) << " phase "
                  << (event.phase == Phase::P0 ? "0" : "1") << "  "
                  << event.source << ": " << event.action << "\n";
    }

    std::cout << "\nMeasured turn-around: " << (t_out - t_in)
              << " clock cycles (paper Table 1: 4)\n"
              << "Claim check: "
              << (t_out == t_in + 4 ? "PASS" : "FAIL") << "\n";

    // Confirm the packet also arrived intact downstream.
    net.run(200);
    const bool delivered =
        host_b.collector->received().size() == 1 &&
        host_b.collector->received()[0].payload ==
            std::vector<std::uint8_t>(16, 0x2A);
    std::cout << "End-to-end delivery intact: "
              << (delivered ? "PASS" : "FAIL") << "\n";
    return t_out == t_in + 4 && delivered ? 0 : 1;
}

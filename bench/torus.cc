/**
 * @file
 * The Torus workload: the mesh ablation's buffer-organization
 * comparison on an 8x8 2D torus — the same 5-port switches driven
 * through the shared simulation core's TorusTopology instead of
 * MeshTopology.  Wraparound removes the mesh's center/edge load
 * asymmetry, so the FIFO-vs-DAMQ comparison runs under uniform
 * channel load; routing is shortest-way dimension-order.
 *
 * Two sweeps run back to back:
 *
 *  - the historical discarding sweep (single VC), kept byte-stable
 *    against its BENCH_torus.json baseline.  Discarding was the
 *    original workaround for the ring-deadlock problem: minimal DOR
 *    on rings is not deadlock-free under blocking with one VC;
 *  - a blocking sweep with two dateline virtual channels per link,
 *    which removes that workaround.  The deadlock watchdog is armed
 *    throughout and the per-row trip count is reported — zero trips
 *    even at saturation is the point of the exercise.
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_torus.json,
 * BENCH_torus_blocking.json, and PERF_* timing sidecars.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "network/saturation.hh"
#include "network/torus_sim.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

const double kLoads[] = {0.10, 0.25, 0.40};

TorusConfig
torusConfig(BufferType type, const std::string &traffic)
{
    TorusConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.bufferType = type;
    cfg.slotsPerBuffer = 5; // one slot per port's worth
    // The historical sweep: the struct now defaults to blocking
    // with two VCs, so pin the old single-VC discarding protocol
    // to keep this table byte-stable against its baseline.
    cfg.protocol = FlowControl::Discarding;
    cfg.common.vcs = 1;
    cfg.traffic = traffic;
    cfg.common.seed = 99;
    cfg.common.warmupCycles = 2000;
    cfg.common.measureCycles = 10000;
    return cfg;
}

TorusConfig
blockingConfig(BufferType type, const std::string &traffic)
{
    TorusConfig cfg; // blocking + two dateline VCs by default
    cfg.width = 8;
    cfg.height = 8;
    cfg.bufferType = type;
    cfg.slotsPerBuffer = 10; // divisible by 10 queues (5 ports x 2 VCs)
    cfg.traffic = traffic;
    cfg.common.seed = 99;
    cfg.common.warmupCycles = 2000;
    cfg.common.measureCycles = 10000;
    // Arm the deadlock watchdog: a wedged ring would sit motionless
    // for this many cycles and be reported (and counted per row).
    cfg.common.watchdogStallCycles = 1000;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("torus",
                   "Buffer organizations on an 8x8 torus "
                   "multicomputer");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Torus - 8x8 wraparound multicomputer (5-port switches, "
           "shortest-way DOR)",
           "same switches as the mesh ablation, uniform channel "
           "load; latency in network cycles, discarding protocol");

    const std::string kTraffics[] = {"uniform", "hotspot"};

    std::vector<TorusTask> tasks;
    for (const std::string &traffic : kTraffics) {
        for (const BufferType type : kAllBufferTypes) {
            const TorusConfig cfg = torusConfig(type, traffic);
            for (const double load : kLoads)
                tasks.push_back(
                    {detail::concat(bufferTypeName(type), "/",
                                    traffic, "@",
                                    formatFixed(load, 2)),
                     atLoad(cfg, load)});
            tasks.push_back(
                {detail::concat(bufferTypeName(type), "/", traffic,
                                "@saturation"),
                 atLoad(cfg, 1.0)});
        }
    }
    for (TorusTask &task : tasks) {
        applyCommonSimFlags(args, task.config.common, "torus");
        // One slot per (port, VC) queue: keeps the SAMQ/SAFC
        // divisibility rule satisfied under a --vcs override while
        // leaving the default (5 slots, one VC) untouched.
        task.config.slotsPerBuffer = 5 * task.config.common.vcs;
    }
    const std::vector<TorusResult> results =
        runSimSweep(runner, tasks);

    std::size_t next = 0;
    for (const std::string &traffic : kTraffics) {
        TextTable table;
        table.setHeader({"Buffer", "lat@0.10", "lat@0.25",
                         "lat@0.40", "sat. throughput",
                         "discard@sat"});
        double fifo_sat = 0.0;
        double damq_sat = 0.0;
        for (const BufferType type : kAllBufferTypes) {
            table.startRow();
            table.addCell(bufferTypeName(type));
            for (std::size_t l = 0; l < 3; ++l) {
                table.addCell(formatFixed(
                    results[next++].latencyCycles.mean(), 2));
            }
            const TorusResult &sat_row = results[next++];
            table.addCell(
                formatFixed(sat_row.deliveredThroughput, 3));
            table.addCell(formatFixed(sat_row.discardFraction, 3));
            if (type == BufferType::Fifo)
                fifo_sat = sat_row.deliveredThroughput;
            if (type == BufferType::Damq)
                damq_sat = sat_row.deliveredThroughput;
        }
        std::cout << "\n" << traffic << " traffic:\n"
                  << table.render() << "DAMQ/FIFO saturation = "
                  << formatFixed(damq_sat / fifo_sat, 2) << "\n";
    }

    std::cout
        << "\nExpected shape: wraparound halves the mean route "
           "length and evens out channel\nload, so torus latencies "
           "sit below the mesh's at equal load while the DAMQ\n"
           "advantage at saturation persists — flows still mix at "
           "every input buffer, which\nis where multi-queue "
           "buffering earns its area.  Under the discarding "
           "protocol\nthe FIFO rows also discard more at "
           "saturation: head-of-line blocking holds\npackets in "
           "buffers longer, so arrivals find them full more "
           "often.\n";

    {
        BenchJsonFile out("torus");
        JsonWriter &json = out.json();
        // The first task's config carries every CLI override
        // (--workload included), unlike a fresh torusConfig().
        const TorusConfig &base = tasks.front().config;
        json.key("config");
        json.beginObject();
        json.field("width", static_cast<std::uint64_t>(base.width));
        json.field("height",
                   static_cast<std::uint64_t>(base.height));
        json.field("slotsPerBuffer",
                   static_cast<std::uint64_t>(base.slotsPerBuffer));
        json.field("protocol", flowControlName(base.protocol));
        json.field("seed", base.common.seed);
        json.field("warmupCycles",
                   static_cast<std::uint64_t>(base.common.warmupCycles));
        json.field("measureCycles",
                   static_cast<std::uint64_t>(base.common.measureCycles));
        json.endObject();
        writeWorkloadJson(json, base.common.workload,
                          base.trafficClasses, base.burstiness,
                          base.meanBurstCycles);
        json.key("rows");
        json.beginArray();
        std::size_t at = 0;
        for (const std::string &traffic : kTraffics) {
            for (const BufferType type : kAllBufferTypes) {
                json.beginObject();
                json.field("buffer", bufferTypeName(type));
                json.field("traffic", traffic);
                json.key("latencyCycles");
                json.beginArray();
                const std::size_t first = at;
                for (std::size_t l = 0; l < 3; ++l)
                    json.value(results[at++].latencyCycles.mean());
                json.endArray();
                const TorusResult &sat_row = results[at++];
                json.field("saturationThroughput",
                           sat_row.deliveredThroughput);
                json.field("saturationDiscardFraction",
                           sat_row.discardFraction);
                json.key("e2eLatency");
                json.beginArray();
                for (std::size_t p = 0; p < 4; ++p) {
                    const TorusResult &r = results[first + p];
                    json.beginObject();
                    json.field("offeredLoad",
                               p < 3 ? kLoads[p] : 1.0);
                    writeE2eLatencyJson(json, r);
                    json.endObject();
                }
                json.endArray();
                json.endObject();
            }
        }
        json.endArray();
    }
    writePerfSidecar("torus", runner, taskLabels(tasks));

    // --- Blocking + dateline-VC sweep --------------------------------

    banner("Torus - blocking flow control with 2 dateline VCs",
           "same fabric, no discards: dateline virtual channels "
           "make blocking deadlock-free; watchdog armed");

    std::vector<TorusTask> blocking_tasks;
    for (const std::string &traffic : kTraffics) {
        for (const BufferType type : kAllBufferTypes) {
            const TorusConfig cfg = blockingConfig(type, traffic);
            for (const double load : kLoads)
                blocking_tasks.push_back(
                    {detail::concat(bufferTypeName(type), "/",
                                    traffic, "@",
                                    formatFixed(load, 2)),
                     atLoad(cfg, load)});
            blocking_tasks.push_back(
                {detail::concat(bufferTypeName(type), "/", traffic,
                                "@saturation"),
                 atLoad(cfg, 1.0)});
        }
    }
    for (TorusTask &task : blocking_tasks) {
        applyCommonSimFlags(args, task.config.common,
                            "torus_blocking");
        task.config.slotsPerBuffer = 5 * task.config.common.vcs;
    }
    const std::vector<TorusResult> blocking_results =
        runSimSweep(runner, blocking_tasks);

    std::uint64_t watchdog_trips = 0;
    double blocking_ratio = 0.0;
    std::size_t bnext = 0;
    for (const std::string &traffic : kTraffics) {
        TextTable table;
        table.setHeader({"Buffer", "lat@0.10", "lat@0.25",
                         "lat@0.40", "sat. throughput",
                         "watchdog trips"});
        double fifo_sat = 0.0;
        double damq_sat = 0.0;
        for (const BufferType type : kAllBufferTypes) {
            table.startRow();
            table.addCell(bufferTypeName(type));
            std::uint64_t row_trips = 0;
            for (std::size_t l = 0; l < 3; ++l) {
                const TorusResult &row = blocking_results[bnext++];
                table.addCell(
                    formatFixed(row.latencyCycles.mean(), 2));
                row_trips += row.watchdogTrips;
            }
            const TorusResult &sat_row = blocking_results[bnext++];
            row_trips += sat_row.watchdogTrips;
            table.addCell(
                formatFixed(sat_row.deliveredThroughput, 3));
            table.addCell(detail::concat(row_trips));
            watchdog_trips += row_trips;
            if (type == BufferType::Fifo)
                fifo_sat = sat_row.deliveredThroughput;
            if (type == BufferType::Damq)
                damq_sat = sat_row.deliveredThroughput;
        }
        std::cout << "\n" << traffic
                  << " traffic (blocking, 2 VCs):\n"
                  << table.render() << "DAMQ/FIFO saturation = "
                  << formatFixed(damq_sat / fifo_sat, 2) << "\n";
        if (traffic == "uniform")
            blocking_ratio = damq_sat / fifo_sat;
    }
    std::cout << "\ntotal watchdog trips across the blocking sweep: "
              << watchdog_trips << " (expected 0 — the dateline VCs "
              << "keep the rings deadlock-free)\n";

    {
        BenchJsonFile out("torus_blocking");
        JsonWriter &json = out.json();
        const TorusConfig &base = blocking_tasks.front().config;
        json.key("config");
        json.beginObject();
        json.field("width", static_cast<std::uint64_t>(base.width));
        json.field("height",
                   static_cast<std::uint64_t>(base.height));
        json.field("slotsPerBuffer",
                   static_cast<std::uint64_t>(base.slotsPerBuffer));
        json.field("protocol", flowControlName(base.protocol));
        json.field("vcs",
                   static_cast<std::uint64_t>(base.common.vcs));
        json.field("vcPolicy", vcPolicyName(base.common.vcPolicy));
        json.field("watchdogStallCycles",
                   static_cast<std::uint64_t>(
                       base.common.watchdogStallCycles));
        json.field("seed", base.common.seed);
        json.field("warmupCycles",
                   static_cast<std::uint64_t>(base.common.warmupCycles));
        json.field("measureCycles",
                   static_cast<std::uint64_t>(base.common.measureCycles));
        json.endObject();
        writeWorkloadJson(json, base.common.workload,
                          base.trafficClasses, base.burstiness,
                          base.meanBurstCycles);
        json.field("damqOverFifoSaturation", blocking_ratio);
        json.field("watchdogTrips", watchdog_trips);
        json.key("rows");
        json.beginArray();
        std::size_t at = 0;
        for (const std::string &traffic : kTraffics) {
            for (const BufferType type : kAllBufferTypes) {
                json.beginObject();
                json.field("buffer", bufferTypeName(type));
                json.field("traffic", traffic);
                json.key("latencyCycles");
                json.beginArray();
                const std::size_t first = at;
                std::uint64_t row_trips = 0;
                for (std::size_t l = 0; l < 3; ++l) {
                    json.value(
                        blocking_results[at].latencyCycles.mean());
                    row_trips += blocking_results[at].watchdogTrips;
                    ++at;
                }
                json.endArray();
                const TorusResult &sat_row = blocking_results[at++];
                row_trips += sat_row.watchdogTrips;
                json.field("saturationThroughput",
                           sat_row.deliveredThroughput);
                json.field("saturationDiscardFraction",
                           sat_row.discardFraction);
                json.field("watchdogTrips", row_trips);
                json.key("e2eLatency");
                json.beginArray();
                for (std::size_t p = 0; p < 4; ++p) {
                    const TorusResult &r =
                        blocking_results[first + p];
                    json.beginObject();
                    json.field("offeredLoad",
                               p < 3 ? kLoads[p] : 1.0);
                    writeE2eLatencyJson(json, r);
                    json.endObject();
                }
                json.endArray();
                json.endObject();
            }
        }
        json.endArray();
    }
    writePerfSidecar("torus_blocking", runner,
                     taskLabels(blocking_tasks));
    return 0;
}

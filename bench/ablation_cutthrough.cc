/**
 * @file
 * Ablation: virtual cut-through at network scale — undoing the
 * paper's simulation simplification.  Section 4.2 merged the
 * 8-clock transmission and 4-clock routing into synchronized
 * 12-clock slots; this bench runs the clock-granularity simulator
 * where the two are separate, and compares:
 *
 *  - virtual cut-through (what the DAMQ hardware supports, Table 1)
 *  - store-and-forward
 *
 * for FIFO and DAMQ buffers.  Expected: VCT's unloaded latency is
 * hops*R + W = 3*4 + 8 = 20 clocks versus ~32+ for S&F; the
 * advantage shrinks as load grows (a classic Kermani-Kleinrock
 * result) because fewer heads find idle outputs; and DAMQ cuts
 * through more often than FIFO, whose cut-through requires the
 * *entire* buffer to be empty.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "network/cutthrough_sim.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;

CutThroughConfig
pointConfig(BufferType type, SwitchingMode mode, double load)
{
    CutThroughConfig cfg;
    cfg.bufferType = type;
    cfg.mode = mode;
    cfg.offeredLoad = load;
    cfg.common.seed = 414;
    cfg.common.warmupCycles = 10000;
    cfg.common.measureCycles = 60000;
    return cfg;
}

const double kLoads[] = {0.05, 0.30, 0.50, 0.90};

} // namespace

int
main(int argc, char **argv)
{
    using namespace damq::bench;

    ArgParser args("ablation_cutthrough",
                   "Virtual cut-through vs store-and-forward at "
                   "clock granularity");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Ablation - virtual cut-through vs store-and-forward",
           "clock-granularity 64x64 Omega (W=8 transmit, R=4 route "
           "clocks), blocking, 4 slots; latency in clocks, loads as "
           "fraction of link capacity");

    std::vector<CutThroughTask> tasks;
    for (const BufferType type :
         {BufferType::Fifo, BufferType::Damq}) {
        for (const SwitchingMode mode :
             {SwitchingMode::CutThrough,
              SwitchingMode::StoreAndForward}) {
            for (const double load : kLoads) {
                tasks.push_back(
                    {detail::concat(bufferTypeName(type), "/",
                                    switchingModeName(mode), "@",
                                    formatFixed(load, 2)),
                     pointConfig(type, mode, load)});
            }
        }
    }
    for (CutThroughTask &task : tasks)
        applyCommonSimFlags(args, task.config.common,
                            "ablation_cutthrough");
    const std::vector<CutThroughResult> results =
        runSimSweep(runner, tasks);

    TextTable table;
    table.setHeader({"Buffer", "mode", "lat@0.05", "lat@0.30",
                     "lat@0.50", "cut-through %@0.30",
                     "delivered@0.9 offered"});

    std::size_t next = 0;
    for (const BufferType type :
         {BufferType::Fifo, BufferType::Damq}) {
        for (const SwitchingMode mode :
             {SwitchingMode::CutThrough,
              SwitchingMode::StoreAndForward}) {
            const CutThroughResult &low = results[next++];
            const CutThroughResult &mid = results[next++];
            const CutThroughResult &high = results[next++];
            const CutThroughResult &sat = results[next++];

            table.startRow();
            table.addCell(bufferTypeName(type));
            table.addCell(switchingModeName(mode));
            table.addCell(formatFixed(low.latencyClocks.mean(), 1));
            table.addCell(formatFixed(mid.latencyClocks.mean(), 1));
            table.addCell(formatFixed(high.latencyClocks.mean(), 1));
            table.addCell(
                mode == SwitchingMode::CutThrough
                    ? formatFixed(mid.cutThroughFraction * 100, 1)
                    : std::string("-"));
            table.addCell(formatFixed(sat.deliveredLoad, 3));
        }
    }
    std::cout << table.render()
              << "\nReference points: unloaded VCT floor = 3R + W = "
                 "20 clocks; unloaded S&F floor =\n4W = 32 clocks "
                 "(routing overlaps reception).  The synchronized "
                 "model of Tables 4-6\ncharges 36 clocks — close to "
                 "S&F.  Cut-through helps most at light load, and\n"
                 "DAMQ cuts through more often than FIFO because a "
                 "FIFO buffer must be completely\nempty for an "
                 "arriving packet to overtake it.\n";
    return 0;
}

/**
 * @file
 * Data-structure microbenchmarks (google-benchmark): raw cost of
 * buffer push/pop per organization, DAMQ's linked-list traffic,
 * crossbar arbitration, one Omega-network cycle, and a small
 * Markov solve.  These quantify the implementation-complexity
 * trade-offs Section 2 discusses qualitatively.
 *
 * Unless the caller passes its own --benchmark_out, results are
 * also written to BENCH_micro_buffers.json in the working
 * directory (google-benchmark's JSON format), giving the repo a
 * saved machine-readable throughput baseline to compare hot-path
 * changes against.
 */

#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "markov/switch2x2.hh"
#include "network/network_sim.hh"
#include "queueing/buffer_factory.hh"
#include "switchsim/switch_model.hh"

namespace {

using namespace damq;

Packet
makePacket(PacketId id, PortId out)
{
    Packet p;
    p.id = id;
    p.outPort = out;
    p.lengthSlots = 1;
    return p;
}

void
BM_BufferPushPop(benchmark::State &state)
{
    const auto type = static_cast<BufferType>(state.range(0));
    auto buf = makeBuffer(type, 4, 8);
    PacketId id = 0;
    for (auto _ : state) {
        const PortId out = static_cast<PortId>(id % 4);
        if (buf->canAccept(out, 1))
            buf->push(makePacket(id, out));
        if (const Packet *head = buf->peek(out))
            benchmark::DoNotOptimize(buf->pop(head->outPort));
        ++id;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_DamqMultiSlotChurn(benchmark::State &state)
{
    auto buf = makeBuffer(BufferType::Damq, 4, 16);
    PacketId id = 0;
    for (auto _ : state) {
        const PortId out = static_cast<PortId>(id % 4);
        const std::uint32_t len = 1 + id % 4;
        if (buf->canAccept(out, len)) {
            Packet p = makePacket(id, out);
            p.lengthSlots = len;
            buf->push(p);
        }
        if (buf->peek(out))
            benchmark::DoNotOptimize(buf->pop(out));
        ++id;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_Arbitrate(benchmark::State &state)
{
    const auto policy =
        static_cast<ArbitrationPolicy>(state.range(0));
    SwitchModel sw(4, BufferType::Damq, 8, policy);
    Random rng(5);
    // Preload a busy switch.
    for (int i = 0; i < 24; ++i) {
        sw.tryReceive(static_cast<PortId>(rng.below(4)),
                      makePacket(i, static_cast<PortId>(rng.below(4))));
    }
    auto always = [](PortId, QueueKey, const Packet &) { return true; };
    PacketId id = 100;
    for (auto _ : state) {
        const GrantList grants = sw.arbitrate(always);
        const auto popped = sw.popGranted(grants);
        benchmark::DoNotOptimize(popped.data());
        for (const Packet &p : popped) {
            Packet back = p;
            back.id = id++;
            sw.tryReceive(static_cast<PortId>(id % 4), back);
        }
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_NetworkCycle(benchmark::State &state)
{
    const auto type = static_cast<BufferType>(state.range(0));
    NetworkConfig cfg;
    cfg.bufferType = type;
    cfg.offeredLoad = 0.5;
    cfg.common.seed = 9;
    NetworkSimulator sim(cfg);
    for (Cycle c = 0; c < 500; ++c)
        sim.step(); // warm the network
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations() * 64);
    state.SetLabel("items = packets offered per 64-source cycle");
}

void
BM_MarkovSolve(benchmark::State &state)
{
    const auto slots = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const auto result =
            analyzeDiscarding2x2(BufferType::Damq, slots, 0.9);
        benchmark::DoNotOptimize(result.discardProbability);
    }
}

} // namespace

BENCHMARK(BM_BufferPushPop)
    ->Arg(static_cast<int>(BufferType::Fifo))
    ->Arg(static_cast<int>(BufferType::Samq))
    ->Arg(static_cast<int>(BufferType::Safc))
    ->Arg(static_cast<int>(BufferType::Damq))
    ->ArgName("type");
BENCHMARK(BM_DamqMultiSlotChurn);
BENCHMARK(BM_Arbitrate)
    ->Arg(static_cast<int>(ArbitrationPolicy::Dumb))
    ->Arg(static_cast<int>(ArbitrationPolicy::Smart))
    ->ArgName("policy");
BENCHMARK(BM_NetworkCycle)
    ->Arg(static_cast<int>(BufferType::Fifo))
    ->Arg(static_cast<int>(BufferType::Damq))
    ->ArgName("type");
BENCHMARK(BM_MarkovSolve)->Arg(2)->Arg(4)->ArgName("slots");

int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out",
                         std::strlen("--benchmark_out")) == 0)
            has_out = true;
    }
    // Mutable storage: google-benchmark expects argv-style char*.
    std::string out_flag = "--benchmark_out=BENCH_micro_buffers.json";
    std::string format_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(format_flag.data());
    }
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

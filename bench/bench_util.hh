/**
 * @file
 * Shared helpers for the bench harnesses: banner printing and the
 * standard simulation settings used across the table benches.
 */

#ifndef DAMQ_BENCH_BENCH_UTIL_HH
#define DAMQ_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>

#include "network/network_sim.hh"

namespace damq {
namespace bench {

/** Print a section banner. */
inline void
banner(const std::string &title, const std::string &subtitle)
{
    std::cout << "\n==================================================="
                 "=========================\n"
              << title << "\n"
              << subtitle << "\n"
              << "====================================================="
                 "=======================\n";
}

/** The Omega-network settings shared by the Section 4.2 benches. */
inline NetworkConfig
paperNetworkConfig()
{
    NetworkConfig cfg;
    cfg.numPorts = 64;
    cfg.radix = 4;
    cfg.slotsPerBuffer = 4;
    cfg.protocol = FlowControl::Blocking;
    cfg.arbitration = ArbitrationPolicy::Smart;
    cfg.traffic = "uniform";
    cfg.seed = 88;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 12000;
    return cfg;
}

/** All four buffer organizations, in the paper's table order. */
inline const BufferType kAllBufferTypes[4] = {
    BufferType::Fifo, BufferType::Damq, BufferType::Samq,
    BufferType::Safc};

} // namespace bench
} // namespace damq

#endif // DAMQ_BENCH_BENCH_UTIL_HH

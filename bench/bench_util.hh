/**
 * @file
 * Shared helpers for the bench harnesses: banner printing and the
 * standard simulation settings used across the table benches.
 */

#ifndef DAMQ_BENCH_BENCH_UTIL_HH
#define DAMQ_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>

#include "network/network_sim.hh"
#include "runner/table_benches.hh"

namespace damq {
namespace bench {

/** Print a section banner. */
inline void
banner(const std::string &title, const std::string &subtitle)
{
    std::cout << "\n==================================================="
                 "=========================\n"
              << title << "\n"
              << subtitle << "\n"
              << "====================================================="
                 "=======================\n";
}

/** The Omega-network settings shared by the Section 4.2 benches. */
inline NetworkConfig
paperNetworkConfig()
{
    // Defined beside the runner's Table 4 sweep so the bench
    // executables and the runner tests agree on the experiment.
    return paperOmegaConfig();
}

/** All four buffer organizations, in the paper's table order. */
inline const BufferType kAllBufferTypes[4] = {
    BufferType::Fifo, BufferType::Damq, BufferType::Samq,
    BufferType::Safc};

} // namespace bench
} // namespace damq

#endif // DAMQ_BENCH_BENCH_UTIL_HH

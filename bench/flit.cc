/**
 * @file
 * The Flit workload: buffer-organization saturation curves under
 * the flit-level switching modes (wormhole and virtual
 * cut-through) on the two fabrics that exercise them differently:
 *
 *  - an 8x8 blocking torus with two dateline virtual channels —
 *    cyclic channel dependencies, so the dateline escape argument
 *    must hold at flit granularity too (a wedged ring trips the
 *    armed deadlock watchdog);
 *  - a 64-endpoint radix-4 Omega network — acyclic, single-VC,
 *    where the modes differ only in buffer-space usage.
 *
 * Every row runs with the per-cycle flit invariant audit and the
 * deadlock watchdog armed, then drains completely: credits issued
 * must equal credits returned (they telescope per packet per
 * link), every credit counter must be back at its cap, and the
 * watchdog must stay quiet — any violation is fatal, so CI fails
 * loudly if the flit engine's conservation laws break.
 *
 * The partitioned organizations (SAMQ/SAFC) need per-queue space
 * for one whole packet: injection materializes the full packet in
 * the first-hop buffer (the source *is* the host interface), and
 * a VCT head only advances once a packet's worth of downstream
 * slots is secured.  Per-buffer slots are therefore
 * queues x flitsPerPacket — the same pool all four organizations
 * get, shared (DAMQ/FIFO) or statically split (SAMQ/SAFC).
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_flit.json and a PERF_flit.json
 * timing sidecar.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/json_writer.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "network/network_sim.hh"
#include "network/torus_sim.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

const double kLoads[] = {0.25, 0.50, 0.75, 1.00};

/** Cycles a drained run may take to empty after measurement. */
constexpr Cycle kDrainBudget = 100000;

/** One (workload, switching, buffer, load) measurement. */
struct Row
{
    std::string workload;
    BufferType buffer;
    Switching switching;
    double load = 0.0;
    double throughput = 0.0;
    double latencyMean = 0.0;
    double e2eLatencyP50 = 0.0;
    double e2eLatencyP99 = 0.0;
    double e2eLatencyP999 = 0.0;
    std::uint64_t e2eSamples = 0;
    std::uint64_t delivered = 0;
    std::uint64_t watchdogTrips = 0;
    std::uint64_t auditsRun = 0;
    std::uint64_t auditViolations = 0;
    std::uint64_t creditsIssued = 0;
    std::uint64_t creditsReturned = 0;
    bool drained = false;
    bool creditsAtRest = false;
};

/** Shared schedule: audit + watchdog armed on every row. */
void
armSchedule(SimCommonConfig &common)
{
    common.seed = 99;
    common.warmupCycles = 500;
    common.measureCycles = 1500;
    common.auditEveryCycles = 256;
    common.watchdogStallCycles = 1000;
}

TorusConfig
torusConfig(BufferType type, Switching mode, std::uint32_t flits,
            double load)
{
    TorusConfig cfg; // blocking + two dateline VCs by default
    cfg.width = 8;
    cfg.height = 8;
    cfg.bufferType = type;
    cfg.switching = mode;
    cfg.flitsPerPacket = flits;
    // 5 ports x 2 VCs = 10 queues, one packet's worth each.
    cfg.slotsPerBuffer = 10 * flits;
    cfg.offeredLoad = load;
    armSchedule(cfg.common);
    return cfg;
}

NetworkConfig
omegaConfig(BufferType type, Switching mode, std::uint32_t flits,
            double load)
{
    NetworkConfig cfg;
    cfg.numPorts = 64; // 3 stages x 16 radix-4 switches
    cfg.radix = 4;
    cfg.bufferType = type;
    cfg.switching = mode;
    cfg.flitsPerPacket = flits;
    cfg.slotsPerBuffer = 4 * flits; // 4 queues (radix 4, 1 VC)
    cfg.offeredLoad = load;
    armSchedule(cfg.common);
    return cfg;
}

/** Fold one finished run into a Row (drain + conservation laws). */
template <typename Sim, typename Result>
Row
observe(Sim &sim, const Result &r, const std::string &workload,
        BufferType type, Switching mode, double load)
{
    Row row;
    row.workload = workload;
    row.buffer = type;
    row.switching = mode;
    row.load = load;
    row.throughput = r.deliveredThroughput;
    row.latencyMean = r.latencyCycles.mean();
    row.e2eLatencyP50 = r.e2eLatencyP50;
    row.e2eLatencyP99 = r.e2eLatencyP99;
    row.e2eLatencyP999 = r.e2eLatencyP999;
    row.e2eSamples = r.e2eSamples;
    row.delivered = r.window.delivered;
    row.drained = sim.drain(kDrainBudget);
    row.creditsAtRest = sim.syncEngine().flitCreditsAtRest();
    const FaultReport report = sim.faultReport();
    row.watchdogTrips = report.watchdogFired ? 1 : 0;
    row.auditsRun = report.auditsRun;
    row.auditViolations = report.auditViolations;
    row.creditsIssued = report.creditsIssued;
    row.creditsReturned = report.creditsReturned;
    return row;
}

/** NetworkResult spells its latency field differently. */
Row
observeOmega(NetworkSimulator &sim, const NetworkResult &r,
             BufferType type, Switching mode, double load)
{
    Row row;
    row.workload = "omega64";
    row.buffer = type;
    row.switching = mode;
    row.load = load;
    row.throughput = r.deliveredThroughput;
    row.latencyMean = r.latencyClocks.mean();
    row.e2eLatencyP50 = r.e2eLatencyP50;
    row.e2eLatencyP99 = r.e2eLatencyP99;
    row.e2eLatencyP999 = r.e2eLatencyP999;
    row.e2eSamples = r.e2eSamples;
    row.delivered = r.window.delivered;
    row.drained = sim.drain(kDrainBudget);
    row.creditsAtRest = sim.syncEngine().flitCreditsAtRest();
    const FaultReport report = sim.faultReport();
    row.watchdogTrips = report.watchdogFired ? 1 : 0;
    row.auditsRun = report.auditsRun;
    row.auditViolations = report.auditViolations;
    row.creditsIssued = report.creditsIssued;
    row.creditsReturned = report.creditsReturned;
    return row;
}

/** Every conservation law a row must satisfy; fatal if broken. */
void
enforceRow(const Row &row)
{
    const std::string where =
        detail::concat(row.workload, "/", bufferTypeName(row.buffer),
                       "/", switchingName(row.switching), "@",
                       formatFixed(row.load, 2));
    if (row.watchdogTrips != 0)
        damq_fatal(where, ": deadlock watchdog tripped");
    if (row.auditViolations != 0)
        damq_fatal(where, ": ", row.auditViolations,
                   " flit invariant audit violations");
    if (!row.drained)
        damq_fatal(where, ": network failed to drain within ",
                   kDrainBudget, " cycles");
    if (!row.creditsAtRest)
        damq_fatal(where, ": credit counters not at their caps "
                          "after drain");
    if (row.creditsIssued != row.creditsReturned)
        damq_fatal(where, ": credits issued (", row.creditsIssued,
                   ") != credits returned (", row.creditsReturned,
                   ")");
    if (row.creditsIssued == 0)
        damq_fatal(where, ": no credits flowed — flit mode was "
                          "not exercised");
}

void
renderTables(const std::vector<Row> &rows,
             const std::vector<Switching> &modes)
{
    for (const std::string workload : {"torus8x8", "omega64"}) {
        for (const Switching mode : modes) {
            TextTable table;
            table.setHeader({"Buffer", "thr@0.25", "thr@0.50",
                             "thr@0.75", "thr@1.00", "lat@0.50",
                             "credits", "trips"});
            for (const BufferType type : kAllBufferTypes) {
                table.startRow();
                table.addCell(bufferTypeName(type));
                double lat_mid = 0.0;
                std::uint64_t credits = 0;
                std::uint64_t trips = 0;
                for (const Row &row : rows) {
                    if (row.workload != workload ||
                        row.buffer != type || row.switching != mode)
                        continue;
                    table.addCell(formatFixed(row.throughput, 3));
                    if (row.load == 0.50)
                        lat_mid = row.latencyMean;
                    credits += row.creditsIssued;
                    trips += row.watchdogTrips;
                }
                table.addCell(formatFixed(lat_mid, 2));
                table.addCell(detail::concat(credits));
                table.addCell(detail::concat(trips));
            }
            std::cout << "\n" << workload << ", "
                      << switchingName(mode) << ":\n"
                      << table.render();
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("flit",
                   "Buffer organizations under wormhole and "
                   "virtual cut-through switching");
    addCommonSimFlags(args);
    addSwitchingFlags(args, "wormhole+vct (sweeps both)",
                      "blocking");
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    // --switching restricts the sweep to one mode; the default
    // runs both.  --flits-per-packet scales every buffer with it.
    std::vector<Switching> modes = {Switching::Wormhole,
                                    Switching::VirtualCutThrough};
    Switching only = Switching::PacketSync;
    FlowControl protocol = FlowControl::Blocking;
    std::uint32_t flits = 4;
    applySwitchingFlags(args, only, protocol, flits);
    if (only != Switching::PacketSync) {
        if (!flitLevelSwitching(only))
            damq_fatal("this bench runs the flit-level modes; "
                       "--switching wants wormhole or vct");
        modes = {only};
    }

    banner("Flit - wormhole vs virtual cut-through saturation "
           "curves",
           "8x8 blocking 2-VC torus and 64-endpoint Omega; flit "
           "audit + deadlock watchdog armed on every row, credit "
           "conservation checked after a full drain");

    struct Task
    {
        std::string label;
        std::string workload;
        BufferType buffer;
        Switching switching;
        double load;
    };
    std::vector<Task> tasks;
    for (const std::string workload : {"torus8x8", "omega64"}) {
        for (const Switching mode : modes) {
            for (const BufferType type : kAllBufferTypes) {
                for (const double load : kLoads) {
                    tasks.push_back(
                        {detail::concat(workload, "/",
                                        bufferTypeName(type), "/",
                                        switchingName(mode), "@",
                                        formatFixed(load, 2)),
                         workload, type, mode, load});
                }
            }
        }
    }

    // Like runSimSweep: per-task telemetry files get the task's
    // label appended so concurrent tasks never share a file.
    const auto taskPrefix = [&](SimCommonConfig &common,
                                const std::string &label) {
        if (common.telemetry.enabled() &&
            !common.telemetry.outputPrefix.empty()) {
            common.telemetry.outputPrefix +=
                "." + sanitizeFileToken(label);
        }
    };

    const std::vector<Row> rows = runner.map(
        tasks.size(), [&](std::size_t i) {
            const Task &task = tasks[i];
            if (task.workload == "torus8x8") {
                TorusConfig cfg =
                    torusConfig(task.buffer, task.switching, flits,
                                task.load);
                cfg.protocol = protocol;
                applyCommonSimFlags(args, cfg.common, "flit");
                taskPrefix(cfg.common, task.label);
                cfg.common.vcs = 2; // dateline geometry is fixed
                TorusSimulator sim(cfg);
                const TorusResult r = sim.run();
                return observe(sim, r, task.workload, task.buffer,
                               task.switching, task.load);
            }
            NetworkConfig cfg = omegaConfig(task.buffer,
                                            task.switching, flits,
                                            task.load);
            cfg.protocol = protocol;
            applyCommonSimFlags(args, cfg.common, "flit");
            taskPrefix(cfg.common, task.label);
            cfg.common.vcs = 1; // single-VC stage fabric
            NetworkSimulator sim(cfg);
            const NetworkResult r = sim.run();
            return observeOmega(sim, r, task.buffer, task.switching,
                                task.load);
        });

    for (const Row &row : rows)
        enforceRow(row);

    renderTables(rows, modes);

    std::uint64_t issued = 0;
    std::uint64_t returned = 0;
    for (const Row &row : rows) {
        issued += row.creditsIssued;
        returned += row.creditsReturned;
    }
    std::cout << "\nall " << rows.size()
              << " rows drained with credits closed (issued = "
              << "returned = " << issued
              << "); watchdog armed on every row, zero trips\n"
              << "\nExpected shape: wormhole's 1-slot head "
                 "admission keeps throughput up in the shared\n"
                 "organizations (DAMQ/FIFO) when buffers are "
                 "scarce, while VCT's whole-packet\nreservation "
                 "buys it lower blocking spread at the cost of "
                 "admission; the\npartitioned organizations "
                 "(SAMQ/SAFC) pay their static split either "
                 "way.\n";

    {
        BenchJsonFile out("flit");
        JsonWriter &json = out.json();
        json.key("config");
        json.beginObject();
        json.field("torusSide", std::uint64_t{8});
        json.field("torusVcs", std::uint64_t{2});
        json.field("omegaEndpoints", std::uint64_t{64});
        json.field("omegaRadix", std::uint64_t{4});
        json.field("flitsPerPacket",
                   static_cast<std::uint64_t>(flits));
        json.field("protocol", flowControlName(protocol));
        json.field("seed", std::uint64_t{99});
        json.field("warmupCycles", std::uint64_t{500});
        json.field("measureCycles", std::uint64_t{1500});
        json.field("auditEveryCycles", std::uint64_t{256});
        json.field("watchdogStallCycles", std::uint64_t{1000});
        json.endObject();
        // Echo the workload the sweep actually ran (CLI overrides
        // applied), not the compiled-in default.
        SimCommonConfig desc_common;
        applyCommonSimFlags(args, desc_common, "flit");
        writeWorkloadJson(json, desc_common.workload);
        json.field("watchdogTrips", std::uint64_t{0});
        json.field("creditsClosed", true);
        json.key("rows");
        json.beginArray();
        for (const Row &row : rows) {
            json.beginObject();
            json.field("workload", row.workload);
            json.field("buffer", bufferTypeName(row.buffer));
            json.field("switching", switchingName(row.switching));
            json.field("load", row.load);
            json.field("throughput", row.throughput);
            json.field("latencyMean", row.latencyMean);
            writeE2eLatencyJson(json, row);
            json.field("delivered", row.delivered);
            json.field("creditsIssued", row.creditsIssued);
            json.field("creditsReturned", row.creditsReturned);
            json.field("auditsRun", row.auditsRun);
            json.endObject();
        }
        json.endArray();
    }
    writePerfSidecar("flit", runner, [&] {
        std::vector<std::string> labels;
        for (const Task &task : tasks)
            labels.push_back(task.label);
        return labels;
    }());
    return 0;
}

/**
 * @file
 * Ablation: bursty sources.  The paper's abstract sells DAMQ on its
 * "ability to deal with variations in traffic patterns", yet the
 * evaluation uses smooth Bernoulli sources.  This bench replaces
 * them with two-state on/off sources (average rate fixed, burst
 * factor B = peak/average swept from 1 to 3) and watches how each
 * organization's latency and loss degrade.
 *
 * Expectation: static partitions (SAMQ/SAFC) suffer most — a burst
 * aimed at one output overflows its partition while the rest of
 * the buffer sits empty — while DAMQ's shared pool absorbs bursts;
 * FIFO shares storage but clogs on head-of-line blocking.
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_ablation_bursty.json and a
 * PERF_ablation_bursty.json timing sidecar.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

const double kBurstFactors[] = {1.0, 2.0, 3.0};

NetworkConfig
pointConfig(BufferType type, double burstiness, FlowControl protocol)
{
    NetworkConfig cfg = paperNetworkConfig();
    cfg.bufferType = type;
    cfg.protocol = protocol;
    cfg.offeredLoad = 0.30;
    cfg.burstiness = burstiness;
    cfg.meanBurstCycles = 8;
    cfg.common.measureCycles = 16000;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("ablation_bursty",
                   "Buffer organizations under bursty on/off "
                   "sources");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Ablation - bursty sources (on/off, fixed average load)",
           "64x64 Omega, 4 slots, offered 0.30 average; burst "
           "factor B = peak/average");

    std::vector<NetworkTask> tasks;
    for (const FlowControl protocol :
         {FlowControl::Blocking, FlowControl::Discarding}) {
        for (const BufferType type : kAllBufferTypes) {
            for (const double b : kBurstFactors) {
                tasks.push_back(
                    {detail::concat(bufferTypeName(type), "/",
                                    flowControlName(protocol), "@B=",
                                    formatFixed(b, 0)),
                     pointConfig(type, b, protocol)});
            }
        }
    }
    for (NetworkTask &task : tasks)
        applyCommonSimFlags(args, task.config.common,
                            "ablation_bursty");
    const std::vector<NetworkResult> results =
        runNetworkSweep(runner, tasks);

    std::size_t next = 0;
    TextTable latency;
    latency.setHeader({"Buffer", "B=1 latency", "B=2 latency",
                       "B=3 latency", "B=3 worst-source"});
    for (const BufferType type : kAllBufferTypes) {
        latency.startRow();
        latency.addCell(bufferTypeName(type));
        const NetworkResult *last = nullptr;
        for (std::size_t b = 0; b < 3; ++b) {
            last = &results[next++];
            latency.addCell(
                formatFixed(last->latencyClocks.mean(), 1));
        }
        latency.addCell(formatFixed(last->worstSourceLatency, 1));
    }
    std::cout << "\nBlocking protocol, mean latency (clocks):\n"
              << latency.render();

    TextTable loss;
    loss.setHeader({"Buffer", "B=1 %disc", "B=2 %disc",
                    "B=3 %disc"});
    for (const BufferType type : kAllBufferTypes) {
        loss.startRow();
        loss.addCell(bufferTypeName(type));
        for (std::size_t b = 0; b < 3; ++b) {
            loss.addCell(formatFixed(
                results[next++].discardFraction * 100, 2));
        }
    }
    std::cout << "\nDiscarding protocol, % packets discarded:\n"
              << loss.render()
              << "\nReading: burstiness hurts everyone, but the "
                 "statically partitioned buffers\ndegrade fastest "
                 "(a burst overflows one partition while others sit "
                 "idle), and\nDAMQ's dynamically shared pool holds "
                 "its advantage — the 'variations in traffic\n"
                 "patterns' claim of the paper's abstract.\n";

    {
        BenchJsonFile out("ablation_bursty");
        JsonWriter &json = out.json();
        writeNetworkConfigJson(json, tasks.front().config);
        json.key("burstFactors");
        json.beginArray();
        for (const double b : kBurstFactors)
            json.value(b);
        json.endArray();
        json.key("rows");
        json.beginArray();
        std::size_t at = 0;
        for (const FlowControl protocol :
             {FlowControl::Blocking, FlowControl::Discarding}) {
            for (const BufferType type : kAllBufferTypes) {
                for (const double b : kBurstFactors) {
                    const NetworkResult &r = results[at++];
                    json.beginObject();
                    json.field("buffer", bufferTypeName(type));
                    json.field("protocol",
                               flowControlName(protocol));
                    json.field("burstFactor", b);
                    json.field("meanLatencyClocks",
                               r.latencyClocks.mean());
                    json.field("worstSourceLatency",
                               r.worstSourceLatency);
                    json.field("discardFraction",
                               r.discardFraction);
                    writeE2eLatencyJson(json, r);
                    json.endObject();
                }
            }
        }
        json.endArray();
    }
    writePerfSidecar("ablation_bursty", runner, taskLabels(tasks));
    return 0;
}

/**
 * @file
 * Ablation: bursty sources.  The paper's abstract sells DAMQ on its
 * "ability to deal with variations in traffic patterns", yet the
 * evaluation uses smooth Bernoulli sources.  This bench replaces
 * them with two-state on/off sources (average rate fixed, burst
 * factor B = peak/average swept from 1 to 3) and watches how each
 * organization's latency and loss degrade.
 *
 * Expectation: static partitions (SAMQ/SAFC) suffer most — a burst
 * aimed at one output overflows its partition while the rest of
 * the buffer sits empty — while DAMQ's shared pool absorbs bursts;
 * FIFO shares storage but clogs on head-of-line blocking.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "network/network_sim.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

NetworkResult
runPoint(BufferType type, double burstiness, FlowControl protocol)
{
    NetworkConfig cfg = paperNetworkConfig();
    cfg.bufferType = type;
    cfg.protocol = protocol;
    cfg.offeredLoad = 0.30;
    cfg.burstiness = burstiness;
    cfg.meanBurstCycles = 8;
    cfg.measureCycles = 16000;
    return NetworkSimulator(cfg).run();
}

} // namespace

int
main()
{
    banner("Ablation - bursty sources (on/off, fixed average load)",
           "64x64 Omega, 4 slots, offered 0.30 average; burst "
           "factor B = peak/average");

    TextTable latency;
    latency.setHeader({"Buffer", "B=1 latency", "B=2 latency",
                       "B=3 latency", "B=3 worst-source"});
    for (const BufferType type : kAllBufferTypes) {
        latency.startRow();
        latency.addCell(bufferTypeName(type));
        NetworkResult last;
        for (const double b : {1.0, 2.0, 3.0}) {
            last = runPoint(type, b, FlowControl::Blocking);
            latency.addCell(
                formatFixed(last.latencyClocks.mean(), 1));
        }
        latency.addCell(formatFixed(last.worstSourceLatency, 1));
    }
    std::cout << "\nBlocking protocol, mean latency (clocks):\n"
              << latency.render();

    TextTable loss;
    loss.setHeader({"Buffer", "B=1 %disc", "B=2 %disc",
                    "B=3 %disc"});
    for (const BufferType type : kAllBufferTypes) {
        loss.startRow();
        loss.addCell(bufferTypeName(type));
        for (const double b : {1.0, 2.0, 3.0}) {
            const NetworkResult r =
                runPoint(type, b, FlowControl::Discarding);
            loss.addCell(formatFixed(r.discardFraction * 100, 2));
        }
    }
    std::cout << "\nDiscarding protocol, % packets discarded:\n"
              << loss.render()
              << "\nReading: burstiness hurts everyone, but the "
                 "statically partitioned buffers\ndegrade fastest "
                 "(a burst overflows one partition while others sit "
                 "idle), and\nDAMQ's dynamically shared pool holds "
                 "its advantage — the 'variations in traffic\n"
                 "patterns' claim of the paper's abstract.\n";
    return 0;
}

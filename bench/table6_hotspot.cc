/**
 * @file
 * Reproduces Table 6: "Average Latency for Given Throughputs with
 * 5% Hot Spot Traffic".  Five percent of all packets target node 0
 * (Pfister & Norton); the resulting tree saturation caps every
 * buffer organization at the same ~0.24 throughput — buffer type
 * does not matter under hot spots, which is the paper's argument
 * for a separate combining network in machines like the RP3.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "network/saturation.hh"
#include "stats/text_table.hh"

int
main()
{
    using namespace damq;
    using namespace damq::bench;

    banner("Table 6 - 5% hot-spot traffic",
           "64x64 Omega, blocking, smart arbitration, 4 slots; all "
           "organizations tree-saturate near 0.24");

    TextTable table;
    table.setHeader({"Buffer", "12.5%", "20.0%", "saturated",
                     "sat. throughput"});

    double min_sat = 1.0;
    double max_sat = 0.0;
    for (const BufferType type : kAllBufferTypes) {
        NetworkConfig cfg = paperNetworkConfig();
        cfg.bufferType = type;
        cfg.traffic = "hotspot";
        cfg.warmupCycles = 4000; // tree saturation builds slowly
        cfg.measureCycles = 16000;

        table.startRow();
        table.addCell(bufferTypeName(type));
        table.addCell(formatFixed(latencyAtLoad(cfg, 0.125), 2));
        table.addCell(formatFixed(latencyAtLoad(cfg, 0.20), 2));
        const SaturationSummary sat = measureSaturation(cfg);
        table.addCell(formatFixed(sat.saturatedLatencyClocks, 2));
        table.addCell(formatFixed(sat.saturationThroughput, 2));
        min_sat = std::min(min_sat, sat.saturationThroughput);
        max_sat = std::max(max_sat, sat.saturationThroughput);
    }
    std::cout << table.render();

    std::cout
        << "\nPaper reference (Table 6):\n"
           "  buffer  12.5%   20.0%   saturated  sat.thru\n"
           "  FIFO    38.50   42.82    129.62      0.24\n"
           "  SAMQ    39.51   44.53     68.46      0.24\n"
           "  SAFC    39.32   43.87     66.43      0.24\n"
           "  DAMQ    38.41   41.82    168.27      0.24\n";

    std::cout << "\nKey claim (all types saturate together): spread = "
              << formatFixed(max_sat - min_sat, 3)
              << " (expect < ~0.05); asymptotic hot-spot cap is "
                 "1/(64*(0.05+0.95/64)) = 0.241\n";

    // Extension: the authors' own 1992 follow-up reserves one slot
    // per queue so hot-spot traffic cannot monopolize the pool.
    // The tree-saturation cap is a bisection limit, so total
    // saturation cannot move — but in-network latency near the cap
    // can.
    TextTable ext;
    ext.setHeader({"Buffer", "lat@0.20", "saturated",
                   "sat. throughput"});
    for (const BufferType type : {BufferType::Damq,
                                  BufferType::DamqR}) {
        NetworkConfig cfg = paperNetworkConfig();
        cfg.bufferType = type;
        cfg.traffic = "hotspot";
        cfg.warmupCycles = 4000;
        cfg.measureCycles = 16000;
        ext.startRow();
        ext.addCell(bufferTypeName(type));
        ext.addCell(formatFixed(latencyAtLoad(cfg, 0.20), 2));
        const SaturationSummary sat = measureSaturation(cfg);
        ext.addCell(formatFixed(sat.saturatedLatencyClocks, 2));
        ext.addCell(formatFixed(sat.saturationThroughput, 2));
    }
    std::cout << "\nExtension - DAMQ with reserved slots (Tamir & "
                 "Frazier 1992):\n"
              << ext.render();
    return 0;
}

/**
 * @file
 * Reproduces Table 6: "Average Latency for Given Throughputs with
 * 5% Hot Spot Traffic".  Five percent of all packets target node 0
 * (Pfister & Norton); the resulting tree saturation caps every
 * buffer organization at the same ~0.24 throughput — buffer type
 * does not matter under hot spots, which is the paper's argument
 * for a separate combining network in machines like the RP3.
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_table6_hotspot.json and a
 * PERF_table6_hotspot.json timing sidecar.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

NetworkConfig
hotspotConfig(BufferType type)
{
    NetworkConfig cfg = paperNetworkConfig();
    cfg.bufferType = type;
    cfg.traffic = "hotspot";
    cfg.common.warmupCycles = 4000; // tree saturation builds slowly
    cfg.common.measureCycles = 16000;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("table6_hotspot",
                   "Reproduce Table 6 (5% hot-spot traffic and "
                   "tree saturation)");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Table 6 - 5% hot-spot traffic",
           "64x64 Omega, blocking, smart arbitration, 4 slots; all "
           "organizations tree-saturate near 0.24");

    std::vector<NetworkTask> tasks;
    for (const BufferType type : kAllBufferTypes) {
        const NetworkConfig cfg = hotspotConfig(type);
        tasks.push_back({detail::concat(bufferTypeName(type),
                                        "@0.125"),
                         atLoad(cfg, 0.125)});
        tasks.push_back({detail::concat(bufferTypeName(type),
                                        "@0.20"),
                         atLoad(cfg, 0.20)});
        tasks.push_back({detail::concat(bufferTypeName(type),
                                        "@saturation"),
                         atLoad(cfg, 1.0)});
    }
    // Extension: the authors' own 1992 follow-up reserves one slot
    // per queue so hot-spot traffic cannot monopolize the pool.
    // The tree-saturation cap is a bisection limit, so total
    // saturation cannot move — but in-network latency near the cap
    // can.
    const BufferType kExtensionTypes[] = {BufferType::Damq,
                                          BufferType::DamqR};
    for (const BufferType type : kExtensionTypes) {
        const NetworkConfig cfg = hotspotConfig(type);
        tasks.push_back({detail::concat("ext-",
                                        bufferTypeName(type),
                                        "@0.20"),
                         atLoad(cfg, 0.20)});
        tasks.push_back({detail::concat("ext-",
                                        bufferTypeName(type),
                                        "@saturation"),
                         atLoad(cfg, 1.0)});
    }
    for (NetworkTask &task : tasks)
        applyCommonSimFlags(args, task.config.common,
                            "table6_hotspot");
    const std::vector<NetworkResult> results =
        runNetworkSweep(runner, tasks);

    TextTable table;
    table.setHeader({"Buffer", "12.5%", "20.0%", "saturated",
                     "sat. throughput"});

    double min_sat = 1.0;
    double max_sat = 0.0;
    std::size_t next = 0;
    for (const BufferType type : kAllBufferTypes) {
        const NetworkResult &at125 = results[next++];
        const NetworkResult &at20 = results[next++];
        const NetworkResult &sat = results[next++];

        table.startRow();
        table.addCell(bufferTypeName(type));
        table.addCell(formatFixed(at125.latencyClocks.mean(), 2));
        table.addCell(formatFixed(at20.latencyClocks.mean(), 2));
        table.addCell(formatFixed(sat.latencyClocks.mean(), 2));
        table.addCell(formatFixed(sat.deliveredThroughput, 2));
        min_sat = std::min(min_sat, sat.deliveredThroughput);
        max_sat = std::max(max_sat, sat.deliveredThroughput);
    }
    std::cout << table.render();

    std::cout
        << "\nPaper reference (Table 6):\n"
           "  buffer  12.5%   20.0%   saturated  sat.thru\n"
           "  FIFO    38.50   42.82    129.62      0.24\n"
           "  SAMQ    39.51   44.53     68.46      0.24\n"
           "  SAFC    39.32   43.87     66.43      0.24\n"
           "  DAMQ    38.41   41.82    168.27      0.24\n";

    std::cout << "\nKey claim (all types saturate together): spread = "
              << formatFixed(max_sat - min_sat, 3)
              << " (expect < ~0.05); asymptotic hot-spot cap is "
                 "1/(64*(0.05+0.95/64)) = 0.241\n";

    TextTable ext;
    ext.setHeader({"Buffer", "lat@0.20", "saturated",
                   "sat. throughput"});
    for (const BufferType type : kExtensionTypes) {
        const NetworkResult &at20 = results[next++];
        const NetworkResult &sat = results[next++];
        ext.startRow();
        ext.addCell(bufferTypeName(type));
        ext.addCell(formatFixed(at20.latencyClocks.mean(), 2));
        ext.addCell(formatFixed(sat.latencyClocks.mean(), 2));
        ext.addCell(formatFixed(sat.deliveredThroughput, 2));
    }
    std::cout << "\nExtension - DAMQ with reserved slots (Tamir & "
                 "Frazier 1992):\n"
              << ext.render();

    {
        BenchJsonFile out("table6_hotspot");
        JsonWriter &json = out.json();
        writeNetworkConfigJson(json, tasks.front().config);
        json.key("rows");
        json.beginArray();
        std::size_t at = 0;
        for (const BufferType type : kAllBufferTypes) {
            const NetworkResult &at125 = results[at++];
            const NetworkResult &at20 = results[at++];
            const NetworkResult &sat = results[at++];
            json.beginObject();
            json.field("buffer", bufferTypeName(type));
            json.field("latency125", at125.latencyClocks.mean());
            json.field("latency20", at20.latencyClocks.mean());
            json.field("saturatedLatencyClocks",
                       sat.latencyClocks.mean());
            json.field("saturationThroughput",
                       sat.deliveredThroughput);
            json.key("e2eLatency");
            json.beginArray();
            const NetworkResult *points[] = {&at125, &at20, &sat};
            const double loads[] = {0.125, 0.20, 1.0};
            for (std::size_t p = 0; p < 3; ++p) {
                json.beginObject();
                json.field("offeredLoad", loads[p]);
                writeE2eLatencyJson(json, *points[p]);
                json.endObject();
            }
            json.endArray();
            json.endObject();
        }
        json.endArray();
        json.key("extensionRows");
        json.beginArray();
        for (const BufferType type : kExtensionTypes) {
            const NetworkResult &at20 = results[at++];
            const NetworkResult &sat = results[at++];
            json.beginObject();
            json.field("buffer", bufferTypeName(type));
            json.field("latency20", at20.latencyClocks.mean());
            json.field("saturatedLatencyClocks",
                       sat.latencyClocks.mean());
            json.field("saturationThroughput",
                       sat.deliveredThroughput);
            json.key("e2eLatency");
            json.beginArray();
            const NetworkResult *points[] = {&at20, &sat};
            const double loads[] = {0.20, 1.0};
            for (std::size_t p = 0; p < 2; ++p) {
                json.beginObject();
                json.field("offeredLoad", loads[p]);
                writeE2eLatencyJson(json, *points[p]);
                json.endObject();
            }
            json.endArray();
            json.endObject();
        }
        json.endArray();
    }
    writePerfSidecar("table6_hotspot", runner, taskLabels(tasks));
    return 0;
}

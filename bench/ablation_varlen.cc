/**
 * @file
 * Ablation: variable-length packets (Section 5's conjecture).  The
 * paper evaluates only fixed-length packets but argues DAMQ "will
 * outperform its competition by an even wider margin for the more
 * realistic case of variable length packets".  This bench runs the
 * multi-cycle-transfer simulator with 1-slot (fixed) packets and
 * with a uniform 1-4 slot mix, for all four organizations at equal
 * total storage (16 slots, so a static partition still fits one
 * maximum packet), and reports how DAMQ's margin moves.
 *
 * Model notes (kept identical across organizations so the
 * comparison is fair): transfers are store-and-forward with the
 * full packet length reserved downstream at grant time; an L-slot
 * packet holds its link for L network cycles.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "network/varlen_sim.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;

VarLenConfig
makeConfig(BufferType type, const LengthDistribution &lengths,
           double load)
{
    VarLenConfig cfg;
    cfg.numPorts = 64;
    cfg.radix = 4;
    cfg.bufferType = type;
    cfg.slotsPerBuffer = 16; // partitions of 4 fit a max packet
    cfg.arbitration = ArbitrationPolicy::Smart;
    cfg.offeredSlotLoad = load;
    cfg.lengths = lengths;
    cfg.common.seed = 303;
    cfg.common.warmupCycles = 2000;
    cfg.common.measureCycles = 10000;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace damq::bench;

    ArgParser args("ablation_varlen",
                   "DAMQ's margin with variable-length packets "
                   "(Section 5 conjecture)");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Ablation - variable-length packets (Section 5 "
           "conjecture)",
           "64x64 Omega, blocking, 16 slots/buffer, store-and-"
           "forward multi-cycle transfers; loads in slots/endpoint/"
           "cycle");

    const LengthDistribution fixed{{1.0}};
    const LengthDistribution variable{{1.0, 1.0, 1.0, 1.0}};

    // Task order: the 8 saturation points, then the 8 latency
    // points — fixed-length mix first, buffer types in table order.
    std::vector<VarLenTask> tasks;
    for (const double load : {1.0, 0.25}) {
        for (const bool is_fixed : {true, false}) {
            const LengthDistribution &dist =
                is_fixed ? fixed : variable;
            for (const BufferType type : kAllBufferTypes) {
                tasks.push_back(
                    {detail::concat(bufferTypeName(type), "/",
                                    is_fixed ? "fixed" : "varlen",
                                    "@", formatFixed(load, 2)),
                     makeConfig(type, dist, load)});
            }
        }
    }
    for (VarLenTask &task : tasks)
        applyCommonSimFlags(args, task.config.common,
                            "ablation_varlen");
    const std::vector<VarLenResult> results =
        runSimSweep(runner, tasks);

    double sat[2][4] = {};
    double lat[2][4] = {};
    std::size_t next = 0;
    for (int row = 0; row < 2; ++row)
        for (int t = 0; t < 4; ++t)
            sat[row][t] = results[next++].deliveredSlotThroughput;
    for (int row = 0; row < 2; ++row)
        for (int t = 0; t < 4; ++t)
            lat[row][t] = results[next++].latencyClocks.mean();

    TextTable table;
    table.setHeader({"Packet mix", "Buffer", "lat@0.25",
                     "sat. slot throughput", "DAMQ advantage"});

    for (const bool is_fixed : {true, false}) {
        const char *label = is_fixed ? "fixed (1 slot)" : "1-4 slots";
        const int row = is_fixed ? 0 : 1;
        const double damq_sat = sat[row][1]; // kAllBufferTypes[1]
        for (int t = 0; t < 4; ++t) {
            const BufferType type = kAllBufferTypes[t];
            table.startRow();
            table.addCell(label);
            table.addCell(bufferTypeName(type));
            table.addCell(formatFixed(lat[row][t], 1));
            table.addCell(formatFixed(sat[row][t], 3));
            table.addCell(type == BufferType::Damq
                              ? "-"
                              : formatFixed(damq_sat / sat[row][t],
                                            2) +
                                    "x");
        }
    }
    std::cout << table.render();

    std::cout
        << "\nDAMQ saturation margin, fixed -> variable lengths:\n"
        << "  vs FIFO: " << formatFixed(sat[0][1] / sat[0][0], 2)
        << "x -> " << formatFixed(sat[1][1] / sat[1][0], 2) << "x\n"
        << "  vs SAMQ: " << formatFixed(sat[0][1] / sat[0][2], 2)
        << "x -> " << formatFixed(sat[1][1] / sat[1][2], 2) << "x\n"
        << "  vs SAFC: " << formatFixed(sat[0][1] / sat[0][3], 2)
        << "x -> " << formatFixed(sat[1][1] / sat[1][3], 2) << "x\n"
        << "\nReading: DAMQ keeps a large advantage with variable "
           "lengths.  Whether the margin\nwidens (the paper's "
           "conjecture) depends on the competitor: against the "
           "statically\npartitioned buffers the dynamic pool wins "
           "more as packets vary; against FIFO the\nstore-and-"
           "forward transfer model (no cut-through here) absorbs "
           "part of the gain.\n";
    return 0;
}

/**
 * @file
 * Reproduces Table 3: "Discarding switches. Percentage of packets
 * discarded for given input throughput" — a 64x64 Omega network of
 * 4x4 switches under the discarding protocol with uniform traffic
 * and four slots per input buffer.
 *
 * Columns follow the paper: dumb arbitration at offered loads of
 * 0.25 and 0.50 plus an over-capacity point (we use 0.75, where
 * every organization is past saturation), then smart arbitration
 * at 0.50.  "Over capacity" also reports the *output* throughput,
 * which is visibly below the input throughput because of the
 * discards.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::bench;

NetworkResult
runPoint(BufferType type, ArbitrationPolicy arb, double load)
{
    NetworkConfig cfg = paperNetworkConfig();
    cfg.protocol = FlowControl::Discarding;
    cfg.bufferType = type;
    cfg.arbitration = arb;
    cfg.offeredLoad = load;
    cfg.measureCycles = 20000;
    return NetworkSimulator(cfg).run();
}

} // namespace

int
main()
{
    banner("Table 3 - Discarding switches: % packets discarded",
           "64x64 Omega of 4x4 switches, uniform traffic, 4 slots "
           "per input buffer, over-capacity = 0.75 offered");

    TextTable table;
    table.setHeader({"Buffer", "dumb@0.25", "dumb@0.50",
                     "dumb overcap %disc", "overcap out-thruput",
                     "smart@0.50"});

    for (const BufferType type : kAllBufferTypes) {
        const NetworkResult d25 =
            runPoint(type, ArbitrationPolicy::Dumb, 0.25);
        const NetworkResult d50 =
            runPoint(type, ArbitrationPolicy::Dumb, 0.50);
        const NetworkResult over =
            runPoint(type, ArbitrationPolicy::Dumb, 0.75);
        const NetworkResult s50 =
            runPoint(type, ArbitrationPolicy::Smart, 0.50);

        table.startRow();
        table.addCell(bufferTypeName(type));
        table.addCell(formatFixed(d25.discardFraction * 100, 2));
        table.addCell(formatFixed(d50.discardFraction * 100, 2));
        table.addCell(formatFixed(over.discardFraction * 100, 2));
        table.addCell(formatFixed(over.deliveredThroughput, 2));
        table.addCell(formatFixed(s50.discardFraction * 100, 2));
    }
    std::cout << table.render();

    std::cout
        << "\nPaper reference (Table 3):\n"
           "  buffer  dumb@0.25  dumb@0.50  overcap%  overthru  "
           "smart@0.50\n"
           "  FIFO      0.02       3.14      21.72      0.56      "
           "3.17\n"
           "  SAMQ      0.08       8.69      22.44      0.42      "
           "8.63\n"
           "  SAFC      0.07       8.05      20.55      0.44      "
           "8.04\n"
           "  DAMQ      0+         0.22       5.37      0.69      "
           "0.22\n"
        << "\nShape checks: DAMQ discards far less than the rest at "
           "0.50 and over capacity;\nSAMQ/SAFC discard most; dumb "
           "and smart arbitration are nearly identical at 0.50.\n";
    return 0;
}

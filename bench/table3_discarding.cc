/**
 * @file
 * Reproduces Table 3: "Discarding switches. Percentage of packets
 * discarded for given input throughput" — a 64x64 Omega network of
 * 4x4 switches under the discarding protocol with uniform traffic
 * and four slots per input buffer.
 *
 * Columns follow the paper: dumb arbitration at offered loads of
 * 0.25 and 0.50 plus an over-capacity point (we use 0.75, where
 * every organization is past saturation), then smart arbitration
 * at 0.50.  "Over capacity" also reports the *output* throughput,
 * which is visibly below the input throughput because of the
 * discards.
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_table3_discarding.json and a
 * PERF_table3_discarding.json timing sidecar.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"
#include "switchsim/arbiter.hh"

namespace {

using namespace damq;
using namespace damq::bench;

/** One measured cell of the table. */
struct Point
{
    ArbitrationPolicy arbitration;
    double offeredLoad;
};

const Point kPoints[] = {{ArbitrationPolicy::Dumb, 0.25},
                         {ArbitrationPolicy::Dumb, 0.50},
                         {ArbitrationPolicy::Dumb, 0.75},
                         {ArbitrationPolicy::Smart, 0.50}};

NetworkConfig
pointConfig(BufferType type, const Point &point)
{
    NetworkConfig cfg = paperNetworkConfig();
    cfg.protocol = FlowControl::Discarding;
    cfg.bufferType = type;
    cfg.arbitration = point.arbitration;
    cfg.offeredLoad = point.offeredLoad;
    cfg.common.measureCycles = 20000;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("table3_discarding",
                   "Reproduce Table 3 (discarding-protocol "
                   "discard rates)");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Table 3 - Discarding switches: % packets discarded",
           "64x64 Omega of 4x4 switches, uniform traffic, 4 slots "
           "per input buffer, over-capacity = 0.75 offered");

    std::vector<NetworkTask> tasks;
    for (const BufferType type : kAllBufferTypes) {
        for (const Point &point : kPoints) {
            tasks.push_back(
                {detail::concat(bufferTypeName(type), "/",
                                arbitrationPolicyName(
                                    point.arbitration),
                                "@", formatFixed(point.offeredLoad,
                                                 2)),
                 pointConfig(type, point)});
        }
    }
    for (NetworkTask &task : tasks)
        applyCommonSimFlags(args, task.config.common,
                            "table3_discarding");
    const std::vector<NetworkResult> results =
        runNetworkSweep(runner, tasks);

    TextTable table;
    table.setHeader({"Buffer", "dumb@0.25", "dumb@0.50",
                     "dumb overcap %disc", "overcap out-thruput",
                     "smart@0.50"});

    std::size_t next = 0;
    for (const BufferType type : kAllBufferTypes) {
        const NetworkResult &d25 = results[next++];
        const NetworkResult &d50 = results[next++];
        const NetworkResult &over = results[next++];
        const NetworkResult &s50 = results[next++];

        table.startRow();
        table.addCell(bufferTypeName(type));
        table.addCell(formatFixed(d25.discardFraction * 100, 2));
        table.addCell(formatFixed(d50.discardFraction * 100, 2));
        table.addCell(formatFixed(over.discardFraction * 100, 2));
        table.addCell(formatFixed(over.deliveredThroughput, 2));
        table.addCell(formatFixed(s50.discardFraction * 100, 2));
    }
    std::cout << table.render();

    std::cout
        << "\nPaper reference (Table 3):\n"
           "  buffer  dumb@0.25  dumb@0.50  overcap%  overthru  "
           "smart@0.50\n"
           "  FIFO      0.02       3.14      21.72      0.56      "
           "3.17\n"
           "  SAMQ      0.08       8.69      22.44      0.42      "
           "8.63\n"
           "  SAFC      0.07       8.05      20.55      0.44      "
           "8.04\n"
           "  DAMQ      0+         0.22       5.37      0.69      "
           "0.22\n"
        << "\nShape checks: DAMQ discards far less than the rest at "
           "0.50 and over capacity;\nSAMQ/SAFC discard most; dumb "
           "and smart arbitration are nearly identical at 0.50.\n";

    {
        BenchJsonFile out("table3_discarding");
        JsonWriter &json = out.json();
        writeNetworkConfigJson(json, tasks.front().config);
        json.key("rows");
        json.beginArray();
        std::size_t at = 0;
        for (const BufferType type : kAllBufferTypes) {
            json.beginObject();
            json.field("buffer", bufferTypeName(type));
            json.key("points");
            json.beginArray();
            for (const Point &point : kPoints) {
                const NetworkResult &r = results[at++];
                json.beginObject();
                json.field("arbitration",
                           arbitrationPolicyName(point.arbitration));
                json.field("offeredLoad", point.offeredLoad);
                json.field("discardFraction", r.discardFraction);
                json.field("deliveredThroughput",
                           r.deliveredThroughput);
                writeE2eLatencyJson(json, r);
                json.endObject();
            }
            json.endArray();
            json.endObject();
        }
        json.endArray();
    }

    writePerfSidecar("table3_discarding", runner, taskLabels(tasks));
    return 0;
}

/**
 * @file
 * Ablation: dumb vs smart crossbar arbitration across buffer types
 * and loads (blocking protocol).  Section 4.2 reports that the two
 * barely differ below saturation; this bench quantifies that and
 * also probes the region near saturation where fairness could
 * matter most.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "network/saturation.hh"
#include "stats/text_table.hh"

int
main()
{
    using namespace damq;
    using namespace damq::bench;

    banner("Ablation - dumb vs smart arbitration",
           "64x64 Omega, blocking, uniform traffic, 4 slots");

    TextTable table;
    table.setHeader({"Buffer", "policy", "lat@0.30", "lat@0.45",
                     "fairness@0.45", "worst-src@0.45", "saturated",
                     "sat. throughput"});

    for (const BufferType type : kAllBufferTypes) {
        for (const ArbitrationPolicy policy :
             {ArbitrationPolicy::Dumb, ArbitrationPolicy::Smart}) {
            NetworkConfig cfg = paperNetworkConfig();
            cfg.bufferType = type;
            cfg.arbitration = policy;
            cfg.measureCycles = 8000;

            table.startRow();
            table.addCell(bufferTypeName(type));
            table.addCell(arbitrationPolicyName(policy));
            table.addCell(formatFixed(latencyAtLoad(cfg, 0.30), 1));

            NetworkConfig near = cfg;
            near.offeredLoad = 0.45;
            const NetworkResult at45 = NetworkSimulator(near).run();
            table.addCell(
                formatFixed(at45.latencyClocks.mean(), 1));
            table.addCell(formatFixed(at45.latencyFairness, 3));
            table.addCell(formatFixed(at45.worstSourceLatency, 1));

            const SaturationSummary sat = measureSaturation(cfg);
            table.addCell(formatFixed(sat.saturatedLatencyClocks, 1));
            table.addCell(formatFixed(sat.saturationThroughput, 3));
        }
    }
    std::cout << table.render()
              << "\nExpected shape (paper Section 4.2): dumb and "
                 "smart arbitration perform nearly\nidentically "
                 "below saturation for every buffer type; the "
                 "smart policy's stale counts\nand held priority "
                 "show up (mildly) in the fairness columns, not in "
                 "throughput.\n";
    return 0;
}

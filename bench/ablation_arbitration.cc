/**
 * @file
 * Ablation: dumb vs smart crossbar arbitration across buffer types
 * and loads (blocking protocol).  Section 4.2 reports that the two
 * barely differ below saturation; this bench quantifies that and
 * also probes the region near saturation where fairness could
 * matter most.
 *
 * Runs on the SweepRunner (`--threads=N`); results are identical
 * at any thread count.  Emits BENCH_ablation_arbitration.json and
 * a PERF_ablation_arbitration.json timing sidecar.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/string_util.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"
#include "switchsim/arbiter.hh"

int
main(int argc, char **argv)
{
    using namespace damq;
    using namespace damq::bench;

    ArgParser args("ablation_arbitration",
                   "Compare dumb and smart arbitration across "
                   "buffer organizations");
    addCommonSimFlags(args);
    args.parse(argc, argv);
    SweepRunner runner(simThreads(args));

    banner("Ablation - dumb vs smart arbitration",
           "64x64 Omega, blocking, uniform traffic, 4 slots");

    const ArbitrationPolicy kPolicies[] = {ArbitrationPolicy::Dumb,
                                           ArbitrationPolicy::Smart};

    std::vector<NetworkTask> tasks;
    for (const BufferType type : kAllBufferTypes) {
        for (const ArbitrationPolicy policy : kPolicies) {
            NetworkConfig cfg = paperNetworkConfig();
            cfg.bufferType = type;
            cfg.arbitration = policy;
            cfg.common.measureCycles = 8000;
            const std::string stem = detail::concat(
                bufferTypeName(type), "/",
                arbitrationPolicyName(policy));
            tasks.push_back(
                {detail::concat(stem, "@0.30"), atLoad(cfg, 0.30)});
            tasks.push_back(
                {detail::concat(stem, "@0.45"), atLoad(cfg, 0.45)});
            tasks.push_back({detail::concat(stem, "@saturation"),
                             atLoad(cfg, 1.0)});
        }
    }
    for (NetworkTask &task : tasks)
        applyCommonSimFlags(args, task.config.common,
                            "ablation_arbitration");
    const std::vector<NetworkResult> results =
        runNetworkSweep(runner, tasks);

    TextTable table;
    table.setHeader({"Buffer", "policy", "lat@0.30", "lat@0.45",
                     "fairness@0.45", "worst-src@0.45", "saturated",
                     "sat. throughput"});

    std::size_t next = 0;
    for (const BufferType type : kAllBufferTypes) {
        for (const ArbitrationPolicy policy : kPolicies) {
            const NetworkResult &at30 = results[next++];
            const NetworkResult &at45 = results[next++];
            const NetworkResult &sat = results[next++];

            table.startRow();
            table.addCell(bufferTypeName(type));
            table.addCell(arbitrationPolicyName(policy));
            table.addCell(
                formatFixed(at30.latencyClocks.mean(), 1));
            table.addCell(
                formatFixed(at45.latencyClocks.mean(), 1));
            table.addCell(formatFixed(at45.latencyFairness, 3));
            table.addCell(
                formatFixed(at45.worstSourceLatency, 1));
            table.addCell(
                formatFixed(sat.latencyClocks.mean(), 1));
            table.addCell(
                formatFixed(sat.deliveredThroughput, 3));
        }
    }
    std::cout << table.render()
              << "\nExpected shape (paper Section 4.2): dumb and "
                 "smart arbitration perform nearly\nidentically "
                 "below saturation for every buffer type; the "
                 "smart policy's stale counts\nand held priority "
                 "show up (mildly) in the fairness columns, not in "
                 "throughput.\n";

    {
        BenchJsonFile out("ablation_arbitration");
        JsonWriter &json = out.json();
        writeNetworkConfigJson(json, tasks.front().config);
        json.key("rows");
        json.beginArray();
        std::size_t at = 0;
        for (const BufferType type : kAllBufferTypes) {
            for (const ArbitrationPolicy policy : kPolicies) {
                const NetworkResult &at30 = results[at++];
                const NetworkResult &at45 = results[at++];
                const NetworkResult &sat = results[at++];
                json.beginObject();
                json.field("buffer", bufferTypeName(type));
                json.field("arbitration",
                           arbitrationPolicyName(policy));
                json.field("latency30",
                           at30.latencyClocks.mean());
                json.field("latency45",
                           at45.latencyClocks.mean());
                json.field("fairness45", at45.latencyFairness);
                json.field("worstSourceLatency45",
                           at45.worstSourceLatency);
                json.field("saturatedLatencyClocks",
                           sat.latencyClocks.mean());
                json.field("saturationThroughput",
                           sat.deliveredThroughput);
                json.key("e2eLatency");
                json.beginArray();
                const NetworkResult *points[] = {&at30, &at45,
                                                 &sat};
                const double loads[] = {0.30, 0.45, 1.0};
                for (std::size_t p = 0; p < 3; ++p) {
                    json.beginObject();
                    json.field("offeredLoad", loads[p]);
                    writeE2eLatencyJson(json, *points[p]);
                    json.endObject();
                }
                json.endArray();
                json.endObject();
            }
        }
        json.endArray();
    }
    writePerfSidecar("ablation_arbitration", runner,
                     taskLabels(tasks));
    return 0;
}

/**
 * @file
 * Ablation: buffer slot size (Section 3.2.3's design discussion).
 * The ComCoBB picks 8-byte slots as the sweet spot between
 *
 *  - internal fragmentation (big slots waste bytes: a 4-byte
 *    packet in a 32-byte slot wastes 28), and
 *  - per-slot register overhead and pointer-manipulation rate
 *    (small slots need a pointer/length/header register set per
 *    slot and more list operations per packet).
 *
 * For a configurable packet-length distribution this bench
 * computes, per candidate slot size: expected wasted bytes per
 * packet, storage efficiency at a fixed 96-byte data array (the
 * paper's 12 x 8 bytes), per-slot register bits, and linked-list
 * operations per 32-byte packet.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "stats/text_table.hh"

namespace {

/** Uniform packet lengths 1..32 bytes (ComCoBB packet range). */
constexpr int kMinPacket = 1;
constexpr int kMaxPacket = 32;
constexpr int kBufferBytes = 96; ///< 12 slots x 8 bytes in the paper

/** Register bits stored per slot: pointer + length + new header. */
int
registerBitsPerSlot(int num_slots)
{
    const int pointer_bits = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(num_slots))));
    const int length_bits = 6; // lengths 1..32
    const int header_bits = 8; // new-header register
    return pointer_bits + length_bits + header_bits;
}

} // namespace

int
main()
{
    using namespace damq;
    using namespace damq::bench;

    banner("Ablation - slot-size trade-off (Section 3.2.3)",
           "uniform 1..32-byte packets; 96-byte data array as in "
           "the ComCoBB (12 x 8B)");

    TextTable table;
    table.setHeader({"Slot bytes", "Slots", "waste B/pkt",
                     "storage eff.", "reg bits total",
                     "list ops / 32B pkt", "pkts held (avg)"});

    for (const int slot_bytes : {2, 4, 8, 16, 32}) {
        const int num_slots = kBufferBytes / slot_bytes;

        double expected_waste = 0.0;
        double expected_slots_per_packet = 0.0;
        for (int len = kMinPacket; len <= kMaxPacket; ++len) {
            const int slots_needed =
                (len + slot_bytes - 1) / slot_bytes;
            expected_waste += slots_needed * slot_bytes - len;
            expected_slots_per_packet += slots_needed;
        }
        const int n = kMaxPacket - kMinPacket + 1;
        expected_waste /= n;
        expected_slots_per_packet /= n;

        const double mean_len = (kMinPacket + kMaxPacket) / 2.0;
        const double efficiency =
            mean_len / (mean_len + expected_waste);
        const int reg_bits =
            registerBitsPerSlot(num_slots) * num_slots;
        const int ops_per_max_packet =
            (kMaxPacket + slot_bytes - 1) / slot_bytes;
        const double packets_held =
            static_cast<double>(num_slots) /
            expected_slots_per_packet;

        table.startRow();
        table.addCell(std::to_string(slot_bytes));
        table.addCell(std::to_string(num_slots));
        table.addCell(formatFixed(expected_waste, 2));
        table.addCell(formatFixed(efficiency, 3));
        table.addCell(std::to_string(reg_bits));
        table.addCell(std::to_string(ops_per_max_packet));
        table.addCell(formatFixed(packets_held, 2));
    }
    std::cout << table.render();

    std::cout
        << "\nReading the table: small slots waste few bytes but "
           "multiply register bits and\nlist operations (2-byte "
           "slots: 16 pointer updates per 32-byte packet); 32-byte\n"
           "slots waste ~13.5 bytes per packet.  8-byte slots — the "
           "paper's choice — keep\nwaste under 4 bytes while "
           "needing only 4 list operations per maximum packet.\n";
    return 0;
}

/**
 * @file
 * Ablation: sustained ComCoBB link bandwidth.  Section 3 claims the
 * DAMQ buffer supports "packet transmission and reception at the
 * rate of one byte per clock cycle" (20 Mbyte/s per 20 MHz port).
 * This bench saturates one chip-to-chip link with back-to-back
 * traffic in the byte/phase-accurate model and reports the
 * steady-state payload rate, separating protocol overhead (start
 * bit, header, length byte) from pipeline bubbles.
 *
 * Per-packet wire occupancy:
 *   first-of-message: start + header + length + D data  (D+3 cycles)
 *   continuation:     start + header + D data           (D+2 cycles)
 * plus any re-arbitration gap between packets, which this bench
 * measures.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "microarch/micro_network.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;
using namespace damq::micro;

struct BandwidthPoint
{
    double payloadBytesPerCycle = 0.0;
    double wireBusyFraction = 0.0;
};

/** Saturate A->B with messages of @p msg_bytes; measure B's intake. */
BandwidthPoint
measure(unsigned msg_bytes, Cycle cycles)
{
    MicroNetwork net;
    ComCobbChip &a = net.addChip("A");
    ComCobbChip &b = net.addChip("B");
    net.connect(a, 0, b, 0);
    HostEndpoint host_a = net.attachHost(a);
    HostEndpoint host_b = net.attachHost(b);
    net.programCircuit(
        {{&a, kProcessorPort, 0}, {&b, 0, kProcessorPort}}, 7);

    // Keep the injector's queue deep enough to never run dry.
    const unsigned messages =
        static_cast<unsigned>(cycles / msg_bytes + 16);
    for (unsigned m = 0; m < messages; ++m) {
        host_a.injector->sendMessage(
            7, std::vector<std::uint8_t>(msg_bytes, 0x55));
    }

    // Warm up, then count delivered payload bytes over a window.
    net.run(200);
    std::size_t bytes_before = 0;
    for (const HostMessage &msg : host_b.collector->received())
        bytes_before += msg.payload.size();

    net.run(cycles);
    std::size_t bytes_after = 0;
    for (const HostMessage &msg : host_b.collector->received())
        bytes_after += msg.payload.size();

    BandwidthPoint point;
    point.payloadBytesPerCycle =
        static_cast<double>(bytes_after - bytes_before) /
        static_cast<double>(cycles);

    // Wire-busy fraction from first principles: every payload byte
    // plus per-packet overhead occupies one cycle.
    const unsigned packets_per_msg = (msg_bytes + 31) / 32;
    const double overhead_per_msg =
        3.0 + 2.0 * (packets_per_msg - 1); // start+hdr+len, start+hdr
    point.wireBusyFraction =
        point.payloadBytesPerCycle *
        (1.0 + overhead_per_msg / msg_bytes);
    return point;
}

} // namespace

int
main()
{
    using namespace damq::bench;

    banner("Ablation - sustained ComCoBB link bandwidth",
           "byte/phase-accurate model; one saturated chip-to-chip "
           "link; payload bytes per clock cycle (1.0 = 20 Mbyte/s)");

    TextTable table;
    table.setHeader({"message bytes", "packets/msg",
                     "payload B/cycle", "wire busy",
                     "protocol-bound payload B/cycle"});

    for (const unsigned msg_bytes : {1u, 8u, 16u, 32u, 64u, 128u,
                                     255u}) {
        const BandwidthPoint point = measure(msg_bytes, 4000);
        const unsigned packets = (msg_bytes + 31) / 32;
        // If the pipeline had no bubbles at all, each message would
        // occupy exactly payload + overhead cycles on the wire.
        const double overhead = 3.0 + 2.0 * (packets - 1);
        const double bound =
            msg_bytes / (msg_bytes + overhead);

        table.startRow();
        table.addCell(std::to_string(msg_bytes));
        table.addCell(std::to_string(packets));
        table.addCell(formatFixed(point.payloadBytesPerCycle, 3));
        table.addCell(formatFixed(point.wireBusyFraction, 3));
        table.addCell(formatFixed(bound, 3));
    }
    std::cout << table.render()
              << "\nReading: long messages approach the paper's "
                 "one-byte-per-cycle claim (a 255-byte\nmessage is "
                 "protocol-bound at 255/272 = 0.94); short packets "
                 "pay the fixed start/\nheader/length overhead plus "
                 "the crossbar re-arbitration gap between packets.\n";
    return 0;
}

/**
 * @file
 * Ablation: buffer *placement* — the design-space walk of Section 2
 * made quantitative.  Three experiments:
 *
 *  1. Markov: output queueing (Karol et al., idealized write
 *     bandwidth) vs the four input-buffered organizations on the
 *     2x2 discarding switch — the bound input buffering chases.
 *
 *  2. Network: saturation throughput of input-FIFO, input-DAMQ,
 *     central pool, and output queueing at equal total storage in
 *     the 64x64 Omega network.
 *
 *  3. Hogging (Fujimoto): a single 4x4 switch where input 0 runs
 *     at 0.95 load toward one output while inputs 1-3 offer light
 *     uniform traffic.  With a central pool the heavy input's
 *     packets fill the shared memory and the light inputs' packets
 *     are discarded; per-input DAMQ buffers isolate them.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/random.hh"
#include "common/string_util.hh"
#include "markov/output_queued2x2.hh"
#include "markov/switch2x2.hh"
#include "network/saturation.hh"
#include "stats/text_table.hh"
#include "switchsim/central_buffer_switch.hh"
#include "switchsim/switch_model.hh"
#include "switchsim/switch_unit.hh"

namespace {

using namespace damq;
using namespace damq::bench;

/** Experiment 3: discard fraction seen by the *light* inputs. */
struct HoggingResult
{
    double lightDiscardFraction = 0.0;
    double heavyDiscardFraction = 0.0;
    double heavyPoolShare = 0.0; ///< central only: avg pool share
};

HoggingResult
runHogging(BufferPlacement placement, std::uint64_t seed)
{
    // One 4x4 discarding switch.  Input 0: load 0.95, all toward
    // output 0.  Inputs 1-3: load 0.2, uniform outputs.  Output 0
    // therefore stays congested and the heavy input's queue grows.
    auto sw = makeSwitchUnit(placement, 4, BufferType::Damq,
                             /*slots_per_input=*/4,
                             ArbitrationPolicy::Smart);
    Random rng(seed);
    std::uint64_t light_offered = 0;
    std::uint64_t light_dropped = 0;
    std::uint64_t heavy_offered = 0;
    std::uint64_t heavy_dropped = 0;
    double heavy_share = 0.0;
    std::uint64_t share_samples = 0;

    auto always = [](PortId, QueueKey, const Packet &) { return true; };
    PacketId id = 0;
    for (int cycle = 0; cycle < 30000; ++cycle) {
        // Output 0 is served only half the time (a slow consumer),
        // keeping pressure on the heavy flow.
        auto can_send = [&](PortId input, QueueKey out,
                            const Packet &pkt) {
            if (out.out == 0 && cycle % 2 == 0)
                return false;
            return always(input, out, pkt);
        };
        sw->transmit(can_send);

        for (PortId input = 0; input < 4; ++input) {
            const bool heavy = input == 0;
            const double load = heavy ? 0.95 : 0.20;
            if (!rng.bernoulli(load))
                continue;
            Packet p;
            p.id = id++;
            p.outPort = heavy
                            ? 0
                            : static_cast<PortId>(rng.below(4));
            p.lengthSlots = 1;
            (heavy ? heavy_offered : light_offered) += 1;
            if (!sw->tryReceive(input, p))
                (heavy ? heavy_dropped : light_dropped) += 1;
        }

        if (auto *central =
                dynamic_cast<CentralBufferSwitch *>(sw.get())) {
            if (central->totalUsedSlots() > 0) {
                heavy_share +=
                    static_cast<double>(
                        central->usedSlotsByInput(0)) /
                    central->totalUsedSlots();
                ++share_samples;
            }
        }
    }

    HoggingResult result;
    result.lightDiscardFraction =
        light_offered ? static_cast<double>(light_dropped) /
                            static_cast<double>(light_offered)
                      : 0.0;
    result.heavyDiscardFraction =
        heavy_offered ? static_cast<double>(heavy_dropped) /
                            static_cast<double>(heavy_offered)
                      : 0.0;
    result.heavyPoolShare =
        share_samples ? heavy_share / share_samples : 0.0;
    return result;
}

} // namespace

int
main()
{
    banner("Ablation - buffer placement (Section 2's design space)",
           "input buffering vs central pool vs output queueing, at "
           "equal total storage");

    // ---------------------------------------------------- experiment 1
    std::cout << "\n[1] 2x2 Markov discard probability (4 slots of "
                 "total storage per input's worth):\n";
    TextTable markov;
    markov.setHeader({"organization", "p=0.75", "p=0.90", "p=0.99"});
    for (const BufferType type : kAllBufferTypes) {
        markov.startRow();
        markov.addCell(std::string("input-") + bufferTypeName(type));
        for (const double p : {0.75, 0.90, 0.99}) {
            markov.addCell(formatProbabilityPaperStyle(
                analyzeDiscarding2x2(type, 4, p).discardProbability));
        }
    }
    markov.startRow();
    markov.addCell("output-queued");
    for (const double p : {0.75, 0.90, 0.99}) {
        markov.addCell(formatProbabilityPaperStyle(
            analyzeOutputQueued2x2(4, p).discardProbability));
    }
    std::cout
        << markov.render()
        << "Ideal-write-bandwidth output queueing beats FIFO and "
           "the static partitions — but\nDAMQ discards *less* than "
           "even that at equal storage: under a discarding\n"
           "protocol, pooled space beats extra write bandwidth.  "
           "(Karol et al.'s output-\nqueueing advantage concerns "
           "delay, not loss.)\n";

    // ---------------------------------------------------- experiment 2
    std::cout << "\n[2] 64x64 Omega saturation throughput (blocking, "
                 "equal storage = 16 slots/switch):\n";
    TextTable net;
    net.setHeader({"organization", "sat. throughput",
                   "saturated latency"});
    struct Row
    {
        const char *label;
        BufferPlacement placement;
        BufferType type;
    };
    const Row rows[] = {
        {"input-FIFO", BufferPlacement::Input, BufferType::Fifo},
        {"input-DAMQ", BufferPlacement::Input, BufferType::Damq},
        {"central pool", BufferPlacement::Central, BufferType::Damq},
        {"output-queued", BufferPlacement::Output, BufferType::Damq},
    };
    for (const Row &row : rows) {
        NetworkConfig cfg = paperNetworkConfig();
        cfg.placement = row.placement;
        cfg.bufferType = row.type;
        cfg.common.measureCycles = 8000;
        const SaturationSummary sat = measureSaturation(cfg);
        net.startRow();
        net.addCell(row.label);
        net.addCell(formatFixed(sat.saturationThroughput, 3));
        net.addCell(formatFixed(sat.saturatedLatencyClocks, 1));
    }
    std::cout << net.render();

    // ---------------------------------------------------- experiment 3
    std::cout << "\n[3] Fujimoto's hogging: one 4x4 discarding "
                 "switch, input 0 at 0.95 load toward a\nslow "
                 "output, inputs 1-3 at 0.20 uniform:\n";
    TextTable hog;
    hog.setHeader({"organization", "light-input discard %",
                   "heavy-input discard %", "heavy pool share"});
    for (const BufferPlacement placement :
         {BufferPlacement::Input, BufferPlacement::Central}) {
        const HoggingResult r = runHogging(placement, 515);
        hog.startRow();
        hog.addCell(placement == BufferPlacement::Input
                        ? "input-DAMQ"
                        : "central pool");
        hog.addCell(formatFixed(r.lightDiscardFraction * 100, 2));
        hog.addCell(formatFixed(r.heavyDiscardFraction * 100, 2));
        hog.addCell(placement == BufferPlacement::Central
                        ? formatFixed(r.heavyPoolShare * 100, 1) + "%"
                        : "-");
    }
    std::cout << hog.render()
              << "The central pool lets the hog's backlog crowd out "
                 "innocent flows (paper Section 2,\nciting Fujimoto); "
                 "per-input DAMQ buffers contain the damage to the "
                 "hog itself.\n";
    return 0;
}

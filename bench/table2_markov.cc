/**
 * @file
 * Reproduces Table 2: "Probability for Discarding - Markov
 * Analysis".  Exact Markov-chain analysis of a single 2x2
 * discarding switch with fixed-length packets and a long clock,
 * for all four buffer organizations, 2-6 slots per input port, and
 * traffic from 25 % to 99 % of link capacity.
 *
 * The paper's claims to check against the output:
 *   - DAMQ discards least at every (slots, traffic) point;
 *   - DAMQ-3 discards no more than FIFO-6;
 *   - SAMQ tracks SAFC closely up to ~80 % traffic;
 *   - at light load with 2 slots, FIFO beats SAMQ/SAFC (shared
 *     pool acts like more storage).
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/string_util.hh"
#include "markov/switch2x2.hh"
#include "stats/text_table.hh"

namespace {

using namespace damq;

const double kTrafficLevels[] = {0.25, 0.50, 0.75, 0.80,
                                 0.85, 0.90, 0.95, 0.99};

void
emitRows(TextTable &table, BufferType type,
         const std::vector<unsigned> &slot_counts)
{
    for (const unsigned slots : slot_counts) {
        table.startRow();
        table.addCell(bufferTypeName(type));
        table.addCell(std::to_string(slots));
        for (const double p : kTrafficLevels) {
            const auto result = analyzeDiscarding2x2(type, slots, p);
            table.addCell(
                formatProbabilityPaperStyle(result.discardProbability));
        }
    }
}

} // namespace

int
main()
{
    using namespace damq::bench;

    banner("Table 2 - Probability for Discarding (Markov analysis)",
           "2x2 discarding switch, fixed-length packets, long clock; "
           "exact stationary solve");

    TextTable table;
    table.setHeader({"Switch", "Space/Iport", "25%", "50%", "75%",
                     "80%", "85%", "90%", "95%", "99%"});
    emitRows(table, BufferType::Fifo, {2, 3, 4, 5, 6});
    emitRows(table, BufferType::Damq, {2, 3, 4, 5, 6});
    emitRows(table, BufferType::Samq, {2, 4, 6});
    emitRows(table, BufferType::Safc, {2, 4, 6});
    std::cout << table.render();

    std::cout
        << "\nPaper reference (Table 2, selected rows):\n"
           "  FIFO-4: 0+ 0+ 0.037 0.077 0.123 0.169 0.211 0.242\n"
           "  DAMQ-4: 0+ 0+ 0+    0.001 0.004 0.012 0.030 0.055\n"
           "  SAMQ-4: 0+ 0.001 0.016 0.025 0.037 0.052 0.071 0.089\n"
           "  SAFC-4: 0+ 0+    0.010 0.016 0.024 0.036 0.052 0.067\n";

    // Key-claim checks.
    bool damq_dominates = true;
    for (const double p : kTrafficLevels) {
        for (const unsigned k : {2u, 4u, 6u}) {
            const double damq =
                analyzeDiscarding2x2(BufferType::Damq, k, p)
                    .discardProbability;
            for (const BufferType other :
                 {BufferType::Fifo, BufferType::Samq,
                  BufferType::Safc}) {
                damq_dominates =
                    damq_dominates &&
                    damq <= analyzeDiscarding2x2(other, k, p)
                                    .discardProbability +
                                1e-12;
            }
        }
    }
    bool damq3_beats_fifo6 = true;
    for (const double p : kTrafficLevels) {
        damq3_beats_fifo6 =
            damq3_beats_fifo6 &&
            analyzeDiscarding2x2(BufferType::Damq, 3, p)
                    .discardProbability <=
                analyzeDiscarding2x2(BufferType::Fifo, 6, p)
                        .discardProbability +
                    5e-3;
    }
    const bool fifo2_beats_samq2_light =
        analyzeDiscarding2x2(BufferType::Fifo, 2, 0.25)
            .discardProbability <
        analyzeDiscarding2x2(BufferType::Samq, 2, 0.25)
            .discardProbability;

    std::cout << "\nClaim checks:\n"
              << "  DAMQ <= all others at equal storage : "
              << (damq_dominates ? "PASS" : "FAIL") << "\n"
              << "  DAMQ-3 <= FIFO-6 at all loads       : "
              << (damq3_beats_fifo6 ? "PASS" : "FAIL") << "\n"
              << "  FIFO-2 < SAMQ-2 at 25% load         : "
              << (fifo2_beats_samq2_light ? "PASS" : "FAIL") << "\n";
    return 0;
}

/**
 * @file
 * Virtual-output-queue buffer: DAMQ storage with hybrid
 * private/shared space.
 *
 * QueueKey already addresses output x VC, so a multi-VC DamqBuffer
 * *is* structurally a VOQ — what booksim's VOQ buffer adds on top
 * of the linked slot pool is the hybrid allocation rule: every
 * queue owns `privateSlots` slots that the shared traffic can
 * never take.  Expressed through the admission layer, the
 * guarantee term is the *private deficit* of the other queues,
 *
 *     sum over q != target of max(0, privateSlots - slots_held(q))
 *
 * i.e. a queue that has not yet filled its private allocation
 * keeps the remainder claimable.  At privateSlots == 1 this is
 * exactly the DAMQR reserved-slot rule (a queue holding any slot
 * has no claim), and for privateSlots >= 1 it subsumes the per-VC
 * escape rule: every empty foreign VC owns at least one empty
 * queue, whose deficit keeps at least one slot free.
 */

#ifndef DAMQ_QUEUEING_VOQ_BUFFER_HH
#define DAMQ_QUEUEING_VOQ_BUFFER_HH

#include "queueing/damq_buffer.hh"

namespace damq {

/** DAMQ-backed virtual-output-queue buffer with private slots. */
class VoqBuffer final : public DamqBuffer
{
  public:
    /** See BufferModel::BufferModel; capacity must cover the
     *  private allocation (numQueues() * private_slots). */
    VoqBuffer(QueueLayout queue_layout, std::uint32_t capacity_slots,
              std::uint32_t private_slots = 1);

    void fillAdmissionState(QueueKey key,
                            AdmissionState &st) const override;

    BufferType type() const override { return BufferType::Voq; }

    /** Slots guaranteed to every queue out of the shared pool. */
    std::uint32_t privateSlotsPerQueue() const { return privateSlots; }

    /**
     * Inner DAMQ structural checks plus the hybrid guarantee: the
     * free list must cover the private deficit of *all* queues, so
     * every queue below its private allocation can still claim it.
     */
    std::vector<std::string> checkInvariants() const override;

  private:
    /** Private deficit of every queue except @p exclude (pass
     *  numQueues() to sum over all). */
    std::uint32_t privateDeficit(std::uint32_t exclude) const;

    std::uint32_t privateSlots;
};

} // namespace damq

#endif // DAMQ_QUEUEING_VOQ_BUFFER_HH

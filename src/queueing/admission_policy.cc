#include "queueing/admission_policy.hh"

#include <algorithm>
#include <cmath>

#include "common/enum_parse.hh"
#include "common/logging.hh"

namespace damq {

namespace {

constexpr EnumName<SharingPolicy> kSharingPolicyNames[] = {
    {SharingPolicy::Static, "static"},
    {SharingPolicy::DynamicThreshold, "dt"},
    {SharingPolicy::DelayDriven, "delay"},
    {SharingPolicy::ClassQos, "qos"},
};

/** Clamp-and-fix alpha to 1024ths; fatal on nonsense input. */
std::uint64_t
alphaToFixed(double alpha)
{
    if (!(alpha > 0.0) || alpha > 1024.0)
        damq_fatal("sharing alpha wants a value in (0, 1024], got ",
                   alpha);
    const std::uint64_t num =
        static_cast<std::uint64_t>(std::lround(alpha * 1024.0));
    return std::max<std::uint64_t>(num, 1);
}

/**
 * Free space of the domain net of the debts the base rule already
 * charged — the pool the dynamic thresholds scale.  Only valid
 * after admissionFeasible() held, which guarantees no underflow.
 */
std::uint64_t
shareableFree(const AdmissionState &st)
{
    return static_cast<std::uint64_t>(st.poolFree) -
           st.reservedCharge - st.guaranteeSlots;
}

} // namespace

const char *
sharingPolicyName(SharingPolicy kind)
{
    switch (kind) {
      case SharingPolicy::Static: return "static";
      case SharingPolicy::DynamicThreshold: return "dt";
      case SharingPolicy::DelayDriven: return "delay";
      case SharingPolicy::ClassQos: return "qos";
    }
    damq_panic("unknown SharingPolicy ", static_cast<int>(kind));
}

std::optional<SharingPolicy>
trySharingPolicyFromString(const std::string &name)
{
    return parseEnumName(std::string_view(name), kSharingPolicyNames);
}

const StaticAdmission &
StaticAdmission::instance()
{
    static const StaticAdmission policy;
    return policy;
}

DynamicThresholdAdmission::DynamicThresholdAdmission(double alpha)
    : alphaNum(alphaToFixed(alpha))
{
}

AdmissionDecision
DynamicThresholdAdmission::admit(const AdmissionState &st,
                                 const AdmissionRequest &rq) const
{
    if (!admissionFeasible(st, rq.lengthSlots))
        return {false, rq.lengthSlots};
    // Accept while the queue's post-admission occupancy stays under
    // alpha times the shareable free space (T = alpha * free, both
    // sides scaled by the 1024 fixed-point denominator).
    const std::uint64_t occupied =
        static_cast<std::uint64_t>(st.queueSlots) + rq.lengthSlots;
    const bool ok = occupied * 1024 <= alphaNum * shareableFree(st);
    return {ok, rq.lengthSlots};
}

DelayDrivenAdmission::DelayDrivenAdmission(double alpha,
                                           Cycle age_scale)
    : alphaNum(alphaToFixed(alpha)),
      ageScale(std::clamp<Cycle>(age_scale, 1, 65536))
{
}

AdmissionDecision
DelayDrivenAdmission::admit(const AdmissionState &st,
                            const AdmissionRequest &rq) const
{
    if (!admissionFeasible(st, rq.lengthSlots))
        return {false, rq.lengthSlots};
    // Dynamic Threshold whose alpha is scaled by (1 + age/ageScale),
    // clamped at 17x so a wedged head cannot overflow the math:
    //   (q + len) * 1024 * ageScale <= alpha * free * (ageScale + age)
    // All factors are bounded (alpha <= 2^20, ageScale <= 2^16,
    // age <= 16 * ageScale <= 2^20, occupancy and free <= 2^20 for
    // any realistic buffer), so the products fit in 64 bits.
    const std::uint64_t occupied =
        std::min<std::uint64_t>(static_cast<std::uint64_t>(
                                    st.queueSlots) + rq.lengthSlots,
                                1u << 20);
    const std::uint64_t free =
        std::min<std::uint64_t>(shareableFree(st), 1u << 20);
    const std::uint64_t age =
        std::min<std::uint64_t>(st.headWaitAge, 16 * ageScale);
    const bool ok = occupied * 1024 * ageScale <=
                    alphaNum * free * (ageScale + age);
    return {ok, rq.lengthSlots};
}

ClassQosAdmission::ClassQosAdmission(std::uint32_t classes)
    : numClasses(classes)
{
    if (classes < 1 || classes > kMaxTrafficClasses)
        damq_fatal("QoS admission wants 1..", kMaxTrafficClasses,
                   " traffic classes, got ", classes);
}

AdmissionDecision
ClassQosAdmission::admit(const AdmissionState &st,
                         const AdmissionRequest &rq) const
{
    if (!admissionFeasible(st, rq.lengthSlots))
        return {false, rq.lengthSlots};
    // Nested caps: class c (0-based, higher = more important) may
    // hold up to (c + 1) / numClasses of the whole buffer.
    const std::uint32_t cls =
        std::min<std::uint32_t>(rq.trafficClass, numClasses - 1);
    const std::uint64_t cap =
        static_cast<std::uint64_t>(st.capacity) * (cls + 1) /
        numClasses;
    const bool ok =
        static_cast<std::uint64_t>(st.classSlots) + rq.lengthSlots <=
        cap;
    return {ok, rq.lengthSlots};
}

std::shared_ptr<const AdmissionPolicy>
makeSharingPolicy(const SharingPolicyConfig &cfg)
{
    switch (cfg.kind) {
      case SharingPolicy::Static:
        return nullptr;
      case SharingPolicy::DynamicThreshold:
        return std::make_shared<DynamicThresholdAdmission>(
            cfg.dtAlpha);
      case SharingPolicy::DelayDriven:
        return std::make_shared<DelayDrivenAdmission>(
            cfg.dtAlpha, cfg.delayAgeScale);
      case SharingPolicy::ClassQos:
        return std::make_shared<ClassQosAdmission>(cfg.qosClasses);
    }
    damq_panic("unknown SharingPolicy ",
               static_cast<int>(cfg.kind));
}

} // namespace damq

/**
 * @file
 * The two statically partitioned buffer organizations: SAMQ and SAFC.
 *
 * Both divide the slot pool into numQueues() fixed partitions, one
 * per queue (output port x VC; one per output port in the paper's
 * single-VC evaluation), and keep a FIFO queue in each.  They differ
 * only in read bandwidth:
 *
 *  - SAMQ (statically allocated multi-queue): one read port, so the
 *    whole buffer emits at most one packet per cycle, through the
 *    switch's single crossbar (Figure 1c of the paper).
 *  - SAFC (statically allocated fully connected): a separate path
 *    from every queue to its output port — n 4-by-1 switches in the
 *    paper's Figure 1b — so every queue can emit simultaneously.
 *
 * Storage is one contiguous pool of slots threaded into per-partition
 * free and FIFO lists through per-slot pointer registers, the same
 * structure DamqBuffer uses — partition q simply owns the fixed index
 * range [q * partitionSlots(), (q + 1) * partitionSlots()), so slots
 * never migrate between queues.  That fixed ownership is the whole
 * difference from the DAMQ: a packet can be rejected while slots
 * assigned to other queues sit empty, which is exactly the waste
 * Tables 2-5 quantify.  (It also means a multi-VC partition *is* its
 * VC's dedicated storage, so no shared-pool escape rule is needed.)
 */

#ifndef DAMQ_QUEUEING_PARTITIONED_BUFFER_HH
#define DAMQ_QUEUEING_PARTITIONED_BUFFER_HH

#include <vector>

#include "queueing/buffer_model.hh"
#include "queueing/slot_pool.hh"

namespace damq {

/** Shared implementation of SAMQ and SAFC. */
class StaticallyPartitionedBuffer : public BufferModel
{
  public:
    /**
     * @param queue_layout   queues (= partitions).
     * @param capacity_slots total slots; must divide evenly by
     *                       numQueues() (the paper's Markov tables
     *                       only list even sizes for this reason).
     */
    StaticallyPartitionedBuffer(QueueLayout queue_layout,
                                std::uint32_t capacity_slots);

    /** Slots statically assigned to each queue. */
    std::uint32_t partitionSlots() const { return perQueueCapacity; }

    std::uint32_t usedSlots() const override
    {
        return capacitySlots() - freeTotal;
    }
    std::uint32_t totalPackets() const override { return packets; }

    void fillAdmissionState(QueueKey key,
                            AdmissionState &st) const override;
    void pushImpl(const Packet &pkt) override;
    const Packet *peek(QueueKey key) const override;
    std::uint32_t queueLength(QueueKey key) const override;
    Packet popImpl(QueueKey key) override;
    FlitEvent flitArrivedImpl(QueueKey key) override;
    FlitEvent flitSentImpl(QueueKey key) override;
    void forEachInQueue(QueueKey key,
                        const PacketVisitor &visit) const override;

    void clear() override;
    std::vector<std::string> checkInvariants() const override;

    /**
     * Fault hook: detach partition 0's head free slot and abandon
     * it, as if its pointer register latched garbage; the slot then
     * belongs to no list and checkInvariants() reports it as leaked.
     * Returns false when partition 0 has no free slot.
     */
    bool faultLeakSlot() override;

  private:
    /**
     * Per-slot register file entry: the pointer register plus the
     * packet metadata, meaningful only in the first slot of a
     * packet (same layout DamqBuffer uses).
     */
    struct Slot
    {
        SlotId next = kNullSlot;
        bool headOfPacket = false;
        Packet packet; ///< valid iff headOfPacket
    };

    /** Thread partition @p q's slot range onto its free list. */
    void threadPartitionFreeList(std::uint32_t q);

    std::uint32_t perQueueCapacity;
    std::vector<Slot> pool;
    std::vector<SlotListRegs> freeLists; ///< one per partition
    std::vector<SlotListRegs> queues;    ///< one FIFO per partition
    std::vector<std::uint32_t> packetsPerQueue;
    std::uint32_t freeTotal = 0;
    std::uint32_t packets = 0;
};

/** Statically allocated multi-queue buffer: one read port. */
class SamqBuffer final : public StaticallyPartitionedBuffer
{
  public:
    using StaticallyPartitionedBuffer::StaticallyPartitionedBuffer;

    BufferType type() const override { return BufferType::Samq; }
};

/**
 * Statically allocated fully connected buffer: every queue can emit
 * in the same cycle.
 */
class SafcBuffer final : public StaticallyPartitionedBuffer
{
  public:
    using StaticallyPartitionedBuffer::StaticallyPartitionedBuffer;

    std::uint32_t maxReadsPerCycle() const override
    {
        return numOutputs();
    }

    BufferType type() const override { return BufferType::Safc; }
};

} // namespace damq

#endif // DAMQ_QUEUEING_PARTITIONED_BUFFER_HH

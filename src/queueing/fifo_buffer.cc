#include "queueing/fifo_buffer.hh"

#include "common/logging.hh"

namespace damq {

FifoBuffer::FifoBuffer(PortId num_outputs, std::uint32_t capacity_slots)
    : BufferModel(num_outputs, capacity_slots)
{
}

bool
FifoBuffer::canAccept(PortId out, std::uint32_t len) const
{
    damq_assert(out < numOutputs(), "canAccept: bad output ", out);
    return used + reservedSlotsTotal() + len <= capacitySlots();
}

void
FifoBuffer::pushImpl(const Packet &pkt)
{
    damq_assert(pkt.outPort < numOutputs(), "push: bad output port");
    damq_assert(used + reservedSlotsTotal() + pkt.lengthSlots <=
                    capacitySlots(),
                "push into a full FIFO buffer");
    queue.push_back(pkt);
    used += pkt.lengthSlots;
}

const Packet *
FifoBuffer::peek(PortId out) const
{
    damq_assert(out < numOutputs(), "peek: bad output ", out);
    if (queue.empty() || queue.front().outPort != out)
        return nullptr;
    return &queue.front();
}

std::uint32_t
FifoBuffer::queueLength(PortId out) const
{
    // The whole buffer is one queue; it only counts toward the
    // output its head-of-line packet is routed to.
    if (!FifoBuffer::peek(out))
        return 0;
    return totalPackets();
}

Packet
FifoBuffer::popImpl(PortId out)
{
    const Packet *head = FifoBuffer::peek(out);
    damq_assert(head != nullptr,
                "pop(", out, ") but head-of-line is elsewhere");
    Packet pkt = *head;
    queue.pop_front();
    used -= pkt.lengthSlots;
    return pkt;
}

void
FifoBuffer::forEachInQueue(PortId out, const PacketVisitor &visit) const
{
    damq_assert(out < numOutputs(), "forEachInQueue: bad output ", out);
    // One shared queue: the packets "queued for out" are the stored
    // packets routed to it, in arrival order.
    for (const Packet &pkt : queue) {
        if (pkt.outPort == out)
            visit(pkt);
    }
}

void
FifoBuffer::clear()
{
    BufferModel::clear();
    queue.clear();
    used = 0;
}

std::vector<std::string>
FifoBuffer::checkInvariants() const
{
    std::vector<std::string> violations;
    std::uint32_t slots = 0;
    for (const auto &pkt : queue) {
        if (!pkt.valid())
            violations.push_back(detail::concat(
                "invalid packet ", pkt.id, " stored in FIFO"));
        if (pkt.outPort >= numOutputs())
            violations.push_back(detail::concat(
                "stored packet has bad output port ", pkt.outPort));
        slots += pkt.lengthSlots;
    }
    if (slots != used)
        violations.push_back(detail::concat(
            "FIFO slot accounting drifted (", slots, " stored, ",
            used, " counted)"));
    if (used + reservedSlotsTotal() > capacitySlots())
        violations.push_back(detail::concat(
            "FIFO over capacity (", used, " used + ",
            reservedSlotsTotal(), " reserved > ", capacitySlots(), ")"));
    return violations;
}

bool
FifoBuffer::faultLeakSlot()
{
    if (used >= capacitySlots())
        return false;
    ++used;
    return true;
}

} // namespace damq

#include "queueing/fifo_buffer.hh"

#include "common/logging.hh"

namespace damq {

FifoBuffer::FifoBuffer(QueueLayout queue_layout,
                       std::uint32_t capacity_slots)
    : BufferModel(queue_layout, capacity_slots),
      lanes(queue_layout.vcs)
{
}

void
FifoBuffer::fillAdmissionState(QueueKey key, AdmissionState &st) const
{
    // Shared pool: the free space is whatever the lanes left, and
    // the escape-slot debt guards the other VCs (rationale with
    // admissionFeasible() in admission_policy.hh).
    st.poolFree = capacitySlots() - used;
    st.reservedCharge = reservedSlotsTotal();
    st.guaranteeSlots = escapeSlotsOwed(key.vc);
    if (admissionPolicy().wantsQueueOccupancy()) {
        // The lane is the queue (one FIFO per VC), so a dynamic
        // threshold throttles the whole lane — the organization has
        // no finer-grained queue to meter.
        std::uint32_t slots = 0;
        for (const Packet &pkt : lanes[key.vc])
            slots += pkt.slotsHeld();
        st.queueSlots = slots;
        st.queueLength =
            static_cast<std::uint32_t>(lanes[key.vc].size());
    }
}

void
FifoBuffer::pushImpl(const Packet &pkt)
{
    damq_assert(layout().contains({pkt.outPort, pkt.vc}),
                "push: bad output port");
    damq_assert(used + reservedSlotsTotal() + pkt.slotsHeld() <=
                    capacitySlots(),
                "push into a full FIFO buffer");
    lanes[pkt.vc].push_back(pkt);
    used += pkt.slotsHeld();
    ++packetsStored;
}

const Packet *
FifoBuffer::peek(QueueKey key) const
{
    damq_assert(layout().contains(key), "peek: bad output ", key.out);
    const std::deque<Packet> &lane = lanes[key.vc];
    if (lane.empty() || lane.front().outPort != key.out)
        return nullptr;
    return &lane.front();
}

std::uint32_t
FifoBuffer::queueLength(QueueKey key) const
{
    // The lane is one queue; it only counts toward the output its
    // head-of-line packet is routed to.
    if (!FifoBuffer::peek(key))
        return 0;
    return static_cast<std::uint32_t>(lanes[key.vc].size());
}

Packet
FifoBuffer::popImpl(QueueKey key)
{
    const Packet *head = FifoBuffer::peek(key);
    damq_assert(head != nullptr,
                "pop(", key.out, ") but head-of-line is elsewhere");
    Packet pkt = *head;
    lanes[key.vc].pop_front();
    used -= pkt.slotsHeld();
    --packetsStored;
    return pkt;
}

BufferModel::FlitEvent
FifoBuffer::flitArrivedImpl(QueueKey key)
{
    damq_assert(layout().contains(key), "flitArrived: bad queue ",
                key.out, ".vc", key.vc);
    std::deque<Packet> &lane = lanes[key.vc];
    // Flits arrive in order on the buffer's one feeding link, so the
    // streaming packet is always the youngest entry of its lane.
    damq_assert(!lane.empty() && lane.back().outPort == key.out,
                "flitArrived(", key.out, ".vc", key.vc,
                ") but the youngest packet is elsewhere");
    Packet &pkt = lane.back();
    damq_assert(pkt.flitsArrived > 0 &&
                    pkt.flitsArrived < pkt.lengthSlots,
                "flit arrival on a fully arrived packet");
    const std::uint32_t before = pkt.slotsHeld();
    ++pkt.flitsArrived;
    const bool grew = pkt.slotsHeld() > before;
    if (grew) {
        damq_assert(used + reservedSlotsTotal() < capacitySlots(),
                    "flit arrival into a full FIFO buffer");
        ++used;
    }
    return {&pkt, grew};
}

BufferModel::FlitEvent
FifoBuffer::flitSentImpl(QueueKey key)
{
    const Packet *head = FifoBuffer::peek(key);
    damq_assert(head != nullptr, "flitSent(", key.out,
                ") but head-of-line is elsewhere");
    Packet &pkt = lanes[key.vc].front();
    damq_assert(pkt.flitsSent < pkt.arrivedFlits(),
                "flitSent without an arrived flit to forward");
    damq_assert(pkt.flitsSent + 1 < pkt.lengthSlots,
                "flitSent would forward the tail (that is the pop)");
    const std::uint32_t before = pkt.slotsHeld();
    ++pkt.flitsSent;
    const bool shrank = pkt.slotsHeld() < before;
    if (shrank)
        --used;
    return {&pkt, shrank};
}

void
FifoBuffer::forEachInQueue(QueueKey key, const PacketVisitor &visit) const
{
    damq_assert(layout().contains(key), "forEachInQueue: bad output ",
                key.out);
    // One shared lane per VC: the packets "queued for out" are the
    // stored packets routed to it, in arrival order.
    for (const Packet &pkt : lanes[key.vc]) {
        if (pkt.outPort == key.out)
            visit(pkt);
    }
}

void
FifoBuffer::clear()
{
    BufferModel::clear();
    for (std::deque<Packet> &lane : lanes)
        lane.clear();
    used = 0;
    packetsStored = 0;
}

std::vector<std::string>
FifoBuffer::checkInvariants() const
{
    std::vector<std::string> violations;
    std::uint32_t slots = 0;
    std::uint32_t packets = 0;
    for (VcId vc = 0; vc < numVcs(); ++vc) {
        for (const auto &pkt : lanes[vc]) {
            if (!pkt.valid())
                violations.push_back(detail::concat(
                    "invalid packet ", pkt.id, " stored in FIFO"));
            if (pkt.outPort >= numOutputs())
                violations.push_back(detail::concat(
                    "stored packet has bad output port ", pkt.outPort));
            if (numVcs() > 1 && pkt.vc != vc)
                violations.push_back(detail::concat(
                    "packet on vc ", pkt.vc, " stored in lane ", vc));
            slots += pkt.slotsHeld();
            ++packets;
        }
        if (numVcs() > 1 &&
            lanes[vc].size() != vcPackets(vc))
            violations.push_back(detail::concat(
                "vc ", vc, " census drifted (", lanes[vc].size(),
                " stored, ", vcPackets(vc), " counted)"));
    }
    if (slots != used)
        violations.push_back(detail::concat(
            "FIFO slot accounting drifted (", slots, " stored, ",
            used, " counted)"));
    if (packets != packetsStored)
        violations.push_back(detail::concat(
            "FIFO packet counter drifted (", packets, " stored, ",
            packetsStored, " counted)"));
    if (used + reservedSlotsTotal() > capacitySlots())
        violations.push_back(detail::concat(
            "FIFO over capacity (", used, " used + ",
            reservedSlotsTotal(), " reserved > ", capacitySlots(), ")"));
    for (std::string &v : auditClassCensus())
        violations.push_back(std::move(v));
    return violations;
}

bool
FifoBuffer::faultLeakSlot()
{
    if (used >= capacitySlots())
        return false;
    ++used;
    return true;
}

} // namespace damq

/**
 * @file
 * FIFO input buffer: the "control" design of the paper's evaluation.
 *
 * A single queue over a shared slot pool.  Adapts well to any
 * traffic mix (all slots serve all destinations) but suffers
 * head-of-line blocking: only the oldest packet is ever a candidate
 * for transmission, so one packet bound for a busy output can idle
 * every other output the buffer has traffic for.
 *
 * With virtual channels the buffer keeps one FIFO lane per VC over
 * the shared pool (head-of-line blocking persists *within* a lane,
 * which is the property the torus comparison measures); with one VC
 * the lane *is* the single queue of the paper.
 */

#ifndef DAMQ_QUEUEING_FIFO_BUFFER_HH
#define DAMQ_QUEUEING_FIFO_BUFFER_HH

#include <deque>
#include <vector>

#include "queueing/buffer_model.hh"

namespace damq {

/** Single-queue (per VC), shared-pool input buffer. */
class FifoBuffer final : public BufferModel
{
  public:
    /** See BufferModel::BufferModel. */
    FifoBuffer(QueueLayout queue_layout, std::uint32_t capacity_slots);

    std::uint32_t usedSlots() const override { return used; }
    std::uint32_t totalPackets() const override { return packetsStored; }

    void fillAdmissionState(QueueKey key,
                            AdmissionState &st) const override;
    void pushImpl(const Packet &pkt) override;
    const Packet *peek(QueueKey key) const override;
    std::uint32_t queueLength(QueueKey key) const override;
    Packet popImpl(QueueKey key) override;
    FlitEvent flitArrivedImpl(QueueKey key) override;
    FlitEvent flitSentImpl(QueueKey key) override;
    void forEachInQueue(QueueKey key,
                        const PacketVisitor &visit) const override;

    BufferType type() const override { return BufferType::Fifo; }

    void clear() override;
    std::vector<std::string> checkInvariants() const override;

    /**
     * Fault hook: bump the occupancy counter without storing a
     * packet, modelling a slot whose bookkeeping latched garbage.
     * checkInvariants() reports the drift.
     */
    bool faultLeakSlot() override;

  private:
    std::vector<std::deque<Packet>> lanes; ///< one FIFO per VC
    std::uint32_t used = 0;
    std::uint32_t packetsStored = 0;
};

} // namespace damq

#endif // DAMQ_QUEUEING_FIFO_BUFFER_HH

/**
 * @file
 * FIFO input buffer: the "control" design of the paper's evaluation.
 *
 * A single queue over a shared slot pool.  Adapts well to any
 * traffic mix (all slots serve all destinations) but suffers
 * head-of-line blocking: only the oldest packet is ever a candidate
 * for transmission, so one packet bound for a busy output can idle
 * every other output the buffer has traffic for.
 */

#ifndef DAMQ_QUEUEING_FIFO_BUFFER_HH
#define DAMQ_QUEUEING_FIFO_BUFFER_HH

#include <deque>

#include "queueing/buffer_model.hh"

namespace damq {

/** Single-queue, shared-pool input buffer. */
class FifoBuffer final : public BufferModel
{
  public:
    /** See BufferModel::BufferModel. */
    FifoBuffer(PortId num_outputs, std::uint32_t capacity_slots);

    std::uint32_t usedSlots() const override { return used; }
    std::uint32_t totalPackets() const override
    {
        return static_cast<std::uint32_t>(queue.size());
    }

    bool canAccept(PortId out, std::uint32_t len) const override;
    void pushImpl(const Packet &pkt) override;
    const Packet *peek(PortId out) const override;
    std::uint32_t queueLength(PortId out) const override;
    Packet popImpl(PortId out) override;
    void forEachInQueue(PortId out,
                        const PacketVisitor &visit) const override;

    BufferType type() const override { return BufferType::Fifo; }

    void clear() override;
    std::vector<std::string> checkInvariants() const override;

    /**
     * Fault hook: bump the occupancy counter without storing a
     * packet, modelling a slot whose bookkeeping latched garbage.
     * checkInvariants() reports the drift.
     */
    bool faultLeakSlot() override;

  private:
    std::deque<Packet> queue;
    std::uint32_t used = 0;
};

} // namespace damq

#endif // DAMQ_QUEUEING_FIFO_BUFFER_HH

/**
 * @file
 * The packet record that flows through the switch-level simulators.
 *
 * At this level of abstraction a packet is pure metadata: the data
 * bytes themselves are only modeled in the byte-accurate microarch
 * library.  A packet occupies @ref lengthSlots buffer slots; the
 * paper's fixed-length evaluation uses one slot per packet, the
 * variable-length ablation uses one to four (matching the 8-byte
 * slots holding 1-32 byte packets in the ComCoBB design).
 */

#ifndef DAMQ_QUEUEING_PACKET_HH
#define DAMQ_QUEUEING_PACKET_HH

#include <cstdint>

#include "common/types.hh"
#include "queueing/queue_key.hh"

namespace damq {

/**
 * Role of a packet within its workload.  Open-loop workloads only
 * ever stamp Data; the request–reply closed loop stamps Request on
 * packets whose delivery schedules a reply and Reply on the answers
 * (see network/core/workload.hh).
 */
enum class PacketKind : std::uint8_t
{
    Data = 0,
    Request = 1,
    Reply = 2,
};

/** Human-readable packet-kind name. */
inline const char *
packetKindName(PacketKind kind)
{
    switch (kind) {
      case PacketKind::Data: return "data";
      case PacketKind::Request: return "request";
      case PacketKind::Reply: return "reply";
    }
    return "?";
}

/** Metadata for one packet traversing the network. */
struct Packet
{
    /** Unique id assigned at generation. */
    PacketId id = kInvalidPacket;

    /** Generating endpoint. */
    NodeId source = kInvalidNode;

    /** Final destination endpoint. */
    NodeId dest = kInvalidNode;

    /**
     * Output port at the switch currently buffering the packet.
     * Assigned by the router when the packet enters each switch.
     */
    PortId outPort = kInvalidPort;

    /**
     * Virtual channel the packet occupies at the current switch,
     * i.e., the VC of the link it arrived on.  Assigned per hop by
     * the VC allocation policy (vc_policy.hh); stays 0 in single-VC
     * configurations, so every pre-VC simulator is unaffected.
     */
    VcId vc = 0;

    /**
     * Input port at the switch currently buffering the packet, or
     * kInvalidPort at the injection source.  The dateline VC policy
     * needs it to tell "continuing along this ring" (keep the VC)
     * from "turning into a new dimension" (restart at VC 0).
     */
    PortId inPort = kInvalidPort;

    /**
     * Up*-down* routing phase under fault-tolerant rerouting: set
     * once the packet has traversed a down-hop of the current
     * link-state orientation, after which it may only continue
     * descending (the invariant that keeps rerouted traffic
     * deadlock-free — see network/core/fault_router.hh).  Stays
     * false, and is never read, outside reroute recovery.  Not part
     * of the sealed header: it is per-epoch transit state, like
     * outPort.
     */
    bool routeDown = false;

    /**
     * QoS traffic class stamped at generation (0 = best effort,
     * higher = more important; < kMaxTrafficClasses).  Read by the
     * class-segregated admission policies.  Deliberately *excluded*
     * from the sealed header so stamping it never perturbs the
     * checksum of single-class runs, and placed in the padding
     * after routeDown so the Packet layout is unchanged.
     */
    std::uint8_t trafficClass = 0;

    /**
     * Workload role stamped at generation (data / request / reply).
     * Read by closed-loop injection processes on delivery; like
     * trafficClass it lives in pre-existing padding and is excluded
     * from the sealed header, so open-loop runs (which always stamp
     * Data) are byte-for-byte unaffected.
     */
    PacketKind kind = PacketKind::Data;

    /** Buffer slots this packet occupies when fully resident (>= 1). */
    std::uint32_t lengthSlots = 1;

    /**
     * Flits of this packet that have arrived at the current buffer.
     * 0 is the packet-synchronized sentinel meaning "all of them":
     * whole-packet transfers never touch this field, so every
     * pre-flit simulator sees slotsHeld() == lengthSlots unchanged.
     * Under wormhole/VCT switching the head flit enqueues with
     * flitsArrived = 1 and each body/tail flit increments it until
     * it reaches lengthSlots.  Per-hop transit state, reset at each
     * switch; excluded from the sealed header.
     */
    std::uint32_t flitsArrived = 0;

    /**
     * Flits already forwarded downstream (or to the sink) from the
     * current buffer.  A cut-through switch may forward flits of a
     * packet whose tail has not yet arrived, so flitsSent can grow
     * while flitsArrived is still below lengthSlots.  Per-hop
     * transit state like flitsArrived.
     */
    std::uint32_t flitsSent = 0;

    /**
     * Buffer slots this record occupies *right now*.  Equal to
     * lengthSlots for fully resident packets (the packet-mode
     * invariant), fewer for a partially arrived or partially
     * forwarded one.  Never 0: a packet holds at least its head
     * slot from head-flit arrival until the pop at tail send, even
     * when every arrived flit has already been forwarded.
     */
    std::uint32_t slotsHeld() const
    {
        const std::uint32_t arrived = arrivedFlits();
        return arrived > flitsSent + 1 ? arrived - flitsSent : 1;
    }

    /** Flits present here, resolving the packet-mode sentinel. */
    std::uint32_t arrivedFlits() const
    {
        return flitsArrived ? flitsArrived : lengthSlots;
    }

    /** Whether every flit of the packet has arrived here. */
    bool fullyArrived() const
    {
        return flitsArrived == 0 || flitsArrived >= lengthSlots;
    }

    /** Network cycle at which the source generated the packet. */
    Cycle generatedAt = 0;

    /** Network cycle at which it entered the first-stage buffer. */
    Cycle injectedAt = 0;

    /** Switches traversed so far. */
    std::uint32_t hops = 0;

    /**
     * Per-source sequence number, assigned consecutively at
     * generation.  Together with @ref source it identifies the
     * packet end-to-end, which the fault subsystem's accounting
     * (injected = delivered + dropped + in-flight) relies on.
     */
    std::uint32_t seq = 0;

    /**
     * Checksum over the end-to-end header fields (id, source, dest,
     * seq, lengthSlots), sealed once at generation by sealHeader().
     * Receivers verify it with headerIntact() so a link fault that
     * flips a header bit is *detected* instead of silently routing
     * the packet to the wrong sink.  Mutable per-hop fields
     * (outPort, inPort, vc, hops, timestamps) are excluded.  32 bits: a
     * fault-rate sweep injects ~10^5 flips per bench run, so a
     * 16-bit seal would collide (and misroute) about once per
     * sweep.
     */
    std::uint32_t headerCheck = 0;

    /** True iff this record refers to a real packet. */
    bool valid() const { return id != kInvalidPacket; }
};

/** Checksum over the immutable header fields of @p pkt. */
inline std::uint32_t
headerChecksum(const Packet &pkt)
{
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(pkt.id);
    mix(pkt.source);
    mix(pkt.dest);
    mix(pkt.seq);
    mix(pkt.lengthSlots);
    return static_cast<std::uint32_t>(h ^ (h >> 32));
}

/** Stamp the header checksum (call once, after filling the header). */
inline void
sealHeader(Packet &pkt)
{
    pkt.headerCheck = headerChecksum(pkt);
}

/**
 * Whether the sealed header survived transit unmodified.  Packets
 * that predate sealing (headerCheck left 0) are only "intact" if
 * their checksum happens to be 0, so simulators seal every packet
 * they generate.
 */
inline bool
headerIntact(const Packet &pkt)
{
    return pkt.headerCheck == headerChecksum(pkt);
}

} // namespace damq

#endif // DAMQ_QUEUEING_PACKET_HH

/**
 * @file
 * The packet record that flows through the switch-level simulators.
 *
 * At this level of abstraction a packet is pure metadata: the data
 * bytes themselves are only modeled in the byte-accurate microarch
 * library.  A packet occupies @ref lengthSlots buffer slots; the
 * paper's fixed-length evaluation uses one slot per packet, the
 * variable-length ablation uses one to four (matching the 8-byte
 * slots holding 1-32 byte packets in the ComCoBB design).
 */

#ifndef DAMQ_QUEUEING_PACKET_HH
#define DAMQ_QUEUEING_PACKET_HH

#include <cstdint>

#include "common/types.hh"

namespace damq {

/** Metadata for one packet traversing the network. */
struct Packet
{
    /** Unique id assigned at generation. */
    PacketId id = kInvalidPacket;

    /** Generating endpoint. */
    NodeId source = kInvalidNode;

    /** Final destination endpoint. */
    NodeId dest = kInvalidNode;

    /**
     * Output port at the switch currently buffering the packet.
     * Assigned by the router when the packet enters each switch.
     */
    PortId outPort = kInvalidPort;

    /** Buffer slots this packet occupies (>= 1). */
    std::uint32_t lengthSlots = 1;

    /** Network cycle at which the source generated the packet. */
    Cycle generatedAt = 0;

    /** Network cycle at which it entered the first-stage buffer. */
    Cycle injectedAt = 0;

    /** Switches traversed so far. */
    std::uint32_t hops = 0;

    /** True iff this record refers to a real packet. */
    bool valid() const { return id != kInvalidPacket; }
};

} // namespace damq

#endif // DAMQ_QUEUEING_PACKET_HH

#include "queueing/damq_buffer.hh"

#include "common/logging.hh"

namespace damq {

DamqBuffer::DamqBuffer(PortId num_outputs, std::uint32_t capacity_slots)
    : BufferModel(num_outputs, capacity_slots),
      pool(capacity_slots),
      queues(num_outputs)
{
    // Thread every slot onto the free list, in index order.
    for (SlotId s = 0; s < capacity_slots; ++s)
        appendTail(freeList, s);
}

bool
DamqBuffer::canAccept(PortId out, std::uint32_t len) const
{
    damq_assert(out < numOutputs(), "canAccept: bad output ", out);
    // Dynamic allocation: any free slot can hold any packet, so the
    // only constraint is total free space net of reservations.
    return freeList.slots >= len + reservedSlotsTotal();
}

void
DamqBuffer::pushImpl(const Packet &pkt)
{
    damq_assert(pkt.outPort < numOutputs(), "push: bad output port");
    damq_assert(pkt.lengthSlots >= 1, "push: zero-length packet");
    damq_assert(freeList.slots >= pkt.lengthSlots + reservedSlotsTotal(),
                "push into a full DAMQ buffer");

    ListRegs &queue = queues[pkt.outPort];
    for (std::uint32_t i = 0; i < pkt.lengthSlots; ++i) {
        const SlotId s = removeHead(freeList);
        pool[s].headOfPacket = (i == 0);
        if (i == 0)
            pool[s].packet = pkt;
        appendTail(queue, s);
    }
    ++queue.packets;
    ++packetCount;
}

const Packet *
DamqBuffer::peek(PortId out) const
{
    damq_assert(out < numOutputs(), "peek: bad output ", out);
    const ListRegs &queue = queues[out];
    if (queue.head == kNullSlot)
        return nullptr;
    const Slot &slot = pool[queue.head];
    damq_assert(slot.headOfPacket,
                "queue head register does not point at a packet head");
    return &slot.packet;
}

std::uint32_t
DamqBuffer::queueLength(PortId out) const
{
    damq_assert(out < numOutputs(), "queueLength: bad output ", out);
    return queues[out].packets;
}

Packet
DamqBuffer::popImpl(PortId out)
{
    const Packet *head = DamqBuffer::peek(out);
    damq_assert(head != nullptr, "pop(", out, ") from empty queue");
    const Packet pkt = *head;

    ListRegs &queue = queues[out];
    for (std::uint32_t i = 0; i < pkt.lengthSlots; ++i) {
        const SlotId s = removeHead(queue);
        damq_assert((i == 0) == pool[s].headOfPacket,
                    "packet slot chain corrupted");
        pool[s].headOfPacket = false;
        appendTail(freeList, s);
    }
    --queue.packets;
    --packetCount;
    return pkt;
}

void
DamqBuffer::clear()
{
    BufferModel::clear();
    freeList = ListRegs{};
    for (auto &queue : queues)
        queue = ListRegs{};
    for (auto &slot : pool)
        slot = Slot{};
    for (SlotId s = 0; s < capacitySlots(); ++s)
        appendTail(freeList, s);
    packetCount = 0;
}

void
DamqBuffer::forEachInQueue(PortId out, const PacketVisitor &visit) const
{
    damq_assert(out < numOutputs(), "forEachInQueue: bad output ", out);
    for (SlotId s = queues[out].head; s != kNullSlot; s = pool[s].next) {
        if (pool[s].headOfPacket)
            visit(pool[s].packet);
    }
}

std::vector<Packet>
DamqBuffer::snapshotQueue(PortId out) const
{
    std::vector<Packet> result;
    result.reserve(queues[out].packets);
    forEachInQueue(out,
                   [&result](const Packet &pkt) { result.push_back(pkt); });
    return result;
}

bool
DamqBuffer::faultLeakSlot()
{
    if (freeList.slots == 0)
        return false;
    removeHead(freeList);
    return true;
}

void
DamqBuffer::testCorruptNextPointer(SlotId s, SlotId next)
{
    damq_assert(s < pool.size(),
                "testCorruptNextPointer: slot out of range");
    pool[s].next = next;
}

std::vector<std::string>
DamqBuffer::checkInvariants() const
{
    std::vector<std::string> violations;
    const auto report = [&violations](auto &&...parts) {
        violations.push_back(detail::concat(parts...));
    };

    std::vector<bool> seen(pool.size(), false);

    // Walk one list defensively: a corrupted pointer register must
    // yield a report, never a crash or an endless loop.  Returns the
    // number of packet heads encountered.
    const auto walk = [&](const ListRegs &list, const std::string &label,
                          bool is_free) {
        std::uint32_t slots = 0;
        std::uint32_t heads = 0;
        std::uint32_t tail_of_packet = 0; ///< body slots still owed
        SlotId prev = kNullSlot;
        for (SlotId s = list.head; s != kNullSlot; s = pool[s].next) {
            if (s >= pool.size()) {
                report(label, ": pointer register out of range (slot ",
                       s, ")");
                return heads;
            }
            if (seen[s]) {
                report(label, ": slot ", s, " linked into two lists");
                return heads;
            }
            seen[s] = true;
            ++slots;
            if (is_free) {
                if (pool[s].headOfPacket)
                    report(label, ": free slot ", s,
                           " still marked as a packet head");
            } else if (pool[s].headOfPacket) {
                if (tail_of_packet != 0)
                    report(label, ": packet slot chain truncated at "
                           "slot ", s, " (", tail_of_packet,
                           " body slots missing)");
                if (pool[s].packet.outPort >= numOutputs())
                    report(label, ": stored packet has bad output "
                           "port ", pool[s].packet.outPort);
                tail_of_packet = pool[s].packet.lengthSlots - 1;
                ++heads;
            } else {
                // Body slot: must be owed to the preceding head —
                // this is what keeps per-output FIFO order intact.
                if (tail_of_packet == 0)
                    report(label, ": slot ", s,
                           " belongs to no packet (FIFO chain "
                           "broken)");
                else
                    --tail_of_packet;
            }
            prev = s;
            if (slots > pool.size()) {
                report(label, ": cycle detected in slot list");
                return heads;
            }
        }
        if (tail_of_packet != 0)
            report(label, ": last packet is missing ", tail_of_packet,
                   " of its body slots");
        if (prev != list.tail)
            report(label,
                   ": tail register does not point at the last slot");
        if (slots != list.slots)
            report(label, ": list slot counter drifted (walked ", slots,
                   ", register holds ", list.slots, ")");
        return heads;
    };

    walk(freeList, "free list", true);
    std::uint32_t total_packets = 0;
    std::uint32_t total_used = 0;
    for (PortId out = 0; out < numOutputs(); ++out) {
        const std::string label = detail::concat("queue ", out);
        const std::uint32_t heads = walk(queues[out], label, false);
        if (heads != queues[out].packets)
            report(label, ": packet counter drifted (walked ", heads,
                   ", register holds ", queues[out].packets, ")");
        total_packets += heads;
        total_used += queues[out].slots;
    }
    for (std::size_t s = 0; s < pool.size(); ++s) {
        if (!seen[s])
            report("slot ", s, " leaked from every list");
    }
    if (total_packets != packetCount)
        report("buffer packet counter drifted (", total_packets,
               " walked, ", packetCount, " counted)");
    if (total_used + freeList.slots != capacitySlots())
        report("slot conservation violated (", total_used, " used + ",
               freeList.slots, " free != ", capacitySlots(),
               " capacity)");
    return violations;
}

} // namespace damq

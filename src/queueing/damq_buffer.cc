#include "queueing/damq_buffer.hh"

#include "common/logging.hh"

namespace damq {

DamqBuffer::DamqBuffer(QueueLayout queue_layout,
                       std::uint32_t capacity_slots)
    : BufferModel(queue_layout, capacity_slots),
      pool(capacity_slots),
      queues(queue_layout.numQueues())
{
    // Thread every slot onto the free list, in index order.
    for (SlotId s = 0; s < capacity_slots; ++s)
        appendTail(freeList, s);
}

void
DamqBuffer::fillAdmissionState(QueueKey key, AdmissionState &st) const
{
    // Dynamic allocation: any free slot can hold any packet, so the
    // domain is the whole free list, guarded by the escape-slot
    // debt (rationale with admissionFeasible() in
    // admission_policy.hh).
    st.poolFree = freeList.slots;
    st.reservedCharge = reservedSlotsTotal();
    st.guaranteeSlots = escapeSlotsOwed(key.vc);
    const ListRegs &queue = queueOf(key);
    st.queueSlots = queue.slots;
    st.queueLength = queue.packets;
}

void
DamqBuffer::pushImpl(const Packet &pkt)
{
    const QueueKey key{pkt.outPort, pkt.vc};
    damq_assert(layout().contains(key), "push: bad output port");
    damq_assert(pkt.lengthSlots >= 1, "push: zero-length packet");
    damq_assert(freeList.slots >= pkt.slotsHeld() + reservedSlotsTotal(),
                "push into a full DAMQ buffer");

    ListRegs &queue = queueOf(key);
    for (std::uint32_t i = 0; i < pkt.slotsHeld(); ++i) {
        const SlotId s = removeHead(freeList);
        pool[s].headOfPacket = (i == 0);
        if (i == 0)
            pool[s].packet = pkt;
        appendTail(queue, s);
    }
    ++queue.packets;
    ++packetCount;
}

const Packet *
DamqBuffer::peek(QueueKey key) const
{
    damq_assert(layout().contains(key), "peek: bad queue ", key.out,
                ".vc", key.vc);
    const ListRegs &queue = queueOf(key);
    if (queue.head == kNullSlot)
        return nullptr;
    const Slot &slot = pool[queue.head];
    damq_assert(slot.headOfPacket,
                "queue head register does not point at a packet head");
    return &slot.packet;
}

std::uint32_t
DamqBuffer::queueLength(QueueKey key) const
{
    damq_assert(layout().contains(key), "queueLength: bad queue ",
                key.out, ".vc", key.vc);
    return queueOf(key).packets;
}

Packet
DamqBuffer::popImpl(QueueKey key)
{
    const Packet *head = DamqBuffer::peek(key);
    damq_assert(head != nullptr, "pop(", key.out, ") from empty queue");
    const Packet pkt = *head;

    ListRegs &queue = queueOf(key);
    for (std::uint32_t i = 0; i < pkt.slotsHeld(); ++i) {
        const SlotId s = removeHead(queue);
        damq_assert((i == 0) == pool[s].headOfPacket,
                    "packet slot chain corrupted");
        pool[s].headOfPacket = false;
        appendTail(freeList, s);
    }
    --queue.packets;
    --packetCount;
    return pkt;
}

BufferModel::FlitEvent
DamqBuffer::flitArrivedImpl(QueueKey key)
{
    damq_assert(layout().contains(key), "flitArrived: bad queue ",
                key.out, ".vc", key.vc);
    ListRegs &queue = queueOf(key);
    damq_assert(queue.head != kNullSlot,
                "flitArrived on an empty queue");
    // The streaming packet is the youngest of its queue; its record
    // lives in the last head slot of the chain.
    SlotId head_slot = kNullSlot;
    for (SlotId s = queue.head; s != kNullSlot; s = pool[s].next) {
        if (pool[s].headOfPacket)
            head_slot = s;
    }
    damq_assert(head_slot != kNullSlot,
                "flitArrived: queue has no packet head");
    Packet &pkt = pool[head_slot].packet;
    damq_assert(pkt.flitsArrived > 0 &&
                    pkt.flitsArrived < pkt.lengthSlots,
                "flit arrival on a fully arrived packet");
    const std::uint32_t before = pkt.slotsHeld();
    ++pkt.flitsArrived;
    const bool grew = pkt.slotsHeld() > before;
    if (grew) {
        damq_assert(freeList.slots > 0,
                    "flit arrival into a full DAMQ buffer");
        const SlotId s = removeHead(freeList);
        pool[s].headOfPacket = false;
        // The queue tail is the youngest packet's last slot, so
        // appending extends exactly this packet's run.
        appendTail(queue, s);
    }
    return {&pkt, grew};
}

BufferModel::FlitEvent
DamqBuffer::flitSentImpl(QueueKey key)
{
    damq_assert(layout().contains(key), "flitSent: bad queue ",
                key.out, ".vc", key.vc);
    ListRegs &queue = queueOf(key);
    damq_assert(queue.head != kNullSlot && pool[queue.head].headOfPacket,
                "flitSent on an empty queue");
    Packet &pkt = pool[queue.head].packet;
    damq_assert(pkt.flitsSent < pkt.arrivedFlits(),
                "flitSent without an arrived flit to forward");
    damq_assert(pkt.flitsSent + 1 < pkt.lengthSlots,
                "flitSent would forward the tail (that is the pop)");
    const std::uint32_t before = pkt.slotsHeld();
    ++pkt.flitsSent;
    const bool shrank = pkt.slotsHeld() < before;
    if (shrank) {
        // Free the packet's first body slot; the head slot keeps the
        // record until the pop at tail send.
        const SlotId victim = removeAfter(queue, queue.head);
        damq_assert(!pool[victim].headOfPacket,
                    "flitSent would free another packet's head slot");
        appendTail(freeList, victim);
    }
    return {&pkt, shrank};
}

void
DamqBuffer::clear()
{
    BufferModel::clear();
    freeList = ListRegs{};
    for (auto &queue : queues)
        queue = ListRegs{};
    for (auto &slot : pool)
        slot = Slot{};
    for (SlotId s = 0; s < capacitySlots(); ++s)
        appendTail(freeList, s);
    packetCount = 0;
}

void
DamqBuffer::forEachInQueue(QueueKey key, const PacketVisitor &visit) const
{
    damq_assert(layout().contains(key), "forEachInQueue: bad queue ",
                key.out, ".vc", key.vc);
    for (SlotId s = queueOf(key).head; s != kNullSlot; s = pool[s].next) {
        if (pool[s].headOfPacket)
            visit(pool[s].packet);
    }
}

std::vector<Packet>
DamqBuffer::snapshotQueue(QueueKey key) const
{
    std::vector<Packet> result;
    result.reserve(queueOf(key).packets);
    forEachInQueue(key,
                   [&result](const Packet &pkt) { result.push_back(pkt); });
    return result;
}

bool
DamqBuffer::faultLeakSlot()
{
    if (freeList.slots == 0)
        return false;
    removeHead(freeList);
    return true;
}

void
DamqBuffer::testCorruptNextPointer(SlotId s, SlotId next)
{
    damq_assert(s < pool.size(),
                "testCorruptNextPointer: slot out of range");
    pool[s].next = next;
}

std::vector<std::string>
DamqBuffer::checkInvariants() const
{
    std::vector<std::string> violations;
    const auto report = [&violations](auto &&...parts) {
        violations.push_back(detail::concat(parts...));
    };

    std::vector<bool> seen(pool.size(), false);

    // Walk one list defensively: a corrupted pointer register must
    // yield a report, never a crash or an endless loop.  Returns the
    // number of packet heads encountered.
    const auto walk = [&](const ListRegs &list, const std::string &label,
                          bool is_free) {
        std::uint32_t slots = 0;
        std::uint32_t heads = 0;
        std::uint32_t tail_of_packet = 0; ///< body slots still owed
        SlotId prev = kNullSlot;
        for (SlotId s = list.head; s != kNullSlot; s = pool[s].next) {
            if (s >= pool.size()) {
                report(label, ": pointer register out of range (slot ",
                       s, ")");
                return heads;
            }
            if (seen[s]) {
                report(label, ": slot ", s, " linked into two lists");
                return heads;
            }
            seen[s] = true;
            ++slots;
            if (is_free) {
                if (pool[s].headOfPacket)
                    report(label, ": free slot ", s,
                           " still marked as a packet head");
            } else if (pool[s].headOfPacket) {
                if (tail_of_packet != 0)
                    report(label, ": packet slot chain truncated at "
                           "slot ", s, " (", tail_of_packet,
                           " body slots missing)");
                if (pool[s].packet.outPort >= numOutputs())
                    report(label, ": stored packet has bad output "
                           "port ", pool[s].packet.outPort);
                tail_of_packet = pool[s].packet.slotsHeld() - 1;
                ++heads;
            } else {
                // Body slot: must be owed to the preceding head —
                // this is what keeps per-queue FIFO order intact.
                if (tail_of_packet == 0)
                    report(label, ": slot ", s,
                           " belongs to no packet (FIFO chain "
                           "broken)");
                else
                    --tail_of_packet;
            }
            prev = s;
            if (slots > pool.size()) {
                report(label, ": cycle detected in slot list");
                return heads;
            }
        }
        if (tail_of_packet != 0)
            report(label, ": last packet is missing ", tail_of_packet,
                   " of its body slots");
        if (prev != list.tail)
            report(label,
                   ": tail register does not point at the last slot");
        if (slots != list.slots)
            report(label, ": list slot counter drifted (walked ", slots,
                   ", register holds ", list.slots, ")");
        return heads;
    };

    walk(freeList, "free list", true);
    std::uint32_t total_packets = 0;
    std::uint32_t total_used = 0;
    std::vector<std::uint32_t> vc_heads(numVcs(), 0);
    for (std::uint32_t q = 0; q < numQueues(); ++q) {
        const std::string label = detail::concat("queue ", q);
        const std::uint32_t heads = walk(queues[q], label, false);
        if (heads != queues[q].packets)
            report(label, ": packet counter drifted (walked ", heads,
                   ", register holds ", queues[q].packets, ")");
        total_packets += heads;
        total_used += queues[q].slots;
        vc_heads[layout().unflatten(q).vc] += heads;
    }
    for (std::size_t s = 0; s < pool.size(); ++s) {
        if (!seen[s])
            report("slot ", s, " leaked from every list");
    }
    if (total_packets != packetCount)
        report("buffer packet counter drifted (", total_packets,
               " walked, ", packetCount, " counted)");
    if (total_used + freeList.slots != capacitySlots())
        report("slot conservation violated (", total_used, " used + ",
               freeList.slots, " free != ", capacitySlots(),
               " capacity)");
    if (numVcs() > 1) {
        // Multi-VC extras, gated so single-VC reports (which the
        // corruption tests count exactly) stay word-for-word stable.
        for (std::uint32_t q = 0; q < numQueues(); ++q) {
            const QueueKey key = layout().unflatten(q);
            const SlotId h = queues[q].head;
            if (h == kNullSlot || h >= pool.size() ||
                !pool[h].headOfPacket)
                continue;
            const Packet &head = pool[h].packet;
            if (QueueKey{head.outPort, head.vc} != key)
                report("queue ", q, ": head packet keyed to queue ",
                       layout().flatten({head.outPort, head.vc}));
        }
        for (VcId vc = 0; vc < numVcs(); ++vc) {
            if (vc_heads[vc] != vcPackets(vc))
                report("vc ", vc, " census drifted (walked ",
                       vc_heads[vc], ", counted ", vcPackets(vc), ")");
        }
        std::uint32_t empty_vcs = 0;
        for (VcId vc = 0; vc < numVcs(); ++vc)
            empty_vcs += vcPackets(vc) == 0 ? 1 : 0;
        if (freeList.slots < empty_vcs)
            report("escape-slot guarantee violated (", freeList.slots,
                   " free < ", empty_vcs, " empty VCs)");
    }
    for (std::string &v : auditClassCensus())
        violations.push_back(std::move(v));
    return violations;
}

} // namespace damq

/**
 * @file
 * DAMQ with reserved slots — the follow-up fix for the hot-spot
 * weakness the paper itself reports.
 *
 * Section 4.2.1 observes that under hot-spot traffic a plain DAMQ
 * "fills up with hot spot traffic and, once that happens, the DAMQ
 * is tree saturated and behaves just like a FIFO switch": the
 * dynamically shared pool lets one congested destination monopolize
 * every slot.  Tamir & Frazier's 1992 journal follow-up solves this
 * by *reserving* one slot per queue out of the shared pool, so no
 * queue can ever be completely squeezed out.
 *
 * Admission rule: a packet for queue `q` may take a free slot as
 * long as, afterwards, there is still at least one slot available
 * for every *other* queue that is currently empty.  Equivalently,
 * the usable free space for `q` is
 *
 *     freeSlots - (number of other empty queues)
 *
 * which degrades gracefully to plain DAMQ behaviour when all queues
 * are busy.  Requires capacity >= number of queues.  In a multi-VC
 * layout the per-queue reservation is strictly stronger than the
 * shared-pool per-VC escape rule (every VC owns at least one of the
 * reserved queues), so this organization needs no extra VC logic.
 */

#ifndef DAMQ_QUEUEING_DAMQ_RESERVED_BUFFER_HH
#define DAMQ_QUEUEING_DAMQ_RESERVED_BUFFER_HH

#include "queueing/damq_buffer.hh"

namespace damq {

/** DAMQ buffer with one reserved slot per queue. */
class DamqReservedBuffer final : public BufferModel
{
  public:
    /** See BufferModel::BufferModel; capacity must cover one
     *  reserved slot per queue. */
    DamqReservedBuffer(QueueLayout queue_layout,
                       std::uint32_t capacity_slots);

    std::uint32_t usedSlots() const override
    {
        return inner.usedSlots();
    }
    std::uint32_t totalPackets() const override
    {
        return inner.totalPackets();
    }

    void fillAdmissionState(QueueKey key,
                            AdmissionState &st) const override;
    void pushImpl(const Packet &pkt) override { inner.push(pkt); }
    const Packet *peek(QueueKey key) const override
    {
        return inner.peek(key);
    }
    std::uint32_t queueLength(QueueKey key) const override
    {
        return inner.queueLength(key);
    }
    Packet popImpl(QueueKey key) override { return inner.pop(key); }
    FlitEvent flitArrivedImpl(QueueKey key) override
    {
        // Delegate through the inner buffer's public wrapper so its
        // own census stays consistent; report the event upward from
        // the post-update head-of-queue state.
        const bool charged = inner.flitArrived(key);
        const Packet *pkt = youngestIn(key);
        return {pkt, charged};
    }
    FlitEvent flitSentImpl(QueueKey key) override
    {
        const bool freed = inner.flitSent(key);
        return {inner.peek(key), freed};
    }
    void forEachInQueue(QueueKey key,
                        const PacketVisitor &visit) const override
    {
        inner.forEachInQueue(key, visit);
    }

    BufferType type() const override { return BufferType::DamqR; }

    void clear() override;

    /**
     * Inner DAMQ structural checks plus this organization's extra
     * guarantee: every currently-empty queue must still be able to
     * claim a free slot, so hot-spot traffic can never squeeze a
     * destination out entirely.
     */
    std::vector<std::string> checkInvariants() const override;

    bool faultLeakSlot() override { return inner.faultLeakSlot(); }

  private:
    /** Youngest resident packet of queue @p key, or nullptr. */
    const Packet *youngestIn(QueueKey key) const
    {
        const Packet *last = nullptr;
        inner.forEachInQueue(key,
                             [&last](const Packet &p) { last = &p; });
        return last;
    }

    DamqBuffer inner;
};

} // namespace damq

#endif // DAMQ_QUEUEING_DAMQ_RESERVED_BUFFER_HH

/**
 * @file
 * DAMQ with reserved slots — the follow-up fix for the hot-spot
 * weakness the paper itself reports.
 *
 * Section 4.2.1 observes that under hot-spot traffic a plain DAMQ
 * "fills up with hot spot traffic and, once that happens, the DAMQ
 * is tree saturated and behaves just like a FIFO switch": the
 * dynamically shared pool lets one congested destination monopolize
 * every slot.  Tamir & Frazier's 1992 journal follow-up solves this
 * by *reserving* one slot per output queue out of the shared pool,
 * so no queue can ever be completely squeezed out.
 *
 * Admission rule: a packet for output `o` may take a free slot as
 * long as, afterwards, there is still at least one slot available
 * for every *other* output whose queue is currently empty.
 * Equivalently, the usable free space for `o` is
 *
 *     freeSlots - (number of other empty queues)
 *
 * which degrades gracefully to plain DAMQ behaviour when all queues
 * are busy.  Requires capacity >= number of outputs.
 */

#ifndef DAMQ_QUEUEING_DAMQ_RESERVED_BUFFER_HH
#define DAMQ_QUEUEING_DAMQ_RESERVED_BUFFER_HH

#include "queueing/damq_buffer.hh"

namespace damq {

/** DAMQ buffer with one reserved slot per output queue. */
class DamqReservedBuffer final : public BufferModel
{
  public:
    /** See BufferModel::BufferModel; capacity must cover one
     *  reserved slot per output. */
    DamqReservedBuffer(PortId num_outputs,
                       std::uint32_t capacity_slots);

    std::uint32_t usedSlots() const override
    {
        return inner.usedSlots();
    }
    std::uint32_t totalPackets() const override
    {
        return inner.totalPackets();
    }

    bool canAccept(PortId out, std::uint32_t len) const override;
    void pushImpl(const Packet &pkt) override { inner.push(pkt); }
    const Packet *peek(PortId out) const override
    {
        return inner.peek(out);
    }
    std::uint32_t queueLength(PortId out) const override
    {
        return inner.queueLength(out);
    }
    Packet popImpl(PortId out) override { return inner.pop(out); }
    void forEachInQueue(PortId out,
                        const PacketVisitor &visit) const override
    {
        inner.forEachInQueue(out, visit);
    }

    BufferType type() const override { return BufferType::DamqR; }

    void clear() override;

    /**
     * Inner DAMQ structural checks plus this organization's extra
     * guarantee: every currently-empty output queue must still be
     * able to claim a free slot, so hot-spot traffic can never
     * squeeze a destination out entirely.
     */
    std::vector<std::string> checkInvariants() const override;

    bool faultLeakSlot() override { return inner.faultLeakSlot(); }

  private:
    DamqBuffer inner;
};

} // namespace damq

#endif // DAMQ_QUEUEING_DAMQ_RESERVED_BUFFER_HH

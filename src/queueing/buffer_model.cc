#include "queueing/buffer_model.hh"

#include <algorithm>

#include "common/enum_parse.hh"
#include "common/logging.hh"

namespace damq {

namespace {

constexpr EnumName<BufferType> kBufferTypeNames[] = {
    {BufferType::Fifo, "fifo"},   {BufferType::Samq, "samq"},
    {BufferType::Safc, "safc"},   {BufferType::Damq, "damq"},
    {BufferType::DamqR, "damqr"}, {BufferType::Voq, "voq"},
};

} // namespace

const char *
bufferTypeName(BufferType type)
{
    switch (type) {
      case BufferType::Fifo: return "FIFO";
      case BufferType::Samq: return "SAMQ";
      case BufferType::Safc: return "SAFC";
      case BufferType::Damq: return "DAMQ";
      case BufferType::DamqR: return "DAMQR";
      case BufferType::Voq: return "VOQ";
    }
    damq_panic("unknown BufferType ", static_cast<int>(type));
}

std::optional<BufferType>
tryBufferTypeFromString(const std::string &name)
{
    return parseEnumName(std::string_view(name), kBufferTypeNames);
}

BufferModel::BufferModel(QueueLayout queue_layout,
                         std::uint32_t capacity_slots)
    : queues(queue_layout), capacity(capacity_slots),
      reservedPerQueue(queue_layout.numQueues(), 0),
      vcCensus(queue_layout.vcs, 0)
{
    damq_assert(queues.outputs > 0,
                "buffer needs at least one output queue");
    damq_assert(queues.vcs > 0,
                "buffer needs at least one virtual channel");
    damq_assert(capacity_slots > 0, "buffer needs at least one slot");
    // The escape-slot rule's base case: with every VC empty a
    // shared pool owes vcs - 1 slots plus one for the arriving
    // packet, so a smaller pool could never accept anything.
    damq_assert(capacity_slots >= queues.vcs,
                "buffer needs at least one slot per virtual channel "
                "(", queues.vcs, " VCs, ", capacity_slots, " slots)");
}

AdmissionDecision
BufferModel::admit(QueueKey key, std::uint32_t len,
                   std::uint8_t cls) const
{
    damq_assert(queues.contains(key), "canAccept: bad queue ",
                key.out, ".vc", key.vc);
    AdmissionState st;
    st.capacity = capacity;
    fillAdmissionState(key, st);
    if (policy->wantsHeadAge() && admissionClock) {
        if (const Packet *head = peek(key)) {
            st.headWaitAge = *admissionClock > head->generatedAt
                                 ? *admissionClock - head->generatedAt
                                 : 0;
        }
    }
    st.classSlots = classCensus[cls];
    return policy->admit(st, AdmissionRequest{key, len, cls});
}

bool
BufferModel::canHold(QueueKey key, std::uint32_t len) const
{
    damq_assert(queues.contains(key), "canHold: bad queue ", key.out,
                ".vc", key.vc);
    AdmissionState st;
    st.capacity = capacity;
    fillAdmissionState(key, st);
    return admissionFeasible(st, len);
}

bool
BufferModel::reserve(QueueKey key, std::uint32_t len)
{
    damq_assert(queues.contains(key), "reserve: bad queue ", key.out,
                ".vc", key.vc);
    if (!canAccept(key, len))
        return false;
    reservedPerQueue[queues.flatten(key)] += len;
    reservedTotal += len;
    return true;
}

void
BufferModel::pushReserved(const Packet &pkt)
{
    const QueueKey key{pkt.outPort, pkt.vc};
    damq_assert(queues.contains(key), "pushReserved: bad output port");
    damq_assert(reservedPerQueue[queues.flatten(key)] >= pkt.lengthSlots,
                "pushReserved without a matching reserve");
    reservedPerQueue[queues.flatten(key)] -= pkt.lengthSlots;
    reservedTotal -= pkt.lengthSlots;
    push(pkt);
}

void
BufferModel::cancelReservation(QueueKey key, std::uint32_t len)
{
    damq_assert(queues.contains(key), "cancelReservation: bad queue ",
                key.out, ".vc", key.vc);
    damq_assert(reservedPerQueue[queues.flatten(key)] >= len,
                "cancelReservation without a matching reserve");
    reservedPerQueue[queues.flatten(key)] -= len;
    reservedTotal -= len;
}

void
BufferModel::clear()
{
    std::fill(reservedPerQueue.begin(), reservedPerQueue.end(), 0);
    std::fill(vcCensus.begin(), vcCensus.end(), 0);
    classCensus.fill(0);
    reservedTotal = 0;
    fullyArrivedCount = 0;
    if (probe)
        probe->onClear(*this);
}

std::vector<std::string>
BufferModel::auditClassCensus() const
{
    bool multi_class = false;
    for (std::uint32_t cls = 1; cls < kMaxTrafficClasses; ++cls)
        multi_class = multi_class || classCensus[cls] != 0;
    if (!multi_class)
        return {};
    std::array<std::uint64_t, kMaxTrafficClasses> walked{};
    for (std::uint32_t q = 0; q < numQueues(); ++q) {
        forEachInQueue(queues.unflatten(q), [&walked](const Packet &p) {
            walked[p.trafficClass] += p.slotsHeld();
        });
    }
    std::vector<std::string> violations;
    for (std::uint32_t cls = 0; cls < kMaxTrafficClasses; ++cls) {
        if (walked[cls] != classCensus[cls]) {
            violations.push_back(detail::concat(
                "class ", cls, " slot census drifted (walked ",
                walked[cls], ", counted ", classCensus[cls], ")"));
        }
    }
    return violations;
}

void
BufferModel::debugValidate() const
{
    const std::vector<std::string> violations = checkInvariants();
    if (!violations.empty())
        damq_panic(name(), " invariant violated: ", violations.front(),
                   violations.size() > 1 ? " (and more)" : "");
}

} // namespace damq

#include "queueing/buffer_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/string_util.hh"

namespace damq {

const char *
bufferTypeName(BufferType type)
{
    switch (type) {
      case BufferType::Fifo: return "FIFO";
      case BufferType::Samq: return "SAMQ";
      case BufferType::Safc: return "SAFC";
      case BufferType::Damq: return "DAMQ";
      case BufferType::DamqR: return "DAMQR";
    }
    damq_panic("unknown BufferType ", static_cast<int>(type));
}

std::optional<BufferType>
tryBufferTypeFromString(const std::string &name)
{
    const std::string lower = toLower(name);
    if (lower == "fifo")
        return BufferType::Fifo;
    if (lower == "samq")
        return BufferType::Samq;
    if (lower == "safc")
        return BufferType::Safc;
    if (lower == "damq")
        return BufferType::Damq;
    if (lower == "damqr")
        return BufferType::DamqR;
    return std::nullopt;
}

BufferType
bufferTypeFromString(const std::string &name)
{
    if (const auto type = tryBufferTypeFromString(name))
        return *type;
    damq_fatal("unknown buffer type '", name,
               "' (expected fifo|samq|safc|damq|damqr)");
}

BufferModel::BufferModel(PortId num_outputs, std::uint32_t capacity_slots)
    : outputs(num_outputs), capacity(capacity_slots),
      reservedPerOut(num_outputs, 0)
{
    damq_assert(num_outputs > 0, "buffer needs at least one output queue");
    damq_assert(capacity_slots > 0, "buffer needs at least one slot");
}

bool
BufferModel::reserve(PortId out, std::uint32_t len)
{
    damq_assert(out < outputs, "reserve: bad output ", out);
    if (!canAccept(out, len))
        return false;
    reservedPerOut[out] += len;
    reservedTotal += len;
    return true;
}

void
BufferModel::pushReserved(const Packet &pkt)
{
    damq_assert(pkt.outPort < outputs, "pushReserved: bad output port");
    damq_assert(reservedPerOut[pkt.outPort] >= pkt.lengthSlots,
                "pushReserved without a matching reserve");
    reservedPerOut[pkt.outPort] -= pkt.lengthSlots;
    reservedTotal -= pkt.lengthSlots;
    push(pkt);
}

void
BufferModel::cancelReservation(PortId out, std::uint32_t len)
{
    damq_assert(out < outputs, "cancelReservation: bad output ", out);
    damq_assert(reservedPerOut[out] >= len,
                "cancelReservation without a matching reserve");
    reservedPerOut[out] -= len;
    reservedTotal -= len;
}

void
BufferModel::clear()
{
    std::fill(reservedPerOut.begin(), reservedPerOut.end(), 0);
    reservedTotal = 0;
    if (probe)
        probe->onClear(*this);
}

void
BufferModel::debugValidate() const
{
    const std::vector<std::string> violations = checkInvariants();
    if (!violations.empty())
        damq_panic(name(), " invariant violated: ", violations.front(),
                   violations.size() > 1 ? " (and more)" : "");
}

} // namespace damq

/**
 * @file
 * The admission-policy layer: one pluggable decision point for
 * "may this packet take buffer slots right now?".
 *
 * The paper's organizations differ in *where* slots live (one
 * shared pool, fixed partitions, a pool with per-queue
 * reservations), but every admission rule has the same shape: the
 * target queue's allocation domain must keep enough free slots for
 * (a) the arriving packet, (b) space already promised to in-flight
 * reservations, and (c) slots the organization guarantees to
 * *other* queues.  BufferModel therefore distills its state into an
 * AdmissionState snapshot and delegates the verdict to an
 * AdmissionPolicy:
 *
 *   - StaticAdmission is the identity policy: exactly the paper's
 *     rules, expressed once.  Every organization's historical
 *     admission arithmetic is this policy over its own state:
 *       FIFO / DAMQ / reference  — pool free vs. escape-slot debt,
 *       SAMQ / SAFC              — partition free (no debt),
 *       DAMQR                    — pool free vs. one slot per other
 *                                  empty queue,
 *       VOQ                      — pool free vs. the private-slot
 *                                  deficit of the other queues.
 *   - DynamicThresholdAdmission adds the classic alpha-scaled
 *     free-space cap (Choudhury & Hahne) on top.
 *   - DelayDrivenAdmission grows a queue's share with the wait age
 *     of its head packet (BShare-style delay-driven sharing).
 *   - ClassQosAdmission segregates capacity by traffic class
 *     (Itoh & Yoshimoto-style multi-queue QoS management).
 *
 * The dynamic policies only ever *tighten* StaticAdmission — they
 * reject some packets the static rule would accept, never the
 * reverse — so the escape-slot / reserved-slot deadlock-freedom
 * guarantees hold under every policy.
 *
 * Flit-level head admission is the same decision: the
 * FlowControlScheme's headSlotsNeeded() rule computes how many
 * slots the head flit must secure (1 for wormhole, the whole packet
 * for virtual cut-through) and that count is what reaches the
 * policy as AdmissionRequest::lengthSlots.
 */

#ifndef DAMQ_QUEUEING_ADMISSION_POLICY_HH
#define DAMQ_QUEUEING_ADMISSION_POLICY_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/types.hh"
#include "queueing/queue_key.hh"

namespace damq {

/** Buffer-sharing admission policies selectable at run time. */
enum class SharingPolicy
{
    Static,           ///< the organization's historical rule only
    DynamicThreshold, ///< alpha-scaled free-space cap per queue
    DelayDriven,      ///< cap grows with head-of-line wait age
    ClassQos          ///< per-traffic-class capacity segregation
};

/** Canonical spelling ("static", "dt", "delay", "qos"). */
const char *sharingPolicyName(SharingPolicy kind);

/** Parse a case-insensitive policy name; nullopt on bad input. */
std::optional<SharingPolicy> trySharingPolicyFromString(
    const std::string &name);

/** Traffic classes a packet can be stamped with (0..kMax-1). */
inline constexpr std::uint32_t kMaxTrafficClasses = 8;

/** What is asking for admission. */
struct AdmissionRequest
{
    QueueKey key;                  ///< target queue (output x VC)
    std::uint32_t lengthSlots = 1; ///< slots the admission charges
    std::uint8_t trafficClass = 0; ///< QoS class of the packet
};

/**
 * The organization's state, as the policy sees it.  Filled by
 * BufferModel::fillAdmissionState() of the concrete organization;
 * "allocation domain" means the storage the target queue draws
 * from — the whole pool for the shared organizations, the target
 * partition for SAMQ/SAFC.
 */
struct AdmissionState
{
    /** Total slots of the whole buffer. */
    std::uint32_t capacity = 0;

    /** Free slots in the target queue's allocation domain. */
    std::uint32_t poolFree = 0;

    /** Reservation slots charged against that domain. */
    std::uint32_t reservedCharge = 0;

    /**
     * Slots the domain must keep free for queues other than the
     * target: the escape-slot debt of the shared pools, one slot
     * per other empty queue for DAMQR, the private-slot deficit for
     * VOQ, 0 for the partitioned organizations.
     */
    std::uint32_t guaranteeSlots = 0;

    /** Slots held by the target queue (policies that ask for it). */
    std::uint32_t queueSlots = 0;

    /** Packets in the target queue (policies that ask for it). */
    std::uint32_t queueLength = 0;

    /**
     * Cycles the target queue's head packet has waited since
     * generation; 0 when the queue is empty or no admission clock
     * is attached.  Only filled when the policy wantsHeadAge().
     */
    Cycle headWaitAge = 0;

    /** Slots held buffer-wide by the requesting traffic class. */
    std::uint32_t classSlots = 0;
};

/** The verdict. */
struct AdmissionDecision
{
    bool accept = false;
    std::uint32_t slotsCharged = 0; ///< slots the accept consumes
};

/**
 * The base feasibility rule every policy starts from: the domain
 * must keep enough free slots for the packet, the outstanding
 * reservations, and the organization's guarantee toward the other
 * queues.
 *
 * This is the one canonical statement of the *escape-slot rule*
 * for shared pools in multi-VC layouts: guaranteeSlots counts one
 * free slot per empty foreign VC, keeping the invariant
 * `free >= #empty VCs` (a push onto an empty VC consumes one owed
 * slot but also removes that VC from the empty set), so a packet
 * arriving on any VC always finds a slot.  Without it, a saturated
 * shared pool could be monopolized by one VC and deadlock a
 * blocking torus despite the dateline.  DAMQR's one-reserved-slot-
 * per-queue rule and VOQ's private-slot deficit are the same
 * inequality with a stronger guarantee term.
 */
inline bool
admissionFeasible(const AdmissionState &st, std::uint32_t len)
{
    return st.poolFree >=
           len + st.reservedCharge + st.guaranteeSlots;
}

/** One admission rule.  Implementations must be stateless across
 *  calls (a policy instance is shared by many buffers). */
class AdmissionPolicy
{
  public:
    virtual ~AdmissionPolicy() = default;

    /** Decide whether @p rq may take slots given @p st. */
    virtual AdmissionDecision admit(const AdmissionState &st,
                                    const AdmissionRequest &rq)
        const = 0;

    /** Canonical policy name for tables and traces. */
    virtual const char *name() const = 0;

    /**
     * Whether admit() reads queueSlots/queueLength.  Organizations
     * whose per-queue occupancy is not O(1) (the FIFO lanes) skip
     * computing it for policies that never look.
     */
    virtual bool wantsQueueOccupancy() const { return false; }

    /** Whether admit() reads headWaitAge (needs a clock attached). */
    virtual bool wantsHeadAge() const { return false; }
};

/**
 * The identity policy: admissionFeasible() and nothing else.
 * Installed by default in every organization; byte-identical to
 * the pre-refactor hard-coded rules.
 */
class StaticAdmission final : public AdmissionPolicy
{
  public:
    AdmissionDecision admit(const AdmissionState &st,
                            const AdmissionRequest &rq) const override
    {
        return {admissionFeasible(st, rq.lengthSlots),
                rq.lengthSlots};
    }

    const char *name() const override { return "static"; }

    /** The shared immutable instance every buffer defaults to. */
    static const StaticAdmission &instance();
};

/**
 * Classic Dynamic Threshold: a queue may grow only while its
 * occupancy stays below alpha times the *shareable* free space
 * (free net of reservations and guarantees).  Congested queues
 * self-limit as the pool drains, so no destination can monopolize
 * shared storage under incast — the modern fix for the hot-spot
 * tree saturation Section 4.2.1 of the paper reports.
 *
 * Integer arithmetic throughout: alpha is fixed-point with a
 * 1024 denominator, so decisions are exactly reproducible across
 * platforms and shard counts.
 */
class DynamicThresholdAdmission final : public AdmissionPolicy
{
  public:
    /** @param alpha threshold factor, clamped to [1/1024, 1024]. */
    explicit DynamicThresholdAdmission(double alpha);

    AdmissionDecision admit(const AdmissionState &st,
                            const AdmissionRequest &rq) const override;

    const char *name() const override { return "dt"; }
    bool wantsQueueOccupancy() const override { return true; }

    /** Fixed-point alpha (denominator 1024), for tests. */
    std::uint64_t alphaFixed() const { return alphaNum; }

  private:
    std::uint64_t alphaNum; ///< alpha * 1024, rounded
};

/**
 * BShare-style delay-driven sharing: Dynamic Threshold whose
 * effective alpha grows with the wait age of the target queue's
 * head packet.  A queue that is being served keeps the base
 * threshold; one whose head has been stuck earns a progressively
 * larger share of the free space, up to 17x at an age of
 * 16 * ageScale cycles.  Head wait age is measured against the
 * admission clock the simulator attaches (see
 * BufferModel::attachAdmissionClock); with no clock the policy
 * degenerates to plain Dynamic Threshold.
 */
class DelayDrivenAdmission final : public AdmissionPolicy
{
  public:
    /** @param alpha     base threshold factor (as DT).
     *  @param age_scale cycles per unit of threshold growth,
     *                   clamped to [1, 65536]. */
    DelayDrivenAdmission(double alpha, Cycle age_scale);

    AdmissionDecision admit(const AdmissionState &st,
                            const AdmissionRequest &rq) const override;

    const char *name() const override { return "delay"; }
    bool wantsQueueOccupancy() const override { return true; }
    bool wantsHeadAge() const override { return true; }

  private:
    std::uint64_t alphaNum; ///< alpha * 1024, rounded
    std::uint64_t ageScale;
};

/**
 * Class-segregated QoS thresholds over one shared pool: traffic
 * class c of C may hold at most (c + 1) / C of the buffer's
 * capacity, so the highest class can always displace lower-class
 * floods but never the reverse — nested caps in the style of
 * Itoh & Yoshimoto's multi-queue QoS buffer management.
 */
class ClassQosAdmission final : public AdmissionPolicy
{
  public:
    /** @param classes traffic classes sharing the buffer (>= 1,
     *                 <= kMaxTrafficClasses). */
    explicit ClassQosAdmission(std::uint32_t classes);

    AdmissionDecision admit(const AdmissionState &st,
                            const AdmissionRequest &rq) const override;

    const char *name() const override { return "qos"; }

  private:
    std::uint32_t numClasses;
};

/** Run-time selection of the sharing policy and its knobs. */
struct SharingPolicyConfig
{
    SharingPolicy kind = SharingPolicy::Static;

    /** Threshold factor for DynamicThreshold / DelayDriven. */
    double dtAlpha = 2.0;

    /** Age scale (cycles) for DelayDriven. */
    Cycle delayAgeScale = 64;

    /** Traffic classes for ClassQos. */
    std::uint32_t qosClasses = 2;

    /** Private slots per queue for the VOQ organization. */
    std::uint32_t voqPrivateSlots = 1;
};

/**
 * Build the configured policy; nullptr for Static, meaning "keep
 * the organization's default StaticAdmission instance" (no
 * allocation, no behavior change).
 */
std::shared_ptr<const AdmissionPolicy> makeSharingPolicy(
    const SharingPolicyConfig &cfg);

} // namespace damq

#endif // DAMQ_QUEUEING_ADMISSION_POLICY_HH

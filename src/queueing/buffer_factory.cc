#include "queueing/buffer_factory.hh"

#include "common/logging.hh"
#include "queueing/damq_buffer.hh"
#include "queueing/damq_reserved_buffer.hh"
#include "queueing/fifo_buffer.hh"
#include "queueing/partitioned_buffer.hh"

namespace damq {

std::unique_ptr<BufferModel>
makeBuffer(BufferType type, QueueLayout queue_layout,
           std::uint32_t capacity_slots)
{
    switch (type) {
      case BufferType::Fifo:
        return std::make_unique<FifoBuffer>(queue_layout,
                                            capacity_slots);
      case BufferType::Samq:
        return std::make_unique<SamqBuffer>(queue_layout,
                                            capacity_slots);
      case BufferType::Safc:
        return std::make_unique<SafcBuffer>(queue_layout,
                                            capacity_slots);
      case BufferType::Damq:
        return std::make_unique<DamqBuffer>(queue_layout,
                                            capacity_slots);
      case BufferType::DamqR:
        return std::make_unique<DamqReservedBuffer>(queue_layout,
                                                    capacity_slots);
    }
    damq_panic("unknown BufferType ", static_cast<int>(type));
}

} // namespace damq

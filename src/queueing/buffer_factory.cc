#include "queueing/buffer_factory.hh"

#include "common/logging.hh"
#include "queueing/damq_buffer.hh"
#include "queueing/damq_reserved_buffer.hh"
#include "queueing/fifo_buffer.hh"
#include "queueing/partitioned_buffer.hh"
#include "queueing/voq_buffer.hh"

namespace damq {

std::unique_ptr<BufferModel>
makeBuffer(BufferType type, QueueLayout queue_layout,
           std::uint32_t capacity_slots)
{
    return makeBuffer(type, queue_layout, capacity_slots,
                      SharingPolicyConfig{});
}

std::unique_ptr<BufferModel>
makeBuffer(BufferType type, QueueLayout queue_layout,
           std::uint32_t capacity_slots,
           const SharingPolicyConfig &sharing)
{
    std::unique_ptr<BufferModel> buffer;
    switch (type) {
      case BufferType::Fifo:
        buffer = std::make_unique<FifoBuffer>(queue_layout,
                                              capacity_slots);
        break;
      case BufferType::Samq:
        buffer = std::make_unique<SamqBuffer>(queue_layout,
                                              capacity_slots);
        break;
      case BufferType::Safc:
        buffer = std::make_unique<SafcBuffer>(queue_layout,
                                              capacity_slots);
        break;
      case BufferType::Damq:
        buffer = std::make_unique<DamqBuffer>(queue_layout,
                                              capacity_slots);
        break;
      case BufferType::DamqR:
        buffer = std::make_unique<DamqReservedBuffer>(queue_layout,
                                                      capacity_slots);
        break;
      case BufferType::Voq:
        buffer = std::make_unique<VoqBuffer>(
            queue_layout, capacity_slots, sharing.voqPrivateSlots);
        break;
    }
    if (!buffer)
        damq_panic("unknown BufferType ", static_cast<int>(type));
    if (sharing.kind != SharingPolicy::Static) {
        if (type == BufferType::Samq || type == BufferType::Safc) {
            damq_fatal("the '", sharingPolicyName(sharing.kind),
                       "' sharing policy needs a shared buffer pool; ",
                       bufferTypeName(type),
                       " partitions its slots statically");
        }
        buffer->setAdmissionPolicy(makeSharingPolicy(sharing));
    }
    return buffer;
}

} // namespace damq

#include "queueing/damq_reserved_buffer.hh"

#include "common/logging.hh"

namespace damq {

DamqReservedBuffer::DamqReservedBuffer(PortId num_outputs,
                                       std::uint32_t capacity_slots)
    : BufferModel(num_outputs, capacity_slots),
      inner(num_outputs, capacity_slots)
{
    if (capacity_slots < num_outputs) {
        damq_fatal("a reserved-slot DAMQ needs at least one slot "
                   "per output (got ", capacity_slots, " slots for ",
                   num_outputs, " outputs)");
    }
}

bool
DamqReservedBuffer::canAccept(PortId out, std::uint32_t len) const
{
    damq_assert(out < numOutputs(), "canAccept: bad output ", out);

    // Count the *other* queues that are empty: one slot must stay
    // available for each of them.
    std::uint32_t reserved_for_others = 0;
    for (PortId o = 0; o < numOutputs(); ++o) {
        if (o != out && inner.queueLength(o) == 0)
            ++reserved_for_others;
    }
    const std::uint32_t free = inner.freeSlotCount();
    // Reservations made through the base-class API (varlen
    // transfers) also hold space.
    const std::uint32_t held = reservedSlotsTotal();
    return free >= len + held + reserved_for_others;
}

void
DamqReservedBuffer::clear()
{
    BufferModel::clear();
    inner.clear();
}

std::vector<std::string>
DamqReservedBuffer::checkInvariants() const
{
    std::vector<std::string> violations = inner.checkInvariants();

    std::uint32_t empty_queues = 0;
    for (PortId out = 0; out < numOutputs(); ++out) {
        if (inner.queueLength(out) == 0)
            ++empty_queues;
    }
    if (inner.freeSlotCount() < empty_queues) {
        violations.push_back(detail::concat(
            "reserved-slot guarantee violated: ", empty_queues,
            " empty queues but only ", inner.freeSlotCount(),
            " free slots"));
    }
    return violations;
}

} // namespace damq

#include "queueing/damq_reserved_buffer.hh"

#include "common/logging.hh"

namespace damq {

DamqReservedBuffer::DamqReservedBuffer(QueueLayout queue_layout,
                                       std::uint32_t capacity_slots)
    : BufferModel(queue_layout, capacity_slots),
      inner(queue_layout, capacity_slots)
{
    if (capacity_slots < numQueues()) {
        if (numVcs() > 1) {
            damq_fatal("a reserved-slot DAMQ needs at least one slot "
                       "per queue (got ", capacity_slots,
                       " slots for ", numQueues(), " queues = ",
                       numOutputs(), " outputs x ", numVcs(), " VCs)");
        }
        damq_fatal("a reserved-slot DAMQ needs at least one slot "
                   "per output (got ", capacity_slots, " slots for ",
                   numOutputs(), " outputs)");
    }
}

bool
DamqReservedBuffer::canAccept(QueueKey key, std::uint32_t len) const
{
    damq_assert(layout().contains(key), "canAccept: bad output ",
                key.out);

    // Count the *other* queues that are empty: one slot must stay
    // available for each of them.
    const std::uint32_t mine = layout().flatten(key);
    std::uint32_t reserved_for_others = 0;
    for (std::uint32_t q = 0; q < numQueues(); ++q) {
        if (q != mine &&
            inner.queueLength(layout().unflatten(q)) == 0)
            ++reserved_for_others;
    }
    const std::uint32_t free = inner.freeSlotCount();
    // Reservations made through the base-class API (varlen
    // transfers) also hold space.
    const std::uint32_t held = reservedSlotsTotal();
    return free >= len + held + reserved_for_others;
}

void
DamqReservedBuffer::clear()
{
    BufferModel::clear();
    inner.clear();
}

std::vector<std::string>
DamqReservedBuffer::checkInvariants() const
{
    std::vector<std::string> violations = inner.checkInvariants();

    std::uint32_t empty_queues = 0;
    for (std::uint32_t q = 0; q < numQueues(); ++q) {
        if (inner.queueLength(layout().unflatten(q)) == 0)
            ++empty_queues;
    }
    if (inner.freeSlotCount() < empty_queues) {
        violations.push_back(detail::concat(
            "reserved-slot guarantee violated: ", empty_queues,
            " empty queues but only ", inner.freeSlotCount(),
            " free slots"));
    }
    return violations;
}

} // namespace damq

#include "queueing/damq_reserved_buffer.hh"

#include "common/logging.hh"

namespace damq {

DamqReservedBuffer::DamqReservedBuffer(QueueLayout queue_layout,
                                       std::uint32_t capacity_slots)
    : BufferModel(queue_layout, capacity_slots),
      inner(queue_layout, capacity_slots)
{
    if (capacity_slots < numQueues()) {
        if (numVcs() > 1) {
            damq_fatal("a reserved-slot DAMQ needs at least one slot "
                       "per queue (got ", capacity_slots,
                       " slots for ", numQueues(), " queues = ",
                       numOutputs(), " outputs x ", numVcs(), " VCs)");
        }
        damq_fatal("a reserved-slot DAMQ needs at least one slot "
                   "per output (got ", capacity_slots, " slots for ",
                   numOutputs(), " outputs)");
    }
}

void
DamqReservedBuffer::fillAdmissionState(QueueKey key,
                                       AdmissionState &st) const
{
    // The guarantee is one slot per *other* queue that is empty:
    // hot-spot traffic can never squeeze a destination out (the
    // same inequality shape as the escape rule — see
    // admissionFeasible() in admission_policy.hh).
    const std::uint32_t mine = layout().flatten(key);
    std::uint32_t reserved_for_others = 0;
    for (std::uint32_t q = 0; q < numQueues(); ++q) {
        if (q != mine &&
            inner.queueLength(layout().unflatten(q)) == 0)
            ++reserved_for_others;
    }
    st.poolFree = inner.freeSlotCount();
    // Reservations made through the base-class API (varlen
    // transfers) also hold space.
    st.reservedCharge = reservedSlotsTotal();
    st.guaranteeSlots = reserved_for_others;
    st.queueSlots = inner.queueSlotsIn(key);
    st.queueLength = inner.queueLength(key);
}

void
DamqReservedBuffer::clear()
{
    BufferModel::clear();
    inner.clear();
}

std::vector<std::string>
DamqReservedBuffer::checkInvariants() const
{
    std::vector<std::string> violations = inner.checkInvariants();

    std::uint32_t empty_queues = 0;
    for (std::uint32_t q = 0; q < numQueues(); ++q) {
        if (inner.queueLength(layout().unflatten(q)) == 0)
            ++empty_queues;
    }
    if (inner.freeSlotCount() < empty_queues) {
        violations.push_back(detail::concat(
            "reserved-slot guarantee violated: ", empty_queues,
            " empty queues but only ", inner.freeSlotCount(),
            " free slots"));
    }
    return violations;
}

} // namespace damq

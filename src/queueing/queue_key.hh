/**
 * @file
 * Queue addressing for the multi-queue buffers.
 *
 * The paper's buffers multiplex n independent queues over one slot
 * pool, and the original API hard-coded "queue == output port".
 * DAMQ-based NoC routers extend the same linked-list pool to
 * per-virtual-channel queues, so a queue is now addressed by an
 * opaque QueueKey — output port x virtual channel — and a buffer's
 * queue space is described by a QueueLayout.
 *
 * Both types convert implicitly from a bare PortId (vc = 0, one VC),
 * so the single-VC call sites — the paper's entire evaluation — read
 * exactly as before: `buffer.peek(out)` means queue (out, vc 0).
 * With one virtual channel the flat queue index equals the output
 * port, and every organization collapses to its pre-VC behavior.
 */

#ifndef DAMQ_QUEUEING_QUEUE_KEY_HH
#define DAMQ_QUEUEING_QUEUE_KEY_HH

#include <cstdint>

#include "common/types.hh"

namespace damq {

/** Index of a virtual channel within one buffer. */
using VcId = std::uint32_t;

/** Address of one queue inside a buffer: output port x VC. */
struct QueueKey
{
    PortId out = kInvalidPort;
    VcId vc = 0;

    constexpr QueueKey() = default;

    /** Implicit from a bare output port: queue (out, vc 0). */
    constexpr QueueKey(PortId out_port, VcId virtual_channel = 0)
        : out(out_port), vc(virtual_channel)
    {
    }

    /** True iff this key names a real queue. */
    constexpr bool valid() const { return out != kInvalidPort; }

    friend constexpr bool operator==(QueueKey a, QueueKey b)
    {
        return a.out == b.out && a.vc == b.vc;
    }
    friend constexpr bool operator!=(QueueKey a, QueueKey b)
    {
        return !(a == b);
    }
};

/** Sentinel meaning "no queue" (e.g. an arbiter skipping a buffer). */
inline constexpr QueueKey kInvalidQueue{};

/**
 * Shape of a buffer's queue space: one queue per (output, vc) pair.
 * Flattening is out-major (flat = out * vcs + vc), so with one VC
 * the flat index *is* the output port — which keeps diagnostics and
 * invariant-report wording identical to the pre-VC code.
 */
struct QueueLayout
{
    PortId outputs = 0;
    VcId vcs = 1;

    constexpr QueueLayout() = default;

    /** Implicit from an output count: single-VC layout. */
    constexpr QueueLayout(PortId num_outputs, VcId num_vcs = 1)
        : outputs(num_outputs), vcs(num_vcs)
    {
    }

    /** Total number of queues. */
    constexpr std::uint32_t numQueues() const { return outputs * vcs; }

    /** Whether @p key names a queue of this layout. */
    constexpr bool contains(QueueKey key) const
    {
        return key.out < outputs && key.vc < vcs;
    }

    /** Flat index of @p key (out-major). */
    constexpr std::uint32_t flatten(QueueKey key) const
    {
        return key.out * vcs + key.vc;
    }

    /** Inverse of flatten(). */
    constexpr QueueKey unflatten(std::uint32_t flat) const
    {
        return QueueKey{flat / vcs, flat % vcs};
    }

    friend constexpr bool operator==(QueueLayout a, QueueLayout b)
    {
        return a.outputs == b.outputs && a.vcs == b.vcs;
    }
    friend constexpr bool operator!=(QueueLayout a, QueueLayout b)
    {
        return !(a == b);
    }
};

} // namespace damq

#endif // DAMQ_QUEUEING_QUEUE_KEY_HH

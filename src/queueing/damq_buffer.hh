/**
 * @file
 * The dynamically allocated multi-queue (DAMQ) buffer — the paper's
 * contribution (Section 3).
 *
 * Storage is a pool of fixed-size slots.  Every slot has a *pointer
 * register* naming the next slot of its list; lists are threaded
 * through the pool exactly as in the hardware:
 *
 *   - one **free list** of unused slots, and
 *   - one FIFO list **per queue**, each addressed by a pair of
 *     head/tail registers.
 *
 * The paper keeps one queue per output port; the QueueLayout
 * generalizes that to one per (output, virtual channel) pair — the
 * same register structure, just more head/tail pairs — exactly the
 * DAMQ-for-NoC extension of Jamali & Khademzadeh.  A packet of L
 * slots occupies L chained entries of its queue's list.  On push,
 * slots are taken from the front of the free list and appended at
 * the tail of the destination list; on pop they are returned to the
 * back of the free list.  This mirrors the paper's receive/transmit
 * sequences (Sections 3.1-3.2) and gives dynamic allocation —
 * *any* free slot can serve *any* queue — combined with per-queue
 * FIFO order and a single read port.
 *
 * This class is the behavioral model used by the switch/network
 * simulators; the byte- and phase-accurate version with shift
 * register addressing lives in src/microarch.
 */

#ifndef DAMQ_QUEUEING_DAMQ_BUFFER_HH
#define DAMQ_QUEUEING_DAMQ_BUFFER_HH

#include <vector>

#include "queueing/buffer_model.hh"
#include "queueing/slot_pool.hh"

namespace damq {

/** Dynamically allocated multi-queue input buffer.  VoqBuffer
 *  derives from it, swapping in a stronger admission guarantee. */
class DamqBuffer : public BufferModel
{
  public:
    /** See BufferModel::BufferModel. */
    DamqBuffer(QueueLayout queue_layout, std::uint32_t capacity_slots);

    std::uint32_t usedSlots() const override
    {
        return capacitySlots() - freeList.slots;
    }
    std::uint32_t totalPackets() const override { return packetCount; }

    void fillAdmissionState(QueueKey key,
                            AdmissionState &st) const override;
    void pushImpl(const Packet &pkt) override;
    const Packet *peek(QueueKey key) const override;
    std::uint32_t queueLength(QueueKey key) const override;
    Packet popImpl(QueueKey key) override;
    FlitEvent flitArrivedImpl(QueueKey key) override;
    FlitEvent flitSentImpl(QueueKey key) override;
    void forEachInQueue(QueueKey key,
                        const PacketVisitor &visit) const override;

    BufferType type() const override { return BufferType::Damq; }

    void clear() override;
    std::vector<std::string> checkInvariants() const override;

    /**
     * Fault hook: detach the head free slot and abandon it, exactly
     * as if its pointer register latched garbage — the slot is then
     * linked into no list and checkInvariants() reports it as
     * leaked.  Returns false when the free list is empty.
     */
    bool faultLeakSlot() override;

    /**
     * Test-only hook: overwrite slot @p s's pointer register with
     * @p next, corrupting the linked structure (double-ownership,
     * cycles, dangling tails).  Exists so the invariant tests can
     * prove checkInvariants() detects each corruption class.
     */
    void testCorruptNextPointer(SlotId s, SlotId next);

    /** Packets in queue @p key, oldest first (testing aid). */
    std::vector<Packet> snapshotQueue(QueueKey key) const;

    /** Free slots currently on the free list. */
    std::uint32_t freeSlotCount() const { return freeList.slots; }

    /** Slots held by queue @p key (its list's slot register). */
    std::uint32_t queueSlotsIn(QueueKey key) const
    {
        return queueOf(key).slots;
    }

  protected:
    /** Slots held by flat queue @p q (for the VOQ subclass). */
    std::uint32_t queueSlotsFlat(std::uint32_t q) const
    {
        return queues[q].slots;
    }

  private:
    /**
     * Per-slot register file entry.  `next` is the hardware pointer
     * register; the packet metadata stands in for the per-slot
     * length / new-header registers of the real design and is only
     * meaningful in the first slot of a packet.
     */
    struct Slot
    {
        SlotId next = kNullSlot;
        bool headOfPacket = false;
        Packet packet; ///< valid iff headOfPacket
    };

    /**
     * Head/tail register pair (shared slot-list primitive) plus a
     * packet counter for the queue-length arbitration weight.
     */
    struct ListRegs : SlotListRegs
    {
        std::uint32_t packets = 0;
    };

    /** Detach the first slot of @p list (must be non-empty). */
    SlotId removeHead(ListRegs &list)
    {
        return slotListRemoveHead(pool, list);
    }

    /** Append slot @p s at the tail of @p list. */
    void appendTail(ListRegs &list, SlotId s)
    {
        slotListAppendTail(pool, list, s);
    }

    /**
     * Detach the slot linked after @p s from @p list (flit release:
     * @p s is a packet's head slot, its successor the body slot
     * being freed — the head register must stay with the packet).
     */
    SlotId removeAfter(ListRegs &list, SlotId s)
    {
        const SlotId victim = pool[s].next;
        pool[s].next = pool[victim].next;
        if (list.tail == victim)
            list.tail = s;
        pool[victim].next = kNullSlot;
        --list.slots;
        return victim;
    }

    /** The list registers of queue @p key. */
    ListRegs &queueOf(QueueKey key)
    {
        return queues[layout().flatten(key)];
    }
    const ListRegs &queueOf(QueueKey key) const
    {
        return queues[layout().flatten(key)];
    }

    std::vector<Slot> pool;
    ListRegs freeList;
    std::vector<ListRegs> queues; ///< out-major, QueueLayout::flatten
    std::uint32_t packetCount = 0;
};

} // namespace damq

#endif // DAMQ_QUEUEING_DAMQ_BUFFER_HH

/**
 * @file
 * The common interface of the four input-buffer organizations the
 * paper compares (Section 2, Figure 1): FIFO, SAMQ, SAFC and DAMQ.
 *
 * A buffer sits at one input port of an n x n switch and holds
 * packets that have already been routed, i.e., whose local output
 * port is known.  The interface exposes exactly what the crossbar
 * arbiter of Section 4 needs:
 *
 *   - admission control (`canAccept` / `push`), including space
 *     *reservations* for packets still in flight on a multi-cycle
 *     link (used by the variable-length extension);
 *   - per-queue visibility (`peek` / `queueLength`) — the paper's
 *     arbitration policy transmits "from the longest queue";
 *   - the read-port constraint (`maxReadsPerCycle`) that
 *     distinguishes SAFC (fully connected, n reads) from the
 *     single-read-port FIFO/SAMQ/DAMQ organizations.
 *
 * Queues are addressed by QueueKey (output port x virtual channel;
 * see queue_key.hh).  The paper's evaluation is the single-VC
 * special case: a bare PortId converts to QueueKey{out, vc 0}, so
 * those call sites read — and behave — exactly as before.  Multi-VC
 * layouts add one rule: a shared-pool buffer keeps one free
 * *escape slot* per empty VC (escapeSlotsOwed), so no virtual
 * channel can be starved of buffer space by the others — the
 * property the dateline deadlock-freedom argument needs.
 */

#ifndef DAMQ_QUEUEING_BUFFER_MODEL_HH
#define DAMQ_QUEUEING_BUFFER_MODEL_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "queueing/admission_policy.hh"
#include "queueing/packet.hh"
#include "queueing/queue_key.hh"

namespace damq {

/** The paper's four buffer organizations plus the follow-ups. */
enum class BufferType
{
    Fifo, ///< single first-in-first-out queue, shared pool
    Samq, ///< statically allocated multi-queue, single read port
    Safc, ///< statically allocated fully connected, n read ports
    Damq, ///< dynamically allocated multi-queue (the contribution)
    /**
     * DAMQ with one reserved slot per output queue — the 1992
     * follow-up fix for the hot-spot monopolization Section 4.2.1
     * reports.
     */
    DamqR,
    /**
     * Virtual-output-queue organization: DAMQ storage with a
     * configurable number of *private* slots guaranteed to every
     * (output, VC) queue out of the shared pool — booksim's hybrid
     * private/shared VOQ buffer.  Degenerates to DAMQR at one
     * private slot per queue.
     */
    Voq
};

/** Human-readable name ("FIFO", "SAMQ", ...). */
const char *bufferTypeName(BufferType type);

/**
 * Parse a case-insensitive buffer-type name.  Returns std::nullopt
 * on an unknown name so command-line front-ends can print their own
 * usage text and exit cleanly.
 */
std::optional<BufferType> tryBufferTypeFromString(
    const std::string &name);

class BufferModel;

/**
 * Observer interface for buffer telemetry.  The obs library's
 * QueueProbe implements it; the queueing library itself depends on
 * nothing above it.  A buffer with no probe attached (the default)
 * pays exactly one predictable branch per push/pop, so telemetry is
 * zero-overhead when off.
 */
class BufferProbe
{
  public:
    virtual ~BufferProbe() = default;

    /** @p pkt was just committed into @p buffer. */
    virtual void onEnqueue(const BufferModel &buffer,
                           const Packet &pkt) = 0;

    /** @p pkt was just removed from @p buffer's queue @p key. */
    virtual void onDequeue(const BufferModel &buffer, QueueKey key,
                           const Packet &pkt) = 0;

    /** @p buffer dropped all contents (reset between runs). */
    virtual void onClear(const BufferModel &buffer) = 0;

    /**
     * A flit arrived at or left @p buffer without crossing a packet
     * boundary (flitArrived / flitSent under flit-level switching),
     * possibly changing the slot occupancy.  Default no-op so
     * packet-mode probes are unaffected; QueueProbe overrides it to
     * sample occupancy between the enqueue and dequeue edges.
     */
    virtual void onFlitProgress(const BufferModel &buffer)
    {
        (void)buffer;
    }
};

/**
 * Abstract input-port buffer.  See the file comment for the role of
 * each operation.  All sizes are measured in slots.
 *
 * push() and pop() are non-virtual entry points that delegate to
 * the pushImpl()/popImpl() of the concrete organization and then
 * notify the attached BufferProbe (if any) — the telemetry hook
 * cannot be forgotten by an implementation and costs one
 * branch-on-null when disabled.  The base also tracks the per-VC
 * packet census here, so every organization shares one definition
 * of "this VC is empty" for the escape-slot rule.
 */
class BufferModel
{
  public:
    /** @param queue_layout   queues the buffer distinguishes
     *                        (outputs x VCs; a bare output count
     *                        means one VC).
     *  @param capacity_slots total storage, in slots. */
    BufferModel(QueueLayout queue_layout, std::uint32_t capacity_slots);

    virtual ~BufferModel() = default;

    BufferModel(const BufferModel &) = delete;
    BufferModel &operator=(const BufferModel &) = delete;

    /** Number of output ports the buffer distinguishes. */
    PortId numOutputs() const { return queues.outputs; }

    /** Number of virtual channels per output (1 = the paper). */
    VcId numVcs() const { return queues.vcs; }

    /** Total number of queues (outputs x VCs). */
    std::uint32_t numQueues() const { return queues.numQueues(); }

    /** Shape of the queue space. */
    QueueLayout layout() const { return queues; }

    /** Total storage in slots. */
    std::uint32_t capacitySlots() const { return capacity; }

    /** Slots holding committed packets. */
    virtual std::uint32_t usedSlots() const = 0;

    /** Slots held by not-yet-committed reservations (all queues). */
    std::uint32_t reservedSlotsTotal() const { return reservedTotal; }

    /** Committed packets currently stored. */
    virtual std::uint32_t totalPackets() const = 0;

    /**
     * Resident packets whose every flit has arrived here.  Equal to
     * totalPackets() in packet mode, where arrivals are atomic.
     * Under flit-level switching a streaming packet is resident in
     * two buffers at once (its tail upstream, its head downstream),
     * but exactly one of those records is fully arrived at any
     * phase boundary — so end-to-end packet accounting sums this,
     * not totalPackets().  Maintained by the push/pop/flitArrived
     * wrappers; organizations need no per-type code.
     */
    std::uint32_t fullyResidentPackets() const
    {
        return fullyArrivedCount;
    }

    /** Committed packets currently stored on VC @p vc. */
    std::uint32_t vcPackets(VcId vc) const { return vcCensus[vc]; }

    /** True iff no committed packets are stored. */
    bool empty() const { return totalPackets() == 0; }

    /**
     * Whether a packet of @p len slots routed to queue @p key could
     * be accepted right now.  Non-virtual: the base snapshots the
     * organization's state via fillAdmissionState() and delegates
     * the verdict to the installed AdmissionPolicy (StaticAdmission
     * by default — byte-identical to the historical per-type rules:
     * reservations count as occupied and each organization reports
     * its guarantee toward the other queues, e.g. the escape-slot
     * debt of the shared pools).
     */
    bool canAccept(QueueKey key, std::uint32_t len) const
    {
        return admit(key, len, 0).accept;
    }

    /** canAccept() for a packet of traffic class @p cls. */
    bool canAcceptClass(QueueKey key, std::uint32_t len,
                        std::uint8_t cls) const
    {
        return admit(key, len, cls).accept;
    }

    /** The full admission verdict (see canAccept). */
    AdmissionDecision admit(QueueKey key, std::uint32_t len,
                            std::uint8_t cls) const;

    /**
     * Whether the pool physically has room for @p len slots in
     * queue @p key under the organization's *static* rule alone,
     * ignoring any installed dynamic sharing policy.  This is the
     * commit-side check for flow-controlled hops: the policy
     * verdict was taken upstream at grant time against cycle-start
     * state, and the pops that can land between grant and commit
     * only free space — feasibility is monotone under pops, while
     * a delay-driven policy verdict is not (popping an aged head
     * re-tightens the threshold mid-cycle).
     */
    bool canHold(QueueKey key, std::uint32_t len) const;

    /**
     * Install a sharing policy (shared across buffers); nullptr
     * restores the default StaticAdmission.  The caller must only
     * install non-static policies on organizations with a shared
     * pool (the factory enforces this).
     */
    void setAdmissionPolicy(
        std::shared_ptr<const AdmissionPolicy> p)
    {
        ownedPolicy = std::move(p);
        policy = ownedPolicy ? ownedPolicy.get()
                             : &StaticAdmission::instance();
    }

    /** The active admission policy (never null). */
    const AdmissionPolicy &admissionPolicy() const { return *policy; }

    /**
     * Attach the simulator's cycle counter so delay-driven policies
     * can read head-of-line wait ages; the pointee must outlive the
     * buffer (the engines point at their own member counter).
     * nullptr detaches.
     */
    void attachAdmissionClock(const Cycle *clock)
    {
        admissionClock = clock;
    }

    /** Slots held buffer-wide by traffic class @p cls. */
    std::uint32_t classSlots(std::uint8_t cls) const
    {
        return classCensus[cls];
    }

    /**
     * Store @p pkt (whose outPort, vc and lengthSlots must be set).
     * Taken by reference: the 64-byte Packet is of ABI class MEMORY,
     * so a by-value signature forces the caller to copy it into the
     * argument area right after building it field by field — a
     * second full copy plus store-forwarding stalls that measured
     * ~50% slower per push on the micro benchmark.
     * Callers must check canAccept first; violating that is a bug.
     */
    void push(const Packet &pkt)
    {
        ++vcCensus[pkt.vc];
        classCensus[pkt.trafficClass] += pkt.slotsHeld();
        if (pkt.fullyArrived())
            ++fullyArrivedCount;
        pushImpl(pkt);
        if (probe)
            probe->onEnqueue(*this, pkt);
    }

    /**
     * Hold space for a packet of @p len slots bound for queue @p key
     * that is still arriving (multi-cycle transfer).  Returns false
     * if the space is not available.  Matched by pushReserved().
     */
    bool reserve(QueueKey key, std::uint32_t len);

    /** Commit a packet whose space was previously reserve()d. */
    void pushReserved(const Packet &pkt);

    /** Drop a reservation (e.g., the in-flight packet was killed). */
    void cancelReservation(QueueKey key, std::uint32_t len);

    /**
     * The packet that would be transmitted next from queue @p key,
     * or nullptr if none is visible.  For a FIFO buffer only the
     * head-of-line packet is ever visible — this is precisely the
     * head-of-line blocking the DAMQ design removes.
     */
    virtual const Packet *peek(QueueKey key) const = 0;

    /**
     * Arbitration weight for queue @p key: the length, in packets,
     * of the queue the candidate head belongs to (0 when peek(key)
     * is null).  The paper's arbiter serves the longest queue.
     */
    virtual std::uint32_t queueLength(QueueKey key) const = 0;

    /** Remove and return the head packet of @p key (must exist). */
    Packet pop(QueueKey key)
    {
        Packet pkt = popImpl(key);
        --vcCensus[pkt.vc];
        classCensus[pkt.trafficClass] -= pkt.slotsHeld();
        if (pkt.fullyArrived())
            --fullyArrivedCount;
        if (probe)
            probe->onDequeue(*this, key, pkt);
        return pkt;
    }

    /**
     * Flit-granular occupancy: one more flit of the *youngest*
     * packet in queue @p key arrived (its head was push()ed earlier
     * with flitsArrived = 1).  The packet's slot footprint grows by
     * at most one slot — see Packet::slotsHeld().  Returns true iff
     * a storage slot was actually charged; false means the arrival
     * reused the packet's already-held slot (every earlier flit was
     * forwarded before this one landed), which the credit protocol
     * answers with an immediate credit rebate so outstanding
     * credits always equal slots held downstream.
     */
    bool flitArrived(QueueKey key)
    {
        const FlitEvent ev = flitArrivedImpl(key);
        if (ev.slotChanged)
            ++classCensus[ev.pkt->trafficClass];
        if (ev.pkt->fullyArrived())
            ++fullyArrivedCount;
        if (probe)
            probe->onFlitProgress(*this);
        return ev.slotChanged;
    }

    /**
     * One flit of the *head* packet of queue @p key was forwarded
     * downstream (every flit but the tail — sending the tail is the
     * pop()).  Shrinks the packet's footprint by at most one slot;
     * returns true iff a slot was actually freed (the signal to
     * return one credit upstream).
     */
    bool flitSent(QueueKey key)
    {
        const FlitEvent ev = flitSentImpl(key);
        if (ev.slotChanged)
            --classCensus[ev.pkt->trafficClass];
        if (probe)
            probe->onFlitProgress(*this);
        return ev.slotChanged;
    }

    /**
     * Attach (or, with nullptr, detach) a telemetry probe.  The
     * probe must outlive the buffer or be detached first; the
     * buffer does not own it.
     */
    void attachProbe(BufferProbe *p) { probe = p; }

    /** The attached telemetry probe, or nullptr. */
    BufferProbe *attachedProbe() const { return probe; }

    /** Callback type for forEachInQueue. */
    using PacketVisitor = std::function<void(const Packet &)>;

    /**
     * Visit every packet in queue @p key, oldest first, without
     * copying them out of the buffer.  The periodic invariant
     * audits walk queues this way; the previous snapshot-based
     * audit path copied whole queues each tick.
     */
    virtual void forEachInQueue(QueueKey key,
                                const PacketVisitor &visit) const = 0;

    /**
     * Packets the buffer can emit in a single cycle: 1 for the
     * single-read-port organizations, numOutputs() for SAFC.
     */
    virtual std::uint32_t maxReadsPerCycle() const { return 1; }

    /** Organization implemented by this object. */
    virtual BufferType type() const = 0;

    /** Short name for tables and traces. */
    std::string name() const { return bufferTypeName(type()); }

    /** Discard all contents and reservations. */
    virtual void clear();

    /**
     * Non-fatal invariant audit: verify slot conservation, list
     * sanity, per-queue FIFO structure, and counter consistency,
     * returning one description per violation (empty when healthy).
     * The fault subsystem's InvariantAuditor calls this every K
     * cycles so deliberately corrupted state is *reported* instead
     * of aborting the simulation.
     */
    virtual std::vector<std::string> checkInvariants() const
    {
        return {};
    }

    /**
     * Verify internal invariants (slot conservation, list sanity).
     * Used by the test suite; panics on the first violation that
     * checkInvariants() reports.
     */
    void debugValidate() const;

    /**
     * Fault hook: deliberately lose one storage slot, modeling a
     * pointer register that latched garbage (DAMQ free-list slot
     * abandoned) or a stuck occupancy counter (partitioned buffers
     * gain a phantom slot).  Returns true if a slot was actually
     * leaked; checkInvariants() must detect the damage afterwards.
     * Organizations that cannot express the fault return false.
     */
    virtual bool faultLeakSlot() { return false; }

  protected:
    /** Reserved slots bound for queue @p key. */
    std::uint32_t reservedFor(QueueKey key) const
    {
        return reservedPerQueue[queues.flatten(key)];
    }

    /**
     * Escape-slot debt of a shared pool toward VCs *other than*
     * @p vc: one slot per empty foreign VC.  This is a policy-layer
     * *input*, not a rule: shared-pool organizations report it as
     * AdmissionState::guaranteeSlots from fillAdmissionState(), and
     * the admission decision that consumes it — along with the full
     * rationale for the rule — lives once, with admissionFeasible()
     * in admission_policy.hh.  Always 0 in single-VC layouts, where
     * the check degenerates to the plain free-space rule.
     */
    std::uint32_t escapeSlotsOwed(VcId vc) const
    {
        if (queues.vcs <= 1)
            return 0;
        std::uint32_t owed = 0;
        for (VcId w = 0; w < queues.vcs; ++w)
            owed += w != vc && vcCensus[w] == 0 ? 1 : 0;
        return owed;
    }

    /**
     * Snapshot the organization's state for the admission policy
     * (see AdmissionState for the field contracts).  @p st arrives
     * with capacity pre-filled and everything else zeroed; the
     * organization must fill poolFree, reservedCharge and
     * guaranteeSlots, and — when admissionPolicy()
     * .wantsQueueOccupancy() — queueSlots/queueLength.  headWaitAge
     * and classSlots are filled by the base admit().
     */
    virtual void fillAdmissionState(QueueKey key,
                                    AdmissionState &st) const = 0;

    /**
     * Audit the per-class slot census against a walk of every
     * queue's resident packets.  Skipped (returns empty) while all
     * traffic is class 0, so single-class configurations — and the
     * corruption tests that count invariant reports word for word —
     * are unaffected; multi-class runs get the drift check.
     */
    std::vector<std::string> auditClassCensus() const;

    /** Organization-specific store; see push(). */
    virtual void pushImpl(const Packet &pkt) = 0;

    /** Organization-specific removal; see pop(). */
    virtual Packet popImpl(QueueKey key) = 0;

    /**
     * What a flit event did: the packet it touched (still resident,
     * post-update) and whether its slot footprint changed.
     */
    struct FlitEvent
    {
        const Packet *pkt;
        bool slotChanged;
    };

    /**
     * Organization-specific flit arrival; see flitArrived().  Must
     * increment flitsArrived on the youngest packet of @p key,
     * charge a storage slot iff slotsHeld() grew, and report both.
     */
    virtual FlitEvent flitArrivedImpl(QueueKey key) = 0;

    /**
     * Organization-specific flit departure; see flitSent().  Must
     * increment flitsSent on the head packet of @p key, release a
     * storage slot iff slotsHeld() shrank, and report both.
     */
    virtual FlitEvent flitSentImpl(QueueKey key) = 0;

  private:
    QueueLayout queues;
    std::uint32_t capacity;
    std::vector<std::uint32_t> reservedPerQueue;
    std::vector<std::uint32_t> vcCensus;
    /// slots held per traffic class, maintained by push/pop/flit
    std::array<std::uint32_t, kMaxTrafficClasses> classCensus{};
    std::uint32_t reservedTotal = 0;
    std::uint32_t fullyArrivedCount = 0;
    BufferProbe *probe = nullptr;
    /// active admission rule (never null; StaticAdmission default)
    const AdmissionPolicy *policy = &StaticAdmission::instance();
    std::shared_ptr<const AdmissionPolicy> ownedPolicy;
    /// simulator cycle counter for head-age policies, or nullptr
    const Cycle *admissionClock = nullptr;
};

} // namespace damq

#endif // DAMQ_QUEUEING_BUFFER_MODEL_HH

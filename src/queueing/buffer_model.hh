/**
 * @file
 * The common interface of the four input-buffer organizations the
 * paper compares (Section 2, Figure 1): FIFO, SAMQ, SAFC and DAMQ.
 *
 * A buffer sits at one input port of an n x n switch and holds
 * packets that have already been routed, i.e., whose local output
 * port is known.  The interface exposes exactly what the crossbar
 * arbiter of Section 4 needs:
 *
 *   - admission control (`canAccept` / `push`), including space
 *     *reservations* for packets still in flight on a multi-cycle
 *     link (used by the variable-length extension);
 *   - per-output visibility (`peek` / `queueLength`) — the paper's
 *     arbitration policy transmits "from the longest queue";
 *   - the read-port constraint (`maxReadsPerCycle`) that
 *     distinguishes SAFC (fully connected, n reads) from the
 *     single-read-port FIFO/SAMQ/DAMQ organizations.
 */

#ifndef DAMQ_QUEUEING_BUFFER_MODEL_HH
#define DAMQ_QUEUEING_BUFFER_MODEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "queueing/packet.hh"

namespace damq {

/** The four buffer organizations evaluated in the paper. */
enum class BufferType
{
    Fifo, ///< single first-in-first-out queue, shared pool
    Samq, ///< statically allocated multi-queue, single read port
    Safc, ///< statically allocated fully connected, n read ports
    Damq, ///< dynamically allocated multi-queue (the contribution)
    /**
     * DAMQ with one reserved slot per output queue — the 1992
     * follow-up fix for the hot-spot monopolization Section 4.2.1
     * reports.
     */
    DamqR
};

/** Human-readable name ("FIFO", "SAMQ", ...). */
const char *bufferTypeName(BufferType type);

/**
 * Parse a case-insensitive buffer-type name.  Returns std::nullopt
 * on an unknown name so command-line front-ends can print their own
 * usage text and exit cleanly.
 */
std::optional<BufferType> tryBufferTypeFromString(
    const std::string &name);

/** Parse a case-insensitive buffer-type name; fatal on bad input. */
BufferType bufferTypeFromString(const std::string &name);

class BufferModel;

/**
 * Observer interface for buffer telemetry.  The obs library's
 * QueueProbe implements it; the queueing library itself depends on
 * nothing above it.  A buffer with no probe attached (the default)
 * pays exactly one predictable branch per push/pop, so telemetry is
 * zero-overhead when off.
 */
class BufferProbe
{
  public:
    virtual ~BufferProbe() = default;

    /** @p pkt was just committed into @p buffer. */
    virtual void onEnqueue(const BufferModel &buffer,
                           const Packet &pkt) = 0;

    /** @p pkt was just removed from @p buffer's queue @p out. */
    virtual void onDequeue(const BufferModel &buffer, PortId out,
                           const Packet &pkt) = 0;

    /** @p buffer dropped all contents (reset between runs). */
    virtual void onClear(const BufferModel &buffer) = 0;
};

/**
 * Abstract input-port buffer.  See the file comment for the role of
 * each operation.  All sizes are measured in slots.
 *
 * push() and pop() are non-virtual entry points that delegate to
 * the pushImpl()/popImpl() of the concrete organization and then
 * notify the attached BufferProbe (if any) — the telemetry hook
 * cannot be forgotten by an implementation and costs one
 * branch-on-null when disabled.
 */
class BufferModel
{
  public:
    /** @param num_outputs   queues the buffer distinguishes.
     *  @param capacity_slots total storage, in slots. */
    BufferModel(PortId num_outputs, std::uint32_t capacity_slots);

    virtual ~BufferModel() = default;

    BufferModel(const BufferModel &) = delete;
    BufferModel &operator=(const BufferModel &) = delete;

    /** Number of output-port queues. */
    PortId numOutputs() const { return outputs; }

    /** Total storage in slots. */
    std::uint32_t capacitySlots() const { return capacity; }

    /** Slots holding committed packets. */
    virtual std::uint32_t usedSlots() const = 0;

    /** Slots held by not-yet-committed reservations (all queues). */
    std::uint32_t reservedSlotsTotal() const { return reservedTotal; }

    /** Committed packets currently stored. */
    virtual std::uint32_t totalPackets() const = 0;

    /** True iff no committed packets are stored. */
    bool empty() const { return totalPackets() == 0; }

    /**
     * Whether a packet of @p len slots routed to output @p out could
     * be accepted right now (reservations count as occupied).
     */
    virtual bool canAccept(PortId out, std::uint32_t len) const = 0;

    /**
     * Store @p pkt (whose outPort and lengthSlots must be set).
     * Taken by reference: the 56-byte Packet is of ABI class MEMORY,
     * so a by-value signature forces the caller to copy it into the
     * argument area right after building it field by field — a
     * second full copy plus store-forwarding stalls that measured
     * ~50% slower per push on the micro benchmark.
     * Callers must check canAccept first; violating that is a bug.
     */
    void push(const Packet &pkt)
    {
        pushImpl(pkt);
        if (probe)
            probe->onEnqueue(*this, pkt);
    }

    /**
     * Hold space for a packet of @p len slots bound for @p out that
     * is still arriving (multi-cycle transfer).  Returns false if
     * the space is not available.  Matched by pushReserved().
     */
    bool reserve(PortId out, std::uint32_t len);

    /** Commit a packet whose space was previously reserve()d. */
    void pushReserved(const Packet &pkt);

    /** Drop a reservation (e.g., the in-flight packet was killed). */
    void cancelReservation(PortId out, std::uint32_t len);

    /**
     * The packet that would be transmitted next to output @p out,
     * or nullptr if none is visible.  For a FIFO buffer only the
     * head-of-line packet is ever visible — this is precisely the
     * head-of-line blocking the DAMQ design removes.
     */
    virtual const Packet *peek(PortId out) const = 0;

    /**
     * Arbitration weight for output @p out: the length, in packets,
     * of the queue the candidate head belongs to (0 when peek(out)
     * is null).  The paper's arbiter serves the longest queue.
     */
    virtual std::uint32_t queueLength(PortId out) const = 0;

    /** Remove and return the head packet for @p out (must exist). */
    Packet pop(PortId out)
    {
        Packet pkt = popImpl(out);
        if (probe)
            probe->onDequeue(*this, out, pkt);
        return pkt;
    }

    /**
     * Attach (or, with nullptr, detach) a telemetry probe.  The
     * probe must outlive the buffer or be detached first; the
     * buffer does not own it.
     */
    void attachProbe(BufferProbe *p) { probe = p; }

    /** The attached telemetry probe, or nullptr. */
    BufferProbe *attachedProbe() const { return probe; }

    /** Callback type for forEachInQueue. */
    using PacketVisitor = std::function<void(const Packet &)>;

    /**
     * Visit every packet queued for output @p out, oldest first,
     * without copying them out of the buffer.  The periodic
     * invariant audits walk queues this way; the previous
     * snapshot-based audit path copied whole queues each tick.
     */
    virtual void forEachInQueue(PortId out,
                                const PacketVisitor &visit) const = 0;

    /**
     * Packets the buffer can emit in a single cycle: 1 for the
     * single-read-port organizations, numOutputs() for SAFC.
     */
    virtual std::uint32_t maxReadsPerCycle() const { return 1; }

    /** Organization implemented by this object. */
    virtual BufferType type() const = 0;

    /** Short name for tables and traces. */
    std::string name() const { return bufferTypeName(type()); }

    /** Discard all contents and reservations. */
    virtual void clear();

    /**
     * Non-fatal invariant audit: verify slot conservation, list
     * sanity, per-output FIFO structure, and counter consistency,
     * returning one description per violation (empty when healthy).
     * The fault subsystem's InvariantAuditor calls this every K
     * cycles so deliberately corrupted state is *reported* instead
     * of aborting the simulation.
     */
    virtual std::vector<std::string> checkInvariants() const
    {
        return {};
    }

    /**
     * Verify internal invariants (slot conservation, list sanity).
     * Used by the test suite; panics on the first violation that
     * checkInvariants() reports.
     */
    void debugValidate() const;

    /**
     * Fault hook: deliberately lose one storage slot, modeling a
     * pointer register that latched garbage (DAMQ free-list slot
     * abandoned) or a stuck occupancy counter (partitioned buffers
     * gain a phantom slot).  Returns true if a slot was actually
     * leaked; checkInvariants() must detect the damage afterwards.
     * Organizations that cannot express the fault return false.
     */
    virtual bool faultLeakSlot() { return false; }

  protected:
    /** Reserved slots bound for @p out. */
    std::uint32_t reservedFor(PortId out) const
    {
        return reservedPerOut[out];
    }

    /** Organization-specific store; see push(). */
    virtual void pushImpl(const Packet &pkt) = 0;

    /** Organization-specific removal; see pop(). */
    virtual Packet popImpl(PortId out) = 0;

  private:
    PortId outputs;
    std::uint32_t capacity;
    std::vector<std::uint32_t> reservedPerOut;
    std::uint32_t reservedTotal = 0;
    BufferProbe *probe = nullptr;
};

} // namespace damq

#endif // DAMQ_QUEUEING_BUFFER_MODEL_HH

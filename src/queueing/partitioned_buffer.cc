#include "queueing/partitioned_buffer.hh"

#include "common/logging.hh"

namespace damq {

StaticallyPartitionedBuffer::StaticallyPartitionedBuffer(
    PortId num_outputs, std::uint32_t capacity_slots)
    : BufferModel(num_outputs, capacity_slots),
      perQueueCapacity(capacity_slots / num_outputs),
      queues(num_outputs),
      usedPerQueue(num_outputs, 0)
{
    if (capacity_slots % num_outputs != 0) {
        damq_fatal("statically partitioned buffers need a slot count "
                   "divisible by the number of outputs (got ",
                   capacity_slots, " slots for ", num_outputs,
                   " outputs)");
    }
}

bool
StaticallyPartitionedBuffer::canAccept(PortId out,
                                       std::uint32_t len) const
{
    damq_assert(out < numOutputs(), "canAccept: bad output ", out);
    return usedPerQueue[out] + reservedFor(out) + len <= perQueueCapacity;
}

void
StaticallyPartitionedBuffer::push(const Packet &pkt)
{
    damq_assert(pkt.outPort < numOutputs(), "push: bad output port");
    damq_assert(usedPerQueue[pkt.outPort] + reservedFor(pkt.outPort) +
                    pkt.lengthSlots <= perQueueCapacity,
                "push into a full ", name(), " partition");
    queues[pkt.outPort].push_back(pkt);
    usedPerQueue[pkt.outPort] += pkt.lengthSlots;
    used += pkt.lengthSlots;
    ++packets;
}

const Packet *
StaticallyPartitionedBuffer::peek(PortId out) const
{
    damq_assert(out < numOutputs(), "peek: bad output ", out);
    if (queues[out].empty())
        return nullptr;
    return &queues[out].front();
}

std::uint32_t
StaticallyPartitionedBuffer::queueLength(PortId out) const
{
    damq_assert(out < numOutputs(), "queueLength: bad output ", out);
    return static_cast<std::uint32_t>(queues[out].size());
}

Packet
StaticallyPartitionedBuffer::pop(PortId out)
{
    damq_assert(out < numOutputs(), "pop: bad output ", out);
    damq_assert(!queues[out].empty(), "pop from empty queue ", out);
    Packet pkt = queues[out].front();
    queues[out].pop_front();
    usedPerQueue[out] -= pkt.lengthSlots;
    used -= pkt.lengthSlots;
    --packets;
    return pkt;
}

void
StaticallyPartitionedBuffer::clear()
{
    BufferModel::clear();
    for (auto &q : queues)
        q.clear();
    std::fill(usedPerQueue.begin(), usedPerQueue.end(), 0);
    used = 0;
    packets = 0;
}

std::vector<std::string>
StaticallyPartitionedBuffer::checkInvariants() const
{
    std::vector<std::string> violations;
    std::uint32_t total_slots = 0;
    std::uint32_t total_packets = 0;
    for (PortId out = 0; out < numOutputs(); ++out) {
        std::uint32_t q_slots = 0;
        for (const auto &pkt : queues[out]) {
            if (!pkt.valid())
                violations.push_back(detail::concat(
                    "invalid packet ", pkt.id, " in partition ", out));
            if (pkt.outPort != out)
                violations.push_back(detail::concat(
                    "packet ", pkt.id, " queued under output ", out,
                    " but routed to ", pkt.outPort));
            q_slots += pkt.lengthSlots;
        }
        if (q_slots != usedPerQueue[out])
            violations.push_back(detail::concat(
                "partition ", out, " slot accounting drifted (",
                q_slots, " stored, ", usedPerQueue[out], " counted)"));
        if (usedPerQueue[out] + reservedFor(out) > perQueueCapacity)
            violations.push_back(detail::concat(
                "partition ", out, " over its static bound (",
                usedPerQueue[out], " used + ", reservedFor(out),
                " reserved > ", perQueueCapacity, ")"));
        total_slots += q_slots;
        total_packets += static_cast<std::uint32_t>(queues[out].size());
    }
    if (used != total_slots)
        violations.push_back(detail::concat(
            "total slot accounting drifted (", total_slots,
            " stored, ", used, " counted)"));
    if (total_packets != packets)
        violations.push_back(detail::concat(
            "packet count accounting drifted (", total_packets,
            " stored, ", packets, " counted)"));
    return violations;
}

bool
StaticallyPartitionedBuffer::faultLeakSlot()
{
    if (usedPerQueue[0] >= perQueueCapacity)
        return false;
    ++usedPerQueue[0];
    ++used;
    return true;
}

} // namespace damq

#include "queueing/partitioned_buffer.hh"

#include "common/logging.hh"

namespace damq {

StaticallyPartitionedBuffer::StaticallyPartitionedBuffer(
    QueueLayout queue_layout, std::uint32_t capacity_slots)
    : BufferModel(queue_layout, capacity_slots),
      perQueueCapacity(capacity_slots / queue_layout.numQueues()),
      pool(capacity_slots),
      freeLists(queue_layout.numQueues()),
      queues(queue_layout.numQueues()),
      packetsPerQueue(queue_layout.numQueues(), 0)
{
    if (capacity_slots % numQueues() != 0) {
        if (numVcs() > 1) {
            damq_fatal("statically partitioned buffers need a slot "
                       "count divisible by the number of queues (got ",
                       capacity_slots, " slots for ", numQueues(),
                       " queues = ", numOutputs(), " outputs x ",
                       numVcs(), " VCs)");
        }
        damq_fatal("statically partitioned buffers need a slot count "
                   "divisible by the number of outputs (got ",
                   capacity_slots, " slots for ", numOutputs(),
                   " outputs)");
    }
    for (std::uint32_t q = 0; q < numQueues(); ++q)
        threadPartitionFreeList(q);
    freeTotal = capacity_slots;
}

void
StaticallyPartitionedBuffer::threadPartitionFreeList(std::uint32_t q)
{
    const SlotId base = q * perQueueCapacity;
    for (SlotId s = base; s < base + perQueueCapacity; ++s)
        slotListAppendTail(pool, freeLists[q], s);
}

void
StaticallyPartitionedBuffer::fillAdmissionState(QueueKey key,
                                                AdmissionState &st) const
{
    // The target partition *is* the allocation domain: its free
    // space and its reservations, with no guarantee term — slots
    // statically owned by a queue cannot be taken by another, so
    // there is nothing to protect (and nothing to share: the
    // factory rejects dynamic sharing policies here).
    const std::uint32_t q = layout().flatten(key);
    st.poolFree = freeLists[q].slots;
    st.reservedCharge = reservedFor(key);
    st.queueSlots = queues[q].slots;
    st.queueLength = packetsPerQueue[q];
}

void
StaticallyPartitionedBuffer::pushImpl(const Packet &pkt)
{
    const QueueKey key{pkt.outPort, pkt.vc};
    damq_assert(layout().contains(key), "push: bad output port");
    damq_assert(pkt.lengthSlots >= 1, "push: zero-length packet");
    const std::uint32_t q = layout().flatten(key);
    SlotListRegs &free = freeLists[q];
    damq_assert(free.slots >= pkt.slotsHeld() + reservedFor(key),
                "push into a full ", name(), " partition");

    SlotListRegs &queue = queues[q];
    const SlotId head = slotListRemoveHead(pool, free);
    pool[head].headOfPacket = true;
    pool[head].packet = pkt;
    slotListAppendTail(pool, queue, head);
    for (std::uint32_t i = 1; i < pkt.slotsHeld(); ++i) {
        const SlotId s = slotListRemoveHead(pool, free);
        pool[s].headOfPacket = false;
        slotListAppendTail(pool, queue, s);
    }
    freeTotal -= pkt.slotsHeld();
    ++packetsPerQueue[q];
    ++packets;
}

const Packet *
StaticallyPartitionedBuffer::peek(QueueKey key) const
{
    damq_assert(layout().contains(key), "peek: bad output ", key.out);
    const SlotListRegs &queue = queues[layout().flatten(key)];
    if (queue.head == kNullSlot)
        return nullptr;
    const Slot &slot = pool[queue.head];
    damq_assert(slot.headOfPacket,
                "queue head register does not point at a packet head");
    return &slot.packet;
}

std::uint32_t
StaticallyPartitionedBuffer::queueLength(QueueKey key) const
{
    damq_assert(layout().contains(key), "queueLength: bad output ",
                key.out);
    return packetsPerQueue[layout().flatten(key)];
}

Packet
StaticallyPartitionedBuffer::popImpl(QueueKey key)
{
    // Qualified call: keeps the lookup direct (and inlinable)
    // instead of re-dispatching through the vtable.
    const Packet *head = StaticallyPartitionedBuffer::peek(key);
    damq_assert(head != nullptr, "pop from empty queue ", key.out);
    const Packet pkt = *head;

    const std::uint32_t q = layout().flatten(key);
    SlotListRegs &queue = queues[q];
    SlotListRegs &free = freeLists[q];
    for (std::uint32_t i = 0; i < pkt.slotsHeld(); ++i) {
        const SlotId s = slotListRemoveHead(pool, queue);
        damq_assert((i == 0) == pool[s].headOfPacket,
                    "packet slot chain corrupted");
        pool[s].headOfPacket = false;
        slotListAppendTail(pool, free, s);
    }
    freeTotal += pkt.slotsHeld();
    --packetsPerQueue[q];
    --packets;
    return pkt;
}

BufferModel::FlitEvent
StaticallyPartitionedBuffer::flitArrivedImpl(QueueKey key)
{
    damq_assert(layout().contains(key), "flitArrived: bad queue ",
                key.out, ".vc", key.vc);
    const std::uint32_t q = layout().flatten(key);
    SlotListRegs &queue = queues[q];
    damq_assert(queue.head != kNullSlot,
                "flitArrived on an empty queue");
    // The streaming packet is the youngest of its partition; its
    // record lives in the last head slot of the chain.
    SlotId head_slot = kNullSlot;
    for (SlotId s = queue.head; s != kNullSlot; s = pool[s].next) {
        if (pool[s].headOfPacket)
            head_slot = s;
    }
    damq_assert(head_slot != kNullSlot,
                "flitArrived: queue has no packet head");
    Packet &pkt = pool[head_slot].packet;
    damq_assert(pkt.flitsArrived > 0 &&
                    pkt.flitsArrived < pkt.lengthSlots,
                "flit arrival on a fully arrived packet");
    const std::uint32_t before = pkt.slotsHeld();
    ++pkt.flitsArrived;
    const bool grew = pkt.slotsHeld() > before;
    if (grew) {
        SlotListRegs &free = freeLists[q];
        damq_assert(free.slots > 0, "flit arrival into a full ",
                    name(), " partition");
        const SlotId s = slotListRemoveHead(pool, free);
        pool[s].headOfPacket = false;
        slotListAppendTail(pool, queue, s);
        --freeTotal;
    }
    return {&pkt, grew};
}

BufferModel::FlitEvent
StaticallyPartitionedBuffer::flitSentImpl(QueueKey key)
{
    damq_assert(layout().contains(key), "flitSent: bad queue ",
                key.out, ".vc", key.vc);
    const std::uint32_t q = layout().flatten(key);
    SlotListRegs &queue = queues[q];
    damq_assert(queue.head != kNullSlot && pool[queue.head].headOfPacket,
                "flitSent on an empty queue");
    Packet &pkt = pool[queue.head].packet;
    damq_assert(pkt.flitsSent < pkt.arrivedFlits(),
                "flitSent without an arrived flit to forward");
    damq_assert(pkt.flitsSent + 1 < pkt.lengthSlots,
                "flitSent would forward the tail (that is the pop)");
    const std::uint32_t before = pkt.slotsHeld();
    ++pkt.flitsSent;
    const bool shrank = pkt.slotsHeld() < before;
    if (shrank) {
        // Unlink the packet's first body slot (the successor of the
        // head slot, which keeps the record until the tail pop).
        const SlotId victim = pool[queue.head].next;
        damq_assert(victim != kNullSlot && !pool[victim].headOfPacket,
                    "flitSent would free another packet's head slot");
        pool[queue.head].next = pool[victim].next;
        if (queue.tail == victim)
            queue.tail = queue.head;
        pool[victim].next = kNullSlot;
        --queue.slots;
        slotListAppendTail(pool, freeLists[q], victim);
        ++freeTotal;
    }
    return {&pkt, shrank};
}

void
StaticallyPartitionedBuffer::forEachInQueue(
    QueueKey key, const PacketVisitor &visit) const
{
    damq_assert(layout().contains(key), "forEachInQueue: bad output ",
                key.out);
    const std::uint32_t q = layout().flatten(key);
    for (SlotId s = queues[q].head; s != kNullSlot; s = pool[s].next) {
        if (pool[s].headOfPacket)
            visit(pool[s].packet);
    }
}

void
StaticallyPartitionedBuffer::clear()
{
    BufferModel::clear();
    for (auto &slot : pool)
        slot = Slot{};
    for (std::uint32_t q = 0; q < numQueues(); ++q) {
        freeLists[q] = SlotListRegs{};
        queues[q] = SlotListRegs{};
        threadPartitionFreeList(q);
    }
    std::fill(packetsPerQueue.begin(), packetsPerQueue.end(), 0);
    freeTotal = capacitySlots();
    packets = 0;
}

std::vector<std::string>
StaticallyPartitionedBuffer::checkInvariants() const
{
    std::vector<std::string> violations;
    const auto report = [&violations](auto &&...parts) {
        violations.push_back(detail::concat(parts...));
    };

    std::vector<bool> seen(pool.size(), false);

    // Walk one partition's list defensively: a corrupted pointer
    // register must yield a report, never a crash or an endless
    // loop.  Returns the number of packet heads encountered.
    const auto walk = [&](const SlotListRegs &list,
                          const std::string &label,
                          std::uint32_t partition, bool is_free) {
        const SlotId lo = partition * perQueueCapacity;
        const SlotId hi = lo + perQueueCapacity;
        const QueueKey owner = layout().unflatten(partition);
        std::uint32_t slots = 0;
        std::uint32_t heads = 0;
        std::uint32_t tail_of_packet = 0; ///< body slots still owed
        SlotId prev = kNullSlot;
        for (SlotId s = list.head; s != kNullSlot; s = pool[s].next) {
            if (s >= pool.size()) {
                report(label, ": pointer register out of range (slot ",
                       s, ")");
                return heads;
            }
            if (s < lo || s >= hi) {
                report(label, ": slot ", s,
                       " belongs to another partition");
                return heads;
            }
            if (seen[s]) {
                report(label, ": slot ", s, " linked into two lists");
                return heads;
            }
            seen[s] = true;
            ++slots;
            if (is_free) {
                if (pool[s].headOfPacket)
                    report(label, ": free slot ", s,
                           " still marked as a packet head");
            } else if (pool[s].headOfPacket) {
                if (tail_of_packet != 0)
                    report(label, ": packet slot chain truncated at "
                           "slot ", s, " (", tail_of_packet,
                           " body slots missing)");
                if (pool[s].packet.outPort != owner.out)
                    report(label, ": packet ", pool[s].packet.id,
                           " queued under output ", owner.out,
                           " but routed to ", pool[s].packet.outPort);
                if (numVcs() > 1 && pool[s].packet.vc != owner.vc)
                    report(label, ": packet ", pool[s].packet.id,
                           " queued under vc ", owner.vc,
                           " but travelling on vc ",
                           pool[s].packet.vc);
                if (!pool[s].packet.valid())
                    report(label, ": invalid packet ",
                           pool[s].packet.id, " in partition ",
                           partition);
                tail_of_packet = pool[s].packet.slotsHeld() - 1;
                ++heads;
            } else {
                if (tail_of_packet == 0)
                    report(label, ": slot ", s,
                           " belongs to no packet (FIFO chain "
                           "broken)");
                else
                    --tail_of_packet;
            }
            prev = s;
            if (slots > perQueueCapacity) {
                report(label, ": cycle detected in slot list");
                return heads;
            }
        }
        if (tail_of_packet != 0)
            report(label, ": last packet is missing ", tail_of_packet,
                   " of its body slots");
        if (prev != list.tail)
            report(label,
                   ": tail register does not point at the last slot");
        if (slots != list.slots)
            report(label, ": list slot counter drifted (walked ", slots,
                   ", register holds ", list.slots, ")");
        return heads;
    };

    std::uint32_t total_packets = 0;
    std::uint32_t total_free = 0;
    for (std::uint32_t q = 0; q < numQueues(); ++q) {
        walk(freeLists[q],
             detail::concat("partition ", q, " free list"), q, true);
        const std::string label = detail::concat("queue ", q);
        const std::uint32_t heads = walk(queues[q], label, q, false);
        if (heads != packetsPerQueue[q])
            report(label, ": packet counter drifted (walked ", heads,
                   ", register holds ", packetsPerQueue[q], ")");
        if (queues[q].slots + reservedFor(layout().unflatten(q)) >
            perQueueCapacity)
            report("partition ", q, " over its static bound (",
                   queues[q].slots, " used + ",
                   reservedFor(layout().unflatten(q)), " reserved > ",
                   perQueueCapacity, ")");
        total_packets += heads;
        total_free += freeLists[q].slots;
    }
    for (std::size_t s = 0; s < pool.size(); ++s) {
        if (!seen[s])
            report("slot ", s, " leaked from every list");
    }
    if (total_packets != packets)
        report("packet count accounting drifted (", total_packets,
               " stored, ", packets, " counted)");
    if (total_free != freeTotal)
        report("free slot accounting drifted (", total_free,
               " on the lists, ", freeTotal, " counted)");
    for (std::string &v : auditClassCensus())
        violations.push_back(std::move(v));
    return violations;
}

bool
StaticallyPartitionedBuffer::faultLeakSlot()
{
    if (freeLists[0].slots == 0)
        return false;
    slotListRemoveHead(pool, freeLists[0]);
    --freeTotal;
    return true;
}

} // namespace damq

#include "queueing/partitioned_buffer.hh"

#include "common/logging.hh"

namespace damq {

StaticallyPartitionedBuffer::StaticallyPartitionedBuffer(
    PortId num_outputs, std::uint32_t capacity_slots)
    : BufferModel(num_outputs, capacity_slots),
      perQueueCapacity(capacity_slots / num_outputs),
      pool(capacity_slots),
      freeLists(num_outputs),
      queues(num_outputs),
      packetsPerQueue(num_outputs, 0)
{
    if (capacity_slots % num_outputs != 0) {
        damq_fatal("statically partitioned buffers need a slot count "
                   "divisible by the number of outputs (got ",
                   capacity_slots, " slots for ", num_outputs,
                   " outputs)");
    }
    for (PortId q = 0; q < num_outputs; ++q)
        threadPartitionFreeList(q);
    freeTotal = capacity_slots;
}

void
StaticallyPartitionedBuffer::threadPartitionFreeList(PortId q)
{
    const SlotId base = q * perQueueCapacity;
    for (SlotId s = base; s < base + perQueueCapacity; ++s)
        slotListAppendTail(pool, freeLists[q], s);
}

bool
StaticallyPartitionedBuffer::canAccept(PortId out,
                                       std::uint32_t len) const
{
    damq_assert(out < numOutputs(), "canAccept: bad output ", out);
    return freeLists[out].slots >= len + reservedFor(out);
}

void
StaticallyPartitionedBuffer::pushImpl(const Packet &pkt)
{
    damq_assert(pkt.outPort < numOutputs(), "push: bad output port");
    damq_assert(pkt.lengthSlots >= 1, "push: zero-length packet");
    SlotListRegs &free = freeLists[pkt.outPort];
    damq_assert(free.slots >= pkt.lengthSlots + reservedFor(pkt.outPort),
                "push into a full ", name(), " partition");

    SlotListRegs &queue = queues[pkt.outPort];
    const SlotId head = slotListRemoveHead(pool, free);
    pool[head].headOfPacket = true;
    pool[head].packet = pkt;
    slotListAppendTail(pool, queue, head);
    for (std::uint32_t i = 1; i < pkt.lengthSlots; ++i) {
        const SlotId s = slotListRemoveHead(pool, free);
        pool[s].headOfPacket = false;
        slotListAppendTail(pool, queue, s);
    }
    freeTotal -= pkt.lengthSlots;
    ++packetsPerQueue[pkt.outPort];
    ++packets;
}

const Packet *
StaticallyPartitionedBuffer::peek(PortId out) const
{
    damq_assert(out < numOutputs(), "peek: bad output ", out);
    const SlotListRegs &queue = queues[out];
    if (queue.head == kNullSlot)
        return nullptr;
    const Slot &slot = pool[queue.head];
    damq_assert(slot.headOfPacket,
                "queue head register does not point at a packet head");
    return &slot.packet;
}

std::uint32_t
StaticallyPartitionedBuffer::queueLength(PortId out) const
{
    damq_assert(out < numOutputs(), "queueLength: bad output ", out);
    return packetsPerQueue[out];
}

Packet
StaticallyPartitionedBuffer::popImpl(PortId out)
{
    // Qualified call: keeps the lookup direct (and inlinable)
    // instead of re-dispatching through the vtable.
    const Packet *head = StaticallyPartitionedBuffer::peek(out);
    damq_assert(head != nullptr, "pop from empty queue ", out);
    const Packet pkt = *head;

    SlotListRegs &queue = queues[out];
    SlotListRegs &free = freeLists[out];
    for (std::uint32_t i = 0; i < pkt.lengthSlots; ++i) {
        const SlotId s = slotListRemoveHead(pool, queue);
        damq_assert((i == 0) == pool[s].headOfPacket,
                    "packet slot chain corrupted");
        pool[s].headOfPacket = false;
        slotListAppendTail(pool, free, s);
    }
    freeTotal += pkt.lengthSlots;
    --packetsPerQueue[out];
    --packets;
    return pkt;
}

void
StaticallyPartitionedBuffer::forEachInQueue(
    PortId out, const PacketVisitor &visit) const
{
    damq_assert(out < numOutputs(), "forEachInQueue: bad output ", out);
    for (SlotId s = queues[out].head; s != kNullSlot; s = pool[s].next) {
        if (pool[s].headOfPacket)
            visit(pool[s].packet);
    }
}

void
StaticallyPartitionedBuffer::clear()
{
    BufferModel::clear();
    for (auto &slot : pool)
        slot = Slot{};
    for (PortId q = 0; q < numOutputs(); ++q) {
        freeLists[q] = SlotListRegs{};
        queues[q] = SlotListRegs{};
        threadPartitionFreeList(q);
    }
    std::fill(packetsPerQueue.begin(), packetsPerQueue.end(), 0);
    freeTotal = capacitySlots();
    packets = 0;
}

std::vector<std::string>
StaticallyPartitionedBuffer::checkInvariants() const
{
    std::vector<std::string> violations;
    const auto report = [&violations](auto &&...parts) {
        violations.push_back(detail::concat(parts...));
    };

    std::vector<bool> seen(pool.size(), false);

    // Walk one partition's list defensively: a corrupted pointer
    // register must yield a report, never a crash or an endless
    // loop.  Returns the number of packet heads encountered.
    const auto walk = [&](const SlotListRegs &list,
                          const std::string &label, PortId partition,
                          bool is_free) {
        const SlotId lo = partition * perQueueCapacity;
        const SlotId hi = lo + perQueueCapacity;
        std::uint32_t slots = 0;
        std::uint32_t heads = 0;
        std::uint32_t tail_of_packet = 0; ///< body slots still owed
        SlotId prev = kNullSlot;
        for (SlotId s = list.head; s != kNullSlot; s = pool[s].next) {
            if (s >= pool.size()) {
                report(label, ": pointer register out of range (slot ",
                       s, ")");
                return heads;
            }
            if (s < lo || s >= hi) {
                report(label, ": slot ", s,
                       " belongs to another partition");
                return heads;
            }
            if (seen[s]) {
                report(label, ": slot ", s, " linked into two lists");
                return heads;
            }
            seen[s] = true;
            ++slots;
            if (is_free) {
                if (pool[s].headOfPacket)
                    report(label, ": free slot ", s,
                           " still marked as a packet head");
            } else if (pool[s].headOfPacket) {
                if (tail_of_packet != 0)
                    report(label, ": packet slot chain truncated at "
                           "slot ", s, " (", tail_of_packet,
                           " body slots missing)");
                if (pool[s].packet.outPort != partition)
                    report(label, ": packet ", pool[s].packet.id,
                           " queued under output ", partition,
                           " but routed to ", pool[s].packet.outPort);
                if (!pool[s].packet.valid())
                    report(label, ": invalid packet ",
                           pool[s].packet.id, " in partition ",
                           partition);
                tail_of_packet = pool[s].packet.lengthSlots - 1;
                ++heads;
            } else {
                if (tail_of_packet == 0)
                    report(label, ": slot ", s,
                           " belongs to no packet (FIFO chain "
                           "broken)");
                else
                    --tail_of_packet;
            }
            prev = s;
            if (slots > perQueueCapacity) {
                report(label, ": cycle detected in slot list");
                return heads;
            }
        }
        if (tail_of_packet != 0)
            report(label, ": last packet is missing ", tail_of_packet,
                   " of its body slots");
        if (prev != list.tail)
            report(label,
                   ": tail register does not point at the last slot");
        if (slots != list.slots)
            report(label, ": list slot counter drifted (walked ", slots,
                   ", register holds ", list.slots, ")");
        return heads;
    };

    std::uint32_t total_packets = 0;
    std::uint32_t total_free = 0;
    for (PortId out = 0; out < numOutputs(); ++out) {
        walk(freeLists[out],
             detail::concat("partition ", out, " free list"), out,
             true);
        const std::string label = detail::concat("queue ", out);
        const std::uint32_t heads = walk(queues[out], label, out, false);
        if (heads != packetsPerQueue[out])
            report(label, ": packet counter drifted (walked ", heads,
                   ", register holds ", packetsPerQueue[out], ")");
        if (queues[out].slots + reservedFor(out) > perQueueCapacity)
            report("partition ", out, " over its static bound (",
                   queues[out].slots, " used + ", reservedFor(out),
                   " reserved > ", perQueueCapacity, ")");
        total_packets += heads;
        total_free += freeLists[out].slots;
    }
    for (std::size_t s = 0; s < pool.size(); ++s) {
        if (!seen[s])
            report("slot ", s, " leaked from every list");
    }
    if (total_packets != packets)
        report("packet count accounting drifted (", total_packets,
               " stored, ", packets, " counted)");
    if (total_free != freeTotal)
        report("free slot accounting drifted (", total_free,
               " on the lists, ", freeTotal, " counted)");
    return violations;
}

bool
StaticallyPartitionedBuffer::faultLeakSlot()
{
    if (freeLists[0].slots == 0)
        return false;
    slotListRemoveHead(pool, freeLists[0]);
    --freeTotal;
    return true;
}

} // namespace damq

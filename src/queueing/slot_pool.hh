/**
 * @file
 * Index-linked slot-list primitives shared by the buffer models.
 *
 * The DAMQ hardware threads its storage slots into singly linked
 * lists through per-slot *pointer registers*; a list is addressed
 * by a head/tail register pair (Section 3.1 of the paper).  The
 * same structure turns out to be the fastest software
 * representation as well — no allocation ever happens after
 * construction, every slot lives in one contiguous pool, and a
 * push or pop is a handful of register updates — so the statically
 * partitioned organizations and the reference oracle use it too.
 *
 * A *node* type only needs a `SlotId next` member; everything else
 * (packet metadata, head-of-packet marks) is the owner's business.
 */

#ifndef DAMQ_QUEUEING_SLOT_POOL_HH
#define DAMQ_QUEUEING_SLOT_POOL_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace damq {

/** Head/tail register pair plus a node occupancy counter. */
struct SlotListRegs
{
    SlotId head = kNullSlot;
    SlotId tail = kNullSlot;
    std::uint32_t slots = 0;
};

/** Detach and return the first node of @p list (must be non-empty). */
template <typename Node>
inline SlotId
slotListRemoveHead(std::vector<Node> &pool, SlotListRegs &list)
{
    damq_assert(list.head != kNullSlot, "removeHead from empty list");
    const SlotId s = list.head;
    list.head = pool[s].next;
    if (list.head == kNullSlot)
        list.tail = kNullSlot;
    pool[s].next = kNullSlot;
    --list.slots;
    return s;
}

/** Append node @p s at the tail of @p list. */
template <typename Node>
inline void
slotListAppendTail(std::vector<Node> &pool, SlotListRegs &list, SlotId s)
{
    pool[s].next = kNullSlot;
    if (list.tail == kNullSlot) {
        list.head = s;
    } else {
        pool[list.tail].next = s;
    }
    list.tail = s;
    ++list.slots;
}

} // namespace damq

#endif // DAMQ_QUEUEING_SLOT_POOL_HH

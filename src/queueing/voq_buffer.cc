#include "queueing/voq_buffer.hh"

#include "common/logging.hh"

namespace damq {

VoqBuffer::VoqBuffer(QueueLayout queue_layout,
                     std::uint32_t capacity_slots,
                     std::uint32_t private_slots)
    : DamqBuffer(queue_layout, capacity_slots),
      privateSlots(private_slots)
{
    if (private_slots < 1)
        damq_fatal("a VOQ buffer needs at least one private slot "
                   "per queue");
    if (capacity_slots < queue_layout.numQueues() * private_slots) {
        damq_fatal("a VOQ buffer needs capacity for every queue's "
                   "private allocation (got ", capacity_slots,
                   " slots for ", queue_layout.numQueues(),
                   " queues x ", private_slots, " private slots)");
    }
}

std::uint32_t
VoqBuffer::privateDeficit(std::uint32_t exclude) const
{
    std::uint32_t deficit = 0;
    for (std::uint32_t q = 0; q < numQueues(); ++q) {
        if (q == exclude)
            continue;
        const std::uint32_t held = queueSlotsFlat(q);
        deficit += held < privateSlots ? privateSlots - held : 0;
    }
    return deficit;
}

void
VoqBuffer::fillAdmissionState(QueueKey key, AdmissionState &st) const
{
    DamqBuffer::fillAdmissionState(key, st);
    // Replace the escape-slot debt with the hybrid private/shared
    // guarantee: the private deficit of the other queues stays
    // claimable (strictly stronger — see the file comment).
    st.guaranteeSlots = privateDeficit(layout().flatten(key));
}

std::vector<std::string>
VoqBuffer::checkInvariants() const
{
    std::vector<std::string> violations = DamqBuffer::checkInvariants();
    const std::uint32_t deficit = privateDeficit(numQueues());
    if (freeSlotCount() < deficit) {
        violations.push_back(detail::concat(
            "VOQ private-slot guarantee violated: queues are owed ",
            deficit, " private slots but only ", freeSlotCount(),
            " are free"));
    }
    return violations;
}

} // namespace damq

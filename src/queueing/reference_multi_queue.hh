/**
 * @file
 * A deliberately simple multi-queue oracle used by the property
 * tests: per-output std::deque queues over one shared slot budget.
 * Behaviorally it must match DamqBuffer operation for operation;
 * the tests drive both with identical random streams and compare.
 */

#ifndef DAMQ_QUEUEING_REFERENCE_MULTI_QUEUE_HH
#define DAMQ_QUEUEING_REFERENCE_MULTI_QUEUE_HH

#include <deque>
#include <vector>

#include "queueing/buffer_model.hh"

namespace damq {

/** Oracle implementation of the DAMQ semantics. */
class ReferenceMultiQueue final : public BufferModel
{
  public:
    /** See BufferModel::BufferModel. */
    ReferenceMultiQueue(PortId num_outputs, std::uint32_t capacity_slots);

    std::uint32_t usedSlots() const override { return used; }
    std::uint32_t totalPackets() const override { return packets; }

    bool canAccept(PortId out, std::uint32_t len) const override;
    void push(const Packet &pkt) override;
    const Packet *peek(PortId out) const override;
    std::uint32_t queueLength(PortId out) const override;
    Packet pop(PortId out) override;

    BufferType type() const override { return BufferType::Damq; }

    void clear() override;

  private:
    std::vector<std::deque<Packet>> queues;
    std::uint32_t used = 0;
    std::uint32_t packets = 0;
};

} // namespace damq

#endif // DAMQ_QUEUEING_REFERENCE_MULTI_QUEUE_HH

/**
 * @file
 * A deliberately simple multi-queue oracle used by the property
 * tests: per-queue FIFO lists over one shared slot budget.
 * Behaviorally it must match DamqBuffer operation for operation;
 * the tests drive both with identical random streams and compare.
 *
 * Storage is a pool of per-*packet* nodes threaded into one free
 * list and one list per output — intentionally a different shape
 * from DamqBuffer's per-*slot* chains (where an L-slot packet
 * occupies L linked entries), so the oracle stays structurally
 * independent of the implementation it checks while avoiding the
 * allocation churn of std::deque.
 */

#ifndef DAMQ_QUEUEING_REFERENCE_MULTI_QUEUE_HH
#define DAMQ_QUEUEING_REFERENCE_MULTI_QUEUE_HH

#include <vector>

#include "queueing/buffer_model.hh"
#include "queueing/slot_pool.hh"

namespace damq {

/** Oracle implementation of the DAMQ semantics. */
class ReferenceMultiQueue final : public BufferModel
{
  public:
    /** See BufferModel::BufferModel. */
    ReferenceMultiQueue(QueueLayout queue_layout,
                        std::uint32_t capacity_slots);

    std::uint32_t usedSlots() const override { return used; }
    std::uint32_t totalPackets() const override { return packets; }

    void fillAdmissionState(QueueKey key,
                            AdmissionState &st) const override;
    void pushImpl(const Packet &pkt) override;
    const Packet *peek(QueueKey key) const override;
    std::uint32_t queueLength(QueueKey key) const override;
    Packet popImpl(QueueKey key) override;
    FlitEvent flitArrivedImpl(QueueKey key) override;
    FlitEvent flitSentImpl(QueueKey key) override;
    void forEachInQueue(QueueKey key,
                        const PacketVisitor &visit) const override;

    BufferType type() const override { return BufferType::Damq; }

    void clear() override;

  private:
    /** One queued packet (every packet is >= 1 slot, so
     *  capacitySlots() nodes always suffice). */
    struct Node
    {
        SlotId next = kNullSlot;
        Packet packet;
    };

    std::vector<Node> nodes;
    SlotListRegs freeNodes;
    /// one per flat queue (QueueLayout::flatten); .slots counts packets
    std::vector<SlotListRegs> queues;
    std::uint32_t used = 0;
    std::uint32_t packets = 0;
};

} // namespace damq

#endif // DAMQ_QUEUEING_REFERENCE_MULTI_QUEUE_HH

#include "queueing/reference_multi_queue.hh"

#include "common/logging.hh"

namespace damq {

ReferenceMultiQueue::ReferenceMultiQueue(PortId num_outputs,
                                         std::uint32_t capacity_slots)
    : BufferModel(num_outputs, capacity_slots), queues(num_outputs)
{
}

bool
ReferenceMultiQueue::canAccept(PortId out, std::uint32_t len) const
{
    damq_assert(out < numOutputs(), "canAccept: bad output ", out);
    return used + reservedSlotsTotal() + len <= capacitySlots();
}

void
ReferenceMultiQueue::push(const Packet &pkt)
{
    damq_assert(pkt.outPort < numOutputs(), "push: bad output port");
    damq_assert(used + reservedSlotsTotal() + pkt.lengthSlots <=
                    capacitySlots(),
                "push into a full reference buffer");
    queues[pkt.outPort].push_back(pkt);
    used += pkt.lengthSlots;
    ++packets;
}

const Packet *
ReferenceMultiQueue::peek(PortId out) const
{
    damq_assert(out < numOutputs(), "peek: bad output ", out);
    if (queues[out].empty())
        return nullptr;
    return &queues[out].front();
}

std::uint32_t
ReferenceMultiQueue::queueLength(PortId out) const
{
    damq_assert(out < numOutputs(), "queueLength: bad output ", out);
    return static_cast<std::uint32_t>(queues[out].size());
}

Packet
ReferenceMultiQueue::pop(PortId out)
{
    damq_assert(out < numOutputs(), "pop: bad output ", out);
    damq_assert(!queues[out].empty(), "pop from empty queue ", out);
    Packet pkt = queues[out].front();
    queues[out].pop_front();
    used -= pkt.lengthSlots;
    --packets;
    return pkt;
}

void
ReferenceMultiQueue::clear()
{
    BufferModel::clear();
    for (auto &q : queues)
        q.clear();
    used = 0;
    packets = 0;
}

} // namespace damq

#include "queueing/reference_multi_queue.hh"

#include "common/logging.hh"

namespace damq {

ReferenceMultiQueue::ReferenceMultiQueue(QueueLayout queue_layout,
                                         std::uint32_t capacity_slots)
    : BufferModel(queue_layout, capacity_slots), nodes(capacity_slots),
      queues(queue_layout.numQueues())
{
    for (SlotId n = 0; n < capacity_slots; ++n)
        slotListAppendTail(nodes, freeNodes, n);
}

void
ReferenceMultiQueue::fillAdmissionState(QueueKey key,
                                        AdmissionState &st) const
{
    // Same admission inputs as DamqBuffer — shared pool free space
    // with the escape-slot debt (see admissionFeasible() in
    // admission_policy.hh) — so the property tests can compare the
    // two decision for decision.
    st.poolFree = capacitySlots() - used;
    st.reservedCharge = reservedSlotsTotal();
    st.guaranteeSlots = escapeSlotsOwed(key.vc);
    const SlotListRegs &queue = queues[layout().flatten(key)];
    st.queueLength = queue.slots; // one node per packet
    if (admissionPolicy().wantsQueueOccupancy()) {
        std::uint32_t slots = 0;
        for (SlotId n = queue.head; n != kNullSlot; n = nodes[n].next)
            slots += nodes[n].packet.slotsHeld();
        st.queueSlots = slots;
    }
}

void
ReferenceMultiQueue::pushImpl(const Packet &pkt)
{
    const QueueKey key{pkt.outPort, pkt.vc};
    damq_assert(layout().contains(key), "push: bad output port");
    damq_assert(used + reservedSlotsTotal() + pkt.slotsHeld() <=
                    capacitySlots(),
                "push into a full reference buffer");
    const SlotId n = slotListRemoveHead(nodes, freeNodes);
    nodes[n].packet = pkt;
    slotListAppendTail(nodes, queues[layout().flatten(key)], n);
    used += pkt.slotsHeld();
    ++packets;
}

const Packet *
ReferenceMultiQueue::peek(QueueKey key) const
{
    damq_assert(layout().contains(key), "peek: bad output ", key.out);
    const SlotListRegs &queue = queues[layout().flatten(key)];
    if (queue.head == kNullSlot)
        return nullptr;
    return &nodes[queue.head].packet;
}

std::uint32_t
ReferenceMultiQueue::queueLength(QueueKey key) const
{
    damq_assert(layout().contains(key), "queueLength: bad output ",
                key.out);
    return queues[layout().flatten(key)].slots;
}

Packet
ReferenceMultiQueue::popImpl(QueueKey key)
{
    damq_assert(layout().contains(key), "pop: bad output ", key.out);
    SlotListRegs &queue = queues[layout().flatten(key)];
    damq_assert(queue.head != kNullSlot,
                "pop from empty queue ", key.out);
    const SlotId n = slotListRemoveHead(nodes, queue);
    const Packet pkt = nodes[n].packet;
    slotListAppendTail(nodes, freeNodes, n);
    used -= pkt.slotsHeld();
    --packets;
    return pkt;
}

BufferModel::FlitEvent
ReferenceMultiQueue::flitArrivedImpl(QueueKey key)
{
    damq_assert(layout().contains(key), "flitArrived: bad queue ",
                key.out, ".vc", key.vc);
    SlotListRegs &queue = queues[layout().flatten(key)];
    damq_assert(queue.tail != kNullSlot,
                "flitArrived on an empty queue");
    Packet &pkt = nodes[queue.tail].packet;
    damq_assert(pkt.flitsArrived > 0 &&
                    pkt.flitsArrived < pkt.lengthSlots,
                "flit arrival on a fully arrived packet");
    const std::uint32_t before = pkt.slotsHeld();
    ++pkt.flitsArrived;
    const bool grew = pkt.slotsHeld() > before;
    if (grew)
        ++used;
    return {&pkt, grew};
}

BufferModel::FlitEvent
ReferenceMultiQueue::flitSentImpl(QueueKey key)
{
    damq_assert(layout().contains(key), "flitSent: bad queue ",
                key.out, ".vc", key.vc);
    SlotListRegs &queue = queues[layout().flatten(key)];
    damq_assert(queue.head != kNullSlot, "flitSent on an empty queue");
    Packet &pkt = nodes[queue.head].packet;
    damq_assert(pkt.flitsSent < pkt.arrivedFlits(),
                "flitSent without an arrived flit to forward");
    damq_assert(pkt.flitsSent + 1 < pkt.lengthSlots,
                "flitSent would forward the tail (that is the pop)");
    const std::uint32_t before = pkt.slotsHeld();
    ++pkt.flitsSent;
    const bool shrank = pkt.slotsHeld() < before;
    if (shrank)
        --used;
    return {&pkt, shrank};
}

void
ReferenceMultiQueue::forEachInQueue(QueueKey key,
                                    const PacketVisitor &visit) const
{
    damq_assert(layout().contains(key), "forEachInQueue: bad output ",
                key.out);
    for (SlotId n = queues[layout().flatten(key)].head; n != kNullSlot;
         n = nodes[n].next)
        visit(nodes[n].packet);
}

void
ReferenceMultiQueue::clear()
{
    BufferModel::clear();
    for (auto &node : nodes)
        node = Node{};
    freeNodes = SlotListRegs{};
    for (auto &queue : queues)
        queue = SlotListRegs{};
    for (SlotId n = 0; n < capacitySlots(); ++n)
        slotListAppendTail(nodes, freeNodes, n);
    used = 0;
    packets = 0;
}

} // namespace damq

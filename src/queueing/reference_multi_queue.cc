#include "queueing/reference_multi_queue.hh"

#include "common/logging.hh"

namespace damq {

ReferenceMultiQueue::ReferenceMultiQueue(PortId num_outputs,
                                         std::uint32_t capacity_slots)
    : BufferModel(num_outputs, capacity_slots), nodes(capacity_slots),
      queues(num_outputs)
{
    for (SlotId n = 0; n < capacity_slots; ++n)
        slotListAppendTail(nodes, freeNodes, n);
}

bool
ReferenceMultiQueue::canAccept(PortId out, std::uint32_t len) const
{
    damq_assert(out < numOutputs(), "canAccept: bad output ", out);
    return used + reservedSlotsTotal() + len <= capacitySlots();
}

void
ReferenceMultiQueue::pushImpl(const Packet &pkt)
{
    damq_assert(pkt.outPort < numOutputs(), "push: bad output port");
    damq_assert(used + reservedSlotsTotal() + pkt.lengthSlots <=
                    capacitySlots(),
                "push into a full reference buffer");
    const SlotId n = slotListRemoveHead(nodes, freeNodes);
    nodes[n].packet = pkt;
    slotListAppendTail(nodes, queues[pkt.outPort], n);
    used += pkt.lengthSlots;
    ++packets;
}

const Packet *
ReferenceMultiQueue::peek(PortId out) const
{
    damq_assert(out < numOutputs(), "peek: bad output ", out);
    if (queues[out].head == kNullSlot)
        return nullptr;
    return &nodes[queues[out].head].packet;
}

std::uint32_t
ReferenceMultiQueue::queueLength(PortId out) const
{
    damq_assert(out < numOutputs(), "queueLength: bad output ", out);
    return queues[out].slots;
}

Packet
ReferenceMultiQueue::popImpl(PortId out)
{
    damq_assert(out < numOutputs(), "pop: bad output ", out);
    damq_assert(queues[out].head != kNullSlot,
                "pop from empty queue ", out);
    const SlotId n = slotListRemoveHead(nodes, queues[out]);
    const Packet pkt = nodes[n].packet;
    slotListAppendTail(nodes, freeNodes, n);
    used -= pkt.lengthSlots;
    --packets;
    return pkt;
}

void
ReferenceMultiQueue::forEachInQueue(PortId out,
                                    const PacketVisitor &visit) const
{
    damq_assert(out < numOutputs(), "forEachInQueue: bad output ", out);
    for (SlotId n = queues[out].head; n != kNullSlot; n = nodes[n].next)
        visit(nodes[n].packet);
}

void
ReferenceMultiQueue::clear()
{
    BufferModel::clear();
    for (auto &node : nodes)
        node = Node{};
    freeNodes = SlotListRegs{};
    for (auto &queue : queues)
        queue = SlotListRegs{};
    for (SlotId n = 0; n < capacitySlots(); ++n)
        slotListAppendTail(nodes, freeNodes, n);
    used = 0;
    packets = 0;
}

} // namespace damq

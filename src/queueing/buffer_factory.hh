/**
 * @file
 * Factory producing any of the four buffer organizations.
 */

#ifndef DAMQ_QUEUEING_BUFFER_FACTORY_HH
#define DAMQ_QUEUEING_BUFFER_FACTORY_HH

#include <memory>

#include "queueing/buffer_model.hh"

namespace damq {

/**
 * Construct a buffer of the given organization and queue layout (a
 * bare output count means one VC).  For SAMQ/SAFC the slot count
 * must divide evenly by the number of queues (fatal otherwise,
 * matching the paper's "even number of slots" restriction).
 */
std::unique_ptr<BufferModel> makeBuffer(BufferType type,
                                        QueueLayout queue_layout,
                                        std::uint32_t capacity_slots);

} // namespace damq

#endif // DAMQ_QUEUEING_BUFFER_FACTORY_HH

/**
 * @file
 * Factory producing any of the buffer organizations, optionally
 * with a dynamic sharing policy installed on top.
 */

#ifndef DAMQ_QUEUEING_BUFFER_FACTORY_HH
#define DAMQ_QUEUEING_BUFFER_FACTORY_HH

#include <memory>

#include "queueing/buffer_model.hh"

namespace damq {

/**
 * Construct a buffer of the given organization and queue layout (a
 * bare output count means one VC).  For SAMQ/SAFC the slot count
 * must divide evenly by the number of queues (fatal otherwise,
 * matching the paper's "even number of slots" restriction).
 */
std::unique_ptr<BufferModel> makeBuffer(BufferType type,
                                        QueueLayout queue_layout,
                                        std::uint32_t capacity_slots);

/**
 * As above, plus the sharing-policy configuration: the VOQ
 * organization takes its private-slot count from @p sharing, and a
 * non-static policy kind is built once per call and installed via
 * BufferModel::setAdmissionPolicy().  Dynamic sharing policies
 * govern a *shared* pool, so requesting one for the statically
 * partitioned organizations (SAMQ/SAFC) is fatal.
 */
std::unique_ptr<BufferModel> makeBuffer(
    BufferType type, QueueLayout queue_layout,
    std::uint32_t capacity_slots, const SharingPolicyConfig &sharing);

} // namespace damq

#endif // DAMQ_QUEUEING_BUFFER_FACTORY_HH

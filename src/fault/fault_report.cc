#include "fault/fault_report.hh"

#include <sstream>

#include "common/logging.hh"

namespace damq {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::HeaderBitFlip: return "header-bit-flip";
      case FaultKind::PacketDrop: return "packet-drop";
      case FaultKind::ArbiterStuck: return "arbiter-stuck";
      case FaultKind::SlotLeak: return "slot-leak";
      case FaultKind::CreditDelay: return "credit-delay";
      case FaultKind::LinkDown: return "link-down";
      case FaultKind::RouterDown: return "router-down";
    }
    damq_panic("unknown FaultKind ", static_cast<int>(kind));
}

std::uint64_t
FaultReport::totalInjected() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t count : injected)
        total += count;
    return total;
}

std::string
FaultReport::summaryText() const
{
    std::ostringstream out;
    out << "fault report (seed " << seed << ")\n";
    for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
        if (injected[k] == 0)
            continue;
        out << "  injected " << faultKindName(static_cast<FaultKind>(k))
            << ": " << injected[k] << "\n";
    }
    out << "  corruptions detected: " << corruptionsDetected << "\n"
        << "  packets removed by faults: " << packetsDroppedByFaults
        << "\n"
        << "  audits run: " << auditsRun << ", violations: "
        << auditViolations << "\n";
    if (recovery.anyActivity()) {
        out << "  recovery: " << recovery.framesSent
            << " frames sent, " << recovery.crcRejected
            << " CRC-nacked, " << recovery.timeouts << " timed out, "
            << recovery.retransmits << " retransmits\n"
            << "  recovered " << recovery.packetsRecovered
            << " packets, lost " << recovery.packetsLostAfterRetry
            << " after retries, rerouted "
            << recovery.packetsRerouted << "\n"
            << "  dead links declared: "
            << recovery.deadLinksDeclared
            << ", revived: " << recovery.linksRevived << "\n";
    }
    if (creditsIssued != 0 || creditsReturned != 0) {
        out << "  credits issued: " << creditsIssued
            << ", returned: " << creditsReturned << "\n";
    }
    for (const std::string &sample : violationSamples)
        out << "    e.g. " << sample << "\n";
    if (watchdogFired) {
        out << "  watchdog fired at cycle " << watchdogFiredAt << "\n"
            << watchdogDiagnostic;
    } else {
        out << "  watchdog: quiet\n";
    }
    return out.str();
}

} // namespace damq

/**
 * @file
 * Deadlock/livelock watchdog for the network simulators.
 *
 * A blocking-flow-control network can wedge: a stuck arbiter, a
 * leaked slot, or a back-pressure cycle can leave packets buffered
 * with nothing moving.  The watchdog observes every component once
 * per cycle ("does it hold work? did it move a packet?") and fires
 * when some component has held work without moving anything for a
 * configurable number of cycles.  Firing is a diagnosis, not an
 * abort: it captures a deterministic snapshot (stable component
 * order, seed echoed) so the wedge can be reproduced and read.
 */

#ifndef DAMQ_FAULT_WATCHDOG_HH
#define DAMQ_FAULT_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fault/fault_report.hh"

namespace damq {

/** No-forward-progress detector. */
class DeadlockWatchdog
{
  public:
    /** @param stall_threshold cycles of no movement (while holding
     *  work) before firing; 0 disables the watchdog. */
    explicit DeadlockWatchdog(Cycle stall_threshold = 0)
        : threshold(stall_threshold)
    {
    }

    /** Whether the watchdog is armed. */
    bool enabled() const { return threshold > 0; }

    /** Register a component; call in a fixed order so the snapshot
     *  ordering is stable across runs. */
    std::size_t addComponent(const std::string &name);

    /**
     * Per-cycle observation for one component.  @p has_work is
     * whether it currently buffers packets; @p moved is whether it
     * transmitted (or delivered) at least one packet this cycle.
     * Idle components are never considered stalled.
     */
    void observe(std::size_t comp, Cycle now, bool has_work,
                 bool moved);

    /**
     * Evaluate the stall condition at @p now.  On the first trip,
     * records the diagnostic — the stalled components in
     * registration order plus @p snapshot() — and returns true.
     * Subsequent trips of the same wedge return false (one report
     * per run keeps logs readable).
     */
    bool check(Cycle now,
               const std::function<std::string()> &snapshot);

    /** Whether the watchdog has fired. */
    bool fired() const { return hasFired; }

    /** Cycle of the (first) trip. */
    Cycle firedAt() const { return tripCycle; }

    /** The recorded diagnostic, empty until fired. */
    const std::string &diagnostic() const { return report; }

    /** Copy watchdog outcome into @p fault_report. */
    void fillReport(FaultReport &fault_report) const;

  private:
    /** Per-component movement history. */
    struct State
    {
        std::string name;
        Cycle lastMove = 0;
        bool hasWork = false;
    };

    Cycle threshold;
    std::vector<State> components;
    bool hasFired = false;
    Cycle tripCycle = 0;
    std::string report;
};

} // namespace damq

#endif // DAMQ_FAULT_WATCHDOG_HH

#include "fault/watchdog.hh"

#include <sstream>

#include "common/logging.hh"

namespace damq {

std::size_t
DeadlockWatchdog::addComponent(const std::string &name)
{
    components.push_back(State{name, 0, false});
    return components.size() - 1;
}

void
DeadlockWatchdog::observe(std::size_t comp, Cycle now, bool has_work,
                          bool moved)
{
    if (!enabled())
        return;
    damq_assert(comp < components.size(),
                "observe: unregistered component ", comp);
    State &state = components[comp];
    state.hasWork = has_work;
    // An idle component is not stalled: restart its clock so a
    // packet arriving later gets the full threshold to move.
    if (moved || !has_work)
        state.lastMove = now;
}

bool
DeadlockWatchdog::check(Cycle now,
                        const std::function<std::string()> &snapshot)
{
    if (!enabled() || hasFired)
        return false;

    std::vector<const State *> stalled;
    for (const State &state : components) {
        if (state.hasWork && now >= state.lastMove &&
            now - state.lastMove >= threshold)
            stalled.push_back(&state);
    }
    if (stalled.empty())
        return false;

    hasFired = true;
    tripCycle = now;
    std::ostringstream out;
    out << "  watchdog: no forward progress for " << threshold
        << " cycles at cycle " << now << "\n";
    for (const State *state : stalled) {
        out << "    " << state->name
            << ": holds packets, none moved since cycle "
            << state->lastMove << "\n";
    }
    out << snapshot();
    report = out.str();
    return true;
}

void
DeadlockWatchdog::fillReport(FaultReport &fault_report) const
{
    fault_report.watchdogFired = hasFired;
    fault_report.watchdogFiredAt = tripCycle;
    fault_report.watchdogDiagnostic = report;
}

} // namespace damq

#include "fault/invariant_auditor.hh"

#include <unordered_map>

#include "common/logging.hh"

namespace damq {

void
InvariantAuditor::record(Cycle cycle, const std::string &component,
                         const std::vector<std::string> &found)
{
    for (const std::string &v : found) {
        ++violations;
        if (sampleLog.size() < kMaxSamples)
            sampleLog.push_back(detail::concat("cycle ", cycle, " ",
                                               component, ": ", v));
    }
}

void
InvariantAuditor::fillReport(FaultReport &report) const
{
    report.auditsRun = audits;
    report.auditViolations = violations;
    report.violationSamples = sampleLog;
}

std::vector<std::string>
auditGrantLegality(const GrantList &grants, PortId num_inputs,
                   PortId num_outputs,
                   std::uint32_t max_reads_per_input, VcId num_vcs)
{
    std::vector<std::string> violations;
    std::vector<std::uint32_t> per_input(num_inputs, 0);
    std::vector<std::uint32_t> per_output(num_outputs, 0);
    for (const Grant &g : grants) {
        if (g.input >= num_inputs || g.output >= num_outputs) {
            violations.push_back(detail::concat(
                "grant outside switch geometry (", g.input, " -> ",
                g.output, ")"));
            continue;
        }
        if (g.vc >= num_vcs) {
            violations.push_back(detail::concat(
                "grant ", g.input, " -> ", g.output, " on vc ",
                g.vc, " (switch has ", num_vcs, " VCs)"));
            continue;
        }
        ++per_input[g.input];
        ++per_output[g.output];
    }
    for (PortId in = 0; in < num_inputs; ++in) {
        if (per_input[in] > max_reads_per_input)
            violations.push_back(detail::concat(
                "input ", in, " granted ", per_input[in],
                " reads in one cycle (read bandwidth ",
                max_reads_per_input, ")"));
    }
    for (PortId out = 0; out < num_outputs; ++out) {
        if (per_output[out] > 1)
            violations.push_back(detail::concat(
                "output ", out, " granted ", per_output[out],
                " times in one cycle"));
    }
    return violations;
}

std::vector<std::string>
auditQueueFifoOrder(const BufferModel &buffer)
{
    std::vector<std::string> violations;
    std::unordered_map<NodeId, std::uint32_t> last_seq;
    const QueueLayout layout = buffer.layout();
    for (std::uint32_t q = 0; q < layout.numQueues(); ++q) {
        const QueueKey key = layout.unflatten(q);
        last_seq.clear();
        buffer.forEachInQueue(key, [&](const Packet &pkt) {
            if (pkt.outPort != key.out) {
                violations.push_back(detail::concat(
                    "queue ", q, ": packet ", pkt.id,
                    " routed to output ", pkt.outPort));
            }
            if (layout.vcs > 1 && pkt.vc != key.vc) {
                violations.push_back(detail::concat(
                    "queue ", q, ": packet ", pkt.id,
                    " travelling on vc ", pkt.vc));
            }
            const auto found = last_seq.find(pkt.source);
            if (found != last_seq.end() && pkt.seq <= found->second) {
                violations.push_back(detail::concat(
                    "queue ", q, ": source ", pkt.source,
                    " out of FIFO order (seq ", pkt.seq,
                    " queued behind seq ", found->second, ")"));
            }
            last_seq[pkt.source] = pkt.seq;
        });
    }
    return violations;
}

} // namespace damq

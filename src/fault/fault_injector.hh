/**
 * @file
 * Deterministic, seed-driven fault injection for the switch and
 * network simulators.
 *
 * The injector owns its own PRNG, separate from the traffic
 * generator's, and every hook is a plain branch when its rate is
 * zero — so a run with faults disabled consumes *no* random draws
 * and is bit-identical to a build without the fault subsystem.
 * With faults enabled, the same seed always produces the same fault
 * plan: the simulators query the hooks in a fixed order (component
 * registration order, once per cycle), which makes every failure
 * reproducible from its command line.
 *
 * Fault model (one class per FaultKind):
 *  - HeaderBitFlip: one bit of an immutable header field flips while
 *    the packet crosses a link; the sealed checksum lets the
 *    receiver *detect* the damage instead of mis-delivering.
 *  - PacketDrop: the packet vanishes from the link; end-to-end
 *    accounting charges it to the fault counter.
 *  - ArbiterStuck: a switch's arbiter issues no grants for a few
 *    consecutive cycles (a stuck grant latch); traffic must resume
 *    afterwards, and the watchdog distinguishes this from deadlock.
 *  - SlotLeak: one buffer slot falls out of every linked list, as
 *    if its pointer register latched garbage; the periodic invariant
 *    audit reports the leak with the owning component and cycle.
 *  - CreditDelay: the back-pressure/credit path reports "full" for
 *    a few cycles even though space exists, delaying transfers
 *    without losing packets.
 */

#ifndef DAMQ_FAULT_FAULT_INJECTOR_HH
#define DAMQ_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "fault/fault_report.hh"
#include "queueing/packet.hh"

namespace damq {

/** Rates and episode lengths for each fault class. */
struct FaultConfig
{
    /** Seed for the injector's private PRNG. */
    std::uint64_t seed = 1;

    /** Probability a moving packet's header loses a bit, per hop. */
    double headerBitFlipRate = 0.0;

    /** Probability a moving packet is dropped, per hop. */
    double packetDropRate = 0.0;

    /** Probability per component-cycle an arbiter jams. */
    double arbiterStuckRate = 0.0;
    /** Cycles an arbiter-stuck episode lasts. */
    std::uint32_t arbiterStuckCycles = 4;

    /** Probability per component-cycle one buffer slot leaks. */
    double slotLeakRate = 0.0;

    /** Probability per component-cycle credits stall. */
    double creditDelayRate = 0.0;
    /** Cycles a credit-delay episode lasts. */
    std::uint32_t creditDelayCycles = 2;

    // --- persistent hard faults -------------------------------------
    // A LinkDown episode loses every frame crossing the link; a
    // RouterDown episode freezes a whole switch (no grants, no
    // receives).  Episodes last *Cycles cycles, or forever when the
    // duration is 0 — the permanent-failure case.

    /** Probability per link-cycle a link-down episode starts. */
    double linkDownRate = 0.0;
    /** Cycles a link-down episode lasts (0 = permanent). */
    Cycle linkDownCycles = 0;

    /**
     * Fraction of fault-eligible links forced permanently down from
     * cycle 0, chosen by the fault seed.  The knob behind the
     * failed-link-fraction degradation curves.
     */
    double linkDownFraction = 0.0;

    /** Probability per component-cycle a router-down episode starts. */
    double routerDownRate = 0.0;
    /** Cycles a router-down episode lasts (0 = permanent). */
    Cycle routerDownCycles = 0;

    /** Whether any persistent hard-fault class is configured. */
    bool hardFaultsEnabled() const
    {
        return linkDownRate > 0.0 || linkDownFraction > 0.0 ||
               routerDownRate > 0.0;
    }

    /** Whether any fault class has a nonzero rate. */
    bool anyEnabled() const
    {
        return headerBitFlipRate > 0.0 || packetDropRate > 0.0 ||
               arbiterStuckRate > 0.0 || slotLeakRate > 0.0 ||
               creditDelayRate > 0.0 || hardFaultsEnabled();
    }
};

/** Seed-driven fault plan shared by one simulator instance. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config);

    /** Whether any hook can ever fire. */
    bool enabled() const { return config.anyEnabled(); }

    /** The configuration this plan was built from. */
    const FaultConfig &configuration() const { return config; }

    /**
     * Register a fault site (one switch, node, or arbiter).  The
     * returned handle indexes per-component episode state; hooks
     * must be queried in a deterministic order across components.
     */
    std::size_t addComponent(const std::string &name);

    /** Name given to addComponent. */
    const std::string &componentName(std::size_t comp) const;

    /** Number of registered fault sites. */
    std::size_t numComponents() const { return components.size(); }

    /**
     * Roll a per-hop drop fault for a packet leaving @p comp.
     * Returns true when the packet must vanish (already recorded).
     */
    bool dropOnLink(std::size_t comp, Cycle now, const Packet &pkt);

    /**
     * Roll a per-hop header corruption for a packet leaving
     * @p comp; on a hit, flips one bit of a checksummed header
     * field in place and records the event.  Returns whether the
     * packet was corrupted.
     */
    bool corruptOnLink(std::size_t comp, Cycle now, Packet &pkt);

    /**
     * Whether @p comp's arbiter is jammed this cycle.  At most one
     * episode roll per component-cycle (memoized), so repeated
     * queries in the same cycle are free and draw-neutral.
     */
    bool arbiterStuck(std::size_t comp, Cycle now);

    /**
     * Whether @p comp's credit/back-pressure path lies "full" this
     * cycle.  Memoized like arbiterStuck().
     */
    bool creditDelayed(std::size_t comp, Cycle now);

    /**
     * Roll the per-cycle slot-leak fault for @p comp.  Returns true
     * when the caller should leak one slot; the caller then reports
     * the outcome through recordFault() only if a slot was actually
     * lost (the buffer may be empty).
     */
    bool rollSlotLeak(std::size_t comp, Cycle now);

    // --- persistent hard faults -------------------------------------

    /**
     * Register the fabric's links for hard-fault episodes.  Links
     * are numbered sw * ports_per_switch + out (the engine's LinkId
     * scheme); @p eligible flags which of them may be forced down
     * (delivery links to sinks are typically excluded).
     * @p reverse maps each directed link to its physical partner
     * (kNoReverseLink when the fabric is unidirectional there).
     * When linkDownFraction > 0, draws the permanent failure set
     * here — the only construction-time PRNG use, and only when
     * enabled.  The fraction counts *physical* links: a drawn
     * failure takes both directions of a duplex link down, the way
     * a severed cable would, so the live graph stays symmetric.
     */
    void configureLinks(std::size_t num_links,
                        std::uint32_t ports_per_switch,
                        const std::vector<std::uint8_t> &eligible,
                        const std::vector<std::size_t> &reverse);

    /** "No physical partner" marker for configureLinks' reverse map. */
    static constexpr std::size_t kNoReverseLink =
        static_cast<std::size_t>(-1);

    /**
     * Whether link @p link is forced down (loses every frame) this
     * cycle.  Rolls at most one episode per link-cycle (memoized);
     * the engine queries every link each cycle in link order, so the
     * draw sequence is deterministic.  Zero draws at rate 0.
     */
    bool linkForcedDown(std::size_t link, Cycle now);

    /**
     * Whether @p comp (a switch) is frozen this cycle: its arbiter
     * issues no grants and every frame sent to it is lost.
     * Memoized like arbiterStuck().
     */
    bool routerForcedDown(std::size_t comp, Cycle now);

    /** Record an injected fault in the report counters. */
    void recordFault(FaultKind kind, std::size_t comp, Cycle now,
                     const std::string &detail = std::string());

    /** Record a checksum catching a corrupted header. */
    void recordDetectedCorruption() { ++corruptionsDetected; }

    /** Injected count for one fault kind so far. */
    std::uint64_t injectedCount(FaultKind kind) const
    {
        return injected[static_cast<std::size_t>(kind)];
    }

    /** Copy counters and the event log into @p report. */
    void fillReport(FaultReport &report) const;

  private:
    /** Per-component episode state. */
    struct ComponentState
    {
        std::string name;
        Cycle stuckUntil = 0;       ///< arbiter jammed while now < this
        Cycle stuckRolledAt = kNeverRolled;
        Cycle delayUntil = 0;       ///< credits stalled while now < this
        Cycle delayRolledAt = kNeverRolled;
        Cycle downUntil = 0;        ///< router frozen while now < this
        Cycle downRolledAt = kNeverRolled;
    };

    /** Per-link hard-fault episode state. */
    struct LinkState
    {
        Cycle downUntil = 0; ///< frames lost while now < this
        Cycle rolledAt = kNeverRolled;
        bool eligible = false;
    };

    static constexpr Cycle kNeverRolled = ~Cycle{0};

    /** Episode end marking a permanent failure. */
    static constexpr Cycle kForever = ~Cycle{0};

    /** Cap on events kept verbatim (counters are never capped). */
    static constexpr std::size_t kMaxLoggedEvents = 64;

    FaultConfig config;
    Random rng;
    std::vector<ComponentState> components;
    std::vector<LinkState> links;
    std::uint32_t linkPorts = 1; ///< ports/switch, for event naming
    std::array<std::uint64_t, kNumFaultKinds> injected{};
    std::uint64_t corruptionsDetected = 0;
    std::vector<FaultEvent> events;
};

} // namespace damq

#endif // DAMQ_FAULT_FAULT_INJECTOR_HH

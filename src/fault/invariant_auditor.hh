/**
 * @file
 * Periodic, non-fatal structural auditing of buffers and grants.
 *
 * The buffer models each know how to check their own invariants
 * (BufferModel::checkInvariants / SwitchUnit::checkInvariants);
 * this class decides *when* to run those checks during a simulation
 * and collects what they find, without aborting — a fault-mode run
 * must detect corruption, count it, and keep going.
 *
 * Audit points (every `auditEveryCycles` network cycles):
 *  - slot conservation per buffer: no slot leaked from every list,
 *    none owned by two lists, per-output FIFO chains intact;
 *  - partition bounds for the statically allocated organizations;
 *  - the reserved-slot guarantee for DAMQR;
 *  - grant legality for the cycle's crossbar schedule (at most one
 *    grant per output, per-input grants within the buffer's read
 *    bandwidth);
 *  - the end-to-end packet conservation identity, which the
 *    simulators phrase as a violation string when it breaks.
 */

#ifndef DAMQ_FAULT_INVARIANT_AUDITOR_HH
#define DAMQ_FAULT_INVARIANT_AUDITOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fault/fault_report.hh"
#include "queueing/buffer_model.hh"
#include "switchsim/grant.hh"

namespace damq {

/** Schedules invariant checks and accumulates their findings. */
class InvariantAuditor
{
  public:
    /** @param audit_every_cycles check period; 0 disables audits. */
    explicit InvariantAuditor(Cycle audit_every_cycles = 0)
        : every(audit_every_cycles)
    {
    }

    /** Whether audits ever run. */
    bool enabled() const { return every > 0; }

    /** Whether an audit is due at @p now. */
    bool due(Cycle now) const
    {
        return every > 0 && now > 0 && now % every == 0;
    }

    /** Count one completed audit sweep. */
    void beginAudit() { ++audits; }

    /**
     * File @p violations found in @p component at @p cycle.  The
     * first few are kept verbatim (prefixed "cycle C component: ");
     * all are counted.
     */
    void record(Cycle cycle, const std::string &component,
                const std::vector<std::string> &violations);

    /** Audit sweeps performed. */
    std::uint64_t auditsRun() const { return audits; }

    /** Total violations recorded. */
    std::uint64_t violationCount() const { return violations; }

    /** First few violations, verbatim. */
    const std::vector<std::string> &samples() const
    {
        return sampleLog;
    }

    /** Copy audit counters into @p report. */
    void fillReport(FaultReport &report) const;

  private:
    static constexpr std::size_t kMaxSamples = 32;

    Cycle every;
    std::uint64_t audits = 0;
    std::uint64_t violations = 0;
    std::vector<std::string> sampleLog;
};

/**
 * Check one cycle's crossbar schedule: every grant inside the
 * switch geometry (including its VC, against @p num_vcs), at most
 * one grant per *physical* output — VCs multiplex a link across
 * cycles, never within one — and at most @p max_reads_per_input
 * grants per input (1 for single-read-port buffers, n for SAFC).
 * Returns violation strings, empty if legal.
 */
std::vector<std::string> auditGrantLegality(
    const GrantList &grants, PortId num_inputs, PortId num_outputs,
    std::uint32_t max_reads_per_input = 1, VcId num_vcs = 1);

/**
 * Check per-queue FIFO delivery order inside @p buffer: within any
 * one (output, VC) queue, packets from the same source must appear
 * in strictly increasing sequence order (the per-source `seq`
 * stamped at generation).  This holds for every healthy buffer
 * organization under omega and grid dimension-order routing,
 * because any two packets from one source that meet in a queue
 * travelled the same path prefix on the same VC.  Walks the queues
 * in place via forEachInQueue — no packet is copied.  Returns
 * violation strings, empty when intact.
 */
std::vector<std::string> auditQueueFifoOrder(const BufferModel &buffer);

} // namespace damq

#endif // DAMQ_FAULT_INVARIANT_AUDITOR_HH

/**
 * @file
 * Fault taxonomy and the report every fault-mode experiment ends
 * with.
 *
 * The robustness question for a buffered switch is not "does it
 * never fail" but "when a register latches garbage, is the failure
 * *detected and accounted for* rather than silently corrupting
 * results".  Every fault the injector introduces is recorded here,
 * and every detection (checksum mismatch, invariant violation,
 * watchdog trip) is recorded next to it, so a run can be audited
 * end to end: injected = delivered + dropped + in flight, with no
 * packet unaccounted for.
 */

#ifndef DAMQ_FAULT_FAULT_REPORT_HH
#define DAMQ_FAULT_FAULT_REPORT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace damq {

/** The fault classes the injector can introduce. */
enum class FaultKind : std::uint8_t
{
    HeaderBitFlip, ///< one header bit flipped while a packet moves
    PacketDrop,    ///< a packet vanishes from a link
    ArbiterStuck,  ///< an arbiter grants nothing for a few cycles
    SlotLeak,      ///< a buffer slot drops out of every list
    CreditDelay,   ///< back-pressure stuck at "full" for a few cycles
    LinkDown,      ///< a link loses every frame for an episode
    RouterDown,    ///< a whole switch freezes for an episode
};

/** Number of distinct FaultKind values. */
inline constexpr std::size_t kNumFaultKinds = 7;

/** Human-readable fault-kind name. */
const char *faultKindName(FaultKind kind);

/** One injected fault, for the event log. */
struct FaultEvent
{
    Cycle cycle = 0;
    FaultKind kind = FaultKind::HeaderBitFlip;
    std::string component;
    std::string detail;
};

/**
 * What the link-level recovery protocol did about the faults: how
 * many frames were protected, rejected, retransmitted, recovered,
 * given up on, and how the dead-link machinery reacted.  All zero
 * when RecoveryPolicy is none — detection-only runs are unchanged.
 */
struct RecoveryStats
{
    /** Frames sent under CRC protection (fresh + retransmitted). */
    std::uint64_t framesSent = 0;

    /** Frames the receiver nacked after a CRC mismatch. */
    std::uint64_t crcRejected = 0;

    /** Frames whose ack never arrived (dropped on the link). */
    std::uint64_t timeouts = 0;

    /** Retransmission attempts made by link senders. */
    std::uint64_t retransmits = 0;

    /** Packets delivered across a link after >= 1 retransmission
     *  — each one would have been lost without the protocol. */
    std::uint64_t packetsRecovered = 0;

    /** Packets abandoned after the retry budget ran out. */
    std::uint64_t packetsLostAfterRetry = 0;

    /** Links declared dead after maxRetries consecutive failures. */
    std::uint64_t deadLinksDeclared = 0;

    /** Dead links brought back by a successful revival probe. */
    std::uint64_t linksRevived = 0;

    /** Packets re-homed onto a detour route off a dead link. */
    std::uint64_t packetsRerouted = 0;

    /** Whether the protocol did anything at all this run. */
    bool anyActivity() const
    {
        return framesSent != 0 || crcRejected != 0 ||
               timeouts != 0 || retransmits != 0 ||
               packetsRecovered != 0 || packetsLostAfterRetry != 0 ||
               deadLinksDeclared != 0 || linksRevived != 0 ||
               packetsRerouted != 0;
    }
};

/**
 * Everything a fault-mode run learned: what was injected, what was
 * detected, and whether the accounting closed.
 */
struct FaultReport
{
    std::uint64_t seed = 0;

    /** Injection counts, indexed by FaultKind. */
    std::array<std::uint64_t, kNumFaultKinds> injected{};

    /** Header corruptions caught by the checksum before delivery. */
    std::uint64_t corruptionsDetected = 0;

    /** Packets removed from the network by faults (drops plus
     *  detected corruptions); the sims fold this into their
     *  conservation identity. */
    std::uint64_t packetsDroppedByFaults = 0;

    /** Invariant audits performed and violations they found. */
    std::uint64_t auditsRun = 0;
    std::uint64_t auditViolations = 0;
    std::vector<std::string> violationSamples;

    /** What the link-level recovery protocol recovered vs lost. */
    RecoveryStats recovery;

    /**
     * Flit-level credit flow (wormhole / virtual cut-through runs
     * only; both zero otherwise).  Credits consumed by flit sends
     * versus credits handed back by downstream buffers — equal once
     * the network drains, or a credit leaked.
     */
    std::uint64_t creditsIssued = 0;
    std::uint64_t creditsReturned = 0;

    /** Deadlock watchdog outcome. */
    bool watchdogFired = false;
    Cycle watchdogFiredAt = 0;
    std::string watchdogDiagnostic;

    /** First few injected faults, for diagnostics. */
    std::vector<FaultEvent> events;

    /** Total faults injected across all kinds. */
    std::uint64_t totalInjected() const;

    /** Injection count for one kind. */
    std::uint64_t injectedOf(FaultKind kind) const
    {
        return injected[static_cast<std::size_t>(kind)];
    }

    /** Multi-line human-readable summary. */
    std::string summaryText() const;
};

} // namespace damq

#endif // DAMQ_FAULT_FAULT_REPORT_HH

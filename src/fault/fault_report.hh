/**
 * @file
 * Fault taxonomy and the report every fault-mode experiment ends
 * with.
 *
 * The robustness question for a buffered switch is not "does it
 * never fail" but "when a register latches garbage, is the failure
 * *detected and accounted for* rather than silently corrupting
 * results".  Every fault the injector introduces is recorded here,
 * and every detection (checksum mismatch, invariant violation,
 * watchdog trip) is recorded next to it, so a run can be audited
 * end to end: injected = delivered + dropped + in flight, with no
 * packet unaccounted for.
 */

#ifndef DAMQ_FAULT_FAULT_REPORT_HH
#define DAMQ_FAULT_FAULT_REPORT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace damq {

/** The fault classes the injector can introduce. */
enum class FaultKind : std::uint8_t
{
    HeaderBitFlip, ///< one header bit flipped while a packet moves
    PacketDrop,    ///< a packet vanishes from a link
    ArbiterStuck,  ///< an arbiter grants nothing for a few cycles
    SlotLeak,      ///< a buffer slot drops out of every list
    CreditDelay,   ///< back-pressure stuck at "full" for a few cycles
};

/** Number of distinct FaultKind values. */
inline constexpr std::size_t kNumFaultKinds = 5;

/** Human-readable fault-kind name. */
const char *faultKindName(FaultKind kind);

/** One injected fault, for the event log. */
struct FaultEvent
{
    Cycle cycle = 0;
    FaultKind kind = FaultKind::HeaderBitFlip;
    std::string component;
    std::string detail;
};

/**
 * Everything a fault-mode run learned: what was injected, what was
 * detected, and whether the accounting closed.
 */
struct FaultReport
{
    std::uint64_t seed = 0;

    /** Injection counts, indexed by FaultKind. */
    std::array<std::uint64_t, kNumFaultKinds> injected{};

    /** Header corruptions caught by the checksum before delivery. */
    std::uint64_t corruptionsDetected = 0;

    /** Packets removed from the network by faults (drops plus
     *  detected corruptions); the sims fold this into their
     *  conservation identity. */
    std::uint64_t packetsDroppedByFaults = 0;

    /** Invariant audits performed and violations they found. */
    std::uint64_t auditsRun = 0;
    std::uint64_t auditViolations = 0;
    std::vector<std::string> violationSamples;

    /** Deadlock watchdog outcome. */
    bool watchdogFired = false;
    Cycle watchdogFiredAt = 0;
    std::string watchdogDiagnostic;

    /** First few injected faults, for diagnostics. */
    std::vector<FaultEvent> events;

    /** Total faults injected across all kinds. */
    std::uint64_t totalInjected() const;

    /** Injection count for one kind. */
    std::uint64_t injectedOf(FaultKind kind) const
    {
        return injected[static_cast<std::size_t>(kind)];
    }

    /** Multi-line human-readable summary. */
    std::string summaryText() const;
};

} // namespace damq

#endif // DAMQ_FAULT_FAULT_REPORT_HH

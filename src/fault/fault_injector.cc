#include "fault/fault_injector.hh"

#include <algorithm>

#include "common/logging.hh"

namespace damq {

FaultInjector::FaultInjector(const FaultConfig &config)
    : config(config), rng(config.seed)
{
    damq_assert(config.headerBitFlipRate >= 0.0 &&
                    config.headerBitFlipRate <= 1.0,
                "headerBitFlipRate out of [0,1]");
    damq_assert(config.packetDropRate >= 0.0 &&
                    config.packetDropRate <= 1.0,
                "packetDropRate out of [0,1]");
    damq_assert(config.arbiterStuckRate >= 0.0 &&
                    config.arbiterStuckRate <= 1.0,
                "arbiterStuckRate out of [0,1]");
    damq_assert(config.slotLeakRate >= 0.0 &&
                    config.slotLeakRate <= 1.0,
                "slotLeakRate out of [0,1]");
    damq_assert(config.creditDelayRate >= 0.0 &&
                    config.creditDelayRate <= 1.0,
                "creditDelayRate out of [0,1]");
    damq_assert(config.linkDownRate >= 0.0 &&
                    config.linkDownRate <= 1.0,
                "linkDownRate out of [0,1]");
    damq_assert(config.linkDownFraction >= 0.0 &&
                    config.linkDownFraction <= 1.0,
                "linkDownFraction out of [0,1]");
    damq_assert(config.routerDownRate >= 0.0 &&
                    config.routerDownRate <= 1.0,
                "routerDownRate out of [0,1]");
}

void
FaultInjector::configureLinks(std::size_t num_links,
                              std::uint32_t ports_per_switch,
                              const std::vector<std::uint8_t> &eligible,
                              const std::vector<std::size_t> &reverse)
{
    damq_assert(eligible.size() == num_links,
                "configureLinks: eligibility mask size mismatch");
    damq_assert(reverse.size() == num_links,
                "configureLinks: reverse map size mismatch");
    damq_assert(ports_per_switch > 0,
                "configureLinks: zero ports per switch");
    links.assign(num_links, LinkState{});
    linkPorts = ports_per_switch;
    for (std::size_t link = 0; link < num_links; ++link)
        links[link].eligible = eligible[link] != 0;

    // Pool of *physical* links, one entry per duplex pair (the
    // lower-numbered direction is canonical; a direction without an
    // eligible partner stands alone).
    std::vector<std::size_t> pool;
    for (std::size_t link = 0; link < num_links; ++link) {
        if (!links[link].eligible)
            continue;
        const std::size_t rev = reverse[link];
        const bool paired = rev != kNoReverseLink &&
                            rev < num_links && links[rev].eligible;
        if (paired && rev < link)
            continue; // the partner is the canonical entry
        pool.push_back(link);
    }
    if (config.linkDownFraction <= 0.0 || pool.empty())
        return;

    // Permanent failure set: the first k of a partial Fisher-Yates
    // shuffle over the eligible physical links, so the same fault
    // seed always kills the same links regardless of traffic.
    const auto want = static_cast<std::size_t>(
        config.linkDownFraction * static_cast<double>(pool.size()) +
        0.5);
    const std::size_t kill = std::min(want, pool.size());
    const auto kill_one = [this](std::size_t link) {
        links[link].downUntil = kForever;
        recordFault(FaultKind::LinkDown, link / linkPorts, 0,
                    detail::concat("link ", link,
                                   " permanently down (fraction)"));
    };
    for (std::size_t i = 0; i < kill; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.below(pool.size() - i));
        std::swap(pool[i], pool[j]);
        kill_one(pool[i]);
        const std::size_t rev = reverse[pool[i]];
        if (rev != kNoReverseLink && rev < num_links &&
            links[rev].eligible)
            kill_one(rev);
    }
}

bool
FaultInjector::linkForcedDown(std::size_t link, Cycle now)
{
    if (links.empty())
        return false;
    damq_assert(link < links.size(),
                "linkForcedDown: unregistered link ", link);
    LinkState &state = links[link];
    if (config.linkDownRate > 0.0 && state.eligible &&
        state.rolledAt != now) {
        state.rolledAt = now;
        if (now >= state.downUntil &&
            rng.bernoulli(config.linkDownRate)) {
            state.downUntil = config.linkDownCycles == 0
                                  ? kForever
                                  : now + config.linkDownCycles;
            recordFault(
                FaultKind::LinkDown, link / linkPorts, now,
                config.linkDownCycles == 0
                    ? detail::concat("link ", link,
                                     " down permanently")
                    : detail::concat("link ", link, " down for ",
                                     config.linkDownCycles,
                                     " cycles"));
        }
    }
    return now < state.downUntil;
}

bool
FaultInjector::routerForcedDown(std::size_t comp, Cycle now)
{
    if (config.routerDownRate <= 0.0)
        return false;
    damq_assert(comp < components.size(),
                "routerForcedDown: unregistered component ", comp);
    ComponentState &state = components[comp];
    if (state.downRolledAt != now) {
        state.downRolledAt = now;
        if (now >= state.downUntil &&
            rng.bernoulli(config.routerDownRate)) {
            state.downUntil = config.routerDownCycles == 0
                                  ? kForever
                                  : now + config.routerDownCycles;
            recordFault(
                FaultKind::RouterDown, comp, now,
                config.routerDownCycles == 0
                    ? std::string("router down permanently")
                    : detail::concat("router down for ",
                                     config.routerDownCycles,
                                     " cycles"));
        }
    }
    return now < state.downUntil;
}

std::size_t
FaultInjector::addComponent(const std::string &name)
{
    components.push_back(ComponentState{name, 0, kNeverRolled, 0,
                                        kNeverRolled});
    return components.size() - 1;
}

const std::string &
FaultInjector::componentName(std::size_t comp) const
{
    damq_assert(comp < components.size(),
                "componentName: unregistered component ", comp);
    return components[comp].name;
}

bool
FaultInjector::dropOnLink(std::size_t comp, Cycle now,
                          const Packet &pkt)
{
    if (config.packetDropRate <= 0.0)
        return false;
    if (!rng.bernoulli(config.packetDropRate))
        return false;
    recordFault(FaultKind::PacketDrop, comp, now,
                detail::concat("packet ", pkt.id, " (", pkt.source,
                               "->", pkt.dest, ")"));
    return true;
}

bool
FaultInjector::corruptOnLink(std::size_t comp, Cycle now, Packet &pkt)
{
    if (config.headerBitFlipRate <= 0.0)
        return false;
    if (!rng.bernoulli(config.headerBitFlipRate))
        return false;

    // Flip one bit of a checksummed header field.  The checksum is
    // deliberately NOT resealed: the receiver must notice.
    const std::uint64_t field = rng.below(3);
    const std::uint32_t mask =
        std::uint32_t{1} << static_cast<std::uint32_t>(rng.below(32));
    const char *field_name = nullptr;
    switch (field) {
      case 0: pkt.dest ^= mask; field_name = "dest"; break;
      case 1: pkt.seq ^= mask; field_name = "seq"; break;
      default: pkt.source ^= mask; field_name = "source"; break;
    }
    recordFault(FaultKind::HeaderBitFlip, comp, now,
                detail::concat("packet ", pkt.id, " ", field_name,
                               " bit flipped"));
    return true;
}

bool
FaultInjector::arbiterStuck(std::size_t comp, Cycle now)
{
    if (config.arbiterStuckRate <= 0.0)
        return false;
    damq_assert(comp < components.size(),
                "arbiterStuck: unregistered component ", comp);
    ComponentState &state = components[comp];
    if (state.stuckRolledAt != now) {
        state.stuckRolledAt = now;
        if (now >= state.stuckUntil &&
            rng.bernoulli(config.arbiterStuckRate)) {
            state.stuckUntil = now + config.arbiterStuckCycles;
            recordFault(FaultKind::ArbiterStuck, comp, now,
                        detail::concat("grants jammed for ",
                                       config.arbiterStuckCycles,
                                       " cycles"));
        }
    }
    return now < state.stuckUntil;
}

bool
FaultInjector::creditDelayed(std::size_t comp, Cycle now)
{
    if (config.creditDelayRate <= 0.0)
        return false;
    damq_assert(comp < components.size(),
                "creditDelayed: unregistered component ", comp);
    ComponentState &state = components[comp];
    if (state.delayRolledAt != now) {
        state.delayRolledAt = now;
        if (now >= state.delayUntil &&
            rng.bernoulli(config.creditDelayRate)) {
            state.delayUntil = now + config.creditDelayCycles;
            recordFault(FaultKind::CreditDelay, comp, now,
                        detail::concat("credits stalled for ",
                                       config.creditDelayCycles,
                                       " cycles"));
        }
    }
    return now < state.delayUntil;
}

bool
FaultInjector::rollSlotLeak(std::size_t comp, Cycle now)
{
    (void)comp;
    (void)now;
    if (config.slotLeakRate <= 0.0)
        return false;
    return rng.bernoulli(config.slotLeakRate);
}

void
FaultInjector::recordFault(FaultKind kind, std::size_t comp, Cycle now,
                           const std::string &detail)
{
    ++injected[static_cast<std::size_t>(kind)];
    if (events.size() < kMaxLoggedEvents) {
        events.push_back(FaultEvent{
            now, kind,
            comp < components.size() ? components[comp].name
                                     : std::string("?"),
            detail});
    }
}

void
FaultInjector::fillReport(FaultReport &report) const
{
    report.seed = config.seed;
    report.injected = injected;
    report.corruptionsDetected = corruptionsDetected;
    report.packetsDroppedByFaults =
        injected[static_cast<std::size_t>(FaultKind::PacketDrop)] +
        corruptionsDetected;
    report.events = events;
}

} // namespace damq

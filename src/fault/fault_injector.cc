#include "fault/fault_injector.hh"

#include "common/logging.hh"

namespace damq {

FaultInjector::FaultInjector(const FaultConfig &config)
    : config(config), rng(config.seed)
{
    damq_assert(config.headerBitFlipRate >= 0.0 &&
                    config.headerBitFlipRate <= 1.0,
                "headerBitFlipRate out of [0,1]");
    damq_assert(config.packetDropRate >= 0.0 &&
                    config.packetDropRate <= 1.0,
                "packetDropRate out of [0,1]");
    damq_assert(config.arbiterStuckRate >= 0.0 &&
                    config.arbiterStuckRate <= 1.0,
                "arbiterStuckRate out of [0,1]");
    damq_assert(config.slotLeakRate >= 0.0 &&
                    config.slotLeakRate <= 1.0,
                "slotLeakRate out of [0,1]");
    damq_assert(config.creditDelayRate >= 0.0 &&
                    config.creditDelayRate <= 1.0,
                "creditDelayRate out of [0,1]");
}

std::size_t
FaultInjector::addComponent(const std::string &name)
{
    components.push_back(ComponentState{name, 0, kNeverRolled, 0,
                                        kNeverRolled});
    return components.size() - 1;
}

const std::string &
FaultInjector::componentName(std::size_t comp) const
{
    damq_assert(comp < components.size(),
                "componentName: unregistered component ", comp);
    return components[comp].name;
}

bool
FaultInjector::dropOnLink(std::size_t comp, Cycle now,
                          const Packet &pkt)
{
    if (config.packetDropRate <= 0.0)
        return false;
    if (!rng.bernoulli(config.packetDropRate))
        return false;
    recordFault(FaultKind::PacketDrop, comp, now,
                detail::concat("packet ", pkt.id, " (", pkt.source,
                               "->", pkt.dest, ")"));
    return true;
}

bool
FaultInjector::corruptOnLink(std::size_t comp, Cycle now, Packet &pkt)
{
    if (config.headerBitFlipRate <= 0.0)
        return false;
    if (!rng.bernoulli(config.headerBitFlipRate))
        return false;

    // Flip one bit of a checksummed header field.  The checksum is
    // deliberately NOT resealed: the receiver must notice.
    const std::uint64_t field = rng.below(3);
    const std::uint32_t mask =
        std::uint32_t{1} << static_cast<std::uint32_t>(rng.below(32));
    const char *field_name = nullptr;
    switch (field) {
      case 0: pkt.dest ^= mask; field_name = "dest"; break;
      case 1: pkt.seq ^= mask; field_name = "seq"; break;
      default: pkt.source ^= mask; field_name = "source"; break;
    }
    recordFault(FaultKind::HeaderBitFlip, comp, now,
                detail::concat("packet ", pkt.id, " ", field_name,
                               " bit flipped"));
    return true;
}

bool
FaultInjector::arbiterStuck(std::size_t comp, Cycle now)
{
    if (config.arbiterStuckRate <= 0.0)
        return false;
    damq_assert(comp < components.size(),
                "arbiterStuck: unregistered component ", comp);
    ComponentState &state = components[comp];
    if (state.stuckRolledAt != now) {
        state.stuckRolledAt = now;
        if (now >= state.stuckUntil &&
            rng.bernoulli(config.arbiterStuckRate)) {
            state.stuckUntil = now + config.arbiterStuckCycles;
            recordFault(FaultKind::ArbiterStuck, comp, now,
                        detail::concat("grants jammed for ",
                                       config.arbiterStuckCycles,
                                       " cycles"));
        }
    }
    return now < state.stuckUntil;
}

bool
FaultInjector::creditDelayed(std::size_t comp, Cycle now)
{
    if (config.creditDelayRate <= 0.0)
        return false;
    damq_assert(comp < components.size(),
                "creditDelayed: unregistered component ", comp);
    ComponentState &state = components[comp];
    if (state.delayRolledAt != now) {
        state.delayRolledAt = now;
        if (now >= state.delayUntil &&
            rng.bernoulli(config.creditDelayRate)) {
            state.delayUntil = now + config.creditDelayCycles;
            recordFault(FaultKind::CreditDelay, comp, now,
                        detail::concat("credits stalled for ",
                                       config.creditDelayCycles,
                                       " cycles"));
        }
    }
    return now < state.delayUntil;
}

bool
FaultInjector::rollSlotLeak(std::size_t comp, Cycle now)
{
    (void)comp;
    (void)now;
    if (config.slotLeakRate <= 0.0)
        return false;
    return rng.bernoulli(config.slotLeakRate);
}

void
FaultInjector::recordFault(FaultKind kind, std::size_t comp, Cycle now,
                           const std::string &detail)
{
    ++injected[static_cast<std::size_t>(kind)];
    if (events.size() < kMaxLoggedEvents) {
        events.push_back(FaultEvent{
            now, kind,
            comp < components.size() ? components[comp].name
                                     : std::string("?"),
            detail});
    }
}

void
FaultInjector::fillReport(FaultReport &report) const
{
    report.seed = config.seed;
    report.injected = injected;
    report.corruptionsDetected = corruptionsDetected;
    report.packetsDroppedByFaults =
        injected[static_cast<std::size_t>(FaultKind::PacketDrop)] +
        corruptionsDetected;
    report.events = events;
}

} // namespace damq

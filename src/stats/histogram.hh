/**
 * @file
 * Fixed-width-bin histogram for latency distributions.
 */

#ifndef DAMQ_STATS_HISTOGRAM_HH
#define DAMQ_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace damq {

/**
 * Histogram over [0, binWidth * numBins) with an overflow bin.
 * Values are binned by truncation; percentile queries interpolate
 * within a bin.
 */
class Histogram
{
  public:
    /** @param bin_width  width of each bin (must be positive).
     *  @param num_bins   number of regular bins (overflow is extra). */
    Histogram(double bin_width, std::size_t num_bins);

    /** Record one sample (negative samples clamp to bin 0). */
    void add(double sample);

    /** Total samples recorded. */
    std::uint64_t count() const { return total; }

    /** Count in regular bin @p i. */
    std::uint64_t binCount(std::size_t i) const { return bins.at(i); }

    /** Count of samples beyond the last regular bin. */
    std::uint64_t overflowCount() const { return overflow; }

    /** Number of regular bins. */
    std::size_t numBins() const { return bins.size(); }

    /** Lower edge of bin @p i. */
    double binLowerEdge(std::size_t i) const
    {
        return binWidth * static_cast<double>(i);
    }

    /**
     * Approximate @p q-quantile (q in [0,1]) by linear interpolation
     * within the containing bin.  Returns 0 for an empty histogram.
     */
    double quantile(double q) const;

    /**
     * Fold @p other into this histogram, bin by bin.  Both must
     * have the same bin width and bin count (the telemetry layer
     * merges per-queue histograms across buffers this way).
     */
    void merge(const Histogram &other);

    /** Remove all samples. */
    void reset();

    /**
     * Render a simple ASCII bar chart, one line per non-empty bin —
     * handy for the examples.  @p max_width is the widest bar.
     */
    std::string renderAscii(std::size_t max_width = 50) const;

  private:
    double binWidth;
    std::vector<std::uint64_t> bins;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
};

} // namespace damq

#endif // DAMQ_STATS_HISTOGRAM_HH

/**
 * @file
 * Plain-text table rendering used by the bench harnesses to print
 * the paper's tables in a recognizable layout.
 */

#ifndef DAMQ_STATS_TEXT_TABLE_HH
#define DAMQ_STATS_TEXT_TABLE_HH

#include <string>
#include <vector>

namespace damq {

/**
 * A rectangular table of strings with a header row, rendered with
 * column alignment and separators.  Cells added via addCell/addRow.
 */
class TextTable
{
  public:
    /** Set the header row (also fixes the number of columns). */
    void setHeader(std::vector<std::string> names);

    /** Begin a new data row. */
    void startRow();

    /** Append one cell to the current row. */
    void addCell(std::string text);

    /** Append a whole row at once. */
    void addRow(std::vector<std::string> cells);

    /** Render with box-drawing separators; ends with a newline. */
    std::string render() const;

    /** Render as comma-separated values (for machine consumption). */
    std::string renderCsv() const;

    /** Number of data rows so far. */
    std::size_t numRows() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace damq

#endif // DAMQ_STATS_TEXT_TABLE_HH

#include "stats/text_table.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "common/string_util.hh"

namespace damq {

void
TextTable::setHeader(std::vector<std::string> names)
{
    header = std::move(names);
}

void
TextTable::startRow()
{
    rows.emplace_back();
}

void
TextTable::addCell(std::string text)
{
    damq_assert(!rows.empty(), "startRow() before addCell()");
    rows.back().push_back(std::move(text));
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::size_t columns = header.size();
    for (const auto &row : rows)
        columns = std::max(columns, row.size());
    if (columns == 0)
        return "";

    std::vector<std::size_t> widths(columns, 0);
    auto account = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    account(header);
    for (const auto &row : rows)
        account(row);

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line = "|";
        for (std::size_t i = 0; i < columns; ++i) {
            const std::string &cell = i < row.size() ? row[i] : "";
            line += " " + padLeft(cell, widths[i]) + " |";
        }
        return line + "\n";
    };

    std::string rule = "+";
    for (std::size_t i = 0; i < columns; ++i)
        rule += std::string(widths[i] + 2, '-') + "+";
    rule += "\n";

    std::ostringstream oss;
    oss << rule;
    if (!header.empty()) {
        oss << renderRow(header) << rule;
    }
    for (const auto &row : rows)
        oss << renderRow(row);
    oss << rule;
    return oss.str();
}

std::string
TextTable::renderCsv() const
{
    std::ostringstream oss;
    auto renderRow = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                oss << ",";
            oss << row[i];
        }
        oss << "\n";
    };
    if (!header.empty())
        renderRow(header);
    for (const auto &row : rows)
        renderRow(row);
    return oss.str();
}

} // namespace damq

/**
 * @file
 * Streaming scalar statistics (count/mean/variance/min/max) using
 * Welford's numerically stable update.
 */

#ifndef DAMQ_STATS_RUNNING_STATS_HH
#define DAMQ_STATS_RUNNING_STATS_HH

#include <cstdint>
#include <limits>

namespace damq {

/**
 * Accumulates samples one at a time and reports mean, variance,
 * standard deviation, min and max without storing the samples.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStats &other);

    /** Remove all samples. */
    void reset();

    /** Number of samples seen. */
    std::uint64_t count() const { return n; }

    /** Arithmetic mean (0 if empty). */
    double mean() const { return n ? runningMean : 0.0; }

    /** Population variance (0 if fewer than 2 samples). */
    double variance() const;

    /** Sample (Bessel-corrected) variance. */
    double sampleVariance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample (+inf if empty). */
    double min() const { return minValue; }

    /** Largest sample (-inf if empty). */
    double max() const { return maxValue; }

    /** Sum of all samples. */
    double sum() const { return runningMean * static_cast<double>(n); }

  private:
    std::uint64_t n = 0;
    double runningMean = 0.0;
    double m2 = 0.0;
    double minValue = std::numeric_limits<double>::infinity();
    double maxValue = -std::numeric_limits<double>::infinity();
};

} // namespace damq

#endif // DAMQ_STATS_RUNNING_STATS_HH

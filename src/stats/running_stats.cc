#include "stats/running_stats.hh"

#include <algorithm>
#include <cmath>

namespace damq {

void
RunningStats::add(double sample)
{
    ++n;
    const double delta = sample - runningMean;
    runningMean += delta / static_cast<double>(n);
    m2 += delta * (sample - runningMean);
    minValue = std::min(minValue, sample);
    maxValue = std::max(maxValue, sample);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.runningMean - runningMean;
    const double total = na + nb;
    runningMean += delta * nb / total;
    m2 += other.m2 + delta * delta * na * nb / total;
    n += other.n;
    minValue = std::min(minValue, other.minValue);
    maxValue = std::max(maxValue, other.maxValue);
}

void
RunningStats::reset()
{
    *this = RunningStats{};
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
RunningStats::sampleVariance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace damq

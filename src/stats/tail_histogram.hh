/**
 * @file
 * Log-bucketed latency histogram for tail percentiles (p50 / p99 /
 * p999), HDR-histogram style: values below 64 get exact unit-width
 * buckets, larger values get 64 log-linear sub-buckets per octave
 * (<= ~1.6% relative bucket width), so the quantile error stays
 * bounded across the full 64-bit range with a small fixed table.
 *
 * Deterministic (no sampling, unlike a reservoir) and mergeable, so
 * every shard-identity guarantee that holds for the Welford stats
 * holds for the tail percentiles too.
 */

#ifndef DAMQ_STATS_TAIL_HISTOGRAM_HH
#define DAMQ_STATS_TAIL_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace damq {

/** Fixed-size log-bucketed histogram with bounded relative error. */
class TailHistogram
{
  public:
    TailHistogram();

    /** Record one sample (negative values clamp to 0). */
    void add(double value);

    /**
     * Quantile estimate for q in [0, 1]: the lower edge of the
     * bucket holding the q-th ranked sample, linearly interpolated
     * across the bucket.  0 when empty.
     */
    double quantile(double q) const;

    /** Samples recorded. */
    std::uint64_t count() const { return total; }

    /** Largest sample recorded (exact, not bucketed). */
    double max() const { return maxValue; }

    /** Fold @p other into this histogram. */
    void merge(const TailHistogram &other);

    /** Forget all samples. */
    void reset();

  private:
    static std::uint32_t bucketIndex(std::uint64_t value);
    static double bucketLowerEdge(std::uint32_t index);
    static double bucketWidth(std::uint32_t index);

    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    double maxValue = 0.0;
};

} // namespace damq

#endif // DAMQ_STATS_TAIL_HISTOGRAM_HH

#include "stats/tail_histogram.hh"

#include <cmath>

namespace damq {

namespace {

/** 64 log-linear sub-buckets per octave above the exact range. */
constexpr std::uint32_t kSubBits = 6;
constexpr std::uint64_t kSubBuckets = 1ULL << kSubBits;

/** Highest octave a 64-bit value can land in (msb 63). */
constexpr std::uint32_t kOctaves = 64 - kSubBits;

/** Fixed table size: exact range + kOctaves octaves of 64. */
constexpr std::uint32_t kNumBuckets =
    static_cast<std::uint32_t>((kOctaves + 1) * kSubBuckets);

std::uint32_t
msbIndex(std::uint64_t value)
{
    std::uint32_t msb = 0;
    while (value >>= 1)
        ++msb;
    return msb;
}

} // namespace

TailHistogram::TailHistogram() : counts(kNumBuckets, 0) {}

std::uint32_t
TailHistogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<std::uint32_t>(value);
    const std::uint32_t msb = msbIndex(value);
    const std::uint32_t octave = msb - kSubBits + 1;
    const std::uint32_t shift = msb - kSubBits;
    const std::uint32_t sub = static_cast<std::uint32_t>(
        (value >> shift) & (kSubBuckets - 1));
    return (octave << kSubBits) + sub;
}

double
TailHistogram::bucketLowerEdge(std::uint32_t index)
{
    if (index < kSubBuckets)
        return static_cast<double>(index);
    const std::uint32_t octave = index >> kSubBits;
    const std::uint32_t sub = index & (kSubBuckets - 1);
    return std::ldexp(static_cast<double>(kSubBuckets + sub),
                      static_cast<int>(octave) - 1);
}

double
TailHistogram::bucketWidth(std::uint32_t index)
{
    if (index < kSubBuckets)
        return 1.0;
    return std::ldexp(1.0, static_cast<int>(index >> kSubBits) - 1);
}

void
TailHistogram::add(double value)
{
    if (value < 0.0)
        value = 0.0;
    ++counts[bucketIndex(static_cast<std::uint64_t>(value))];
    ++total;
    if (value > maxValue)
        maxValue = value;
}

double
TailHistogram::quantile(double q) const
{
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double target = q * static_cast<double>(total - 1);
    std::uint64_t cumulative = 0;
    for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
        if (counts[i] == 0)
            continue;
        const std::uint64_t before = cumulative;
        cumulative += counts[i];
        if (static_cast<double>(cumulative) > target) {
            const double frac =
                (target - static_cast<double>(before)) /
                static_cast<double>(counts[i]);
            return bucketLowerEdge(i) + frac * bucketWidth(i);
        }
    }
    return maxValue;
}

void
TailHistogram::merge(const TailHistogram &other)
{
    for (std::uint32_t i = 0; i < kNumBuckets; ++i)
        counts[i] += other.counts[i];
    total += other.total;
    if (other.maxValue > maxValue)
        maxValue = other.maxValue;
}

void
TailHistogram::reset()
{
    counts.assign(kNumBuckets, 0);
    total = 0;
    maxValue = 0.0;
}

} // namespace damq

#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "common/string_util.hh"

namespace damq {

Histogram::Histogram(double bin_width, std::size_t num_bins)
    : binWidth(bin_width), bins(num_bins, 0)
{
    damq_assert(bin_width > 0.0, "histogram bin width must be positive");
    damq_assert(num_bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double sample)
{
    ++total;
    if (sample < 0.0)
        sample = 0.0;
    const auto idx = static_cast<std::size_t>(sample / binWidth);
    if (idx >= bins.size())
        ++overflow;
    else
        ++bins[idx];
}

double
Histogram::quantile(double q) const
{
    if (total == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        const double next = cumulative + static_cast<double>(bins[i]);
        if (next >= target && bins[i] > 0) {
            const double frac =
                (target - cumulative) / static_cast<double>(bins[i]);
            return binLowerEdge(i) + frac * binWidth;
        }
        cumulative = next;
    }
    // Target falls in the overflow bin; report its lower edge.
    return binLowerEdge(bins.size());
}

void
Histogram::merge(const Histogram &other)
{
    damq_assert(binWidth == other.binWidth &&
                    bins.size() == other.bins.size(),
                "can only merge histograms of identical geometry");
    for (std::size_t i = 0; i < bins.size(); ++i)
        bins[i] += other.bins[i];
    overflow += other.overflow;
    total += other.total;
}

void
Histogram::reset()
{
    std::fill(bins.begin(), bins.end(), 0);
    overflow = 0;
    total = 0;
}

std::string
Histogram::renderAscii(std::size_t max_width) const
{
    std::uint64_t peak = overflow;
    for (auto c : bins)
        peak = std::max(peak, c);
    if (peak == 0)
        return "(empty histogram)\n";

    std::ostringstream oss;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        if (bins[i] == 0)
            continue;
        const auto width = static_cast<std::size_t>(
            static_cast<double>(bins[i]) / static_cast<double>(peak) *
            static_cast<double>(max_width));
        oss << padLeft(formatFixed(binLowerEdge(i), 1), 10) << " | "
            << std::string(std::max<std::size_t>(width, 1), '#') << " "
            << bins[i] << "\n";
    }
    if (overflow > 0)
        oss << padLeft(">=" + formatFixed(binLowerEdge(bins.size()), 1), 10)
            << " | " << overflow << " (overflow)\n";
    return oss.str();
}

} // namespace damq

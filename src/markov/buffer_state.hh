/**
 * @file
 * Single-buffer state algebras for the 2x2 Markov models (Section
 * 4.1 of the paper).
 *
 * With fixed-length packets and two destinations, each input
 * buffer's state is finite and small:
 *
 *  - a FIFO buffer must remember the *order* of destinations in the
 *    queue (the head controls what can leave), giving 2^(k+1)-1
 *    states for k slots — encoded as an integer with a leading
 *    sentinel bit, head at the least significant bit;
 *  - a DAMQ buffer needs only the two queue occupancies (n0, n1)
 *    with n0+n1 <= k (dynamic shared pool);
 *  - SAMQ/SAFC need (n0, n1) with each bounded by its static
 *    partition k/2.
 *
 * The chain builder composes two of these per switch and layers
 * arbitration on top.
 */

#ifndef DAMQ_MARKOV_BUFFER_STATE_HH
#define DAMQ_MARKOV_BUFFER_STATE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "queueing/buffer_model.hh"

namespace damq {

/**
 * Operations on the state of one input buffer of a 2x2 switch.
 * Destinations are 0 and 1.  States are opaque 32-bit values.
 */
class BufferStateModel
{
  public:
    using State = std::uint32_t;

    virtual ~BufferStateModel() = default;

    /** The state of an empty buffer. */
    virtual State emptyState() const = 0;

    /**
     * True iff a packet for destination @p dest is available for
     * transmission (for FIFO: only the head-of-line packet is).
     */
    virtual bool hasPacket(State s, unsigned dest) const = 0;

    /**
     * Arbitration weight: length of the queue whose head serves
     * @p dest (the paper's policy transmits from the longest
     * queue).  Zero when hasPacket is false.
     */
    virtual unsigned queueLength(State s, unsigned dest) const = 0;

    /** Remove the head packet for @p dest (hasPacket must hold). */
    virtual State removeHead(State s, unsigned dest) const = 0;

    /** Whether an arriving packet for @p dest fits. */
    virtual bool canAdd(State s, unsigned dest) const = 0;

    /** Append an arriving packet for @p dest (canAdd must hold). */
    virtual State add(State s, unsigned dest) const = 0;

    /** Packets stored in state @p s. */
    virtual unsigned totalPackets(State s) const = 0;

    /** Human-readable rendering for diagnostics. */
    virtual std::string describe(State s) const = 0;
};

/** FIFO buffer state: ordered destination sequence, k slots. */
class FifoBufferState final : public BufferStateModel
{
  public:
    /** @param slots buffer capacity k (1..30). */
    explicit FifoBufferState(unsigned slots);

    State emptyState() const override { return 1; }
    bool hasPacket(State s, unsigned dest) const override;
    unsigned queueLength(State s, unsigned dest) const override;
    State removeHead(State s, unsigned dest) const override;
    bool canAdd(State s, unsigned dest) const override;
    State add(State s, unsigned dest) const override;
    unsigned totalPackets(State s) const override;
    std::string describe(State s) const override;

  private:
    unsigned capacity;
};

/** DAMQ buffer state: per-destination counts over a shared pool. */
class SharedCountBufferState final : public BufferStateModel
{
  public:
    /** @param slots shared capacity k. */
    explicit SharedCountBufferState(unsigned slots);

    State emptyState() const override { return 0; }
    bool hasPacket(State s, unsigned dest) const override;
    unsigned queueLength(State s, unsigned dest) const override;
    State removeHead(State s, unsigned dest) const override;
    bool canAdd(State s, unsigned dest) const override;
    State add(State s, unsigned dest) const override;
    unsigned totalPackets(State s) const override;
    std::string describe(State s) const override;

  private:
    unsigned capacity;
};

/**
 * DAMQ-with-reserved-slots state: a shared pool like DAMQ's, but an
 * arrival may not take the last slot usable by the *other* queue if
 * that queue is empty (one slot stays reserved per empty queue).
 */
class ReservedCountBufferState final : public BufferStateModel
{
  public:
    /** @param slots shared capacity k (>= 2 for two outputs). */
    explicit ReservedCountBufferState(unsigned slots);

    State emptyState() const override { return 0; }
    bool hasPacket(State s, unsigned dest) const override;
    unsigned queueLength(State s, unsigned dest) const override;
    State removeHead(State s, unsigned dest) const override;
    bool canAdd(State s, unsigned dest) const override;
    State add(State s, unsigned dest) const override;
    unsigned totalPackets(State s) const override;
    std::string describe(State s) const override;

  private:
    unsigned capacity;
};

/** SAMQ/SAFC buffer state: counts with static k/2 partitions. */
class PartitionedCountBufferState final : public BufferStateModel
{
  public:
    /** @param slots total capacity k (must be even). */
    explicit PartitionedCountBufferState(unsigned slots);

    State emptyState() const override { return 0; }
    bool hasPacket(State s, unsigned dest) const override;
    unsigned queueLength(State s, unsigned dest) const override;
    State removeHead(State s, unsigned dest) const override;
    bool canAdd(State s, unsigned dest) const override;
    State add(State s, unsigned dest) const override;
    unsigned totalPackets(State s) const override;
    std::string describe(State s) const override;

  private:
    unsigned perQueue;
};

/** Build the state algebra matching @p type with @p slots slots. */
std::unique_ptr<BufferStateModel>
makeBufferStateModel(BufferType type, unsigned slots);

} // namespace damq

#endif // DAMQ_MARKOV_BUFFER_STATE_HH

/**
 * @file
 * Stationary-distribution solvers for DTMCs.
 *
 * Two independent methods are provided so the test suite can
 * cross-validate them:
 *
 *  - power iteration (works at any size; the switch chains here are
 *    aperiodic because the all-empty state has a self loop whenever
 *    the arrival probability is below 1);
 *  - a dense direct solve of pi (P - I) = 0 with the normalization
 *    constraint, for small chains.
 */

#ifndef DAMQ_MARKOV_STATIONARY_HH
#define DAMQ_MARKOV_STATIONARY_HH

#include <vector>

#include "markov/transition_matrix.hh"

namespace damq {

/** Options for the iterative solver. */
struct PowerIterationOptions
{
    double tolerance = 1e-13;       ///< L1 change per step to stop at
    std::size_t maxIterations = 500000;
};

/** Result of a stationary solve. */
struct StationaryResult
{
    std::vector<double> distribution;
    std::size_t iterations = 0; ///< 0 for the direct method
    double residual = 0.0;      ///< L1 norm of pi - pi*P
};

/**
 * Solve pi = pi * P by repeated multiplication from the uniform
 * distribution.  Panics if the iteration fails to converge.
 */
StationaryResult stationaryPowerIteration(
    const TransitionMatrix &matrix,
    const PowerIterationOptions &options = {});

/**
 * Solve the linear system directly (Gaussian elimination on the
 * dense (P^T - I) system with a normalization row).  Intended for
 * chains of at most a few thousand states.
 */
StationaryResult stationaryDirect(const TransitionMatrix &matrix);

/** L1 norm of pi - pi*P (how stationary @p pi really is). */
double stationaryResidual(const TransitionMatrix &matrix,
                          const std::vector<double> &pi);

} // namespace damq

#endif // DAMQ_MARKOV_STATIONARY_HH

#include "markov/switch2x2.hh"

#include <algorithm>

#include "common/logging.hh"

namespace damq {

namespace {

/** Pack two buffer states into one joint key. */
constexpr std::uint64_t
jointKey(BufferStateModel::State a, BufferStateModel::State b)
{
    return static_cast<std::uint64_t>(a) |
           (static_cast<std::uint64_t>(b) << 32);
}

constexpr BufferStateModel::State
keyA(std::uint64_t key)
{
    return static_cast<BufferStateModel::State>(key & 0xffffffffu);
}

constexpr BufferStateModel::State
keyB(std::uint64_t key)
{
    return static_cast<BufferStateModel::State>(key >> 32);
}

} // namespace

Switch2x2Chain::Switch2x2Chain(BufferType type, unsigned slots,
                               double traffic)
    : bufferType(type), trafficRate(traffic),
      model(makeBufferStateModel(type, slots))
{
    damq_assert(traffic >= 0.0 && traffic <= 1.0,
                "traffic rate must be a probability");

    const double p = trafficRate;
    const double arrival_probs[3] = {1.0 - p, p / 2.0, p / 2.0};

    // Seed with the empty switch and explore.
    stateIndex(model->emptyState(), model->emptyState());
    while (!pending.empty()) {
        const std::uint32_t s = pending.back();
        pending.pop_back();
        const BufferStateModel::State a = keyA(stateKeys[s]);
        const BufferStateModel::State b = keyB(stateKeys[s]);

        double expected_discards = 0.0;
        double expected_departures = 0.0;

        for (const Branch &branch : departureBranches(a, b)) {
            expected_departures +=
                branch.prob * static_cast<double>(branch.departures);

            // Arrivals: event 0 = none, 1 = packet for output 0,
            // 2 = packet for output 1, independently per input.
            for (int ea = 0; ea < 3; ++ea) {
                for (int eb = 0; eb < 3; ++eb) {
                    const double prob = branch.prob *
                                        arrival_probs[ea] *
                                        arrival_probs[eb];
                    if (prob == 0.0)
                        continue;

                    BufferStateModel::State na = branch.a;
                    BufferStateModel::State nb = branch.b;
                    unsigned discards = 0;
                    if (ea != 0) {
                        const unsigned dest = ea - 1;
                        if (model->canAdd(na, dest))
                            na = model->add(na, dest);
                        else
                            ++discards;
                    }
                    if (eb != 0) {
                        const unsigned dest = eb - 1;
                        if (model->canAdd(nb, dest))
                            nb = model->add(nb, dest);
                        else
                            ++discards;
                    }
                    expected_discards +=
                        prob * static_cast<double>(discards);
                    const std::uint32_t target = stateIndex(na, nb);
                    transitions.addTransition(s, target, prob);
                }
            }
        }

        discardsPerState[s] = expected_discards;
        departuresPerState[s] = expected_departures;
    }

    keyIndex.clear(); // only needed while building
    transitions.validateStochastic();
}

std::uint32_t
Switch2x2Chain::stateIndex(BufferStateModel::State a,
                           BufferStateModel::State b)
{
    const std::uint64_t key = jointKey(a, b);
    const auto found = keyIndex.find(key);
    if (found != keyIndex.end())
        return found->second;

    const auto idx = static_cast<std::uint32_t>(stateKeys.size());
    keyIndex.emplace(key, idx);
    stateKeys.push_back(key);
    discardsPerState.push_back(0.0);
    departuresPerState.push_back(0.0);
    occupancyPerState.push_back(model->totalPackets(a) +
                                model->totalPackets(b));
    transitions.ensureStates(stateKeys.size());
    pending.push_back(idx);
    return idx;
}

std::vector<Switch2x2Chain::Branch>
Switch2x2Chain::departureBranches(BufferStateModel::State a,
                                  BufferStateModel::State b) const
{
    if (bufferType == BufferType::Safc)
        return fullyConnectedDepartures(a, b);
    return singleReadDepartures(a, b);
}

std::vector<Switch2x2Chain::Branch>
Switch2x2Chain::singleReadDepartures(BufferStateModel::State a,
                                     BufferStateModel::State b) const
{
    std::vector<Branch> branches;

    const bool a0 = model->hasPacket(a, 0);
    const bool a1 = model->hasPacket(a, 1);
    const bool b0 = model->hasPacket(b, 0);
    const bool b1 = model->hasPacket(b, 1);

    // The two ways of sending two packets through distinct outputs
    // from distinct single-read-port buffers.
    const bool forward = a0 && b1; // A -> 0, B -> 1
    const bool swapped = a1 && b0; // A -> 1, B -> 0

    auto emitPair = [&](unsigned dest_a, unsigned dest_b, double prob) {
        branches.push_back(Branch{model->removeHead(a, dest_a),
                                  model->removeHead(b, dest_b), prob,
                                  2});
    };

    if (forward && swapped) {
        // All four queues are non-empty: both assignments work, so
        // serve each buffer's longest queue, flipping fair coins on
        // ties.  Enumerate the (at most eight) coin outcomes.
        const unsigned la0 = model->queueLength(a, 0);
        const unsigned la1 = model->queueLength(a, 1);
        const unsigned lb0 = model->queueLength(b, 0);
        const unsigned lb1 = model->queueLength(b, 1);

        struct Pref
        {
            unsigned dest;
            double prob;
        };
        auto prefs = [](unsigned len0, unsigned len1) {
            std::vector<Pref> out;
            if (len0 > len1)
                out.push_back(Pref{0, 1.0});
            else if (len1 > len0)
                out.push_back(Pref{1, 1.0});
            else {
                out.push_back(Pref{0, 0.5});
                out.push_back(Pref{1, 0.5});
            }
            return out;
        };

        for (const Pref &pa : prefs(la0, la1)) {
            for (const Pref &pb : prefs(lb0, lb1)) {
                const double prob = pa.prob * pb.prob;
                if (pa.dest != pb.dest) {
                    emitPair(pa.dest, pb.dest, prob);
                    continue;
                }
                // Both want the same output: the longer queue for
                // that output wins it; the loser takes the other.
                const unsigned d = pa.dest;
                const unsigned len_a =
                    model->queueLength(a, d);
                const unsigned len_b =
                    model->queueLength(b, d);
                if (len_a > len_b) {
                    emitPair(d, 1 - d, prob);
                } else if (len_b > len_a) {
                    emitPair(1 - d, d, prob);
                } else {
                    emitPair(d, 1 - d, prob / 2.0);
                    emitPair(1 - d, d, prob / 2.0);
                }
            }
        }
        return branches;
    }

    if (forward) {
        emitPair(0, 1, 1.0);
        return branches;
    }
    if (swapped) {
        emitPair(1, 0, 1.0);
        return branches;
    }

    // At most one packet can leave: pick the longest queue among
    // all (buffer, output) candidates, ties broken uniformly.
    struct Candidate
    {
        bool fromA;
        unsigned dest;
        unsigned len;
    };
    std::vector<Candidate> candidates;
    if (a0)
        candidates.push_back({true, 0, model->queueLength(a, 0)});
    if (a1)
        candidates.push_back({true, 1, model->queueLength(a, 1)});
    if (b0)
        candidates.push_back({false, 0, model->queueLength(b, 0)});
    if (b1)
        candidates.push_back({false, 1, model->queueLength(b, 1)});

    if (candidates.empty()) {
        branches.push_back(Branch{a, b, 1.0, 0});
        return branches;
    }

    unsigned best = 0;
    for (const Candidate &c : candidates)
        best = std::max(best, c.len);
    std::vector<Candidate> winners;
    for (const Candidate &c : candidates)
        if (c.len == best)
            winners.push_back(c);

    const double prob = 1.0 / static_cast<double>(winners.size());
    for (const Candidate &c : winners) {
        if (c.fromA) {
            branches.push_back(
                Branch{model->removeHead(a, c.dest), b, prob, 1});
        } else {
            branches.push_back(
                Branch{a, model->removeHead(b, c.dest), prob, 1});
        }
    }
    return branches;
}

std::vector<Switch2x2Chain::Branch>
Switch2x2Chain::fullyConnectedDepartures(BufferStateModel::State a,
                                         BufferStateModel::State b) const
{
    // Outputs arbitrate independently; a buffer may serve both.
    // For each output: no candidate, a forced winner, or a coin
    // flip between equal queues.
    struct Outcome
    {
        int winner; ///< -1 none, 0 from A, 1 from B
        double prob;
    };
    auto outcomesFor = [&](unsigned dest) {
        std::vector<Outcome> out;
        const bool from_a = model->hasPacket(a, dest);
        const bool from_b = model->hasPacket(b, dest);
        if (!from_a && !from_b) {
            out.push_back({-1, 1.0});
        } else if (from_a && !from_b) {
            out.push_back({0, 1.0});
        } else if (!from_a && from_b) {
            out.push_back({1, 1.0});
        } else {
            const unsigned len_a = model->queueLength(a, dest);
            const unsigned len_b = model->queueLength(b, dest);
            if (len_a > len_b)
                out.push_back({0, 1.0});
            else if (len_b > len_a)
                out.push_back({1, 1.0});
            else {
                out.push_back({0, 0.5});
                out.push_back({1, 0.5});
            }
        }
        return out;
    };

    std::vector<Branch> branches;
    for (const Outcome &o0 : outcomesFor(0)) {
        for (const Outcome &o1 : outcomesFor(1)) {
            BufferStateModel::State na = a;
            BufferStateModel::State nb = b;
            unsigned departures = 0;
            if (o0.winner == 0) {
                na = model->removeHead(na, 0);
                ++departures;
            } else if (o0.winner == 1) {
                nb = model->removeHead(nb, 0);
                ++departures;
            }
            if (o1.winner == 0) {
                na = model->removeHead(na, 1);
                ++departures;
            } else if (o1.winner == 1) {
                nb = model->removeHead(nb, 1);
                ++departures;
            }
            branches.push_back(
                Branch{na, nb, o0.prob * o1.prob, departures});
        }
    }
    return branches;
}

Markov2x2Result
Switch2x2Chain::solve(const PowerIterationOptions &options) const
{
    const StationaryResult stationary =
        stationaryPowerIteration(transitions, options);

    Markov2x2Result result;
    result.numStates = numStates();
    result.solverIterations = stationary.iterations;
    result.solverResidual = stationary.residual;

    double discards = 0.0;
    double departures = 0.0;
    double occupancy = 0.0;
    for (std::uint32_t s = 0; s < numStates(); ++s) {
        const double mass = stationary.distribution[s];
        discards += mass * discardsPerState[s];
        departures += mass * departuresPerState[s];
        occupancy += mass * static_cast<double>(occupancyPerState[s]);
    }

    const double expected_arrivals = 2.0 * trafficRate;
    result.discardProbability =
        expected_arrivals > 0.0 ? discards / expected_arrivals : 0.0;
    result.throughput = departures;
    result.meanOccupancy = occupancy;
    return result;
}

Markov2x2Result
analyzeDiscarding2x2(BufferType type, unsigned slots, double traffic,
                     const PowerIterationOptions &options)
{
    const Switch2x2Chain chain(type, slots, traffic);
    return chain.solve(options);
}

} // namespace damq

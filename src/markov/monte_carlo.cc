#include "markov/monte_carlo.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "markov/buffer_state.hh"

namespace damq {

namespace {

using State = BufferStateModel::State;

/** Sampled departure step mirroring Switch2x2Chain's rules. */
unsigned
sampleDepartures(const BufferStateModel &model, BufferType type,
                 State &a, State &b, Random &rng)
{
    const bool a0 = model.hasPacket(a, 0);
    const bool a1 = model.hasPacket(a, 1);
    const bool b0 = model.hasPacket(b, 0);
    const bool b1 = model.hasPacket(b, 1);

    if (type == BufferType::Safc) {
        // Outputs arbitrate independently.
        unsigned departures = 0;
        for (unsigned dest = 0; dest < 2; ++dest) {
            const bool from_a = model.hasPacket(a, dest);
            const bool from_b = model.hasPacket(b, dest);
            if (!from_a && !from_b)
                continue;
            bool pick_a;
            if (from_a && from_b) {
                const unsigned la = model.queueLength(a, dest);
                const unsigned lb = model.queueLength(b, dest);
                pick_a = la != lb ? la > lb : rng.bernoulli(0.5);
            } else {
                pick_a = from_a;
            }
            if (pick_a)
                a = model.removeHead(a, dest);
            else
                b = model.removeHead(b, dest);
            ++departures;
        }
        return departures;
    }

    const bool forward = a0 && b1;
    const bool swapped = a1 && b0;

    if (forward && swapped) {
        auto prefer = [&rng](unsigned l0, unsigned l1) {
            if (l0 != l1)
                return l0 > l1 ? 0u : 1u;
            return rng.bernoulli(0.5) ? 0u : 1u;
        };
        const unsigned pa =
            prefer(model.queueLength(a, 0), model.queueLength(a, 1));
        const unsigned pb =
            prefer(model.queueLength(b, 0), model.queueLength(b, 1));
        unsigned dest_a;
        unsigned dest_b;
        if (pa != pb) {
            dest_a = pa;
            dest_b = pb;
        } else {
            const unsigned la = model.queueLength(a, pa);
            const unsigned lb = model.queueLength(b, pa);
            const bool a_wins =
                la != lb ? la > lb : rng.bernoulli(0.5);
            dest_a = a_wins ? pa : 1 - pa;
            dest_b = a_wins ? 1 - pa : pa;
        }
        a = model.removeHead(a, dest_a);
        b = model.removeHead(b, dest_b);
        return 2;
    }
    if (forward) {
        a = model.removeHead(a, 0);
        b = model.removeHead(b, 1);
        return 2;
    }
    if (swapped) {
        a = model.removeHead(a, 1);
        b = model.removeHead(b, 0);
        return 2;
    }

    struct Candidate
    {
        bool fromA;
        unsigned dest;
        unsigned len;
    };
    std::vector<Candidate> candidates;
    if (a0)
        candidates.push_back({true, 0, model.queueLength(a, 0)});
    if (a1)
        candidates.push_back({true, 1, model.queueLength(a, 1)});
    if (b0)
        candidates.push_back({false, 0, model.queueLength(b, 0)});
    if (b1)
        candidates.push_back({false, 1, model.queueLength(b, 1)});
    if (candidates.empty())
        return 0;

    unsigned best = 0;
    for (const Candidate &c : candidates)
        best = std::max(best, c.len);
    std::vector<Candidate> winners;
    for (const Candidate &c : candidates)
        if (c.len == best)
            winners.push_back(c);
    const Candidate &chosen =
        winners[rng.below(winners.size())];
    if (chosen.fromA)
        a = model.removeHead(a, chosen.dest);
    else
        b = model.removeHead(b, chosen.dest);
    return 1;
}

} // namespace

MonteCarlo2x2Result
simulateDiscarding2x2(BufferType type, unsigned slots, double traffic,
                      std::uint64_t cycles, std::uint64_t warmup,
                      std::uint64_t seed)
{
    const auto model = makeBufferStateModel(type, slots);
    Random rng(seed);

    State a = model->emptyState();
    State b = model->emptyState();

    MonteCarlo2x2Result result;
    std::uint64_t departures = 0;

    for (std::uint64_t cycle = 0; cycle < warmup + cycles; ++cycle) {
        const bool measuring = cycle >= warmup;
        const unsigned departed =
            sampleDepartures(*model, type, a, b, rng);
        if (measuring)
            departures += departed;

        for (State *buf : {&a, &b}) {
            if (!rng.bernoulli(traffic))
                continue;
            const unsigned dest = rng.bernoulli(0.5) ? 1 : 0;
            if (measuring)
                ++result.arrivals;
            if (model->canAdd(*buf, dest)) {
                *buf = model->add(*buf, dest);
            } else if (measuring) {
                ++result.discards;
            }
        }
    }

    result.discardProbability =
        result.arrivals == 0
            ? 0.0
            : static_cast<double>(result.discards) /
                  static_cast<double>(result.arrivals);
    result.throughput =
        static_cast<double>(departures) / static_cast<double>(cycles);
    return result;
}

} // namespace damq

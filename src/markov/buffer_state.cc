#include "markov/buffer_state.hh"

#include <sstream>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace damq {

// ---------------------------------------------------------------- FIFO

FifoBufferState::FifoBufferState(unsigned slots) : capacity(slots)
{
    damq_assert(slots >= 1 && slots <= 30,
                "FIFO Markov state supports 1..30 slots");
}

unsigned
FifoBufferState::totalPackets(State s) const
{
    damq_assert(s >= 1, "invalid FIFO state 0");
    return floorLog2(s);
}

bool
FifoBufferState::hasPacket(State s, unsigned dest) const
{
    // Only the head of line (least significant bit) is visible.
    return totalPackets(s) > 0 && (s & 1u) == dest;
}

unsigned
FifoBufferState::queueLength(State s, unsigned dest) const
{
    // The whole buffer is one queue, owned by the head's dest.
    return hasPacket(s, dest) ? totalPackets(s) : 0;
}

BufferStateModel::State
FifoBufferState::removeHead(State s, unsigned dest) const
{
    damq_assert(hasPacket(s, dest), "removeHead: no head for ", dest);
    return s >> 1;
}

bool
FifoBufferState::canAdd(State s, unsigned) const
{
    return totalPackets(s) < capacity;
}

BufferStateModel::State
FifoBufferState::add(State s, unsigned dest) const
{
    damq_assert(canAdd(s, dest), "add to a full FIFO state");
    const unsigned len = totalPackets(s);
    const State bits = s ^ (State{1} << len);
    // New tail occupies bit position len; sentinel moves up one.
    return (State{1} << (len + 1)) | bits |
           (static_cast<State>(dest) << len);
}

std::string
FifoBufferState::describe(State s) const
{
    std::ostringstream oss;
    oss << "[";
    const unsigned len = totalPackets(s);
    for (unsigned i = 0; i < len; ++i)
        oss << ((s >> i) & 1u); // head first
    oss << "]";
    return oss.str();
}

// ------------------------------------------------------- shared counts

namespace {

/** Pack (n0, n1) as n0 | n1 << 8 — capacities stay tiny. */
constexpr std::uint32_t
packCounts(unsigned n0, unsigned n1)
{
    return n0 | (n1 << 8);
}

constexpr unsigned
count0(std::uint32_t s)
{
    return s & 0xffu;
}

constexpr unsigned
count1(std::uint32_t s)
{
    return (s >> 8) & 0xffu;
}

constexpr unsigned
countFor(std::uint32_t s, unsigned dest)
{
    return dest == 0 ? count0(s) : count1(s);
}

std::uint32_t
adjust(std::uint32_t s, unsigned dest, int delta)
{
    unsigned n0 = count0(s);
    unsigned n1 = count1(s);
    if (dest == 0)
        n0 = static_cast<unsigned>(static_cast<int>(n0) + delta);
    else
        n1 = static_cast<unsigned>(static_cast<int>(n1) + delta);
    return packCounts(n0, n1);
}

} // namespace

SharedCountBufferState::SharedCountBufferState(unsigned slots)
    : capacity(slots)
{
    damq_assert(slots >= 1 && slots < 255,
                "shared-count state supports 1..254 slots");
}

bool
SharedCountBufferState::hasPacket(State s, unsigned dest) const
{
    return countFor(s, dest) > 0;
}

unsigned
SharedCountBufferState::queueLength(State s, unsigned dest) const
{
    return countFor(s, dest);
}

BufferStateModel::State
SharedCountBufferState::removeHead(State s, unsigned dest) const
{
    damq_assert(hasPacket(s, dest), "removeHead: queue ", dest,
                " is empty");
    return adjust(s, dest, -1);
}

bool
SharedCountBufferState::canAdd(State s, unsigned) const
{
    return count0(s) + count1(s) < capacity;
}

BufferStateModel::State
SharedCountBufferState::add(State s, unsigned dest) const
{
    damq_assert(canAdd(s, dest), "add to a full shared pool");
    return adjust(s, dest, +1);
}

unsigned
SharedCountBufferState::totalPackets(State s) const
{
    return count0(s) + count1(s);
}

std::string
SharedCountBufferState::describe(State s) const
{
    std::ostringstream oss;
    oss << "(" << count0(s) << "," << count1(s) << ")";
    return oss.str();
}

// ------------------------------------------------- reserved-slot counts

ReservedCountBufferState::ReservedCountBufferState(unsigned slots)
    : capacity(slots)
{
    damq_assert(slots >= 2 && slots < 255,
                "reserved-slot state needs 2..254 slots");
}

bool
ReservedCountBufferState::hasPacket(State s, unsigned dest) const
{
    return countFor(s, dest) > 0;
}

unsigned
ReservedCountBufferState::queueLength(State s, unsigned dest) const
{
    return countFor(s, dest);
}

BufferStateModel::State
ReservedCountBufferState::removeHead(State s, unsigned dest) const
{
    damq_assert(hasPacket(s, dest), "removeHead: queue ", dest,
                " is empty");
    return adjust(s, dest, -1);
}

bool
ReservedCountBufferState::canAdd(State s, unsigned dest) const
{
    const unsigned free = capacity - count0(s) - count1(s);
    // One slot stays reserved for the other queue while it is
    // empty.
    const unsigned reserved_for_other =
        countFor(s, 1 - dest) == 0 ? 1 : 0;
    return free >= 1 + reserved_for_other;
}

BufferStateModel::State
ReservedCountBufferState::add(State s, unsigned dest) const
{
    damq_assert(canAdd(s, dest), "add past the reserved slot");
    return adjust(s, dest, +1);
}

unsigned
ReservedCountBufferState::totalPackets(State s) const
{
    return count0(s) + count1(s);
}

std::string
ReservedCountBufferState::describe(State s) const
{
    std::ostringstream oss;
    oss << "(" << count0(s) << "," << count1(s) << ")r";
    return oss.str();
}

// -------------------------------------------------- partitioned counts

PartitionedCountBufferState::PartitionedCountBufferState(unsigned slots)
    : perQueue(slots / 2)
{
    damq_assert(slots >= 2 && slots % 2 == 0,
                "statically partitioned buffers need an even slot "
                "count (got ", slots, ")");
    damq_assert(perQueue < 255, "partition too large to encode");
}

bool
PartitionedCountBufferState::hasPacket(State s, unsigned dest) const
{
    return countFor(s, dest) > 0;
}

unsigned
PartitionedCountBufferState::queueLength(State s, unsigned dest) const
{
    return countFor(s, dest);
}

BufferStateModel::State
PartitionedCountBufferState::removeHead(State s, unsigned dest) const
{
    damq_assert(hasPacket(s, dest), "removeHead: queue ", dest,
                " is empty");
    return adjust(s, dest, -1);
}

bool
PartitionedCountBufferState::canAdd(State s, unsigned dest) const
{
    return countFor(s, dest) < perQueue;
}

BufferStateModel::State
PartitionedCountBufferState::add(State s, unsigned dest) const
{
    damq_assert(canAdd(s, dest), "add to a full partition");
    return adjust(s, dest, +1);
}

unsigned
PartitionedCountBufferState::totalPackets(State s) const
{
    return count0(s) + count1(s);
}

std::string
PartitionedCountBufferState::describe(State s) const
{
    std::ostringstream oss;
    oss << "(" << count0(s) << "|" << count1(s) << ")";
    return oss.str();
}

// --------------------------------------------------------------- factory

std::unique_ptr<BufferStateModel>
makeBufferStateModel(BufferType type, unsigned slots)
{
    switch (type) {
      case BufferType::Fifo:
        return std::make_unique<FifoBufferState>(slots);
      case BufferType::Damq:
        return std::make_unique<SharedCountBufferState>(slots);
      case BufferType::DamqR:
      case BufferType::Voq:
        // VOQ at one private slot per queue obeys exactly the DAMQR
        // reserved-count dynamics; the chain abstracts over VCs, so
        // larger private allocations are not modeled separately.
        return std::make_unique<ReservedCountBufferState>(slots);
      case BufferType::Samq:
      case BufferType::Safc:
        return std::make_unique<PartitionedCountBufferState>(slots);
    }
    damq_panic("unknown BufferType ", static_cast<int>(type));
}

} // namespace damq

/**
 * @file
 * Exact Markov model of a 2x2 discarding switch with *output*
 * queueing (Karol, Hluchyj & Morgan — reference 5 of the paper).
 * Arrivals go straight to their output's queue (idealized write
 * bandwidth: both inputs can deposit into the same queue in one
 * cycle), each output transmits one packet per cycle, and a packet
 * arriving at a full queue is discarded.
 *
 * This is the lower bound the input-buffered organizations chase:
 * no head-of-line blocking, no read-port limit — only finite,
 * statically partitioned space.
 */

#ifndef DAMQ_MARKOV_OUTPUT_QUEUED2X2_HH
#define DAMQ_MARKOV_OUTPUT_QUEUED2X2_HH

#include "markov/switch2x2.hh"

namespace damq {

/**
 * Build and solve the output-queued chain.
 * @param slots_per_output static capacity of each output queue.
 * @param traffic          arrival probability p per input.
 */
Markov2x2Result analyzeOutputQueued2x2(
    unsigned slots_per_output, double traffic,
    const PowerIterationOptions &options = {});

} // namespace damq

#endif // DAMQ_MARKOV_OUTPUT_QUEUED2X2_HH

/**
 * @file
 * Monte-Carlo simulator of the same 2x2 long-clock discarding
 * switch the Markov chain models.  It reuses the exact same
 * single-buffer state algebras and arbitration rules but resolves
 * the randomness by sampling instead of enumeration, providing an
 * independent cross-check of the analytic results (the test suite
 * requires agreement within statistical error).
 */

#ifndef DAMQ_MARKOV_MONTE_CARLO_HH
#define DAMQ_MARKOV_MONTE_CARLO_HH

#include <cstdint>

#include "common/random.hh"
#include "queueing/buffer_model.hh"

namespace damq {

/** Sampled steady-state estimates. */
struct MonteCarlo2x2Result
{
    double discardProbability = 0.0;
    double throughput = 0.0; ///< departures per cycle
    std::uint64_t arrivals = 0;
    std::uint64_t discards = 0;
};

/**
 * Simulate @p cycles long-clock cycles (after @p warmup) of a 2x2
 * discarding switch with @p type buffers of @p slots slots under
 * arrival probability @p traffic, using @p seed.
 */
MonteCarlo2x2Result simulateDiscarding2x2(BufferType type,
                                          unsigned slots,
                                          double traffic,
                                          std::uint64_t cycles,
                                          std::uint64_t warmup,
                                          std::uint64_t seed);

} // namespace damq

#endif // DAMQ_MARKOV_MONTE_CARLO_HH

/**
 * @file
 * Sparse row-stochastic transition matrix for discrete-time Markov
 * chains.  Rows are built incrementally while exploring a state
 * space; duplicate (from, to) contributions accumulate.
 */

#ifndef DAMQ_MARKOV_TRANSITION_MATRIX_HH
#define DAMQ_MARKOV_TRANSITION_MATRIX_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace damq {

/** Sparse DTMC transition matrix (row-major adjacency lists). */
class TransitionMatrix
{
  public:
    /** One outgoing edge. */
    struct Entry
    {
        std::uint32_t to;
        double prob;
    };

    TransitionMatrix() = default;

    /** Construct with @p n states. */
    explicit TransitionMatrix(std::size_t n) : rows(n) {}

    /** Grow to at least @p n states. */
    void ensureStates(std::size_t n);

    /** Number of states. */
    std::size_t numStates() const { return rows.size(); }

    /**
     * Add probability mass @p prob to the @p from -> @p to edge
     * (accumulating with any existing mass).
     */
    void addTransition(std::uint32_t from, std::uint32_t to,
                       double prob);

    /** Outgoing edges of state @p from. */
    const std::vector<Entry> &row(std::uint32_t from) const
    {
        return rows[from];
    }

    /** Total outgoing probability of state @p from. */
    double rowSum(std::uint32_t from) const;

    /**
     * Panic unless every row sums to 1 within @p tolerance — the
     * basic sanity check that a chain builder enumerated all of its
     * randomness.
     */
    void validateStochastic(double tolerance = 1e-9) const;

    /** y = x * P (left multiplication by a row vector). */
    std::vector<double> leftMultiply(const std::vector<double> &x) const;

  private:
    std::vector<std::vector<Entry>> rows;
};

} // namespace damq

#endif // DAMQ_MARKOV_TRANSITION_MATRIX_HH

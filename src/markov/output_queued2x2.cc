#include "markov/output_queued2x2.hh"

#include "common/logging.hh"

namespace damq {

Markov2x2Result
analyzeOutputQueued2x2(unsigned slots_per_output, double traffic,
                       const PowerIterationOptions &options)
{
    damq_assert(slots_per_output >= 1, "queues need slots");
    damq_assert(traffic >= 0.0 && traffic <= 1.0,
                "traffic rate must be a probability");

    const unsigned cap = slots_per_output;
    const unsigned per_queue_states = cap + 1;
    const std::size_t n =
        static_cast<std::size_t>(per_queue_states) * per_queue_states;

    auto index = [per_queue_states](unsigned q0, unsigned q1) {
        return static_cast<std::uint32_t>(q0 * per_queue_states + q1);
    };

    const double p = traffic;
    const double arrival_probs[3] = {1.0 - p, p / 2.0, p / 2.0};

    TransitionMatrix matrix(n);
    std::vector<double> discards_per_state(n, 0.0);
    std::vector<double> departures_per_state(n, 0.0);
    std::vector<unsigned> occupancy_per_state(n, 0);

    for (unsigned q0 = 0; q0 <= cap; ++q0) {
        for (unsigned q1 = 0; q1 <= cap; ++q1) {
            const std::uint32_t s = index(q0, q1);
            occupancy_per_state[s] = q0 + q1;

            // Departures: every non-empty output sends one packet.
            const unsigned d0 = q0 > 0 ? q0 - 1 : 0;
            const unsigned d1 = q1 > 0 ? q1 - 1 : 0;
            departures_per_state[s] =
                static_cast<double>((q0 > 0 ? 1 : 0) +
                                    (q1 > 0 ? 1 : 0));

            // Arrivals: each input independently contributes
            // nothing, a packet for output 0, or one for output 1.
            for (int ea = 0; ea < 3; ++ea) {
                for (int eb = 0; eb < 3; ++eb) {
                    const double prob =
                        arrival_probs[ea] * arrival_probs[eb];
                    if (prob == 0.0)
                        continue;
                    unsigned n0 = d0;
                    unsigned n1 = d1;
                    unsigned discards = 0;
                    for (const int event : {ea, eb}) {
                        if (event == 0)
                            continue;
                        unsigned &queue = event == 1 ? n0 : n1;
                        if (queue < cap)
                            ++queue;
                        else
                            ++discards;
                    }
                    discards_per_state[s] +=
                        prob * static_cast<double>(discards);
                    matrix.addTransition(s, index(n0, n1), prob);
                }
            }
        }
    }
    matrix.validateStochastic();

    const StationaryResult stationary =
        stationaryPowerIteration(matrix, options);

    Markov2x2Result result;
    result.numStates = n;
    result.solverIterations = stationary.iterations;
    result.solverResidual = stationary.residual;

    double discards = 0.0;
    double departures = 0.0;
    double occupancy = 0.0;
    for (std::uint32_t s = 0; s < n; ++s) {
        const double mass = stationary.distribution[s];
        discards += mass * discards_per_state[s];
        departures += mass * departures_per_state[s];
        occupancy += mass * static_cast<double>(occupancy_per_state[s]);
    }
    const double expected_arrivals = 2.0 * traffic;
    result.discardProbability =
        expected_arrivals > 0.0 ? discards / expected_arrivals : 0.0;
    result.throughput = departures;
    result.meanOccupancy = occupancy;
    return result;
}

} // namespace damq

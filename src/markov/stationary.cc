#include "markov/stationary.hh"

#include <cmath>

#include "common/logging.hh"

namespace damq {

namespace {

/** Sum of absolute differences between two equal-length vectors. */
double
l1Difference(const std::vector<double> &a, const std::vector<double> &b)
{
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        total += std::abs(a[i] - b[i]);
    return total;
}

/** Scale @p v so its entries sum to one. */
void
normalize(std::vector<double> &v)
{
    double total = 0.0;
    for (const double x : v)
        total += x;
    damq_assert(total > 0.0, "cannot normalize a zero vector");
    for (double &x : v)
        x /= total;
}

} // namespace

double
stationaryResidual(const TransitionMatrix &matrix,
                   const std::vector<double> &pi)
{
    return l1Difference(pi, matrix.leftMultiply(pi));
}

StationaryResult
stationaryPowerIteration(const TransitionMatrix &matrix,
                         const PowerIterationOptions &options)
{
    const std::size_t n = matrix.numStates();
    damq_assert(n > 0, "empty chain");

    std::vector<double> pi(n, 1.0 / static_cast<double>(n));
    StationaryResult result;
    for (std::size_t iter = 1; iter <= options.maxIterations; ++iter) {
        std::vector<double> next = matrix.leftMultiply(pi);
        normalize(next); // guard against rounding drift
        const double change = l1Difference(pi, next);
        pi.swap(next);
        if (change <= options.tolerance) {
            result.distribution = std::move(pi);
            result.iterations = iter;
            result.residual =
                stationaryResidual(matrix, result.distribution);
            return result;
        }
    }
    damq_panic("power iteration failed to converge after ",
               options.maxIterations, " iterations");
}

StationaryResult
stationaryDirect(const TransitionMatrix &matrix)
{
    const std::size_t n = matrix.numStates();
    damq_assert(n > 0, "empty chain");
    damq_assert(n <= 4096,
                "direct solve limited to small chains (", n, " states)");

    // Build A = P^T - I, then replace the last equation with the
    // normalization constraint sum(pi) = 1.
    std::vector<std::vector<double>> a(n, std::vector<double>(n + 1, 0.0));
    for (std::uint32_t from = 0; from < n; ++from) {
        for (const auto &entry : matrix.row(from))
            a[entry.to][from] += entry.prob;
    }
    for (std::size_t i = 0; i < n; ++i)
        a[i][i] -= 1.0;
    for (std::size_t j = 0; j < n; ++j)
        a[n - 1][j] = 1.0;
    a[n - 1][n] = 1.0;

    // Gaussian elimination with partial pivoting.
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        }
        damq_assert(std::abs(a[pivot][col]) > 1e-14,
                    "singular system: chain may be reducible");
        std::swap(a[col], a[pivot]);
        for (std::size_t r = 0; r < n; ++r) {
            if (r == col || a[r][col] == 0.0)
                continue;
            const double factor = a[r][col] / a[col][col];
            for (std::size_t c = col; c <= n; ++c)
                a[r][c] -= factor * a[col][c];
        }
    }

    StationaryResult result;
    result.distribution.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        result.distribution[i] = a[i][n] / a[i][i];
    normalize(result.distribution);
    result.iterations = 0;
    result.residual = stationaryResidual(matrix, result.distribution);
    return result;
}

} // namespace damq

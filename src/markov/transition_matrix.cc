#include "markov/transition_matrix.hh"

#include <cmath>

#include "common/logging.hh"

namespace damq {

void
TransitionMatrix::ensureStates(std::size_t n)
{
    if (rows.size() < n)
        rows.resize(n);
}

void
TransitionMatrix::addTransition(std::uint32_t from, std::uint32_t to,
                                double prob)
{
    damq_assert(from < rows.size(), "addTransition: bad source state");
    damq_assert(prob >= 0.0, "addTransition: negative probability");
    if (prob == 0.0)
        return;
    for (Entry &entry : rows[from]) {
        if (entry.to == to) {
            entry.prob += prob;
            return;
        }
    }
    rows[from].push_back(Entry{to, prob});
}

double
TransitionMatrix::rowSum(std::uint32_t from) const
{
    damq_assert(from < rows.size(), "rowSum: bad state");
    double total = 0.0;
    for (const Entry &entry : rows[from])
        total += entry.prob;
    return total;
}

void
TransitionMatrix::validateStochastic(double tolerance) const
{
    for (std::uint32_t s = 0; s < rows.size(); ++s) {
        const double sum = rowSum(s);
        damq_assert(std::abs(sum - 1.0) <= tolerance,
                    "row ", s, " sums to ", sum, ", not 1");
    }
}

std::vector<double>
TransitionMatrix::leftMultiply(const std::vector<double> &x) const
{
    damq_assert(x.size() == rows.size(),
                "leftMultiply: dimension mismatch");
    std::vector<double> y(rows.size(), 0.0);
    for (std::uint32_t s = 0; s < rows.size(); ++s) {
        const double mass = x[s];
        if (mass == 0.0)
            continue;
        for (const Entry &entry : rows[s])
            y[entry.to] += mass * entry.prob;
    }
    return y;
}

} // namespace damq

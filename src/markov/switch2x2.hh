/**
 * @file
 * Exact Markov-chain model of one 2x2 *discarding* switch, as used
 * for Table 2 of the paper.
 *
 * Model assumptions (Section 4.1, following Karol et al.):
 *  - fixed-length packets and a "long clock": in every cycle a
 *    packet either completely departs or completely arrives;
 *  - each input receives a packet with probability p per cycle,
 *    destined to either output with equal probability;
 *  - departures precede arrivals within a cycle; a packet arriving
 *    at a buffer with no room for it is discarded;
 *  - arbitration "sends two packets if at all possible, or a packet
 *    from the longest queue if not", with fair coin flips breaking
 *    ties.  For SAFC the two outputs arbitrate independently (the
 *    fully connected data path lets one buffer feed both outputs in
 *    the same cycle); for FIFO/SAMQ/DAMQ a buffer can release only
 *    one packet per cycle (single read port).
 *
 * The chain is built by breadth-first exploration from the empty
 * switch, so only reachable states are enumerated (e.g. 16129
 * states for two 6-slot FIFO buffers, 784 for two 6-slot DAMQs).
 */

#ifndef DAMQ_MARKOV_SWITCH2X2_HH
#define DAMQ_MARKOV_SWITCH2X2_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "markov/buffer_state.hh"
#include "markov/stationary.hh"
#include "markov/transition_matrix.hh"
#include "queueing/buffer_model.hh"

namespace damq {

/** Steady-state figures extracted from the chain. */
struct Markov2x2Result
{
    /** P(an arriving packet is discarded). */
    double discardProbability = 0.0;

    /** Expected departures per cycle (of a 2-packet maximum). */
    double throughput = 0.0;

    /** Expected packets buffered in the switch. */
    double meanOccupancy = 0.0;

    std::size_t numStates = 0;
    std::size_t solverIterations = 0;
    double solverResidual = 0.0;
};

/** The chain for one (buffer type, slots, traffic rate) point. */
class Switch2x2Chain
{
  public:
    /**
     * Build the chain.
     * @param type    buffer organization at each input.
     * @param slots   slots per input buffer (even for SAMQ/SAFC).
     * @param traffic arrival probability p per input per cycle.
     */
    Switch2x2Chain(BufferType type, unsigned slots, double traffic);

    /** The transition matrix over reachable states. */
    const TransitionMatrix &matrix() const { return transitions; }

    /** Number of reachable states. */
    std::size_t numStates() const { return transitions.numStates(); }

    /** E[packets discarded in one cycle | state]. */
    double expectedDiscards(std::uint32_t state) const
    {
        return discardsPerState[state];
    }

    /** E[packets departing in one cycle | state]. */
    double expectedDepartures(std::uint32_t state) const
    {
        return departuresPerState[state];
    }

    /** Packets buffered in @p state. */
    unsigned occupancy(std::uint32_t state) const
    {
        return occupancyPerState[state];
    }

    /** Solve for the stationary distribution and summarize. */
    Markov2x2Result solve(
        const PowerIterationOptions &options = {}) const;

  private:
    /** One probabilistic outcome of the departure step. */
    struct Branch
    {
        BufferStateModel::State a;
        BufferStateModel::State b;
        double prob;
        unsigned departures;
    };

    /** Enumerate the departure outcomes for joint state (a, b). */
    std::vector<Branch> departureBranches(
        BufferStateModel::State a, BufferStateModel::State b) const;

    /** Single-read-port departure rule (FIFO/SAMQ/DAMQ). */
    std::vector<Branch> singleReadDepartures(
        BufferStateModel::State a, BufferStateModel::State b) const;

    /** Independent-output departure rule (SAFC). */
    std::vector<Branch> fullyConnectedDepartures(
        BufferStateModel::State a, BufferStateModel::State b) const;

    /** Index of joint state (a, b), allocating it if new. */
    std::uint32_t stateIndex(BufferStateModel::State a,
                             BufferStateModel::State b);

    BufferType bufferType;
    double trafficRate;
    std::unique_ptr<BufferStateModel> model;

    TransitionMatrix transitions;
    std::vector<std::uint64_t> stateKeys;
    std::vector<double> discardsPerState;
    std::vector<double> departuresPerState;
    std::vector<unsigned> occupancyPerState;
    std::vector<std::uint32_t> pending; ///< BFS worklist (build time)
    /** state key -> index map (only used during construction) */
    std::unordered_map<std::uint64_t, std::uint32_t> keyIndex;
};

/** Convenience one-shot: build and solve a chain. */
Markov2x2Result analyzeDiscarding2x2(
    BufferType type, unsigned slots, double traffic,
    const PowerIterationOptions &options = {});

} // namespace damq

#endif // DAMQ_MARKOV_SWITCH2X2_HH

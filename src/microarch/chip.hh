/**
 * @file
 * The ComCoBB chip: n input ports (each with a DAMQ buffer and a
 * router), n output ports, and a central crossbar arbiter.  The
 * default geometry is the paper's: four network ports plus one
 * processor-interface port, all connected by a 5x5 crossbar, every
 * port autonomous so all can be active simultaneously.
 *
 * Per-cycle evaluation order (see Table 1's phase discipline):
 *   phase 0: input ports (writes), then output ports (wire drive
 *            and crossbar reads);
 *   phase 1: arbiter (sees requests from the *previous* cycle),
 *            then input ports (routing/enqueue), then output ports
 *            (latches and FSM advance);
 *   end of cycle: input ports sample their links and publish
 *            flow-control credits.
 */

#ifndef DAMQ_MICROARCH_CHIP_HH
#define DAMQ_MICROARCH_CHIP_HH

#include <string>
#include <vector>

#include "microarch/crossbar_arbiter.hh"
#include "microarch/defs.hh"
#include "microarch/input_port.hh"
#include "microarch/output_port.hh"
#include "microarch/trace.hh"

namespace damq {
namespace micro {

/** One communication-coprocessor chip. */
class ComCobbChip
{
  public:
    /**
     * @param chip_name  name used in traces.
     * @param num_ports  ports (default 5: 4 network + processor).
     * @param num_slots  buffer slots per input port (default 12).
     * @param tracer     trace sink (may be nullptr).
     */
    explicit ComCobbChip(const std::string &chip_name,
                         PortId num_ports = kComCobbPorts,
                         unsigned num_slots = kDefaultBufferSlots,
                         Tracer *tracer = nullptr,
                         ChipBufferMode mode = ChipBufferMode::Damq);

    /** Buffer organization at this chip's input ports. */
    ChipBufferMode bufferMode() const { return mode; }

    ComCobbChip(const ComCobbChip &) = delete;
    ComCobbChip &operator=(const ComCobbChip &) = delete;

    /** Chip name. */
    const std::string &name() const { return chipName; }

    /** Port count. */
    PortId numPorts() const { return static_cast<PortId>(ins.size()); }

    /** Input port @p i. */
    MicroInputPort &inputPort(PortId i) { return ins[i]; }

    /** Output port @p i. */
    MicroOutputPort &outputPort(PortId i) { return outs[i]; }

    /** Router (virtual-circuit table) of input port @p i. */
    RoutingTable &router(PortId i) { return ins[i].router(); }

    /** Crossbar arbiter (fault hooks / tests). */
    CrossbarArbiter &crossbarArbiter() { return arbiter; }

    /** Phase-0 evaluation. */
    void phase0(Cycle cycle);

    /** Phase-1 evaluation (arbiter first). */
    void phase1(Cycle cycle);

    /** End-of-cycle sampling. */
    void endCycle(Cycle cycle);

    /** Validate every input buffer (tests). */
    void debugValidate() const;

  private:
    std::string chipName;
    ChipBufferMode mode;
    std::vector<MicroInputPort> ins;
    std::vector<MicroOutputPort> outs;
    CrossbarArbiter arbiter;
};

} // namespace micro
} // namespace damq

#endif // DAMQ_MICROARCH_CHIP_HH

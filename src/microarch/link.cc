#include "microarch/link.hh"

#include "common/logging.hh"

namespace damq {
namespace micro {

void
Link::driveStartBit()
{
    damq_assert(!wire.startBit && !wire.hasData,
                "link driven twice in one cycle");
    wire.startBit = true;
}

void
Link::driveData(std::uint8_t byte)
{
    damq_assert(!wire.startBit && !wire.hasData,
                "link driven twice in one cycle");
    wire.hasData = true;
    wire.data = byte;
}

} // namespace micro
} // namespace damq

#include "microarch/routing_table.hh"

#include <algorithm>

#include "common/logging.hh"

namespace damq {
namespace micro {

void
RoutingTable::program(VcId vc, PortId out, VcId nvc)
{
    Entry &entry = entries[vc];
    damq_assert(entry.remaining == 0,
                "reprogramming circuit ", unsigned{vc},
                " mid-message");
    entry.valid = true;
    entry.outPort = out;
    entry.newHeader = nvc;
}

RouteResult
RoutingTable::route(VcId vc) const
{
    const Entry &entry = entries[vc];
    damq_assert(entry.valid, "packet on unprogrammed circuit ",
                unsigned{vc});
    RouteResult result;
    result.outPort = entry.outPort;
    result.newHeader = entry.newHeader;
    result.firstOfMessage = entry.remaining == 0;
    result.continuationLength =
        std::min(entry.remaining, kMaxPacketBytes);
    return result;
}

unsigned
RoutingTable::beginMessage(VcId vc, unsigned message_bytes)
{
    Entry &entry = entries[vc];
    damq_assert(entry.valid, "beginMessage on unprogrammed circuit");
    damq_assert(entry.remaining == 0,
                "length byte while circuit ", unsigned{vc},
                " still expects ", entry.remaining, " bytes");
    damq_assert(message_bytes >= 1, "empty message");
    const unsigned this_packet =
        std::min(message_bytes, kMaxPacketBytes);
    entry.remaining = message_bytes - this_packet;
    return this_packet;
}

void
RoutingTable::consumeContinuation(VcId vc, unsigned payload_bytes)
{
    Entry &entry = entries[vc];
    damq_assert(entry.valid && entry.remaining >= payload_bytes,
                "continuation accounting out of sync on circuit ",
                unsigned{vc});
    entry.remaining -= payload_bytes;
}

} // namespace micro
} // namespace damq

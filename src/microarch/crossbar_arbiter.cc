#include "microarch/crossbar_arbiter.hh"

#include "common/logging.hh"

namespace damq {
namespace micro {

CrossbarArbiter::CrossbarArbiter(PortId num_ports,
                                 unsigned min_credit_slots)
    : ports(num_ports), minCredits(min_credit_slots),
      rrNext(num_ports, 0)
{
}

void
CrossbarArbiter::phase1(Cycle cycle,
                        std::vector<MicroInputPort> &inputs,
                        std::vector<MicroOutputPort> &outputs)
{
    damq_assert(inputs.size() == ports && outputs.size() == ports,
                "arbiter geometry mismatch");

    if (jammed(cycle))
        return;

    // Buffers already connected to some output (single read port).
    std::vector<bool> input_busy(ports, false);
    for (const MicroOutputPort &out : outputs) {
        if (out.servingInput() != kInvalidPort)
            input_busy[out.servingInput()] = true;
    }

    for (PortId out = 0; out < ports; ++out) {
        MicroOutputPort &output = outputs[out];
        if (!output.idle())
            continue;

        // Downstream flow control: do not start a packet unless the
        // receiver advertises room for a whole maximum packet.
        if (output.attachedLink() != nullptr &&
            output.attachedLink()->creditView() < minCredits) {
            continue;
        }

        for (PortId step = 0; step < ports; ++step) {
            const PortId input = (rrNext[out] + step) % ports;
            if (input_busy[input])
                continue;
            if (inputs[input].buffer().packetsQueued(out) == 0)
                continue;

            output.beginTransmission(&inputs[input].buffer(), input,
                                     cycle);
            input_busy[input] = true;
            rrNext[out] = (input + 1) % ports;
            break;
        }
    }
}

} // namespace micro
} // namespace damq

#include "microarch/chip.hh"

#include "common/logging.hh"

namespace damq {
namespace micro {

ComCobbChip::ComCobbChip(const std::string &chip_name, PortId num_ports,
                         unsigned num_slots, Tracer *tracer,
                         ChipBufferMode buffer_mode)
    : chipName(chip_name), mode(buffer_mode), arbiter(num_ports)
{
    damq_assert(num_ports >= 2, "chip needs at least two ports");
    ins.reserve(num_ports);
    outs.reserve(num_ports);
    for (PortId i = 0; i < num_ports; ++i) {
        ins.emplace_back(chip_name, i, num_ports, num_slots, tracer,
                         buffer_mode);
        outs.emplace_back(chip_name, i, tracer);
    }
}

void
ComCobbChip::phase0(Cycle cycle)
{
    for (auto &port : ins)
        port.phase0(cycle);
    for (auto &port : outs)
        port.phase0(cycle);
}

void
ComCobbChip::phase1(Cycle cycle)
{
    arbiter.phase1(cycle, ins, outs);
    for (auto &port : ins)
        port.phase1(cycle);
    for (auto &port : outs)
        port.phase1(cycle);
}

void
ComCobbChip::endCycle(Cycle cycle)
{
    for (auto &port : ins)
        port.endCycle(cycle);
}

void
ComCobbChip::debugValidate() const
{
    for (const auto &port : ins)
        port.buffer().debugValidate();
}

} // namespace micro
} // namespace damq

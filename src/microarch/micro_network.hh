/**
 * @file
 * A network of ComCoBB chips wired by point-to-point links — the
 * multicomputer setting the chip was designed for (Section 1).
 * Owns all chips, links, host injectors/collectors, and the global
 * two-phase clock.
 */

#ifndef DAMQ_MICROARCH_MICRO_NETWORK_HH
#define DAMQ_MICROARCH_MICRO_NETWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "microarch/chip.hh"
#include "microarch/host.hh"
#include "microarch/link.hh"
#include "microarch/trace.hh"

namespace damq {
namespace micro {

/** Handle for one host attachment (injector + collector pair). */
struct HostEndpoint
{
    HostInjector *injector = nullptr;
    HostCollector *collector = nullptr;
};

/** One hop of a virtual circuit (for programCircuit). */
struct CircuitHop
{
    ComCobbChip *chip = nullptr;
    PortId inPort = 0;  ///< port the packet arrives on
    PortId outPort = 0; ///< port it leaves through
};

/** A set of chips, links, and hosts under one clock. */
class MicroNetwork
{
  public:
    /** @param tracer trace sink shared by all components. */
    explicit MicroNetwork(Tracer *tracer = nullptr);

    /**
     * Create a chip.  Every input port gets its own link; every
     * output port initially drives a private unconnected link.
     */
    ComCobbChip &addChip(const std::string &name,
                         PortId num_ports = kComCobbPorts,
                         unsigned num_slots = kDefaultBufferSlots,
                         ChipBufferMode mode = ChipBufferMode::Damq);

    /**
     * Wire chips together bidirectionally: a.out[pa] -> b.in[pb]
     * and b.out[pb] -> a.in[pa] (the paper pairs input and output
     * ports into two unidirectional links per neighbor).
     */
    void connect(ComCobbChip &a, PortId pa, ComCobbChip &b, PortId pb);

    /**
     * Attach a host to @p chip's processor-interface port: an
     * injector feeding in[port] and a collector on out[port].
     */
    HostEndpoint attachHost(ComCobbChip &chip,
                            PortId port = kProcessorPort);

    /**
     * Program circuit @p vc along @p hops (same header value kept
     * at every hop).
     */
    void programCircuit(const std::vector<CircuitHop> &hops, VcId vc);

    /** Advance one clock cycle (both phases). */
    void tick();

    /** Advance @p cycles cycles. */
    void run(Cycle cycles);

    /** Current cycle (increments after each tick). */
    Cycle now() const { return cycle; }

    /** Validate every chip's buffers (tests). */
    void debugValidate() const;

  private:
    Link *newLink();

    Tracer *tracerPtr;
    Cycle cycle = 0;
    std::vector<std::unique_ptr<Link>> links;
    std::vector<std::unique_ptr<ComCobbChip>> chips;
    std::vector<std::unique_ptr<HostInjector>> injectors;
    std::vector<std::unique_ptr<HostCollector>> collectors;
};

} // namespace micro
} // namespace damq

#endif // DAMQ_MICROARCH_MICRO_NETWORK_HH

#include "microarch/micro_network.hh"

#include "common/logging.hh"

namespace damq {
namespace micro {

MicroNetwork::MicroNetwork(Tracer *tracer) : tracerPtr(tracer)
{
}

Link *
MicroNetwork::newLink()
{
    links.push_back(std::make_unique<Link>());
    return links.back().get();
}

ComCobbChip &
MicroNetwork::addChip(const std::string &name, PortId num_ports,
                      unsigned num_slots, ChipBufferMode mode)
{
    chips.push_back(std::make_unique<ComCobbChip>(
        name, num_ports, num_slots, tracerPtr, mode));
    ComCobbChip &chip = *chips.back();
    for (PortId i = 0; i < num_ports; ++i) {
        chip.inputPort(i).attachLink(newLink());
        chip.outputPort(i).attachLink(newLink());
    }
    return chip;
}

void
MicroNetwork::connect(ComCobbChip &a, PortId pa, ComCobbChip &b,
                      PortId pb)
{
    a.outputPort(pa).attachLink(b.inputPort(pb).attachedLink());
    b.outputPort(pb).attachLink(a.inputPort(pa).attachedLink());
}

HostEndpoint
MicroNetwork::attachHost(ComCobbChip &chip, PortId port)
{
    injectors.push_back(std::make_unique<HostInjector>(
        chip.name() + ".host_tx", tracerPtr));
    injectors.back()->attachLink(chip.inputPort(port).attachedLink());

    collectors.push_back(std::make_unique<HostCollector>(
        chip.name() + ".host_rx", tracerPtr));
    Link *collector_link = newLink();
    chip.outputPort(port).attachLink(collector_link);
    collectors.back()->attachLink(collector_link);

    return HostEndpoint{injectors.back().get(),
                        collectors.back().get()};
}

void
MicroNetwork::programCircuit(const std::vector<CircuitHop> &hops,
                             VcId vc)
{
    for (const CircuitHop &hop : hops) {
        damq_assert(hop.chip != nullptr, "circuit hop without a chip");
        hop.chip->router(hop.inPort).program(vc, hop.outPort, vc);
    }
}

void
MicroNetwork::tick()
{
    // Phase 0: hosts and chips drive wires and move bytes.
    for (auto &injector : injectors)
        injector->phase0(cycle);
    for (auto &chip : chips)
        chip->phase0(cycle);

    // Phase 1: arbitration, routing, latches.
    for (auto &chip : chips)
        chip->phase1(cycle);

    // End of cycle: receivers sample, wires clear.
    for (auto &collector : collectors)
        collector->endCycle(cycle);
    for (auto &chip : chips)
        chip->endCycle(cycle);
    for (auto &link : links)
        link->endCycle();

    ++cycle;
}

void
MicroNetwork::run(Cycle cycles)
{
    for (Cycle c = 0; c < cycles; ++c)
        tick();
}

void
MicroNetwork::debugValidate() const
{
    for (const auto &chip : chips)
        chip->debugValidate();
}

} // namespace micro
} // namespace damq

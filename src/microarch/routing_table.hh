/**
 * @file
 * The per-input-port router of the ComCoBB chip.
 *
 * The ComCoBB routes with virtual circuits: the header byte is a
 * circuit id that indexes a local table yielding the local output
 * port and the *new* header to use on the next hop (Section 3.2).
 * The router also tracks, per circuit, how many message bytes are
 * still expected, because only the first packet of a message
 * carries a length byte — continuation packets derive their length
 * from this table.
 */

#ifndef DAMQ_MICROARCH_ROUTING_TABLE_HH
#define DAMQ_MICROARCH_ROUTING_TABLE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "microarch/defs.hh"

namespace damq {
namespace micro {

/** Result of routing one header byte. */
struct RouteResult
{
    PortId outPort = kInvalidPort;
    VcId newHeader = 0;

    /** True iff this packet starts a message (length byte next). */
    bool firstOfMessage = true;

    /**
     * For continuation packets: payload bytes of this packet,
     * derived from the circuit's remaining-byte counter.
     */
    unsigned continuationLength = 0;
};

/** Virtual-circuit routing table of one input port. */
class RoutingTable
{
  public:
    /** Program circuit @p vc to leave via @p out with header @p nvc. */
    void program(VcId vc, PortId out, VcId nvc);

    /** True iff circuit @p vc has been programmed. */
    bool isProgrammed(VcId vc) const { return entries[vc].valid; }

    /**
     * Route the header byte of an arriving packet.  Must not be
     * called for unprogrammed circuits (panic — a routing bug).
     */
    RouteResult route(VcId vc) const;

    /**
     * Record the message length from a first packet's length byte;
     * returns this packet's payload length (<= 32 bytes).
     */
    unsigned beginMessage(VcId vc, unsigned message_bytes);

    /**
     * Account a continuation packet's payload against the
     * circuit's remaining-byte counter.
     */
    void consumeContinuation(VcId vc, unsigned payload_bytes);

    /** Bytes still expected on circuit @p vc (0 = idle circuit). */
    unsigned remainingBytes(VcId vc) const
    {
        return entries[vc].remaining;
    }

  private:
    struct Entry
    {
        bool valid = false;
        PortId outPort = kInvalidPort;
        VcId newHeader = 0;
        unsigned remaining = 0; ///< message bytes still expected
    };

    std::array<Entry, 256> entries;
};

} // namespace micro
} // namespace damq

#endif // DAMQ_MICROARCH_ROUTING_TABLE_HH

/**
 * @file
 * Constants and small types of the byte-accurate ComCoBB model
 * (Section 3 of the paper).
 *
 * The model is *phase-accurate*: each 20 MHz clock cycle has two
 * phases, and every component acts at the cycle/phase combinations
 * the paper's Table 1 describes.  One simulated cycle moves at most
 * one byte per link.
 */

#ifndef DAMQ_MICROARCH_DEFS_HH
#define DAMQ_MICROARCH_DEFS_HH

#include <cstdint>

#include "common/types.hh"

namespace damq {
namespace micro {

/** Bytes per buffer slot (the paper settles on eight). */
inline constexpr unsigned kSlotBytes = 8;

/** Maximum packet payload (32 bytes = 4 slots). */
inline constexpr unsigned kMaxPacketBytes = 32;

/** Slots the largest packet occupies. */
inline constexpr unsigned kMaxPacketSlots =
    kMaxPacketBytes / kSlotBytes;

/** Default slots per input buffer (96 cells / 8 bytes, Sec 3.2.3). */
inline constexpr unsigned kDefaultBufferSlots = 12;

/** Ports of the ComCoBB chip: 4 network + 1 processor interface. */
inline constexpr PortId kComCobbPorts = 5;

/** Index of the processor-interface port. */
inline constexpr PortId kProcessorPort = 4;

/** Virtual-circuit identifier carried in the header byte. */
using VcId = std::uint8_t;

/**
 * Buffer organization of a chip's input ports.  The ComCoBB uses
 * DAMQ; the FIFO mode exists so the head-of-line blocking the
 * paper's Section 2 describes can be demonstrated at byte level on
 * otherwise identical hardware.
 */
enum class ChipBufferMode : std::uint8_t
{
    Damq, ///< per-output linked-list queues (the paper's design)
    Fifo  ///< one strictly ordered queue per input port
};

/** The two phases of each clock cycle. */
enum class Phase : std::uint8_t
{
    P0 = 0,
    P1 = 1
};

} // namespace micro
} // namespace damq

#endif // DAMQ_MICROARCH_DEFS_HH

/**
 * @file
 * Cycle/phase trace recorder.  Components report what they do and
 * when; the Table 1 bench renders the records of a cut-through as
 * the paper's phase-by-phase schedule.
 */

#ifndef DAMQ_MICROARCH_TRACE_HH
#define DAMQ_MICROARCH_TRACE_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "microarch/defs.hh"

namespace damq {
namespace micro {

/** One recorded action. */
struct TraceEvent
{
    Cycle cycle = 0;
    Phase phase = Phase::P0;
    std::string source; ///< component name, e.g. "in0.router"
    std::string action;
};

/** Collects TraceEvents when enabled; otherwise free. */
class Tracer
{
  public:
    /** Start recording. */
    void enable() { recording = true; }

    /** Stop recording (events are kept). */
    void disable() { recording = false; }

    /** True while recording. */
    bool enabled() const { return recording; }

    /** Record one action (no-op when disabled). */
    void record(Cycle cycle, Phase phase, const std::string &source,
                const std::string &action);

    /** All events recorded so far. */
    const std::vector<TraceEvent> &events() const { return log; }

    /** Drop all recorded events. */
    void clear() { log.clear(); }

    /** Render events as "cycle phase source: action" lines. */
    std::string render() const;

    /** Render only events within [first, last] cycles. */
    std::string render(Cycle first, Cycle last) const;

  private:
    bool recording = false;
    std::vector<TraceEvent> log;
};

} // namespace micro
} // namespace damq

#endif // DAMQ_MICROARCH_TRACE_HH

/**
 * @file
 * One ComCoBB output port: the crossbar-side latch, read counter,
 * start-bit generator, and the transmission-manager FSM — the
 * right half of the paper's Figure 2.
 *
 * Transmit timeline once the arbiter connects this output to an
 * input buffer at phase 1 of cycle C-1 (matching Table 1 with
 * C = T+4 for a cut-through):
 *
 *   C    p0: start bit on the outgoing wire; the new header byte
 *        crosses the crossbar   p1: header latched
 *   C+1  p0: header byte on the wire; the length byte crosses the
 *        crossbar and loads the read counter (first packet of a
 *        message; continuation packets send payload here instead)
 *        p1: length latched
 *   C+2+ p0: one payload byte on the wire per cycle, each having
 *        crossed the crossbar in the previous cycle; slots return
 *        to the free list as they drain
 *
 * Slot bookkeeping: a slot is popped from the queue (and returned
 * to the free list) in the same phase its last byte is read across
 * the crossbar.
 */

#ifndef DAMQ_MICROARCH_OUTPUT_PORT_HH
#define DAMQ_MICROARCH_OUTPUT_PORT_HH

#include <string>

#include "microarch/buffer_core.hh"
#include "microarch/defs.hh"
#include "microarch/link.hh"
#include "microarch/trace.hh"

namespace damq {
namespace micro {

/** One output port of a ComCoBB chip. */
class MicroOutputPort
{
  public:
    /** @param chip_name owning chip (traces).
     *  @param index     this port's index (= the queue it drains).
     *  @param tracer    trace sink (may be nullptr). */
    MicroOutputPort(const std::string &chip_name, PortId index,
                    Tracer *tracer);

    /** The link this port drives. */
    void attachLink(Link *l) { link = l; }
    Link *attachedLink() { return link; }

    /** True iff no transmission is in progress or pending. */
    bool idle() const { return stage == TxStage::Inactive; }

    /** Input buffer currently being drained (kInvalidPort if idle). */
    PortId servingInput() const { return sourceInput; }

    /**
     * Arbiter grant (phase 1): start draining queue `index` of
     * @p source, which belongs to input port @p input.  The start
     * bit goes out in the next cycle.
     */
    void beginTransmission(BufferCore *source, PortId input,
                           Cycle cycle);

    /** Phase-0 actions (drive wire, read across crossbar). */
    void phase0(Cycle cycle);

    /** Phase-1 actions (latch crossbar byte, advance the FSM). */
    void phase1(Cycle cycle);

    /** Packets fully transmitted (stats). */
    std::uint64_t packetsSent() const { return packetsDone; }

    /** Payload bytes driven on the wire (stats). */
    std::uint64_t bytesSent() const { return bytesDone; }

    /** Cycles this port drove its wire (stats). */
    std::uint64_t busyCycles() const { return busyCount; }

  private:
    enum class TxStage
    {
        Inactive,
        StartBit, ///< driving the start bit this cycle
        Header,   ///< driving the header byte this cycle
        Length,   ///< driving the length byte this cycle
        Data      ///< driving payload bytes
    };

    void trace(Cycle cycle, Phase phase, const std::string &what);

    /** Read the next payload byte across the crossbar. */
    void prepareDataByte(Cycle cycle);

    std::string name;
    PortId portIndex;
    Link *link = nullptr;
    Tracer *tracerPtr = nullptr;

    TxStage stage = TxStage::Inactive;
    bool justGranted = false;

    BufferCore *source = nullptr;
    PortId sourceInput = kInvalidPort;

    // Packet registers copied from the head slot's meta when the
    // header crosses the crossbar (the head slot is recycled before
    // the packet finishes draining).
    VcId headerByte = 0;
    std::uint8_t lengthByte = 0;
    bool firstOfMessage = false;
    unsigned dataLength = 0;

    std::uint8_t latchedByte = 0;  ///< crossed the crossbar last cycle
    std::uint8_t pendingByte = 0;  ///< crossing the crossbar now
    bool pendingValid = false;

    SlotId readSlot = kNullSlot;
    unsigned readOffset = 0;
    unsigned bytesRead = 0;   ///< payload bytes read across crossbar
    unsigned bytesDriven = 0; ///< payload bytes put on the wire

    std::uint64_t packetsDone = 0;
    std::uint64_t bytesDone = 0;
    std::uint64_t busyCount = 0;
};

} // namespace micro
} // namespace damq

#endif // DAMQ_MICROARCH_OUTPUT_PORT_HH

#include "microarch/trace.hh"

#include <sstream>

namespace damq {
namespace micro {

void
Tracer::record(Cycle cycle, Phase phase, const std::string &source,
               const std::string &action)
{
    if (!recording)
        return;
    log.push_back(TraceEvent{cycle, phase, source, action});
}

std::string
Tracer::render() const
{
    return render(0, ~Cycle{0});
}

std::string
Tracer::render(Cycle first, Cycle last) const
{
    std::ostringstream oss;
    for (const TraceEvent &event : log) {
        if (event.cycle < first || event.cycle > last)
            continue;
        oss << "cycle " << event.cycle << " phase "
            << (event.phase == Phase::P0 ? "0" : "1") << "  "
            << event.source << ": " << event.action << "\n";
    }
    return oss.str();
}

} // namespace micro
} // namespace damq

#include "microarch/output_port.hh"

#include <sstream>

#include "common/logging.hh"

namespace damq {
namespace micro {

MicroOutputPort::MicroOutputPort(const std::string &chip_name,
                                 PortId index, Tracer *tracer)
    : name(chip_name + ".out" + std::to_string(index)),
      portIndex(index), tracerPtr(tracer)
{
}

void
MicroOutputPort::trace(Cycle cycle, Phase phase,
                       const std::string &what)
{
    if (tracerPtr)
        tracerPtr->record(cycle, phase, name, what);
}

void
MicroOutputPort::beginTransmission(BufferCore *src, PortId input,
                                   Cycle cycle)
{
    damq_assert(stage == TxStage::Inactive,
                name, ": grant while busy");
    damq_assert(src->packetsQueued(portIndex) > 0,
                name, ": grant for an empty queue");
    stage = TxStage::StartBit;
    justGranted = true;
    source = src;
    sourceInput = input;
    bytesRead = 0;
    bytesDriven = 0;
    readOffset = 0;
    readSlot = kNullSlot;
    std::ostringstream oss;
    oss << "crossbar arbitration latched: connected to input buffer "
        << input;
    trace(cycle, Phase::P1, oss.str());
}

void
MicroOutputPort::prepareDataByte(Cycle cycle)
{
    pendingByte = source->readByte(readSlot, readOffset);
    pendingValid = true;
    ++readOffset;
    ++bytesRead;

    const bool slot_done = readOffset == kSlotBytes;
    const bool packet_done = bytesRead == dataLength;
    if (slot_done || packet_done) {
        const SlotId next = source->nextSlot(readSlot);
        source->popFrontSlot(portIndex, packet_done);
        readSlot = next;
        readOffset = 0;
        trace(cycle, Phase::P0,
              packet_done ? "last payload byte across crossbar; "
                            "slot returned to free list"
                          : "slot drained and returned to free list");
    }
}

void
MicroOutputPort::phase0(Cycle cycle)
{
    switch (stage) {
      case TxStage::Inactive:
        return;

      case TxStage::StartBit: {
        damq_assert(link != nullptr, name, ": no link attached");
        link->driveStartBit();
        ++busyCount;

        // The head packet's registers cross the crossbar with the
        // new header.  The head slot will be recycled mid-packet,
        // so copy what the rest of the transmission needs.
        readSlot = source->headPacket(portIndex);
        damq_assert(readSlot != kNullSlot,
                    name, ": connected to an empty queue");
        const PacketMeta &m = source->meta(readSlot);
        damq_assert(m.lengthKnown,
                    name, ": transmission before length decode");
        headerByte = m.newHeader;
        lengthByte = m.msgLenByte;
        firstOfMessage = m.firstOfMessage;
        dataLength = m.dataLength;
        pendingByte = headerByte;
        pendingValid = true;
        trace(cycle, Phase::P0,
              "start bit generated; new header crosses the crossbar");
        return;
      }

      case TxStage::Header:
        link->driveData(latchedByte);
        ++busyCount;
        if (firstOfMessage) {
            pendingByte = lengthByte;
            pendingValid = true;
            trace(cycle, Phase::P0,
                  "header byte on the wire; length byte crosses the "
                  "crossbar and loads the read counter");
        } else {
            prepareDataByte(cycle);
            trace(cycle, Phase::P0,
                  "header byte on the wire; first payload byte "
                  "crosses the crossbar");
        }
        return;

      case TxStage::Length:
        link->driveData(latchedByte);
        ++busyCount;
        prepareDataByte(cycle);
        trace(cycle, Phase::P0,
              "length byte on the wire; first payload byte crosses "
              "the crossbar");
        return;

      case TxStage::Data:
        link->driveData(latchedByte);
        ++busyCount;
        ++bytesDone;
        ++bytesDriven;
        if (bytesDriven < dataLength && bytesRead < dataLength)
            prepareDataByte(cycle);
        return;
    }
}

void
MicroOutputPort::phase1(Cycle cycle)
{
    if (justGranted) {
        // Granted earlier in this same phase; the pipeline starts
        // at the next phase 0.
        justGranted = false;
        return;
    }

    switch (stage) {
      case TxStage::Inactive:
        return;

      case TxStage::StartBit:
        latchedByte = pendingByte;
        stage = TxStage::Header;
        trace(cycle, Phase::P1, "output port latches the new header");
        return;

      case TxStage::Header:
        latchedByte = pendingByte;
        stage = firstOfMessage ? TxStage::Length : TxStage::Data;
        trace(cycle, Phase::P1,
              firstOfMessage
                  ? "output port latches the packet length"
                  : "output port latches the first payload byte");
        return;

      case TxStage::Length:
        latchedByte = pendingByte;
        stage = TxStage::Data;
        return;

      case TxStage::Data:
        if (bytesDriven == dataLength) {
            stage = TxStage::Inactive;
            source = nullptr;
            sourceInput = kInvalidPort;
            pendingValid = false;
            ++packetsDone;
            trace(cycle, Phase::P1, "packet transmission complete");
        } else {
            latchedByte = pendingByte;
        }
        return;
    }
}

} // namespace micro
} // namespace damq

/**
 * @file
 * A unidirectional chip-to-chip link: eight data wires plus a
 * start-bit wire, carrying one byte per clock cycle (Section 3's
 * single-cycle synchronized transmission), and a reverse
 * flow-control channel reporting the downstream buffer's free slot
 * count with one cycle of latency.
 *
 * Timing contract: the transmitter drives the link during phase 0;
 * the receiver samples it at end of cycle (its synchronizer then
 * releases the byte at phase 0 of the following cycle).
 */

#ifndef DAMQ_MICROARCH_LINK_HH
#define DAMQ_MICROARCH_LINK_HH

#include <cstdint>

#include "microarch/defs.hh"

namespace damq {
namespace micro {

/** What is on the wires during one cycle. */
struct LinkSample
{
    bool startBit = false;
    bool hasData = false;
    std::uint8_t data = 0;
};

/** One unidirectional link. */
class Link
{
  public:
    /** Transmitter: put a start bit on the wire this cycle. */
    void driveStartBit();

    /** Transmitter: put a data byte on the wire this cycle. */
    void driveData(std::uint8_t byte);

    /** Receiver: what is on the wire this cycle. */
    const LinkSample &current() const { return wire; }

    /**
     * Fault hook: XOR @p mask onto whatever data byte is on the
     * wire this cycle, modeling a transient upset on the eight
     * data wires.  The start bit is untouched, so the receiver
     * still clocks the (now wrong) byte in.
     */
    void injectDataFault(std::uint8_t mask) { wire.data ^= mask; }

    /** Clear the wire at end of cycle. */
    void endCycle() { wire = LinkSample{}; }

    /**
     * Receiver side: publish the receiving buffer's free-slot
     * count (called at end of cycle, so the transmitter reads a
     * one-cycle-old value — real flow-control latency).
     */
    void publishCredits(unsigned free_slots) { credits = free_slots; }

    /** Transmitter side: last published downstream free slots. */
    unsigned creditView() const { return credits; }

  private:
    LinkSample wire;
    unsigned credits = ~0u; ///< unconnected links never block
};

} // namespace micro
} // namespace damq

#endif // DAMQ_MICROARCH_LINK_HH

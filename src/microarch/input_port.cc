#include "microarch/input_port.hh"

#include <sstream>

#include "common/logging.hh"

namespace damq {
namespace micro {

MicroInputPort::MicroInputPort(const std::string &chip_name,
                               PortId index, PortId num_ports,
                               unsigned num_slots, Tracer *tracer,
                               ChipBufferMode mode)
    : name(chip_name + ".in" + std::to_string(index)),
      portIndex(index), tracerPtr(tracer),
      core(num_ports, num_slots, mode)
{
}

void
MicroInputPort::trace(Cycle cycle, Phase phase, const std::string &what)
{
    if (tracerPtr)
        tracerPtr->record(cycle, phase, name, what);
}

void
MicroInputPort::phase0(Cycle cycle)
{
    switch (state) {
      case RxState::Idle:
        if (syncReg.startBit) {
            // Start-bit detector: notify the FSM that a packet is
            // arriving; the header is in the synchronizer now.
            state = RxState::AwaitHeader;
            trace(cycle, Phase::P0, "start bit detected");
        }
        break;

      case RxState::AwaitHeader:
        damq_assert(syncReg.hasData,
                    name, ": header byte missing after start bit");
        headerReg = syncReg.data;
        headerFresh = true; // routed at phase 1
        trace(cycle, Phase::P0,
              "synchronizer releases header byte; header register "
              "latches it");
        break;

      case RxState::AwaitLength:
        damq_assert(syncReg.hasData,
                    name, ": length byte missing after header");
        lengthReg = syncReg.data;
        lengthFresh = true; // decoded at phase 1
        trace(cycle, Phase::P0,
              "synchronizer releases length byte");
        break;

      case RxState::RecvData: {
        damq_assert(syncReg.hasData,
                    name, ": payload byte missing mid-packet");
        damq_assert(writeCounter > 0, name, ": spurious payload byte");
        if (writeOffset == kSlotBytes) {
            // First slot filled: chain the next slot from the free
            // list (Section 3.2.1).
            writeSlot = core.extendPacket(routedOut);
            writeOffset = 0;
            trace(cycle, Phase::P0,
                  "slot filled; next free-list slot chained in");
        }
        core.writeByte(writeSlot, writeOffset, syncReg.data);
        ++writeOffset;
        --writeCounter;
        ++bytesDone;
        if (writeCounter == 0) {
            // Write counter signals EOP.
            ++packetsDone;
            state = RxState::Idle;
            trace(cycle, Phase::P0,
                  "payload byte written; write counter signals EOP");
        } else {
            trace(cycle, Phase::P0, "payload byte written to buffer");
        }
        break;
      }
    }
}

void
MicroInputPort::phase1(Cycle cycle)
{
    if (headerFresh) {
        headerFresh = false;
        const RouteResult route = routes.route(headerReg);
        damq_assert(route.outPort < core.numQueues(),
                    name, ": routed to nonexistent port");
        damq_assert(route.outPort != portIndex,
                    name, ": packet routed back out of its own port");
        routedOut = route.outPort;

        // The first free-list slot becomes the packet's first slot
        // and the packet joins its output queue immediately — this
        // early linking is what enables the 4-cycle cut-through.
        headSlot = core.beginPacket(routedOut);
        writeSlot = headSlot;
        writeOffset = 0;

        PacketMeta &m = core.meta(headSlot);
        m.newHeader = route.newHeader;
        m.firstOfMessage = route.firstOfMessage;
        if (route.firstOfMessage) {
            state = RxState::AwaitLength;
        } else {
            m.dataLength = route.continuationLength;
            m.lengthKnown = true;
            routes.consumeContinuation(headerReg,
                                       route.continuationLength);
            writeCounter = route.continuationLength;
            state = RxState::RecvData;
        }
        std::ostringstream oss;
        oss << "router: output port " << route.outPort
            << ", new header " << unsigned{route.newHeader}
            << "; first slot allocated and queued; crossbar "
               "request raised";
        trace(cycle, Phase::P1, oss.str());
    }

    if (lengthFresh) {
        lengthFresh = false;
        damq_assert(lengthReg >= 1, name, ": zero-length message");
        const unsigned packet_len =
            routes.beginMessage(headerReg, lengthReg);
        PacketMeta &m = core.meta(headSlot);
        m.msgLenByte = lengthReg;
        m.dataLength = packet_len;
        m.lengthKnown = true;
        writeCounter = packet_len;
        state = RxState::RecvData;
        std::ostringstream oss;
        oss << "length decoder: " << packet_len
            << " bytes latched into length register and write "
               "counter";
        trace(cycle, Phase::P1, oss.str());
    }
}

void
MicroInputPort::endCycle(Cycle)
{
    if (link != nullptr) {
        syncReg = link->current();
        link->publishCredits(core.freeSlots());
    } else {
        syncReg = LinkSample{};
    }
}

} // namespace micro
} // namespace damq

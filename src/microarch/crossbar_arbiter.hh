/**
 * @file
 * The ComCoBB's central crossbar arbiter (Section 3.2.2): each
 * cycle it connects idle output ports to input buffers that hold
 * (or are receiving) a packet for them, round-robin per output,
 * respecting the single read port of each buffer and downstream
 * flow-control credits.
 */

#ifndef DAMQ_MICROARCH_CROSSBAR_ARBITER_HH
#define DAMQ_MICROARCH_CROSSBAR_ARBITER_HH

#include <vector>

#include "microarch/defs.hh"
#include "microarch/input_port.hh"
#include "microarch/output_port.hh"

namespace damq {
namespace micro {

/** Central arbiter of one chip. */
class CrossbarArbiter
{
  public:
    /** @param num_ports chip port count.
     *  @param min_credit_slots downstream free slots required
     *         before a transmission may start (a whole maximum
     *         packet by default — conservative, deadlock-free). */
    explicit CrossbarArbiter(PortId num_ports,
                             unsigned min_credit_slots =
                                 kMaxPacketSlots);

    /**
     * Phase-1 arbitration: grant idle outputs to requesting
     * buffers.  Runs before the input ports' phase 1, so a request
     * raised in cycle t is first seen in cycle t+1 and the
     * connection is live in t+2 — the timing of Table 1.
     */
    void phase1(Cycle cycle,
                std::vector<MicroInputPort> &inputs,
                std::vector<MicroOutputPort> &outputs);

    /**
     * Fault hook: issue no new grants until @p until.  In-flight
     * transmissions finish normally; the arbiter just sits idle,
     * modeling a stuck grant generator.
     */
    void jamUntil(Cycle until) { jammedUntil = until; }

    /** True while a jamUntil() episode is active. */
    bool jammed(Cycle cycle) const { return cycle < jammedUntil; }

  private:
    PortId ports;
    unsigned minCredits;
    Cycle jammedUntil = 0; ///< fault hook: no grants before this
    std::vector<PortId> rrNext; ///< per-output round-robin pointer
};

} // namespace micro
} // namespace damq

#endif // DAMQ_MICROARCH_CROSSBAR_ARBITER_HH

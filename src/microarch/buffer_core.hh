/**
 * @file
 * The byte-level DAMQ buffer of one ComCoBB input port
 * (Section 3.1-3.2.3 of the paper).
 *
 * Storage is an array of 8-byte slots (dual-ported static cells in
 * the real chip, addressed by read/write shift registers).  Every
 * slot carries a *pointer register* (the linked-list next pointer)
 * and, when it is the first slot of a packet, a length register and
 * a new-header register.  The lists are:
 *
 *  - the free list, and
 *  - one queue per output port, whose head/tail registers chain
 *    *slots* (a packet's slots sit consecutively in its queue).
 *
 * The receive FSM allocates the head slot of an arriving packet
 * from the free list as soon as the router has picked its queue —
 * before the data arrives — which is what makes the 4-cycle virtual
 * cut-through possible: the transmit FSM can chase the receive FSM
 * through the same slot.
 */

#ifndef DAMQ_MICROARCH_BUFFER_CORE_HH
#define DAMQ_MICROARCH_BUFFER_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "microarch/defs.hh"

namespace damq {
namespace micro {

/** Registers associated with a packet's first slot. */
struct PacketMeta
{
    VcId newHeader = 0;        ///< header byte for the next hop
    std::uint8_t msgLenByte = 0; ///< forwarded message-length byte
    PortId outPort = kInvalidPort; ///< routed output port
    bool firstOfMessage = false;
    bool lengthKnown = false; ///< dataLength register loaded yet?
    unsigned dataLength = 0;  ///< payload bytes of this packet
};

/**
 * Byte-accurate buffer core.  In DAMQ mode (the ComCoBB design)
 * slots are chained into one list per output; in FIFO mode a
 * single strictly ordered list is kept and `packetsQueued(out)`
 * reports only the head-of-line packet — byte-level head-of-line
 * blocking on otherwise identical hardware.
 */
class BufferCore
{
  public:
    /** @param num_queues  one queue per chip output port.
     *  @param num_slots   slot count (default 12, Section 3.2.3).
     *  @param mode        DAMQ (default) or FIFO organization. */
    BufferCore(PortId num_queues, unsigned num_slots,
               ChipBufferMode mode = ChipBufferMode::Damq);

    /** Organization of this core. */
    ChipBufferMode mode() const { return bufferMode; }

    /** Queues (= chip output ports). */
    PortId numQueues() const { return queueRegs.size(); }

    /** Total slots. */
    unsigned numSlots() const { return pool.size(); }

    /** Slots currently on the free list. */
    unsigned freeSlots() const { return freeList.count; }

    /**
     * Packets transmittable toward output @p out right now
     * (including one still being received).  FIFO mode only ever
     * exposes the head-of-line packet.
     */
    unsigned packetsQueued(PortId out) const;

    /**
     * Allocate the first slot of a new packet from the free list
     * and append it to queue @p out.  Returns the slot id.
     */
    SlotId beginPacket(PortId out);

    /**
     * Allocate a continuation slot for the packet currently being
     * received into queue @p out (appended at the queue tail).
     */
    SlotId extendPacket(PortId out);

    /** Write one payload byte. */
    void writeByte(SlotId slot, unsigned offset, std::uint8_t byte);

    /** Read one payload byte (must have been written). */
    std::uint8_t readByte(SlotId slot, unsigned offset) const;

    /** The pointer register of @p slot (kNullSlot at a tail). */
    SlotId nextSlot(SlotId slot) const;

    /** First slot of the head packet of queue @p out (or kNullSlot). */
    SlotId headPacket(PortId out) const;

    /** Metadata registers of the packet headed by @p slot. */
    PacketMeta &meta(SlotId slot);
    const PacketMeta &meta(SlotId slot) const;

    /**
     * Pop the front slot of queue @p out and return it to the free
     * list.  @p last_of_packet decrements the queue's packet count
     * and must be true exactly on a packet's final slot.
     */
    void popFrontSlot(PortId out, bool last_of_packet);

    /** Panic if any list invariant is broken (tests). */
    void debugValidate() const;

  private:
    struct ListRegs
    {
        SlotId head = kNullSlot;
        SlotId tail = kNullSlot;
        unsigned count = 0;
        unsigned packets = 0; ///< queues only
    };

    SlotId takeFreeSlot();
    void appendToQueue(ListRegs &queue, SlotId slot);

    /** The list feeding output @p out (shared list in FIFO mode). */
    ListRegs &queueFor(PortId out);
    const ListRegs &queueFor(PortId out) const;

    struct Slot
    {
        SlotId next = kNullSlot;
        bool isPacketHead = false;
        PacketMeta packetMeta;
        std::uint8_t bytes[kSlotBytes] = {};
        std::uint8_t written = 0; ///< bitmap of written byte lanes
    };

    ChipBufferMode bufferMode;
    std::vector<Slot> pool;
    ListRegs freeList;
    std::vector<ListRegs> queueRegs;
    /** FIFO mode: routed outputs of queued packets, in order. */
    std::deque<PortId> fifoOrder;
};

} // namespace micro
} // namespace damq

#endif // DAMQ_MICROARCH_BUFFER_CORE_HH

/**
 * @file
 * One ComCoBB input port: start-bit detector, synchronizer, header
 * register, router, length decoder, write counter, and the receive
 * ("buffer manager") FSM filling the DAMQ buffer core — the left
 * half of the paper's Figure 2.
 *
 * Receive timeline for a packet whose start bit is on the wire in
 * cycle T (matching Table 1):
 *
 *   T    start bit on the wire (sampled at end of cycle)
 *   T+1  p0: start-bit detector fires; header byte enters the
 *        synchronizer during this cycle
 *   T+2  p0: synchronizer releases the header; header register
 *        latches it
 *        p1: router yields (output port, new header); the packet's
 *        first slot is taken from the free list and linked onto
 *        its output queue; crossbar request raised
 *   T+3  p0: length byte released (first packet of a message)
 *        p1: length decoder loads the write counter and the slot's
 *        length register
 *   T+4+ p0: one payload byte written per cycle; a new slot is
 *        chained in after every eighth byte; EOP when the write
 *        counter reaches zero
 *
 * Continuation packets skip the length-byte cycle (the router's
 * per-circuit table supplies the length), so their payload starts
 * at T+3.
 */

#ifndef DAMQ_MICROARCH_INPUT_PORT_HH
#define DAMQ_MICROARCH_INPUT_PORT_HH

#include <string>

#include "microarch/buffer_core.hh"
#include "microarch/defs.hh"
#include "microarch/link.hh"
#include "microarch/routing_table.hh"
#include "microarch/trace.hh"

namespace damq {
namespace micro {

/** One input port of a ComCoBB chip. */
class MicroInputPort
{
  public:
    /**
     * @param chip_name  owning chip's name (for traces).
     * @param index      this port's index on the chip.
     * @param num_ports  chip port count (queues in the buffer).
     * @param num_slots  buffer slots.
     * @param tracer     trace sink (may be nullptr).
     */
    MicroInputPort(const std::string &chip_name, PortId index,
                   PortId num_ports, unsigned num_slots,
                   Tracer *tracer,
                   ChipBufferMode mode = ChipBufferMode::Damq);

    /** The link this port listens on. */
    void attachLink(Link *l) { link = l; }
    Link *attachedLink() { return link; }

    /** This port's virtual-circuit table. */
    RoutingTable &router() { return routes; }
    const RoutingTable &router() const { return routes; }

    /** This port's DAMQ buffer. */
    BufferCore &buffer() { return core; }
    const BufferCore &buffer() const { return core; }

    /** Phase-0 actions (latch released bytes, write payload). */
    void phase0(Cycle cycle);

    /** Phase-1 actions (routing, counters, list updates). */
    void phase1(Cycle cycle);

    /** End of cycle: sample the link, publish flow-control credits. */
    void endCycle(Cycle cycle);

    /** True while no packet is being received. */
    bool receiverIdle() const { return state == RxState::Idle; }

    /** Packets fully received so far (stats). */
    std::uint64_t packetsReceived() const { return packetsDone; }

    /** Payload bytes written into the buffer so far (stats). */
    std::uint64_t bytesReceived() const { return bytesDone; }

  private:
    enum class RxState
    {
        Idle,        ///< waiting for a start bit
        AwaitHeader, ///< header byte in the synchronizer
        AwaitLength, ///< length byte in the synchronizer
        RecvData     ///< payload streaming in
    };

    void trace(Cycle cycle, Phase phase, const std::string &what);

    std::string name;
    PortId portIndex;
    Link *link = nullptr;
    Tracer *tracerPtr = nullptr;

    RoutingTable routes;
    BufferCore core;

    LinkSample syncReg;     ///< synchronizer output (1-cycle delay)
    RxState state = RxState::Idle;

    VcId headerReg = 0;     ///< latched header byte
    bool headerFresh = false;
    std::uint8_t lengthReg = 0;
    bool lengthFresh = false;

    PortId routedOut = kInvalidPort;
    SlotId headSlot = kNullSlot; ///< first slot of current packet
    SlotId writeSlot = kNullSlot;
    unsigned writeOffset = 0;
    unsigned writeCounter = 0;   ///< payload bytes still expected

    std::uint64_t packetsDone = 0;
    std::uint64_t bytesDone = 0;
};

} // namespace micro
} // namespace damq

#endif // DAMQ_MICROARCH_INPUT_PORT_HH

/**
 * @file
 * Host-side models for the processor interface: an injector that
 * drives a chip input port with the ComCoBB packet protocol
 * (start bit, header, length byte on the first packet of a
 * message, payload bytes), and a collector that parses the
 * protocol back into messages.  Together they let examples and
 * tests move whole messages across a network of chips.
 */

#ifndef DAMQ_MICROARCH_HOST_HH
#define DAMQ_MICROARCH_HOST_HH

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hh"
#include "microarch/defs.hh"
#include "microarch/link.hh"
#include "microarch/trace.hh"

namespace damq {
namespace micro {

/** A message handed to an injector or produced by a collector. */
struct HostMessage
{
    VcId vc = 0;
    std::vector<std::uint8_t> payload;
    Cycle deliveredAt = 0; ///< collector side only
};

/** Drives one link with packetized messages. */
class HostInjector
{
  public:
    /** @param injector_name trace name.
     *  @param tracer        may be nullptr. */
    HostInjector(const std::string &injector_name, Tracer *tracer);

    /** The link this injector drives (a chip input port's link). */
    void attachLink(Link *l) { link = l; }

    /**
     * Queue @p payload (1..255 bytes) for circuit @p vc.  Messages
     * are sent in FIFO order, packetized into <=32-byte packets;
     * only the first packet carries the length byte.
     */
    void sendMessage(VcId vc, std::vector<std::uint8_t> payload);

    /** Drive the link for this cycle and advance the FSM. */
    void phase0(Cycle cycle);

    /** True iff nothing is queued or in flight. */
    bool idle() const
    {
        return stage == TxStage::Idle && queue.empty();
    }

    /** Messages fully injected so far. */
    std::uint64_t messagesSent() const { return messagesDone; }

  private:
    enum class TxStage
    {
        Idle,
        Header,
        Length,
        Data
    };

    std::string name;
    Tracer *tracerPtr;
    Link *link = nullptr;

    std::deque<HostMessage> queue;
    TxStage stage = TxStage::Idle;
    std::size_t sentBytes = 0;   ///< of the current message
    unsigned packetLeft = 0;     ///< payload bytes left this packet
    std::uint64_t messagesDone = 0;
};

/** Parses one link back into messages. */
class HostCollector
{
  public:
    /** @param collector_name trace name.
     *  @param tracer         may be nullptr. */
    HostCollector(const std::string &collector_name, Tracer *tracer);

    /** The link this collector listens on. */
    void attachLink(Link *l) { link = l; }

    /** Sample the link at end of cycle and parse. */
    void endCycle(Cycle cycle);

    /** Messages fully reassembled so far. */
    const std::vector<HostMessage> &received() const
    {
        return messages;
    }

    /** Drop collected messages (keeps circuit state). */
    void clearReceived() { messages.clear(); }

  private:
    enum class RxStage
    {
        Idle,
        Header,
        Length,
        Data
    };

    std::string name;
    Tracer *tracerPtr;
    Link *link = nullptr;

    RxStage stage = RxStage::Idle;
    VcId currentVc = 0;
    unsigned packetLeft = 0;
    std::array<unsigned, 256> remaining{};
    std::array<std::vector<std::uint8_t>, 256> assembly;
    std::vector<HostMessage> messages;
};

} // namespace micro
} // namespace damq

#endif // DAMQ_MICROARCH_HOST_HH

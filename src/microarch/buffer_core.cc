#include "microarch/buffer_core.hh"

#include "common/logging.hh"

namespace damq {
namespace micro {

BufferCore::BufferCore(PortId num_queues, unsigned num_slots,
                       ChipBufferMode mode)
    : bufferMode(mode), pool(num_slots), queueRegs(num_queues)
{
    damq_assert(num_queues > 0, "buffer core needs queues");
    damq_assert(num_slots >= kMaxPacketSlots,
                "buffer must hold at least one maximum packet");
    for (SlotId s = 0; s < num_slots; ++s) {
        pool[s].next = (s + 1 < num_slots) ? s + 1 : kNullSlot;
    }
    freeList.head = 0;
    freeList.tail = num_slots - 1;
    freeList.count = num_slots;
}

SlotId
BufferCore::takeFreeSlot()
{
    damq_assert(freeList.head != kNullSlot,
                "free list exhausted — flow control failed");
    const SlotId slot = freeList.head;
    freeList.head = pool[slot].next;
    if (freeList.head == kNullSlot)
        freeList.tail = kNullSlot;
    --freeList.count;
    pool[slot].next = kNullSlot;
    pool[slot].isPacketHead = false;
    pool[slot].packetMeta = PacketMeta{};
    pool[slot].written = 0;
    return slot;
}

void
BufferCore::appendToQueue(ListRegs &queue, SlotId slot)
{
    if (queue.tail == kNullSlot) {
        queue.head = slot;
    } else {
        pool[queue.tail].next = slot;
    }
    queue.tail = slot;
    ++queue.count;
}

BufferCore::ListRegs &
BufferCore::queueFor(PortId out)
{
    damq_assert(out < numQueues(), "bad queue ", out);
    // FIFO mode keeps one strictly ordered list (stored at index
    // 0); DAMQ mode keeps one list per output.
    return bufferMode == ChipBufferMode::Fifo ? queueRegs[0]
                                              : queueRegs[out];
}

const BufferCore::ListRegs &
BufferCore::queueFor(PortId out) const
{
    damq_assert(out < numQueues(), "bad queue ", out);
    return bufferMode == ChipBufferMode::Fifo ? queueRegs[0]
                                              : queueRegs[out];
}

unsigned
BufferCore::packetsQueued(PortId out) const
{
    damq_assert(out < numQueues(), "packetsQueued: bad queue ", out);
    if (bufferMode == ChipBufferMode::Fifo) {
        // Only the head of line is ever transmittable.
        return !fifoOrder.empty() && fifoOrder.front() == out ? 1 : 0;
    }
    return queueRegs[out].packets;
}

SlotId
BufferCore::headPacket(PortId out) const
{
    damq_assert(out < numQueues(), "headPacket: bad queue ", out);
    if (bufferMode == ChipBufferMode::Fifo) {
        if (fifoOrder.empty() || fifoOrder.front() != out)
            return kNullSlot;
        return queueRegs[0].head;
    }
    return queueRegs[out].head;
}

SlotId
BufferCore::beginPacket(PortId out)
{
    damq_assert(out < numQueues(), "beginPacket: bad queue ", out);
    const SlotId slot = takeFreeSlot();
    pool[slot].isPacketHead = true;
    pool[slot].packetMeta.outPort = out;
    ListRegs &queue = queueFor(out);
    appendToQueue(queue, slot);
    ++queue.packets;
    if (bufferMode == ChipBufferMode::Fifo)
        fifoOrder.push_back(out);
    return slot;
}

SlotId
BufferCore::extendPacket(PortId out)
{
    damq_assert(out < numQueues(), "extendPacket: bad queue ", out);
    ListRegs &queue = queueFor(out);
    damq_assert(queue.tail != kNullSlot,
                "extendPacket with no packet in the queue");
    const SlotId slot = takeFreeSlot();
    appendToQueue(queue, slot);
    return slot;
}

void
BufferCore::writeByte(SlotId slot, unsigned offset, std::uint8_t byte)
{
    damq_assert(slot < pool.size() && offset < kSlotBytes,
                "writeByte out of range");
    pool[slot].bytes[offset] = byte;
    pool[slot].written |= static_cast<std::uint8_t>(1u << offset);
}

std::uint8_t
BufferCore::readByte(SlotId slot, unsigned offset) const
{
    damq_assert(slot < pool.size() && offset < kSlotBytes,
                "readByte out of range");
    damq_assert(pool[slot].written & (1u << offset),
                "read of a byte that was never written (slot ", slot,
                " offset ", offset, ") — cut-through underrun");
    return pool[slot].bytes[offset];
}

SlotId
BufferCore::nextSlot(SlotId slot) const
{
    damq_assert(slot < pool.size(), "nextSlot out of range");
    return pool[slot].next;
}

PacketMeta &
BufferCore::meta(SlotId slot)
{
    damq_assert(slot < pool.size() && pool[slot].isPacketHead,
                "meta of a non-head slot");
    return pool[slot].packetMeta;
}

const PacketMeta &
BufferCore::meta(SlotId slot) const
{
    damq_assert(slot < pool.size() && pool[slot].isPacketHead,
                "meta of a non-head slot");
    return pool[slot].packetMeta;
}

void
BufferCore::popFrontSlot(PortId out, bool last_of_packet)
{
    damq_assert(out < numQueues(), "popFrontSlot: bad queue ", out);
    ListRegs &queue = queueFor(out);
    damq_assert(queue.head != kNullSlot, "popFrontSlot: empty queue");

    const SlotId slot = queue.head;
    queue.head = pool[slot].next;
    if (queue.head == kNullSlot)
        queue.tail = kNullSlot;
    --queue.count;
    if (last_of_packet) {
        damq_assert(queue.packets > 0, "packet count underflow");
        --queue.packets;
        if (bufferMode == ChipBufferMode::Fifo) {
            damq_assert(!fifoOrder.empty() &&
                            fifoOrder.front() == out,
                        "FIFO order bookkeeping drifted");
            fifoOrder.pop_front();
        }
    }

    pool[slot].next = kNullSlot;
    pool[slot].isPacketHead = false;
    pool[slot].written = 0;
    if (freeList.tail == kNullSlot) {
        freeList.head = slot;
    } else {
        pool[freeList.tail].next = slot;
    }
    freeList.tail = slot;
    ++freeList.count;
}

void
BufferCore::debugValidate() const
{
    std::vector<bool> seen(pool.size(), false);
    auto walk = [&](const ListRegs &list) {
        unsigned count = 0;
        SlotId prev = kNullSlot;
        for (SlotId s = list.head; s != kNullSlot; s = pool[s].next) {
            damq_assert(s < pool.size(), "pointer register corrupt");
            damq_assert(!seen[s], "slot ", s, " on two lists");
            seen[s] = true;
            ++count;
            damq_assert(count <= pool.size(), "list cycle detected");
            prev = s;
        }
        damq_assert(prev == list.tail, "tail register corrupt");
        damq_assert(count == list.count, "list count drifted");
    };

    walk(freeList);
    for (PortId out = 0; out < numQueues(); ++out)
        walk(queueRegs[out]);
    for (std::size_t s = 0; s < pool.size(); ++s)
        damq_assert(seen[s], "slot ", s, " leaked");
}

} // namespace micro
} // namespace damq

#include "microarch/host.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace damq {
namespace micro {

HostInjector::HostInjector(const std::string &injector_name,
                           Tracer *tracer)
    : name(injector_name), tracerPtr(tracer)
{
}

void
HostInjector::sendMessage(VcId vc, std::vector<std::uint8_t> payload)
{
    damq_assert(!payload.empty() && payload.size() <= 255,
                "host messages must be 1..255 bytes (got ",
                payload.size(), ")");
    HostMessage msg;
    msg.vc = vc;
    msg.payload = std::move(payload);
    queue.push_back(std::move(msg));
}

void
HostInjector::phase0(Cycle cycle)
{
    damq_assert(link != nullptr, name, ": no link attached");

    switch (stage) {
      case TxStage::Idle: {
        if (queue.empty())
            return;
        // Conservative flow control, like the chip's own outputs:
        // start a packet only when the receiving buffer has room
        // for a whole maximum packet.
        if (link->creditView() < kMaxPacketSlots)
            return;
        const HostMessage &msg = queue.front();
        packetLeft = static_cast<unsigned>(
            std::min<std::size_t>(msg.payload.size() - sentBytes,
                                  kMaxPacketBytes));
        link->driveStartBit();
        stage = TxStage::Header;
        if (tracerPtr)
            tracerPtr->record(cycle, Phase::P0, name, "start bit");
        return;
      }

      case TxStage::Header: {
        const HostMessage &msg = queue.front();
        link->driveData(msg.vc);
        stage = sentBytes == 0 ? TxStage::Length : TxStage::Data;
        return;
      }

      case TxStage::Length: {
        const HostMessage &msg = queue.front();
        link->driveData(
            static_cast<std::uint8_t>(msg.payload.size()));
        stage = TxStage::Data;
        return;
      }

      case TxStage::Data: {
        const HostMessage &msg = queue.front();
        link->driveData(msg.payload[sentBytes]);
        ++sentBytes;
        --packetLeft;
        if (packetLeft == 0) {
            stage = TxStage::Idle;
            if (sentBytes == msg.payload.size()) {
                queue.pop_front();
                sentBytes = 0;
                ++messagesDone;
                if (tracerPtr)
                    tracerPtr->record(cycle, Phase::P0, name,
                                      "message fully injected");
            }
        }
        return;
      }
    }
}

HostCollector::HostCollector(const std::string &collector_name,
                             Tracer *tracer)
    : name(collector_name), tracerPtr(tracer)
{
}

void
HostCollector::endCycle(Cycle cycle)
{
    damq_assert(link != nullptr, name, ": no link attached");
    const LinkSample sample = link->current();

    switch (stage) {
      case RxStage::Idle:
        if (sample.startBit)
            stage = RxStage::Header;
        break;

      case RxStage::Header:
        damq_assert(sample.hasData, name, ": missing header byte");
        currentVc = sample.data;
        if (remaining[currentVc] == 0) {
            stage = RxStage::Length;
        } else {
            packetLeft = std::min(remaining[currentVc],
                                  kMaxPacketBytes);
            stage = RxStage::Data;
        }
        break;

      case RxStage::Length:
        damq_assert(sample.hasData, name, ": missing length byte");
        damq_assert(sample.data >= 1, name, ": zero-length message");
        remaining[currentVc] = sample.data;
        assembly[currentVc].clear();
        packetLeft = std::min(remaining[currentVc], kMaxPacketBytes);
        stage = RxStage::Data;
        break;

      case RxStage::Data:
        damq_assert(sample.hasData, name, ": missing payload byte");
        assembly[currentVc].push_back(sample.data);
        --remaining[currentVc];
        --packetLeft;
        if (packetLeft == 0) {
            if (remaining[currentVc] == 0) {
                HostMessage msg;
                msg.vc = currentVc;
                msg.payload = std::move(assembly[currentVc]);
                msg.deliveredAt = cycle;
                assembly[currentVc].clear();
                messages.push_back(std::move(msg));
                if (tracerPtr)
                    tracerPtr->record(cycle, Phase::P1, name,
                                      "message reassembled");
            }
            stage = RxStage::Idle;
        }
        break;
    }

    // The host always has room.
    link->publishCredits(~0u);
}

} // namespace micro
} // namespace damq

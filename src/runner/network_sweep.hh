/**
 * @file
 * Sweep-task adapters between the simulators and the SweepRunner.
 *
 * A bench describes its work as a flat, ordered list of tasks —
 * each one full simulator configuration (offered load, buffer
 * type, seed, … already baked in) plus a human-readable label for
 * the perf sidecar.  The adapters fan the list across the runner's
 * threads and hand back the results in task order, so a bench's
 * rendering code consumes them exactly as the old sequential loops
 * did.  Every task constructs its own simulator from its own
 * config; nothing is shared, which is what makes the parallel run
 * bit-identical to the sequential one.
 */

#ifndef DAMQ_RUNNER_NETWORK_SWEEP_HH
#define DAMQ_RUNNER_NETWORK_SWEEP_HH

#include <string>
#include <vector>

#include "network/mesh_sim.hh"
#include "network/network_sim.hh"
#include "runner/sweep_runner.hh"

namespace damq {

/** One Omega-network replication of a sweep. */
struct NetworkTask
{
    std::string label; ///< e.g. "FIFO@0.25" (perf sidecar only)
    NetworkConfig config;
};

/** One mesh replication of a sweep. */
struct MeshTask
{
    std::string label;
    MeshConfig config;
};

/**
 * Run every task on @p runner; results come back in task order.
 * The runner's per-task perf counters report the task's measured
 * network cycles (warmup excluded) as simCycles.
 */
std::vector<NetworkResult> runNetworkSweep(
    SweepRunner &runner, const std::vector<NetworkTask> &tasks);

/** Mesh flavor of runNetworkSweep. */
std::vector<MeshResult> runMeshSweep(
    SweepRunner &runner, const std::vector<MeshTask> &tasks);

/** Shorthand: @p base with offeredLoad set to @p load. */
NetworkConfig atLoad(const NetworkConfig &base, double load);

/** Shorthand: @p base with offeredLoad set to @p load. */
MeshConfig atLoad(const MeshConfig &base, double load);

/** The labels of @p tasks, in order (for the perf sidecar). */
std::vector<std::string> taskLabels(
    const std::vector<NetworkTask> &tasks);

/** The labels of @p tasks, in order (for the perf sidecar). */
std::vector<std::string> taskLabels(
    const std::vector<MeshTask> &tasks);

} // namespace damq

#endif // DAMQ_RUNNER_NETWORK_SWEEP_HH

/**
 * @file
 * Sweep-task adapters between the simulators and the SweepRunner.
 *
 * A bench describes its work as a flat, ordered list of tasks —
 * each one full simulator configuration (offered load, buffer
 * type, seed, … already baked in) plus a human-readable label for
 * the perf sidecar.  runSimSweep() fans the list across the
 * runner's threads and hands back the results in task order, so a
 * bench's rendering code consumes them exactly as the old
 * sequential loops did.  Every task constructs its own simulator
 * from its own config; nothing is shared, which is what makes the
 * parallel run bit-identical to the sequential one.
 *
 * One template serves all four simulators: SimSweepTraits maps a
 * config type to its simulator and result types, so a bench for
 * any of them writes the same three lines (build tasks, run,
 * consume).  When a task's config enables telemetry, the adapter
 * suffixes the output prefix with the task's (sanitized) label so
 * concurrent tasks never write to the same files.
 */

#ifndef DAMQ_RUNNER_NETWORK_SWEEP_HH
#define DAMQ_RUNNER_NETWORK_SWEEP_HH

#include <string>
#include <vector>

#include "common/string_util.hh"
#include "network/cutthrough_sim.hh"
#include "network/mesh_sim.hh"
#include "network/network_sim.hh"
#include "network/torus_sim.hh"
#include "network/varlen_sim.hh"
#include "runner/sim_flags.hh"
#include "runner/sweep_runner.hh"

namespace damq {

/** One replication of a sweep: a label plus a full config. */
template <typename Config>
struct SimTask
{
    std::string label; ///< e.g. "FIFO@0.25" (perf/telemetry only)
    Config config;
};

using NetworkTask = SimTask<NetworkConfig>;
using MeshTask = SimTask<MeshConfig>;
using TorusTask = SimTask<TorusConfig>;
using CutThroughTask = SimTask<CutThroughConfig>;
using VarLenTask = SimTask<VarLenConfig>;

/** Config type -> simulator/result types, for runSimSweep(). */
template <typename Config>
struct SimSweepTraits;

template <>
struct SimSweepTraits<NetworkConfig>
{
    using Simulator = NetworkSimulator;
    using Result = NetworkResult;
    static std::uint64_t cycles(const Result &r)
    {
        return r.measuredCycles;
    }
};

template <>
struct SimSweepTraits<MeshConfig>
{
    using Simulator = MeshSimulator;
    using Result = MeshResult;
    static std::uint64_t cycles(const Result &r)
    {
        return r.measuredCycles;
    }
};

template <>
struct SimSweepTraits<TorusConfig>
{
    using Simulator = TorusSimulator;
    using Result = TorusResult;
    static std::uint64_t cycles(const Result &r)
    {
        return r.measuredCycles;
    }
};

template <>
struct SimSweepTraits<CutThroughConfig>
{
    using Simulator = CutThroughSimulator;
    using Result = CutThroughResult;
    static std::uint64_t cycles(const Result &r)
    {
        return r.measuredClocks;
    }
};

template <>
struct SimSweepTraits<VarLenConfig>
{
    using Simulator = VarLenNetworkSimulator;
    using Result = VarLenResult;
    static std::uint64_t cycles(const Result &r)
    {
        return r.measuredCycles;
    }
};

/**
 * Run every task on @p runner; results come back in task order.
 * The runner's per-task perf counters report the task's measured
 * cycles (warmup excluded) as simCycles.  Tasks with telemetry
 * enabled write their files under `<prefix>.<label>` so no two
 * tasks of one sweep collide.
 */
template <typename Config>
std::vector<typename SimSweepTraits<Config>::Result>
runSimSweep(SweepRunner &runner,
            const std::vector<SimTask<Config>> &tasks)
{
    using Traits = SimSweepTraits<Config>;
    return runner.map(
        tasks.size(),
        [&tasks](std::size_t i) {
            Config cfg = tasks[i].config;
            if (cfg.common.telemetry.enabled() &&
                !cfg.common.telemetry.outputPrefix.empty()) {
                cfg.common.telemetry.outputPrefix +=
                    "." + sanitizeFileToken(tasks[i].label);
            }
            typename Traits::Simulator sim(cfg);
            return sim.run();
        },
        &Traits::cycles);
}

/** Historical names for the two original sweep flavors. */
inline std::vector<NetworkResult>
runNetworkSweep(SweepRunner &runner,
                const std::vector<NetworkTask> &tasks)
{
    return runSimSweep(runner, tasks);
}

/** Mesh flavor of runNetworkSweep. */
inline std::vector<MeshResult>
runMeshSweep(SweepRunner &runner, const std::vector<MeshTask> &tasks)
{
    return runSimSweep(runner, tasks);
}

/** Shorthand: @p base with offeredLoad set to @p load. */
NetworkConfig atLoad(const NetworkConfig &base, double load);

/** Shorthand: @p base with offeredLoad set to @p load. */
MeshConfig atLoad(const MeshConfig &base, double load);

/** Shorthand: @p base with offeredLoad set to @p load. */
TorusConfig atLoad(const TorusConfig &base, double load);

/** Shorthand: @p base with offeredLoad set to @p load. */
CutThroughConfig atLoad(const CutThroughConfig &base, double load);

/** Shorthand: @p base with offeredSlotLoad set to @p load. */
VarLenConfig atLoad(const VarLenConfig &base, double load);

/** The labels of @p tasks, in order (for the perf sidecar). */
template <typename Config>
std::vector<std::string>
taskLabels(const std::vector<SimTask<Config>> &tasks)
{
    std::vector<std::string> labels;
    labels.reserve(tasks.size());
    for (const SimTask<Config> &task : tasks)
        labels.push_back(task.label);
    return labels;
}

} // namespace damq

#endif // DAMQ_RUNNER_NETWORK_SWEEP_HH

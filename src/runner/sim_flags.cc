#include "runner/sim_flags.hh"

#include <cstdlib>
#include <iostream>

#include "common/logging.hh"

namespace damq {

const char kBufferTypeChoices[] = "fifo | samq | safc | damq | damqr";
const char kPlacementChoices[] = "input | central | output";
const char kFlowControlChoices[] = "blocking | discarding";
const char kArbitrationChoices[] = "smart | dumb";
const char kSwitchingModeChoices[] = "cut-through | store-and-forward";

namespace {

/** Reject `--<name> <value>`: print choices + usage, exit(1). */
[[noreturn]] void
badEnumValue(const ArgParser &args, const std::string &name,
             const std::string &value, const char *what,
             const char *choices)
{
    std::cerr << "error: unknown " << what << " '" << value
              << "' for --" << name << " (expected " << choices
              << ")\n\n"
              << args.usage();
    std::exit(1);
}

} // namespace

BufferType
bufferTypeOption(const ArgParser &args, const std::string &name)
{
    const std::string value = args.getString(name);
    if (const auto type = tryBufferTypeFromString(value))
        return *type;
    badEnumValue(args, name, value, "buffer type",
                 kBufferTypeChoices);
}

BufferPlacement
placementOption(const ArgParser &args, const std::string &name)
{
    const std::string value = args.getString(name);
    if (const auto placement = tryBufferPlacementFromString(value))
        return *placement;
    badEnumValue(args, name, value, "buffer placement",
                 kPlacementChoices);
}

FlowControl
flowControlOption(const ArgParser &args, const std::string &name)
{
    const std::string value = args.getString(name);
    if (const auto protocol = tryFlowControlFromString(value))
        return *protocol;
    badEnumValue(args, name, value, "flow control",
                 kFlowControlChoices);
}

ArbitrationPolicy
arbitrationOption(const ArgParser &args, const std::string &name)
{
    const std::string value = args.getString(name);
    if (const auto policy = tryArbitrationPolicyFromString(value))
        return *policy;
    badEnumValue(args, name, value, "arbitration policy",
                 kArbitrationChoices);
}

SwitchingMode
switchingModeOption(const ArgParser &args, const std::string &name)
{
    const std::string value = args.getString(name);
    if (const auto mode = trySwitchingModeFromString(value))
        return *mode;
    badEnumValue(args, name, value, "switching mode",
                 kSwitchingModeChoices);
}

void
addCommonSimFlags(ArgParser &args)
{
    args.addOption("threads", "1",
                   "worker threads for the sweep (results are "
                   "identical at any value)");
    args.addOption("seed", "1", "master PRNG seed");
    args.addOption("warmup", "0",
                   "override warmup cycles (clocks for the "
                   "cut-through bench)");
    args.addOption("measure", "0", "override measured cycles");
    args.addOption("metrics-every", "0",
                   "sample the metric time series every N cycles "
                   "(0 = off)");
    args.addFlag("trace",
                 "record per-packet lifecycle events to a Chrome "
                 "trace (view in Perfetto)");
    args.addOption("trace-events", "1000000",
                   "cap on recorded trace events");
    args.addOption("telemetry-out", "",
                   "output prefix for <prefix>.metrics.json/.csv "
                   "and <prefix>.trace.json (default: the bench "
                   "name)");
}

unsigned
simThreads(const ArgParser &args)
{
    const std::int64_t threads = args.getInt("threads");
    if (threads < 1 || threads > 4096)
        damq_fatal("--threads wants an integer in [1, 4096], got ",
                   threads);
    return static_cast<unsigned>(threads);
}

void
applyCommonSimFlags(const ArgParser &args, SimCommonConfig &common,
                    const std::string &default_prefix)
{
    if (args.wasSet("seed"))
        common.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    if (args.wasSet("warmup")) {
        common.warmupCycles =
            static_cast<Cycle>(args.getInt("warmup"));
    }
    if (args.wasSet("measure")) {
        common.measureCycles =
            static_cast<Cycle>(args.getInt("measure"));
    }

    if (args.wasSet("metrics-every")) {
        common.telemetry.metricsEvery =
            static_cast<Cycle>(args.getInt("metrics-every"));
    }
    if (args.getFlag("trace"))
        common.telemetry.tracePackets = true;
    if (args.wasSet("trace-events")) {
        common.telemetry.maxTraceEvents =
            static_cast<std::uint64_t>(args.getInt("trace-events"));
    }
    if (common.telemetry.enabled()) {
        const std::string prefix = args.getString("telemetry-out");
        common.telemetry.outputPrefix =
            prefix.empty() ? default_prefix : prefix;
    }
}

std::string
sanitizeFileToken(const std::string &label)
{
    std::string token = label;
    for (char &c : token) {
        const bool safe =
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '.' || c == '-' ||
            c == '_' || c == '@';
        if (!safe)
            c = '_';
    }
    return token;
}

} // namespace damq

#include "runner/sim_flags.hh"

#include <cstdlib>
#include <iostream>

#include "common/logging.hh"

namespace damq {

const char kBufferTypeChoices[] =
    "fifo | samq | safc | damq | damqr | voq";
const char kSharingPolicyChoices[] = "static | dt | delay | qos";
const char kPlacementChoices[] = "input | central | output";
const char kFlowControlChoices[] =
    "blocking | discarding | credit | on-off";
const char kArbitrationChoices[] = "smart | dumb";
const char kSwitchingChoices[] =
    "packet-sync | store-and-forward | cut-through | wormhole | vct";
const char kSwitchingModeChoices[] = "cut-through | store-and-forward";
const char kVcPolicyChoices[] = "dateline | none";
const char kRecoveryPolicyChoices[] =
    "none | retransmit | retransmit+reroute (or: reroute)";
const char kWorkloadChoices[] =
    "geometric | onoff | mmpp | batch | reqreply | trace";

namespace {

/** Reject `--<name> <value>`: print choices + usage, exit(1). */
[[noreturn]] void
badEnumValue(const ArgParser &args, const std::string &name,
             const std::string &value, const char *what,
             const char *choices)
{
    std::cerr << "error: unknown " << what << " '" << value
              << "' for --" << name << " (expected " << choices
              << ")\n\n"
              << args.usage();
    std::exit(1);
}

/**
 * Parse option @p name through one of the tryXFromString parsers;
 * on bad input, print the accepted @p choices and the usage text to
 * stderr and exit(1).  Every enum-valued option goes through here,
 * so they all reject input with the same message shape.
 */
template <typename TryParse>
auto
enumOption(const ArgParser &args, const std::string &name,
           TryParse &&try_parse, const char *what,
           const char *choices)
{
    const std::string value = args.getString(name);
    if (const auto parsed = try_parse(value))
        return *parsed;
    badEnumValue(args, name, value, what, choices);
}

} // namespace

BufferType
bufferTypeOption(const ArgParser &args, const std::string &name)
{
    return enumOption(args, name, tryBufferTypeFromString,
                      "buffer type", kBufferTypeChoices);
}

BufferPlacement
placementOption(const ArgParser &args, const std::string &name)
{
    return enumOption(args, name, tryBufferPlacementFromString,
                      "buffer placement", kPlacementChoices);
}

FlowControl
flowControlOption(const ArgParser &args, const std::string &name)
{
    return enumOption(args, name, tryFlowControlFromString,
                      "flow control", kFlowControlChoices);
}

ArbitrationPolicy
arbitrationOption(const ArgParser &args, const std::string &name)
{
    return enumOption(args, name, tryArbitrationPolicyFromString,
                      "arbitration policy", kArbitrationChoices);
}

Switching
switchingOption(const ArgParser &args, const std::string &name)
{
    return enumOption(args, name, trySwitchingFromString,
                      "switching mode", kSwitchingChoices);
}

SwitchingMode
switchingModeOption(const ArgParser &args, const std::string &name)
{
    return enumOption(args, name, trySwitchingModeFromString,
                      "switching mode", kSwitchingModeChoices);
}

VcPolicy
vcPolicyOption(const ArgParser &args, const std::string &name)
{
    return enumOption(args, name, tryVcPolicyFromString,
                      "VC policy", kVcPolicyChoices);
}

RecoveryPolicy
recoveryPolicyOption(const ArgParser &args, const std::string &name)
{
    return enumOption(args, name, tryRecoveryPolicyFromString,
                      "recovery policy", kRecoveryPolicyChoices);
}

core::WorkloadKind
workloadOption(const ArgParser &args, const std::string &name)
{
    return enumOption(args, name, core::tryWorkloadKindFromString,
                      "workload", kWorkloadChoices);
}

namespace {

/** Parse option @p name as a sharing policy (or exit(1)). */
SharingPolicy
sharingPolicyOption(const ArgParser &args, const std::string &name)
{
    return enumOption(args, name, trySharingPolicyFromString,
                      "sharing policy", kSharingPolicyChoices);
}

} // namespace

void
addCommonSimFlags(ArgParser &args)
{
    args.addOption("threads", "1",
                   "worker threads for the sweep — parallelism "
                   "ACROSS sweep points (results are identical at "
                   "any value; see --shards for parallelism within "
                   "one simulation)");
    args.addOption("shards", "0",
                   "threads WITHIN each synchronized simulation: "
                   "the topology is split into this many contiguous "
                   "switch shards advanced between deterministic "
                   "phase barriers (bit-identical at any value; "
                   "input-buffered placement only; 0 = keep the "
                   "bench default).  Composes with --threads — "
                   "total threads ~ threads x shards, so pick "
                   "threads x shards <= cores");
    args.addOption("seed", "1", "master PRNG seed");
    args.addOption("warmup", "0",
                   "override warmup cycles (clocks for the "
                   "cut-through bench)");
    args.addOption("measure", "0", "override measured cycles");
    args.addOption("vcs", "0",
                   "override virtual channels per link (>1 needs "
                   "input buffering; 0 = keep the bench default)");
    args.addOption("vc-policy", "dateline",
                   "VC assignment policy when vcs > 1 (dateline | "
                   "none)");
    args.addOption("metrics-every", "0",
                   "sample the metric time series every N cycles "
                   "(0 = off)");
    args.addFlag("trace",
                 "record per-packet lifecycle events to a Chrome "
                 "trace (view in Perfetto)");
    args.addOption("trace-events", "1000000",
                   "cap on recorded trace events");
    args.addOption("telemetry-out", "",
                   "output prefix for <prefix>.metrics.json/.csv "
                   "and <prefix>.trace.json (default: the bench "
                   "name)");

    // Workload / injection process.
    args.addOption("workload", "", kWorkloadChoices);
    args.addOption("batch", "0",
                   "packets each source owes under --workload batch "
                   "(0 = keep the default, 64)");
    args.addOption("reply-window", "0",
                   "outstanding requests per source under "
                   "--workload reqreply (0 = keep the default, 4)");
    args.addOption("trace-file", "",
                   "trace to replay under --workload trace (one "
                   "'cycle src dest' triple per line)");
    args.addOption("workload-burstiness", "0",
                   "peak/average factor B for the onoff / mmpp "
                   "workloads (0 = keep the default)");
    args.addOption("workload-burst-cycles", "0",
                   "mean high-state duration for the onoff / mmpp "
                   "workloads (0 = keep the default, 8)");

    // Fault plan and recovery (all default to off / bench default).
    args.addOption("fault-seed", "0",
                   "fault-plan PRNG seed (0 = keep the bench "
                   "default)");
    args.addOption("packet-drop-rate", "-1",
                   "per-link-crossing packet-drop probability");
    args.addOption("bit-flip-rate", "-1",
                   "per-link-crossing header-bit-flip probability");
    args.addOption("link-down-rate", "-1",
                   "per-link-cycle probability of a link-down "
                   "episode");
    args.addOption("link-down-cycles", "-1",
                   "length of a link-down episode (0 = permanent)");
    args.addOption("link-down-fraction", "-1",
                   "fraction of eligible links forced down "
                   "permanently from cycle 0");
    args.addOption("router-down-rate", "-1",
                   "per-switch-cycle probability of a router-down "
                   "episode");
    args.addOption("router-down-cycles", "-1",
                   "length of a router-down episode (0 = "
                   "permanent)");
    args.addOption("recovery", "",
                   "link-fault recovery policy (none | retransmit "
                   "| retransmit+reroute)");
    args.addOption("max-retries", "0",
                   "consecutive link failures before a link is "
                   "declared dead (0 = keep default)");
    args.addOption("retry-backoff", "0",
                   "exponential-backoff base, in cycles (0 = keep "
                   "default)");
    args.addOption("retry-backoff-cap", "0",
                   "exponential-backoff cap, in cycles (0 = keep "
                   "default)");
    args.addOption("revive-probe", "-1",
                   "probe dead links for revival every N cycles "
                   "(0 = never; -1 = keep default)");
}

unsigned
simThreads(const ArgParser &args)
{
    const std::int64_t threads = args.getInt("threads");
    if (threads < 1 || threads > 4096)
        damq_fatal("--threads wants an integer in [1, 4096], got ",
                   threads);
    return static_cast<unsigned>(threads);
}

void
applyCommonSimFlags(const ArgParser &args, SimCommonConfig &common,
                    const std::string &default_prefix)
{
    if (args.wasSet("seed"))
        common.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    if (args.wasSet("warmup")) {
        common.warmupCycles =
            static_cast<Cycle>(args.getInt("warmup"));
    }
    if (args.wasSet("measure")) {
        common.measureCycles =
            static_cast<Cycle>(args.getInt("measure"));
    }
    if (args.wasSet("vcs")) {
        const std::int64_t vcs = args.getInt("vcs");
        if (vcs < 1 || vcs > 64)
            damq_fatal("--vcs wants an integer in [1, 64], got ",
                       vcs);
        common.vcs = static_cast<VcId>(vcs);
    }
    if (args.wasSet("vc-policy"))
        common.vcPolicy = vcPolicyOption(args, "vc-policy");
    if (args.wasSet("shards")) {
        const std::int64_t shards = args.getInt("shards");
        if (shards != 0 && (shards < 1 || shards > 4096))
            damq_fatal("--shards wants an integer in [1, 4096] (or "
                       "0 to keep the bench default), got ", shards);
        if (shards != 0)
            common.shards = static_cast<std::uint32_t>(shards);
    }

    if (args.wasSet("metrics-every")) {
        common.telemetry.metricsEvery =
            static_cast<Cycle>(args.getInt("metrics-every"));
    }
    if (args.getFlag("trace"))
        common.telemetry.tracePackets = true;
    if (args.wasSet("trace-events")) {
        common.telemetry.maxTraceEvents =
            static_cast<std::uint64_t>(args.getInt("trace-events"));
    }
    if (common.telemetry.enabled()) {
        const std::string prefix = args.getString("telemetry-out");
        common.telemetry.outputPrefix =
            prefix.empty() ? default_prefix : prefix;
    }

    // Workload selection.  Parameter validation (peak rates, batch
    // size, reply window, trace wellformedness) happens once, in
    // makeInjectionProcess, when the simulator is built.
    if (args.wasSet("workload"))
        common.workload.kind = workloadOption(args, "workload");
    if (args.wasSet("batch")) {
        const std::int64_t batch = args.getInt("batch");
        if (batch < 0)
            damq_fatal("--batch wants a positive packet count (or 0 "
                       "to keep the default), got ", batch);
        if (batch != 0) {
            common.workload.batchPackets =
                static_cast<std::uint64_t>(batch);
        }
    }
    if (args.wasSet("reply-window")) {
        const std::int64_t window = args.getInt("reply-window");
        if (window < 0 || window > 1 << 20)
            damq_fatal("--reply-window wants an integer in [1, 2^20] "
                       "(or 0 to keep the default), got ", window);
        if (window != 0) {
            common.workload.replyWindow =
                static_cast<std::uint32_t>(window);
        }
    }
    if (args.wasSet("trace-file"))
        common.workload.traceFile = args.getString("trace-file");
    if (args.wasSet("workload-burstiness")) {
        const double b = args.getDouble("workload-burstiness");
        if (b != 0.0)
            common.workload.burstiness = b;
    }
    if (args.wasSet("workload-burst-cycles")) {
        const std::int64_t cycles =
            args.getInt("workload-burst-cycles");
        if (cycles < 0)
            damq_fatal("--workload-burst-cycles wants a positive "
                       "cycle count (or 0 to keep the default), "
                       "got ", cycles);
        if (cycles != 0)
            common.workload.meanBurstCycles =
                static_cast<Cycle>(cycles);
    }

    // Fault plan.  Rates use -1 as "keep the bench default" so an
    // explicit 0 can switch a bench's default faults off.
    if (args.getInt("fault-seed") != 0) {
        common.faults.seed =
            static_cast<std::uint64_t>(args.getInt("fault-seed"));
    }
    const auto rate = [&](const char *name, double &field) {
        const double value = args.getDouble(name);
        if (value < 0.0)
            return;
        if (value > 1.0)
            damq_fatal("--", name, " wants a probability in "
                       "[0, 1], got ", value);
        field = value;
    };
    rate("packet-drop-rate", common.faults.packetDropRate);
    rate("bit-flip-rate", common.faults.headerBitFlipRate);
    rate("link-down-rate", common.faults.linkDownRate);
    rate("link-down-fraction", common.faults.linkDownFraction);
    rate("router-down-rate", common.faults.routerDownRate);
    if (args.getInt("link-down-cycles") >= 0) {
        common.faults.linkDownCycles =
            static_cast<Cycle>(args.getInt("link-down-cycles"));
    }
    if (args.getInt("router-down-cycles") >= 0) {
        common.faults.routerDownCycles =
            static_cast<Cycle>(args.getInt("router-down-cycles"));
    }

    // Recovery protocol.
    if (args.wasSet("recovery"))
        common.recovery.policy = recoveryPolicyOption(args, "recovery");
    if (args.getInt("max-retries") > 0) {
        common.recovery.maxRetries =
            static_cast<std::uint32_t>(args.getInt("max-retries"));
    }
    if (args.getInt("retry-backoff") > 0) {
        common.recovery.retryBackoffBase =
            static_cast<Cycle>(args.getInt("retry-backoff"));
    }
    if (args.getInt("retry-backoff-cap") > 0) {
        common.recovery.retryBackoffCap =
            static_cast<Cycle>(args.getInt("retry-backoff-cap"));
    }
    if (args.getInt("revive-probe") >= 0) {
        common.recovery.reviveProbeCycles =
            static_cast<Cycle>(args.getInt("revive-probe"));
    }
}

void
addSwitchingFlags(ArgParser &args,
                  const std::string &switching_default,
                  const std::string &flow_control_default)
{
    args.addOption("switching", switching_default,
                   kSwitchingChoices);
    args.addOption("flow-control", flow_control_default,
                   kFlowControlChoices);
    args.addOption("flits-per-packet", "0",
                   "packet length in flits under wormhole/vct "
                   "switching (0 = keep the bench default)");
}

void
applySwitchingFlags(const ArgParser &args, Switching &switching,
                    FlowControl &protocol,
                    std::uint32_t &flits_per_packet)
{
    if (args.wasSet("switching"))
        switching = switchingOption(args, "switching");
    if (args.wasSet("flow-control"))
        protocol = flowControlOption(args, "flow-control");
    if (args.wasSet("flits-per-packet")) {
        const std::int64_t flits = args.getInt("flits-per-packet");
        if (flits < 0 || flits > 4096)
            damq_fatal("--flits-per-packet wants an integer in "
                       "[1, 4096] (or 0 to keep the bench default), "
                       "got ", flits);
        if (flits != 0)
            flits_per_packet = static_cast<std::uint32_t>(flits);
    }
}

void
addBufferPolicyFlags(ArgParser &args)
{
    args.addOption("buffer-policy", "static", kSharingPolicyChoices);
    args.addOption("dt-alpha", "0",
                   "threshold factor alpha for the dt / delay "
                   "policies (0 = keep the default, 2.0)");
    args.addOption("delay-age-scale", "0",
                   "cycles per unit of threshold growth for the "
                   "delay policy (0 = keep the default, 64)");
    args.addFlag("voq",
                 "use the virtual-output-queue buffer organization "
                 "(shorthand overriding the buffer-type option)");
    args.addOption("voq-private", "0",
                   "private slots per queue for the voq "
                   "organization (0 = keep the default, 1)");
    args.addOption("classes", "0",
                   "traffic classes stamped onto packets as "
                   "source % N; also the qos policy's class count "
                   "(0 = keep the default, 1)");
}

void
applyBufferPolicyFlags(const ArgParser &args, BufferType &buffer_type,
                       SharingPolicyConfig &sharing,
                       std::uint32_t &traffic_classes)
{
    if (args.getFlag("voq"))
        buffer_type = BufferType::Voq;
    if (args.wasSet("buffer-policy"))
        sharing.kind = sharingPolicyOption(args, "buffer-policy");
    if (args.wasSet("dt-alpha")) {
        const double alpha = args.getDouble("dt-alpha");
        if (alpha != 0.0 && (alpha < 1.0 / 1024.0 || alpha > 1024.0))
            damq_fatal("--dt-alpha wants a factor in [1/1024, 1024] "
                       "(or 0 to keep the default), got ", alpha);
        if (alpha != 0.0)
            sharing.dtAlpha = alpha;
    }
    if (args.wasSet("delay-age-scale")) {
        const std::int64_t scale = args.getInt("delay-age-scale");
        if (scale < 0 || scale > 65536)
            damq_fatal("--delay-age-scale wants an integer in "
                       "[1, 65536] (or 0 to keep the default), got ",
                       scale);
        if (scale != 0)
            sharing.delayAgeScale = static_cast<Cycle>(scale);
    }
    if (args.wasSet("voq-private")) {
        const std::int64_t priv = args.getInt("voq-private");
        if (priv < 0 || priv > 4096)
            damq_fatal("--voq-private wants an integer in [1, 4096] "
                       "(or 0 to keep the default), got ", priv);
        if (priv != 0)
            sharing.voqPrivateSlots =
                static_cast<std::uint32_t>(priv);
    }
    if (args.wasSet("classes")) {
        const std::int64_t classes = args.getInt("classes");
        if (classes < 0 ||
            classes > static_cast<std::int64_t>(kMaxTrafficClasses))
            damq_fatal("--classes wants an integer in [1, ",
                       kMaxTrafficClasses,
                       "] (or 0 to keep the default), got ", classes);
        if (classes != 0) {
            traffic_classes = static_cast<std::uint32_t>(classes);
            sharing.qosClasses =
                static_cast<std::uint32_t>(classes);
        }
    }
}

std::string
sanitizeFileToken(const std::string &label)
{
    std::string token = label;
    for (char &c : token) {
        const bool safe =
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '.' || c == '-' ||
            c == '_' || c == '@';
        if (!safe)
            c = '_';
    }
    return token;
}

} // namespace damq

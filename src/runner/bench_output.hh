/**
 * @file
 * Shared plumbing for the bench executables' machine-readable
 * output: the BENCH_<name>.json result files and the
 * PERF_<name>.json timing sidecars.  (The shared command-line
 * options, --threads included, live in runner/sim_flags.hh.)
 *
 * Two invariants the benches rely on:
 *
 *  - stdout carries exactly the text tables it always carried, so
 *    saved golden outputs keep matching byte for byte; everything
 *    this header adds (file-written notices) goes to stderr.
 *  - BENCH_<name>.json holds only simulation outputs — fully
 *    deterministic, identical at any --threads value.  Wall-clock
 *    data lives in the PERF_<name>.json sidecar, which is expected
 *    to differ run to run.
 */

#ifndef DAMQ_RUNNER_BENCH_OUTPUT_HH
#define DAMQ_RUNNER_BENCH_OUTPUT_HH

#include <fstream>
#include <string>
#include <vector>

#include "common/json_writer.hh"
#include "network/core/workload.hh"
#include "runner/sweep_runner.hh"

namespace damq {

/**
 * One BENCH_<name>.json document being written.  Opens
 * `BENCH_<bench>.json` in the working directory, emits the shared
 * preamble (`schema`, `bench`), and leaves the root object open
 * for the bench's own fields; the destructor closes the root
 * object and prints a notice on stderr.
 */
class BenchJsonFile
{
  public:
    /** Start BENCH_<bench>.json; fatal if the file can't open. */
    explicit BenchJsonFile(const std::string &bench);

    /** Close the root object and the file (destructor calls it). */
    ~BenchJsonFile();

    /** The writer, positioned inside the root object. */
    JsonWriter &json() { return writer; }

  private:
    std::string path;
    std::ofstream file;
    JsonWriter writer;
};

/**
 * Emit the shared "workload" descriptor object on @p json (which
 * must be positioned inside an open object): the injection-process
 * kind plus its kind-specific parameters, so every BENCH_*.json
 * names the traffic process that produced it.  The legacy
 * burstiness knobs are resolved exactly as the engine resolves
 * them — a geometric workload with @p legacy_burstiness > 1 is
 * reported as the two-state on/off process it becomes.
 */
void writeWorkloadJson(JsonWriter &json,
                       const core::WorkloadConfig &workload,
                       std::uint32_t traffic_classes = 1,
                       double legacy_burstiness = 1.0,
                       Cycle legacy_mean_burst_cycles = 8);

/**
 * Emit the shared end-to-end latency-tail fields of one simulation
 * result into the currently open row object: e2eLatencyP50 / P99 /
 * P999 (generation-to-delivery, measured-window packets only) and
 * the e2eSamples count they summarize.  Works for any result type
 * carrying the shared e2e members (NetworkResult, TorusResult,
 * MeshResult, ...).
 */
template <typename Result>
void
writeE2eLatencyJson(JsonWriter &json, const Result &r)
{
    json.field("e2eLatencyP50", r.e2eLatencyP50);
    json.field("e2eLatencyP99", r.e2eLatencyP99);
    json.field("e2eLatencyP999", r.e2eLatencyP999);
    json.field("e2eSamples", r.e2eSamples);
}

/**
 * Write PERF_<bench>.json from @p runner's counters for its last
 * sweep: thread count, sweep wall seconds, and per-task wall
 * seconds / simulated cycles / cycles-per-second, labelled by
 * @p labels (same order as the tasks).
 */
void writePerfSidecar(const std::string &bench,
                      const SweepRunner &runner,
                      const std::vector<std::string> &labels);

} // namespace damq

#endif // DAMQ_RUNNER_BENCH_OUTPUT_HH

/**
 * @file
 * The Table 4 sweep as a library (plus the shared Section 4.2
 * experiment configuration).
 *
 * Table 4 — average latency vs throughput at four slots per buffer
 * — is the repo's flagship experiment, so its sweep lives here
 * rather than in the bench executable: the bench renders it, and
 * the runner tests re-run it at several thread counts (on a scaled
 *-down configuration) to prove the parallel results and their JSON
 * serialization are bit-identical to the sequential ones.
 */

#ifndef DAMQ_RUNNER_TABLE_BENCHES_HH
#define DAMQ_RUNNER_TABLE_BENCHES_HH

#include <string>
#include <vector>

#include "network/network_sim.hh"
#include "common/json_writer.hh"
#include "runner/sweep_runner.hh"

namespace damq {

/**
 * The Omega-network settings shared by the Section 4.2 benches
 * (64x64 network of 4x4 switches, blocking protocol, smart
 * arbitration, uniform traffic, seed 88).
 */
NetworkConfig paperOmegaConfig();

/** What to sweep for a Table 4 style experiment. */
struct Table4Options
{
    /** Base configuration; offeredLoad is set per task. */
    NetworkConfig base = paperOmegaConfig();

    /** Loads for the per-load latency columns. */
    std::vector<double> loads = {0.25, 0.30, 0.40, 0.50};

    /** Row order of the table. */
    std::vector<BufferType> types = {BufferType::Fifo,
                                     BufferType::Damq,
                                     BufferType::Samq,
                                     BufferType::Safc};
};

/** One rendered row of Table 4. */
struct Table4Row
{
    BufferType type = BufferType::Fifo;
    std::vector<double> latencyClocks; ///< mean latency per load
    double saturatedLatencyClocks = 0.0;
    double saturationThroughput = 0.0;
};

/** Everything the Table 4 sweep produced. */
struct Table4Data
{
    Table4Options options;
    std::vector<Table4Row> rows;

    /** Raw sweep results, in task order (|loads|+1 per type) — the
     *  JSON writer reads the end-to-end tails from them. */
    std::vector<NetworkResult> results;

    /** Task labels, in sweep order (for the perf sidecar). */
    std::vector<std::string> taskLabels;

    /** Saturation throughput of @p type (0 when absent). */
    double saturationOf(BufferType type) const;
};

/**
 * Run the Table 4 sweep on @p runner: |types| x (|loads| + 1)
 * independent simulations, enumerated type-major with the
 * full-load saturation point last — the same order the sequential
 * bench used.
 */
Table4Data runTable4(SweepRunner &runner, const Table4Options &options);

/** Render the sweep as the bench's text table (TextTable format). */
std::string renderTable4Text(const Table4Data &data);

/**
 * Serialize the sweep into @p json, which must be positioned
 * inside an open object (fields: config, loads, rows).
 */
void writeTable4Json(JsonWriter &json, const Table4Data &data);

/**
 * Echo the simulation-relevant fields of @p config as a "config"
 * object field (shared by every BENCH_*.json that sweeps the
 * Omega network).
 */
void writeNetworkConfigJson(JsonWriter &json,
                            const NetworkConfig &config);

} // namespace damq

#endif // DAMQ_RUNNER_TABLE_BENCHES_HH

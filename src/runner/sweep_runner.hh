/**
 * @file
 * Parallel execution of independent simulation replications.
 *
 * A Section 4.2 bench is a *sweep*: the cross product of offered
 * loads, buffer organizations, and (sometimes) seeds, where every
 * point is one self-contained NetworkSimulator/MeshSimulator run.
 * The points share no state, so they can execute on any number of
 * worker threads — as long as the *results* come back in the
 * sweep's enumeration order and every task derives its randomness
 * from its index (see deriveTaskSeed), the output is bit-identical
 * to a sequential run regardless of thread count or scheduling.
 *
 * SweepRunner implements exactly that contract: map(count, fn)
 * claims indices from an atomic counter, runs fn(i) on a fixed-size
 * pool of std::threads, stores each result at slot i, and rethrows
 * the first task exception after the pool drains.  Per-task
 * wall-clock timings (and simulated-cycles-per-second rates, when
 * the caller reports cycle counts) are collected on the side so the
 * perf sidecar files never influence the deterministic outputs.
 */

#ifndef DAMQ_RUNNER_SWEEP_RUNNER_HH
#define DAMQ_RUNNER_SWEEP_RUNNER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace damq {

/** Wall-clock and throughput counters for one sweep task. */
struct TaskPerf
{
    /** Wall-clock seconds spent inside the task body. */
    double wallSeconds = 0.0;

    /** Simulated network cycles the task reported (0 = unknown). */
    std::uint64_t simCycles = 0;

    /** simCycles / wallSeconds (0 when either is unknown). */
    double cyclesPerSecond = 0.0;
};

/** Executes the independent tasks of one sweep on a thread pool. */
class SweepRunner
{
  public:
    /** @param num_threads worker count; 1 runs tasks inline. */
    explicit SweepRunner(unsigned num_threads = 1)
        : numThreads(num_threads == 0 ? 1 : num_threads)
    {
    }

    /** Worker threads this runner fans tasks across. */
    unsigned threads() const { return numThreads; }

    /**
     * Run @p fn(index) for every index in [0, @p count) and return
     * the results ordered by index.  @p fn must be callable
     * concurrently from multiple threads and must not share mutable
     * state across indices.  The optional @p cycles_of extracts a
     * simulated-cycle count from a result for the perf counters.
     * The first exception any task throws is rethrown here once all
     * workers have stopped.
     */
    template <typename Fn,
              typename R = decltype(std::declval<Fn &>()(std::size_t{0}))>
    std::vector<R> map(std::size_t count, Fn &&fn,
                       std::uint64_t (*cycles_of)(const R &) = nullptr)
    {
        const auto sweep_start = std::chrono::steady_clock::now();
        std::vector<std::optional<R>> slots(count);
        perf.assign(count, TaskPerf{});

        std::atomic<std::size_t> next{0};
        std::exception_ptr first_error;
        std::mutex error_mutex;

        const auto worker = [&]() {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    return;
                try {
                    const auto t0 = std::chrono::steady_clock::now();
                    slots[i].emplace(fn(i));
                    const auto t1 = std::chrono::steady_clock::now();
                    TaskPerf &p = perf[i];
                    p.wallSeconds =
                        std::chrono::duration<double>(t1 - t0).count();
                    if (cycles_of != nullptr) {
                        p.simCycles = cycles_of(*slots[i]);
                        if (p.wallSeconds > 0.0)
                            p.cyclesPerSecond =
                                static_cast<double>(p.simCycles) /
                                p.wallSeconds;
                    }
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                    // Let the remaining workers drain the queue; the
                    // tasks are independent, so one failure does not
                    // poison the others.
                }
            }
        };

        if (numThreads == 1 || count <= 1) {
            worker();
        } else {
            const unsigned spawn =
                numThreads > count ? static_cast<unsigned>(count)
                                   : numThreads;
            std::vector<std::thread> pool;
            pool.reserve(spawn);
            for (unsigned t = 0; t < spawn; ++t)
                pool.emplace_back(worker);
            for (std::thread &t : pool)
                t.join();
        }

        const auto sweep_end = std::chrono::steady_clock::now();
        wallSeconds_ =
            std::chrono::duration<double>(sweep_end - sweep_start)
                .count();

        if (first_error)
            std::rethrow_exception(first_error);

        std::vector<R> results;
        results.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            damq_assert(slots[i].has_value(),
                        "sweep task ", i, " produced no result");
            results.push_back(std::move(*slots[i]));
        }
        return results;
    }

    /** Per-task perf counters of the last map() call, by index. */
    const std::vector<TaskPerf> &taskPerf() const { return perf; }

    /** Wall-clock seconds of the last map() call, fan-out included. */
    double wallSeconds() const { return wallSeconds_; }

  private:
    unsigned numThreads;
    std::vector<TaskPerf> perf;
    double wallSeconds_ = 0.0;
};

} // namespace damq

#endif // DAMQ_RUNNER_SWEEP_RUNNER_HH

/**
 * @file
 * Parallel execution of independent simulation replications.
 *
 * A Section 4.2 bench is a *sweep*: the cross product of offered
 * loads, buffer organizations, and (sometimes) seeds, where every
 * point is one self-contained NetworkSimulator/MeshSimulator run.
 * The points share no state, so they can execute on any number of
 * worker threads — as long as the *results* come back in the
 * sweep's enumeration order and every task derives its randomness
 * from its index (see deriveTaskSeed), the output is bit-identical
 * to a sequential run regardless of thread count or scheduling.
 *
 * SweepRunner implements exactly that contract: map(count, fn)
 * claims indices from an atomic counter, runs fn(i) on a fixed-size
 * pool of std::threads, stores each result at slot i, and rethrows
 * the first task exception after the pool drains.  Per-task
 * wall-clock timings (and simulated-cycles-per-second rates, when
 * the caller reports cycle counts) are collected on the side so the
 * perf sidecar files never influence the deterministic outputs.
 */

#ifndef DAMQ_RUNNER_SWEEP_RUNNER_HH
#define DAMQ_RUNNER_SWEEP_RUNNER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace damq {

/** Wall-clock and throughput counters for one sweep task. */
struct TaskPerf
{
    /** Wall-clock seconds spent inside the task body. */
    double wallSeconds = 0.0;

    /** Simulated network cycles the task reported (0 = unknown). */
    std::uint64_t simCycles = 0;

    /** simCycles / wallSeconds (0 when either is unknown). */
    double cyclesPerSecond = 0.0;
};

/** How one guarded sweep task ended. */
enum class TaskStatus
{
    Ok,      ///< produced a result
    Failed,  ///< threw on every attempt
    TimedOut ///< exceeded the per-task wall-clock budget
};

/** Status + diagnostics of one mapGuarded() task. */
struct TaskOutcome
{
    TaskStatus status = TaskStatus::Ok;

    /** Attempts consumed (1 on a clean first run). */
    std::uint32_t attempts = 0;

    /** what() of the last failure (empty when Ok / TimedOut). */
    std::string error;

    bool ok() const { return status == TaskStatus::Ok; }
};

/** Degradation knobs of mapGuarded(). */
struct GuardPolicy
{
    /** Attempts per task before it is reported Failed (>= 1).
     *  Only thrown exceptions are retried — a timeout is not (a
     *  hung task would just hang again, twice as long). */
    std::uint32_t maxAttempts = 1;

    /**
     * Per-task wall-clock budget in seconds (0 = unlimited).  A
     * task past its budget is abandoned: its slot stays empty, its
     * outcome says TimedOut, and the sweep moves on.  The runaway
     * attempt keeps executing on a detached thread until it
     * finishes on its own — its result is discarded — so the task
     * callable must stay valid for the process lifetime (benches
     * pass stateless lambdas, which trivially are).
     */
    double taskTimeoutSeconds = 0.0;
};

/** Executes the independent tasks of one sweep on a thread pool. */
class SweepRunner
{
  public:
    /** @param num_threads worker count; 1 runs tasks inline. */
    explicit SweepRunner(unsigned num_threads = 1)
        : numThreads(num_threads == 0 ? 1 : num_threads)
    {
    }

    /** Worker threads this runner fans tasks across. */
    unsigned threads() const { return numThreads; }

    /**
     * Run @p fn(index) for every index in [0, @p count) and return
     * the results ordered by index.  @p fn must be callable
     * concurrently from multiple threads and must not share mutable
     * state across indices.  The optional @p cycles_of extracts a
     * simulated-cycle count from a result for the perf counters.
     * The first exception any task throws is rethrown here once all
     * workers have stopped.
     */
    template <typename Fn,
              typename R = decltype(std::declval<Fn &>()(std::size_t{0}))>
    std::vector<R> map(std::size_t count, Fn &&fn,
                       std::uint64_t (*cycles_of)(const R &) = nullptr)
    {
        const auto sweep_start = std::chrono::steady_clock::now();
        std::vector<std::optional<R>> slots(count);
        perf.assign(count, TaskPerf{});

        std::atomic<std::size_t> next{0};
        std::exception_ptr first_error;
        std::mutex error_mutex;

        const auto worker = [&]() {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    return;
                try {
                    const auto t0 = std::chrono::steady_clock::now();
                    slots[i].emplace(fn(i));
                    const auto t1 = std::chrono::steady_clock::now();
                    TaskPerf &p = perf[i];
                    p.wallSeconds =
                        std::chrono::duration<double>(t1 - t0).count();
                    if (cycles_of != nullptr) {
                        p.simCycles = cycles_of(*slots[i]);
                        if (p.wallSeconds > 0.0)
                            p.cyclesPerSecond =
                                static_cast<double>(p.simCycles) /
                                p.wallSeconds;
                    }
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                    // Let the remaining workers drain the queue; the
                    // tasks are independent, so one failure does not
                    // poison the others.
                }
            }
        };

        if (numThreads == 1 || count <= 1) {
            worker();
        } else {
            const unsigned spawn =
                numThreads > count ? static_cast<unsigned>(count)
                                   : numThreads;
            std::vector<std::thread> pool;
            pool.reserve(spawn);
            for (unsigned t = 0; t < spawn; ++t)
                pool.emplace_back(worker);
            for (std::thread &t : pool)
                t.join();
        }

        const auto sweep_end = std::chrono::steady_clock::now();
        wallSeconds_ =
            std::chrono::duration<double>(sweep_end - sweep_start)
                .count();

        if (first_error)
            std::rethrow_exception(first_error);

        std::vector<R> results;
        results.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            damq_assert(slots[i].has_value(),
                        "sweep task ", i, " produced no result");
            results.push_back(std::move(*slots[i]));
        }
        return results;
    }

    /**
     * Degradation-tolerant variant of map(): every task gets up to
     * @p policy.maxAttempts tries and (optionally) a wall-clock
     * budget, and the sweep always returns — failed or timed-out
     * tasks simply leave their slot empty instead of poisoning the
     * whole run.  Per-task dispositions are available from
     * taskOutcomes() afterwards, so benches can flush the partial
     * results and report the casualties.
     */
    template <typename Fn,
              typename R = decltype(std::declval<Fn &>()(std::size_t{0}))>
    std::vector<std::optional<R>>
    mapGuarded(std::size_t count, Fn &&fn, const GuardPolicy &policy,
               std::uint64_t (*cycles_of)(const R &) = nullptr)
    {
        damq_assert(policy.maxAttempts >= 1,
                    "mapGuarded needs at least one attempt");
        const auto sweep_start = std::chrono::steady_clock::now();
        std::vector<std::optional<R>> slots(count);
        perf.assign(count, TaskPerf{});
        outcomes_.assign(count, TaskOutcome{});

        std::atomic<std::size_t> next{0};
        const auto worker = [&]() {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    return;
                runGuarded(i, fn, policy, slots[i], outcomes_[i]);
                if (slots[i].has_value() && cycles_of != nullptr) {
                    TaskPerf &p = perf[i];
                    p.simCycles = cycles_of(*slots[i]);
                    if (p.wallSeconds > 0.0)
                        p.cyclesPerSecond =
                            static_cast<double>(p.simCycles) /
                            p.wallSeconds;
                }
            }
        };

        if (numThreads == 1 || count <= 1) {
            worker();
        } else {
            const unsigned spawn =
                numThreads > count ? static_cast<unsigned>(count)
                                   : numThreads;
            std::vector<std::thread> pool;
            pool.reserve(spawn);
            for (unsigned t = 0; t < spawn; ++t)
                pool.emplace_back(worker);
            for (std::thread &t : pool)
                t.join();
        }

        const auto sweep_end = std::chrono::steady_clock::now();
        wallSeconds_ =
            std::chrono::duration<double>(sweep_end - sweep_start)
                .count();
        return slots;
    }

    /** Per-task perf counters of the last map() call, by index. */
    const std::vector<TaskPerf> &taskPerf() const { return perf; }

    /** Per-task dispositions of the last mapGuarded() call. */
    const std::vector<TaskOutcome> &taskOutcomes() const
    {
        return outcomes_;
    }

    /** Wall-clock seconds of the last map() call, fan-out included. */
    double wallSeconds() const { return wallSeconds_; }

  private:
    /** One guarded task: attempts, timeout, outcome bookkeeping. */
    template <typename Fn, typename R>
    void runGuarded(std::size_t i, Fn &fn, const GuardPolicy &policy,
                    std::optional<R> &slot, TaskOutcome &outcome)
    {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint32_t attempt = 1;
             attempt <= policy.maxAttempts; ++attempt) {
            outcome.attempts = attempt;
            if (policy.taskTimeoutSeconds <= 0.0) {
                try {
                    slot.emplace(fn(i));
                    outcome.status = TaskStatus::Ok;
                    outcome.error.clear();
                    break;
                } catch (const std::exception &e) {
                    outcome.status = TaskStatus::Failed;
                    outcome.error = e.what();
                } catch (...) {
                    outcome.status = TaskStatus::Failed;
                    outcome.error = "unknown exception";
                }
                continue;
            }

            // Budgeted attempt: run the body on its own thread and
            // wait at most the budget.  The attempt thread owns a
            // shared state block so a runaway can finish (and be
            // discarded) safely after we have given up on it.
            struct Attempt
            {
                std::mutex m;
                std::condition_variable cv;
                bool done = false;
                std::optional<R> result;
                std::string error;
                bool failed = false;
            };
            auto shared = std::make_shared<Attempt>();
            std::thread([shared, &fn, i]() {
                std::optional<R> local;
                std::string error;
                bool failed = false;
                try {
                    local.emplace(fn(i));
                } catch (const std::exception &e) {
                    failed = true;
                    error = e.what();
                } catch (...) {
                    failed = true;
                    error = "unknown exception";
                }
                {
                    const std::lock_guard<std::mutex> lock(shared->m);
                    shared->result = std::move(local);
                    shared->error = std::move(error);
                    shared->failed = failed;
                    shared->done = true;
                }
                shared->cv.notify_all();
            }).detach();

            std::unique_lock<std::mutex> lock(shared->m);
            const bool finished = shared->cv.wait_for(
                lock,
                std::chrono::duration<double>(
                    policy.taskTimeoutSeconds),
                [&] { return shared->done; });
            if (!finished) {
                // Abandon the attempt; no retry (see GuardPolicy).
                outcome.status = TaskStatus::TimedOut;
                outcome.error.clear();
                break;
            }
            if (!shared->failed) {
                slot = std::move(shared->result);
                outcome.status = TaskStatus::Ok;
                outcome.error.clear();
                break;
            }
            outcome.status = TaskStatus::Failed;
            outcome.error = shared->error;
        }
        const auto t1 = std::chrono::steady_clock::now();
        perf[i].wallSeconds =
            std::chrono::duration<double>(t1 - t0).count();
    }

    unsigned numThreads;
    std::vector<TaskPerf> perf;
    std::vector<TaskOutcome> outcomes_;
    double wallSeconds_ = 0.0;
};

} // namespace damq

#endif // DAMQ_RUNNER_SWEEP_RUNNER_HH

/**
 * @file
 * The shared command-line surface of the simulator front-ends.
 *
 * Every bench and example that drives a SimCommonConfig-bearing
 * simulator accepts the same harness options — the sweep thread
 * count, the PRNG seed, the warmup/measure schedule, and the
 * telemetry plan (`--metrics-every`, `--trace`).  Declaring them
 * through addCommonSimFlags() and applying them through
 * applyCommonSimFlags() keeps the flags' names, defaults, and help
 * text identical across all ~15 front-ends.
 *
 * applyCommonSimFlags() only overrides the fields whose options the
 * user actually typed (ArgParser::wasSet), so each bench's
 * experiment-specific defaults — say Table 6's longer warmup —
 * survive a bare invocation and the printed tables stay
 * byte-identical to the historical outputs.
 */

#ifndef DAMQ_RUNNER_SIM_FLAGS_HH
#define DAMQ_RUNNER_SIM_FLAGS_HH

#include <cstdint>
#include <string>

#include "common/arg_parser.hh"
#include "network/core/flow_control.hh"
#include "network/cutthrough_sim.hh"
#include "network/sim_common.hh"
#include "queueing/buffer_model.hh"
#include "switchsim/arbiter.hh"
#include "switchsim/switch_unit.hh"

namespace damq {

/**
 * Declare the shared harness options on @p args:
 *
 *   --threads N        sweep worker threads (default 1) — across
 *                      sweep points
 *   --shards N         threads within one synchronized simulation
 *                      (0 = bench default; composes with --threads)
 *   --seed N           master PRNG seed
 *   --warmup N         warmup cycles (clocks, for the cut-through sim)
 *   --measure N        measured cycles
 *   --vcs N            virtual channels per link (needs input buffers)
 *   --vc-policy P      VC assignment when vcs > 1 (dateline | none)
 *   --metrics-every N  sample the metric time series every N cycles
 *   --trace            record per-packet Chrome-trace events
 *   --trace-events N   trace event cap (default one million)
 *   --telemetry-out P  output file prefix for telemetry files
 *
 * the workload surface (--workload geometric|onoff|mmpp|batch|
 * reqreply|trace, --batch, --reply-window, --trace-file,
 * --workload-burstiness, --workload-burst-cycles — see
 * network/core/workload.hh),
 *
 * plus the fault plan (--fault-seed, --packet-drop-rate,
 * --bit-flip-rate, --link-down-rate, --link-down-cycles,
 * --link-down-fraction, --router-down-rate, --router-down-cycles)
 * and the recovery protocol (--recovery, --max-retries,
 * --retry-backoff, --retry-backoff-cap, --revive-probe).
 */
void addCommonSimFlags(ArgParser &args);

/**
 * Thread count for a SweepRunner, from the --threads option
 * declared by addCommonSimFlags(); fatal outside [1, 4096].
 */
unsigned simThreads(const ArgParser &args);

/**
 * Copy the options the user explicitly set from @p args into
 * @p common; options left at their defaults change nothing.  When
 * telemetry is requested without --telemetry-out, files are
 * prefixed with @p default_prefix (typically the bench name).
 */
void applyCommonSimFlags(const ArgParser &args,
                         SimCommonConfig &common,
                         const std::string &default_prefix);

/**
 * Declare the unified switching surface on @p args:
 *
 *   --switching M        transfer granularity (packet-sync |
 *                        store-and-forward | cut-through |
 *                        wormhole | vct)
 *   --flow-control P     back-pressure protocol (blocking |
 *                        discarding | credit | on-off)
 *   --flits-per-packet N packet length in flits for the flit-level
 *                        modes (0 = keep the bench default)
 *
 * The once-deprecated `--mode` / `--protocol` aliases were removed
 * after two releases of warnings; the parser now rejects them like
 * any unknown option.
 *
 * @p switching_default and @p flow_control_default are the bench's
 * own defaults, echoed in `--help`.
 */
void addSwitchingFlags(ArgParser &args,
                       const std::string &switching_default,
                       const std::string &flow_control_default);

/**
 * Copy the switching surface the user explicitly set from @p args
 * into the given fields; options left unset change nothing.
 */
void applySwitchingFlags(const ArgParser &args, Switching &switching,
                         FlowControl &protocol,
                         std::uint32_t &flits_per_packet);

/**
 * Declare the buffer-sharing (admission-policy) surface on @p args:
 *
 *   --buffer-policy P    sharing policy applied to every input
 *                        buffer (static | dt | delay | qos)
 *   --dt-alpha A         threshold factor for dt / delay
 *   --delay-age-scale N  cycles per unit of threshold growth (delay)
 *   --voq                shorthand for --buffer-type voq
 *   --voq-private N      private slots per queue for VOQ
 *   --classes N          traffic classes stamped onto packets
 *                        (source % N; also the qos class count)
 */
void addBufferPolicyFlags(ArgParser &args);

/**
 * Copy the sharing surface the user explicitly set from @p args
 * into the given fields; options left unset change nothing, so the
 * defaults stay byte-identical to the historical static rules.
 */
void applyBufferPolicyFlags(const ArgParser &args,
                            BufferType &buffer_type,
                            SharingPolicyConfig &sharing,
                            std::uint32_t &traffic_classes);

/**
 * @p label reduced to characters safe in a filename: alphanumerics
 * and `.-_@` pass through, everything else becomes `_`.  Used to
 * derive per-task telemetry prefixes from sweep-task labels.
 */
std::string sanitizeFileToken(const std::string &label);

/**
 * Canonical choice lists for the enum-valued options, so every
 * front-end's `--help` names the same accepted spellings as the
 * try*FromString parsers.
 */
extern const char kBufferTypeChoices[];    ///< fifo|samq|safc|damq|damqr|voq
extern const char kSharingPolicyChoices[]; ///< static|dt|delay|qos
extern const char kPlacementChoices[];     ///< input|central|output
extern const char kFlowControlChoices[];   ///< blocking|discarding|credit|on-off
extern const char kArbitrationChoices[];   ///< smart|dumb
extern const char kSwitchingChoices[];     ///< packet-sync|...|wormhole|vct
extern const char kSwitchingModeChoices[]; ///< cut-through|store-and-forward
extern const char kVcPolicyChoices[];      ///< dateline|none
extern const char kRecoveryPolicyChoices[]; ///< none|retransmit|retransmit+reroute
extern const char kWorkloadChoices[];      ///< geometric|onoff|mmpp|batch|reqreply|trace

/**
 * Parse option @p name as a buffer type via
 * tryBufferTypeFromString(); on bad input, print the accepted
 * choices and the usage text to stderr and exit(1).  The other
 * *Option() helpers below do the same for their enums.
 */
BufferType bufferTypeOption(const ArgParser &args,
                            const std::string &name);

/** Parse option @p name as a buffer placement (or exit(1)). */
BufferPlacement placementOption(const ArgParser &args,
                                const std::string &name);

/** Parse option @p name as a flow-control protocol (or exit(1)). */
FlowControl flowControlOption(const ArgParser &args,
                              const std::string &name);

/** Parse option @p name as an arbitration policy (or exit(1)). */
ArbitrationPolicy arbitrationOption(const ArgParser &args,
                                    const std::string &name);

/**
 * Parse option @p name as a transfer granularity across all five
 * Switching values — the packet modes plus wormhole/vct (or
 * exit(1)).
 */
Switching switchingOption(const ArgParser &args,
                          const std::string &name);

/**
 * Parse option @p name as a packet-granular switching mode
 * (cut-through | store-and-forward only; or exit(1)).  Prefer
 * switchingOption() for new front-ends — this narrow helper serves
 * the legacy cut-through benches.
 */
SwitchingMode switchingModeOption(const ArgParser &args,
                                  const std::string &name);

/** Parse option @p name as a VC policy (or exit(1)). */
VcPolicy vcPolicyOption(const ArgParser &args,
                        const std::string &name);

/** Parse option @p name as a recovery policy (or exit(1)). */
RecoveryPolicy recoveryPolicyOption(const ArgParser &args,
                                    const std::string &name);

/** Parse option @p name as a workload kind (or exit(1)). */
core::WorkloadKind workloadOption(const ArgParser &args,
                                  const std::string &name);

} // namespace damq

#endif // DAMQ_RUNNER_SIM_FLAGS_HH

#include "runner/network_sweep.hh"

namespace damq {

namespace {

std::uint64_t
networkCycles(const NetworkResult &result)
{
    return result.measuredCycles;
}

std::uint64_t
meshCycles(const MeshResult &result)
{
    return result.measuredCycles;
}

} // namespace

std::vector<NetworkResult>
runNetworkSweep(SweepRunner &runner,
                const std::vector<NetworkTask> &tasks)
{
    return runner.map(
        tasks.size(),
        [&tasks](std::size_t i) {
            NetworkSimulator sim(tasks[i].config);
            return sim.run();
        },
        &networkCycles);
}

std::vector<MeshResult>
runMeshSweep(SweepRunner &runner, const std::vector<MeshTask> &tasks)
{
    return runner.map(
        tasks.size(),
        [&tasks](std::size_t i) {
            MeshSimulator sim(tasks[i].config);
            return sim.run();
        },
        &meshCycles);
}

NetworkConfig
atLoad(const NetworkConfig &base, double load)
{
    NetworkConfig cfg = base;
    cfg.offeredLoad = load;
    return cfg;
}

MeshConfig
atLoad(const MeshConfig &base, double load)
{
    MeshConfig cfg = base;
    cfg.offeredLoad = load;
    return cfg;
}

std::vector<std::string>
taskLabels(const std::vector<NetworkTask> &tasks)
{
    std::vector<std::string> labels;
    labels.reserve(tasks.size());
    for (const NetworkTask &task : tasks)
        labels.push_back(task.label);
    return labels;
}

std::vector<std::string>
taskLabels(const std::vector<MeshTask> &tasks)
{
    std::vector<std::string> labels;
    labels.reserve(tasks.size());
    for (const MeshTask &task : tasks)
        labels.push_back(task.label);
    return labels;
}

} // namespace damq

#include "runner/network_sweep.hh"

namespace damq {

NetworkConfig
atLoad(const NetworkConfig &base, double load)
{
    NetworkConfig cfg = base;
    cfg.offeredLoad = load;
    return cfg;
}

MeshConfig
atLoad(const MeshConfig &base, double load)
{
    MeshConfig cfg = base;
    cfg.offeredLoad = load;
    return cfg;
}

TorusConfig
atLoad(const TorusConfig &base, double load)
{
    TorusConfig cfg = base;
    cfg.offeredLoad = load;
    return cfg;
}

CutThroughConfig
atLoad(const CutThroughConfig &base, double load)
{
    CutThroughConfig cfg = base;
    cfg.offeredLoad = load;
    return cfg;
}

VarLenConfig
atLoad(const VarLenConfig &base, double load)
{
    VarLenConfig cfg = base;
    cfg.offeredSlotLoad = load;
    return cfg;
}

} // namespace damq

#include "runner/table_benches.hh"

#include "common/logging.hh"
#include "common/string_util.hh"
#include "queueing/buffer_model.hh"
#include "runner/bench_output.hh"
#include "runner/network_sweep.hh"
#include "stats/text_table.hh"
#include "switchsim/arbiter.hh"

namespace damq {

NetworkConfig
paperOmegaConfig()
{
    NetworkConfig cfg;
    cfg.numPorts = 64;
    cfg.radix = 4;
    cfg.slotsPerBuffer = 4;
    cfg.protocol = FlowControl::Blocking;
    cfg.arbitration = ArbitrationPolicy::Smart;
    cfg.traffic = "uniform";
    cfg.common.seed = 88;
    cfg.common.warmupCycles = 2000;
    cfg.common.measureCycles = 12000;
    return cfg;
}

double
Table4Data::saturationOf(BufferType type) const
{
    for (const Table4Row &row : rows) {
        if (row.type == type)
            return row.saturationThroughput;
    }
    return 0.0;
}

Table4Data
runTable4(SweepRunner &runner, const Table4Options &options)
{
    Table4Data data;
    data.options = options;

    // Enumerate type-major, saturation last — the exact order the
    // sequential bench ran its simulations in.  Each task carries a
    // complete config, so execution order never affects results.
    std::vector<NetworkTask> tasks;
    for (const BufferType type : options.types) {
        NetworkConfig cfg = options.base;
        cfg.bufferType = type;
        for (const double load : options.loads) {
            tasks.push_back({detail::concat(bufferTypeName(type), "@",
                                            formatFixed(load, 2)),
                             atLoad(cfg, load)});
        }
        tasks.push_back(
            {detail::concat(bufferTypeName(type), "@saturation"),
             atLoad(cfg, 1.0)});
    }

    data.results = runNetworkSweep(runner, tasks);
    const std::vector<NetworkResult> &results = data.results;

    std::size_t next = 0;
    for (const BufferType type : options.types) {
        Table4Row row;
        row.type = type;
        for (std::size_t l = 0; l < options.loads.size(); ++l)
            row.latencyClocks.push_back(
                results[next++].latencyClocks.mean());
        const NetworkResult &sat = results[next++];
        row.saturatedLatencyClocks = sat.latencyClocks.mean();
        row.saturationThroughput = sat.deliveredThroughput;
        data.rows.push_back(std::move(row));
    }

    data.taskLabels.reserve(tasks.size());
    for (const NetworkTask &task : tasks)
        data.taskLabels.push_back(task.label);
    return data;
}

std::string
renderTable4Text(const Table4Data &data)
{
    TextTable table;
    std::vector<std::string> header = {"Buffer"};
    for (const double load : data.options.loads)
        header.push_back(formatFixed(load, 2));
    header.push_back("saturated");
    header.push_back("sat. throughput");
    table.setHeader(std::move(header));

    for (const Table4Row &row : data.rows) {
        table.startRow();
        table.addCell(bufferTypeName(row.type));
        for (const double latency : row.latencyClocks)
            table.addCell(formatFixed(latency, 2));
        table.addCell(formatFixed(row.saturatedLatencyClocks, 2));
        table.addCell(formatFixed(row.saturationThroughput, 2));
    }
    return table.render();
}

void
writeNetworkConfigJson(JsonWriter &json, const NetworkConfig &config)
{
    json.key("config");
    json.beginObject();
    json.field("numPorts",
               static_cast<std::uint64_t>(config.numPorts));
    json.field("radix", static_cast<std::uint64_t>(config.radix));
    json.field("slotsPerBuffer",
               static_cast<std::uint64_t>(config.slotsPerBuffer));
    json.field("protocol", flowControlName(config.protocol));
    json.field("arbitration",
               arbitrationPolicyName(config.arbitration));
    json.field("traffic", config.traffic);
    json.field("seed", config.common.seed);
    json.field("warmupCycles",
               static_cast<std::uint64_t>(config.common.warmupCycles));
    json.field("measureCycles",
               static_cast<std::uint64_t>(config.common.measureCycles));
    json.endObject();
    writeWorkloadJson(json, config.common.workload,
                      config.trafficClasses, config.burstiness,
                      config.meanBurstCycles);
}

void
writeTable4Json(JsonWriter &json, const Table4Data &data)
{
    writeNetworkConfigJson(json, data.options.base);

    json.key("loads");
    json.beginArray();
    for (const double load : data.options.loads)
        json.value(load);
    json.endArray();

    json.key("rows");
    json.beginArray();
    std::size_t at = 0;
    for (const Table4Row &row : data.rows) {
        json.beginObject();
        json.field("buffer", bufferTypeName(row.type));
        json.key("latencyClocks");
        json.beginArray();
        for (const double latency : row.latencyClocks)
            json.value(latency);
        json.endArray();
        json.field("saturatedLatencyClocks",
                   row.saturatedLatencyClocks);
        json.field("saturationThroughput", row.saturationThroughput);
        // End-to-end tail per measured point, in row order:
        // one entry per load, then the saturation point.
        json.key("e2eLatency");
        json.beginArray();
        for (std::size_t l = 0; l <= data.options.loads.size();
             ++l) {
            const NetworkResult &r = data.results[at++];
            json.beginObject();
            json.field("offeredLoad",
                       l < data.options.loads.size()
                           ? data.options.loads[l]
                           : 1.0);
            writeE2eLatencyJson(json, r);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
}

} // namespace damq

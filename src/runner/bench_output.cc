#include "runner/bench_output.hh"

#include <cstdlib>
#include <iostream>
#include <string_view>

#include "common/logging.hh"

namespace damq {

unsigned
parseThreads(int argc, char **argv)
{
    const auto parse = [](const std::string &text) {
        char *end = nullptr;
        const long value = std::strtol(text.c_str(), &end, 10);
        if (end == text.c_str() || *end != '\0' || value < 1 ||
            value > 4096) {
            damq_fatal("--threads wants an integer in [1, 4096], "
                       "got '", text, "'");
        }
        return static_cast<unsigned>(value);
    };

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--threads=", 0) == 0)
            return parse(std::string(arg.substr(10)));
        if (arg == "--threads") {
            if (i + 1 >= argc)
                damq_fatal("--threads needs a value");
            return parse(argv[i + 1]);
        }
    }
    return 1;
}

BenchJsonFile::BenchJsonFile(const std::string &bench)
    : path("BENCH_" + bench + ".json"), file(path), writer(file)
{
    if (!file)
        damq_fatal("cannot open ", path, " for writing");
    writer.beginObject();
    writer.field("schema", "damq-bench-v1");
    writer.field("bench", bench);
}

BenchJsonFile::~BenchJsonFile()
{
    writer.endObject();
    file.close();
    // Stderr, so saved stdout golden files stay byte-identical.
    std::cerr << "wrote " << path << "\n";
}

void
writePerfSidecar(const std::string &bench, const SweepRunner &runner,
                 const std::vector<std::string> &labels)
{
    const std::vector<TaskPerf> &perf = runner.taskPerf();
    damq_assert(labels.size() == perf.size(),
                "perf sidecar: ", labels.size(), " labels for ",
                perf.size(), " tasks");

    const std::string path = "PERF_" + bench + ".json";
    std::ofstream file(path);
    if (!file)
        damq_fatal("cannot open ", path, " for writing");

    JsonWriter json(file);
    json.beginObject();
    json.field("schema", "damq-perf-v1");
    json.field("bench", bench);
    json.field("threads", static_cast<std::uint64_t>(runner.threads()));
    json.field("wallSeconds", runner.wallSeconds());
    json.key("tasks");
    json.beginArray();
    for (std::size_t i = 0; i < perf.size(); ++i) {
        json.beginObject();
        json.field("index", static_cast<std::uint64_t>(i));
        json.field("label", labels[i]);
        json.field("wallSeconds", perf[i].wallSeconds);
        json.field("simCycles", perf[i].simCycles);
        json.field("simCyclesPerSecond", perf[i].cyclesPerSecond);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    std::cerr << "wrote " << path << "\n";
}

} // namespace damq

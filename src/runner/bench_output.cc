#include "runner/bench_output.hh"

#include <cstdlib>
#include <iostream>
#include <string_view>

#include "common/logging.hh"

namespace damq {

BenchJsonFile::BenchJsonFile(const std::string &bench)
    : path("BENCH_" + bench + ".json"), file(path), writer(file)
{
    if (!file)
        damq_fatal("cannot open ", path, " for writing");
    writer.beginObject();
    writer.field("schema", "damq-bench-v1");
    writer.field("bench", bench);
}

BenchJsonFile::~BenchJsonFile()
{
    writer.endObject();
    file.close();
    // Stderr, so saved stdout golden files stay byte-identical.
    std::cerr << "wrote " << path << "\n";
}

void
writePerfSidecar(const std::string &bench, const SweepRunner &runner,
                 const std::vector<std::string> &labels)
{
    const std::vector<TaskPerf> &perf = runner.taskPerf();
    damq_assert(labels.size() == perf.size(),
                "perf sidecar: ", labels.size(), " labels for ",
                perf.size(), " tasks");

    const std::string path = "PERF_" + bench + ".json";
    std::ofstream file(path);
    if (!file)
        damq_fatal("cannot open ", path, " for writing");

    JsonWriter json(file);
    json.beginObject();
    json.field("schema", "damq-perf-v1");
    json.field("bench", bench);
    json.field("threads", static_cast<std::uint64_t>(runner.threads()));
    json.field("wallSeconds", runner.wallSeconds());
    json.key("tasks");
    json.beginArray();
    for (std::size_t i = 0; i < perf.size(); ++i) {
        json.beginObject();
        json.field("index", static_cast<std::uint64_t>(i));
        json.field("label", labels[i]);
        json.field("wallSeconds", perf[i].wallSeconds);
        json.field("simCycles", perf[i].simCycles);
        json.field("simCyclesPerSecond", perf[i].cyclesPerSecond);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    std::cerr << "wrote " << path << "\n";
}

} // namespace damq

#include "runner/bench_output.hh"

#include <cstdlib>
#include <iostream>
#include <string_view>

#include "common/logging.hh"

namespace damq {

BenchJsonFile::BenchJsonFile(const std::string &bench)
    : path("BENCH_" + bench + ".json"), file(path), writer(file)
{
    if (!file)
        damq_fatal("cannot open ", path, " for writing");
    writer.beginObject();
    writer.field("schema", "damq-bench-v1");
    writer.field("bench", bench);
}

BenchJsonFile::~BenchJsonFile()
{
    writer.endObject();
    file.close();
    // Stderr, so saved stdout golden files stay byte-identical.
    std::cerr << "wrote " << path << "\n";
}

void
writeWorkloadJson(JsonWriter &json,
                  const core::WorkloadConfig &workload,
                  std::uint32_t traffic_classes,
                  double legacy_burstiness,
                  Cycle legacy_mean_burst_cycles)
{
    using core::WorkloadKind;

    // Mirror the engine's deprecated-alias resolution so the file
    // describes the process that actually ran.
    core::WorkloadConfig effective = workload;
    if (effective.kind == WorkloadKind::Geometric &&
        legacy_burstiness > 1.0) {
        effective.kind = WorkloadKind::OnOff;
        effective.burstiness = legacy_burstiness;
        effective.meanBurstCycles = legacy_mean_burst_cycles;
    }

    json.key("workload");
    json.beginObject();
    json.field("kind", core::workloadKindName(effective.kind));
    json.field("trafficClasses",
               static_cast<std::uint64_t>(traffic_classes));
    switch (effective.kind) {
    case WorkloadKind::OnOff:
    case WorkloadKind::Mmpp:
        json.field("burstiness", effective.burstiness);
        json.field("meanBurstCycles",
                   static_cast<std::uint64_t>(
                       effective.meanBurstCycles));
        break;
    case WorkloadKind::Batch:
        json.field("batchPackets",
                   static_cast<std::uint64_t>(
                       effective.batchPackets));
        break;
    case WorkloadKind::ReqReply:
        json.field("replyWindow",
                   static_cast<std::uint64_t>(
                       effective.replyWindow));
        break;
    case WorkloadKind::Trace:
        json.field("traceFile", effective.traceFile);
        break;
    case WorkloadKind::Geometric:
        break;
    }
    json.endObject();
}

void
writePerfSidecar(const std::string &bench, const SweepRunner &runner,
                 const std::vector<std::string> &labels)
{
    const std::vector<TaskPerf> &perf = runner.taskPerf();
    damq_assert(labels.size() == perf.size(),
                "perf sidecar: ", labels.size(), " labels for ",
                perf.size(), " tasks");

    const std::string path = "PERF_" + bench + ".json";
    std::ofstream file(path);
    if (!file)
        damq_fatal("cannot open ", path, " for writing");

    JsonWriter json(file);
    json.beginObject();
    json.field("schema", "damq-perf-v1");
    json.field("bench", bench);
    json.field("threads", static_cast<std::uint64_t>(runner.threads()));
    json.field("wallSeconds", runner.wallSeconds());
    json.key("tasks");
    json.beginArray();
    for (std::size_t i = 0; i < perf.size(); ++i) {
        json.beginObject();
        json.field("index", static_cast<std::uint64_t>(i));
        json.field("label", labels[i]);
        json.field("wallSeconds", perf[i].wallSeconds);
        json.field("simCycles", perf[i].simCycles);
        json.field("simCyclesPerSecond", perf[i].cyclesPerSecond);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    std::cerr << "wrote " << path << "\n";
}

} // namespace damq

#include "switchsim/arbiter.hh"

#include <algorithm>

#include "common/enum_parse.hh"
#include "common/logging.hh"

namespace damq {

namespace {

constexpr EnumName<ArbitrationPolicy> kArbitrationPolicyNames[] = {
    {ArbitrationPolicy::Dumb, "dumb"},
    {ArbitrationPolicy::Smart, "smart"},
};

} // namespace

const char *
arbitrationPolicyName(ArbitrationPolicy policy)
{
    switch (policy) {
      case ArbitrationPolicy::Dumb: return "dumb";
      case ArbitrationPolicy::Smart: return "smart";
    }
    damq_panic("unknown ArbitrationPolicy ", static_cast<int>(policy));
}

std::optional<ArbitrationPolicy>
tryArbitrationPolicyFromString(const std::string &name)
{
    return parseEnumName(std::string_view(name),
                         kArbitrationPolicyNames);
}

Arbiter::Arbiter(PortId num_inputs, PortId num_outputs, VcId num_vcs)
    : inputs(num_inputs), outputs(num_outputs), vcs(num_vcs),
      outputTaken(num_outputs, false)
{
    damq_assert(num_inputs > 0 && num_outputs > 0,
                "arbiter needs ports");
    damq_assert(num_vcs > 0, "arbiter needs at least one VC");
}

void
Arbiter::serveRoundRobin(
    const std::vector<BufferModel *> &buffers,
    const CanSendFn &can_send, PortId start,
    const std::function<QueueKey(PortId, const std::vector<QueueKey> &,
                                 const BufferModel &)> &select,
    GrantList &grants)
{
    damq_assert(buffers.size() == inputs,
                "arbiter geometry mismatch: ", buffers.size(),
                " buffers for ", inputs, " inputs");

    std::fill(outputTaken.begin(), outputTaken.end(), false);
    grants.clear();
    std::vector<QueueKey> &eligible = eligibleScratch;

    for (PortId step = 0; step < inputs; ++step) {
        const PortId input = (start + step) % inputs;
        BufferModel &buffer = *buffers[input];
        std::uint32_t reads_left = buffer.maxReadsPerCycle();

        // A fully connected (SAFC) buffer keeps transmitting from
        // this input while it has read bandwidth; the others stop
        // after one grant.
        while (reads_left > 0) {
            eligible.clear();
            for (PortId out = 0; out < outputs; ++out) {
                if (outputTaken[out])
                    continue;
                for (VcId vc = 0; vc < vcs; ++vc) {
                    const QueueKey key{out, vc};
                    const Packet *head = buffer.peek(key);
                    if (!head)
                        continue;
                    if (!can_send(input, key, *head))
                        continue;
                    eligible.push_back(key);
                }
            }
            if (eligible.empty())
                break;

            const QueueKey chosen = select(input, eligible, buffer);
            if (!chosen.valid())
                break;
            damq_assert(std::find(eligible.begin(), eligible.end(),
                                  chosen) != eligible.end(),
                        "selector picked an ineligible output");

            outputTaken[chosen.out] = true;
            grants.push_back(Grant{input, chosen.out, chosen.vc});
            --reads_left;
        }
    }

    ++arbStats.arbitrations;
    arbStats.grantsIssued += grants.size();
}

DumbArbiter::DumbArbiter(PortId num_inputs, PortId num_outputs,
                         VcId num_vcs)
    : Arbiter(num_inputs, num_outputs, num_vcs)
{
}

void
DumbArbiter::arbitrateInto(const std::vector<BufferModel *> &buffers,
                           const CanSendFn &can_send, GrantList &grants)
{
    auto longest_queue = [](PortId,
                            const std::vector<QueueKey> &eligible,
                            const BufferModel &buffer) {
        QueueKey best = eligible.front();
        for (const QueueKey key : eligible) {
            if (buffer.queueLength(key) > buffer.queueLength(best))
                best = key;
        }
        return best;
    };

    serveRoundRobin(buffers, can_send, rrStart, longest_queue, grants);

    // Dumb policy: the priority position advances every cycle,
    // whether or not the buffer holding it transmitted.
    rrStart = (rrStart + 1) % numInputs();
}

SmartArbiter::SmartArbiter(PortId num_inputs, PortId num_outputs,
                           std::uint32_t stale_threshold, VcId num_vcs)
    : Arbiter(num_inputs, num_outputs, num_vcs),
      staleThreshold(stale_threshold),
      staleCounts(static_cast<std::size_t>(num_inputs) * num_outputs *
                      num_vcs,
                  0)
{
}

void
SmartArbiter::arbitrateInto(const std::vector<BufferModel *> &buffers,
                            const CanSendFn &can_send, GrantList &grants)
{
    auto select = [this](PortId input,
                         const std::vector<QueueKey> &eligible,
                         const BufferModel &buffer) {
        // Stale queues get precedence over long ones: pick the
        // stalest queue at or above the threshold, falling back to
        // the longest queue otherwise.
        QueueKey stalest = kInvalidQueue;
        std::uint32_t best_stale = 0;
        for (const QueueKey key : eligible) {
            const std::uint32_t stale = staleCount(input, key);
            if (stale >= staleThreshold && stale >= best_stale) {
                stalest = key;
                best_stale = stale;
            }
        }
        if (stalest.valid()) {
            ++arbStats.staleOverrides;
            return stalest;
        }

        QueueKey best = eligible.front();
        for (const QueueKey key : eligible) {
            if (buffer.queueLength(key) > buffer.queueLength(best))
                best = key;
        }
        return best;
    };

    serveRoundRobin(buffers, can_send, rrStart, select, grants);

    // Update stale counts: a non-empty queue that did not transmit
    // ages by one; a served queue resets.
    std::vector<bool> &served = servedScratch;
    served.assign(staleCounts.size(), false);
    for (const Grant &g : grants)
        served[queueIndex(g.input, g.queue())] = true;
    for (PortId input = 0; input < numInputs(); ++input) {
        for (PortId out = 0; out < numOutputs(); ++out) {
            for (VcId vc = 0; vc < numVcs(); ++vc) {
                const QueueKey key{out, vc};
                const std::size_t idx = queueIndex(input, key);
                if (served[idx]) {
                    staleCounts[idx] = 0;
                } else if (buffers[input]->queueLength(key) > 0) {
                    ++staleCounts[idx];
                } else {
                    staleCounts[idx] = 0;
                }
            }
        }
    }

    // Smart policy: only advance priority past a buffer whose turn
    // was actually useful.
    bool start_transmitted = false;
    for (const Grant &g : grants)
        start_transmitted = start_transmitted || g.input == rrStart;
    if (start_transmitted)
        rrStart = (rrStart + 1) % numInputs();
}

void
SmartArbiter::reset()
{
    rrStart = 0;
    std::fill(staleCounts.begin(), staleCounts.end(), 0);
}

std::unique_ptr<Arbiter>
makeArbiter(ArbitrationPolicy policy, PortId num_inputs,
            PortId num_outputs, std::uint32_t stale_threshold,
            VcId num_vcs)
{
    switch (policy) {
      case ArbitrationPolicy::Dumb:
        return std::make_unique<DumbArbiter>(num_inputs, num_outputs,
                                             num_vcs);
      case ArbitrationPolicy::Smart:
        return std::make_unique<SmartArbiter>(num_inputs, num_outputs,
                                              stale_threshold, num_vcs);
    }
    damq_panic("unknown ArbitrationPolicy ", static_cast<int>(policy));
}

} // namespace damq

#include "switchsim/arbiter.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/string_util.hh"

namespace damq {

const char *
arbitrationPolicyName(ArbitrationPolicy policy)
{
    switch (policy) {
      case ArbitrationPolicy::Dumb: return "dumb";
      case ArbitrationPolicy::Smart: return "smart";
    }
    damq_panic("unknown ArbitrationPolicy ", static_cast<int>(policy));
}

std::optional<ArbitrationPolicy>
tryArbitrationPolicyFromString(const std::string &name)
{
    const std::string lower = toLower(name);
    if (lower == "dumb")
        return ArbitrationPolicy::Dumb;
    if (lower == "smart")
        return ArbitrationPolicy::Smart;
    return std::nullopt;
}

ArbitrationPolicy
arbitrationPolicyFromString(const std::string &name)
{
    if (const auto policy = tryArbitrationPolicyFromString(name))
        return *policy;
    damq_fatal("unknown arbitration policy '", name,
               "' (expected dumb|smart)");
}

Arbiter::Arbiter(PortId num_inputs, PortId num_outputs)
    : inputs(num_inputs), outputs(num_outputs),
      outputTaken(num_outputs, false)
{
    damq_assert(num_inputs > 0 && num_outputs > 0,
                "arbiter needs ports");
}

void
Arbiter::serveRoundRobin(
    const std::vector<BufferModel *> &buffers,
    const CanSendFn &can_send, PortId start,
    const std::function<PortId(PortId, const std::vector<PortId> &,
                               const BufferModel &)> &select,
    GrantList &grants)
{
    damq_assert(buffers.size() == inputs,
                "arbiter geometry mismatch: ", buffers.size(),
                " buffers for ", inputs, " inputs");

    std::fill(outputTaken.begin(), outputTaken.end(), false);
    grants.clear();
    std::vector<PortId> &eligible = eligibleScratch;

    for (PortId step = 0; step < inputs; ++step) {
        const PortId input = (start + step) % inputs;
        BufferModel &buffer = *buffers[input];
        std::uint32_t reads_left = buffer.maxReadsPerCycle();

        // A fully connected (SAFC) buffer keeps transmitting from
        // this input while it has read bandwidth; the others stop
        // after one grant.
        while (reads_left > 0) {
            eligible.clear();
            for (PortId out = 0; out < outputs; ++out) {
                if (outputTaken[out])
                    continue;
                const Packet *head = buffer.peek(out);
                if (!head)
                    continue;
                if (!can_send(input, out, *head))
                    continue;
                eligible.push_back(out);
            }
            if (eligible.empty())
                break;

            const PortId chosen = select(input, eligible, buffer);
            if (chosen == kInvalidPort)
                break;
            damq_assert(std::find(eligible.begin(), eligible.end(),
                                  chosen) != eligible.end(),
                        "selector picked an ineligible output");

            outputTaken[chosen] = true;
            grants.push_back(Grant{input, chosen});
            --reads_left;
        }
    }

    ++arbStats.arbitrations;
    arbStats.grantsIssued += grants.size();
}

DumbArbiter::DumbArbiter(PortId num_inputs, PortId num_outputs)
    : Arbiter(num_inputs, num_outputs)
{
}

void
DumbArbiter::arbitrateInto(const std::vector<BufferModel *> &buffers,
                           const CanSendFn &can_send, GrantList &grants)
{
    auto longest_queue = [](PortId, const std::vector<PortId> &eligible,
                            const BufferModel &buffer) {
        PortId best = eligible.front();
        for (const PortId out : eligible) {
            if (buffer.queueLength(out) > buffer.queueLength(best))
                best = out;
        }
        return best;
    };

    serveRoundRobin(buffers, can_send, rrStart, longest_queue, grants);

    // Dumb policy: the priority position advances every cycle,
    // whether or not the buffer holding it transmitted.
    rrStart = (rrStart + 1) % numInputs();
}

SmartArbiter::SmartArbiter(PortId num_inputs, PortId num_outputs,
                           std::uint32_t stale_threshold)
    : Arbiter(num_inputs, num_outputs),
      staleThreshold(stale_threshold),
      staleCounts(static_cast<std::size_t>(num_inputs) * num_outputs, 0)
{
}

void
SmartArbiter::arbitrateInto(const std::vector<BufferModel *> &buffers,
                            const CanSendFn &can_send, GrantList &grants)
{
    auto select = [this](PortId input,
                         const std::vector<PortId> &eligible,
                         const BufferModel &buffer) {
        // Stale queues get precedence over long ones: pick the
        // stalest queue at or above the threshold, falling back to
        // the longest queue otherwise.
        PortId stalest = kInvalidPort;
        std::uint32_t best_stale = 0;
        for (const PortId out : eligible) {
            const std::uint32_t stale = staleCount(input, out);
            if (stale >= staleThreshold && stale >= best_stale) {
                stalest = out;
                best_stale = stale;
            }
        }
        if (stalest != kInvalidPort) {
            ++arbStats.staleOverrides;
            return stalest;
        }

        PortId best = eligible.front();
        for (const PortId out : eligible) {
            if (buffer.queueLength(out) > buffer.queueLength(best))
                best = out;
        }
        return best;
    };

    serveRoundRobin(buffers, can_send, rrStart, select, grants);

    // Update stale counts: a non-empty queue that did not transmit
    // ages by one; a served queue resets.
    std::vector<bool> &served = servedScratch;
    served.assign(staleCounts.size(), false);
    for (const Grant &g : grants)
        served[g.input * numOutputs() + g.output] = true;
    for (PortId input = 0; input < numInputs(); ++input) {
        for (PortId out = 0; out < numOutputs(); ++out) {
            const std::size_t idx = input * numOutputs() + out;
            if (served[idx]) {
                staleCounts[idx] = 0;
            } else if (buffers[input]->queueLength(out) > 0) {
                ++staleCounts[idx];
            } else {
                staleCounts[idx] = 0;
            }
        }
    }

    // Smart policy: only advance priority past a buffer whose turn
    // was actually useful.
    bool start_transmitted = false;
    for (const Grant &g : grants)
        start_transmitted = start_transmitted || g.input == rrStart;
    if (start_transmitted)
        rrStart = (rrStart + 1) % numInputs();
}

void
SmartArbiter::reset()
{
    rrStart = 0;
    std::fill(staleCounts.begin(), staleCounts.end(), 0);
}

std::unique_ptr<Arbiter>
makeArbiter(ArbitrationPolicy policy, PortId num_inputs,
            PortId num_outputs, std::uint32_t stale_threshold)
{
    switch (policy) {
      case ArbitrationPolicy::Dumb:
        return std::make_unique<DumbArbiter>(num_inputs, num_outputs);
      case ArbitrationPolicy::Smart:
        return std::make_unique<SmartArbiter>(num_inputs, num_outputs,
                                              stale_threshold);
    }
    damq_panic("unknown ArbitrationPolicy ", static_cast<int>(policy));
}

} // namespace damq

/**
 * @file
 * A crossbar grant: "input buffer I transmits the head packet of
 * its queue (O, V) this cycle".
 */

#ifndef DAMQ_SWITCHSIM_GRANT_HH
#define DAMQ_SWITCHSIM_GRANT_HH

#include <vector>

#include "common/types.hh"
#include "queueing/queue_key.hh"

namespace damq {

/** One input-to-output crossbar connection for the current cycle. */
struct Grant
{
    PortId input = kInvalidPort;
    PortId output = kInvalidPort;
    VcId vc = 0; ///< virtual channel of the granted queue

    /** Queue the grant drains. */
    QueueKey queue() const { return QueueKey{output, vc}; }
};

/** The set of connections established in one cycle. */
using GrantList = std::vector<Grant>;

} // namespace damq

#endif // DAMQ_SWITCHSIM_GRANT_HH

/**
 * @file
 * A crossbar grant: "input buffer I transmits its head packet for
 * output O this cycle".
 */

#ifndef DAMQ_SWITCHSIM_GRANT_HH
#define DAMQ_SWITCHSIM_GRANT_HH

#include <vector>

#include "common/types.hh"

namespace damq {

/** One input-to-output crossbar connection for the current cycle. */
struct Grant
{
    PortId input = kInvalidPort;
    PortId output = kInvalidPort;
};

/** The set of connections established in one cycle. */
using GrantList = std::vector<Grant>;

} // namespace damq

#endif // DAMQ_SWITCHSIM_GRANT_HH

/**
 * @file
 * A switch with one centralized buffer pool (Section 2's first
 * rejected alternative).  All arrivals draw slots from a single
 * shared pool; internally the pool keeps one FIFO queue per output
 * (so there is no head-of-line blocking — the pool is a DAMQ
 * "stretched" across the whole switch).  Memory bandwidth is
 * idealized: all n inputs can write and all n outputs can read in
 * the same cycle, which the paper argues is not implementable —
 * this model isolates the *space* behaviour, in particular
 * Fujimoto's hogging: one busy input can fill the pool and starve
 * the others, because admission is first-come first-served with no
 * per-input reservation.
 *
 * Per-input occupancy is tracked so experiments can observe the
 * hogging directly.
 */

#ifndef DAMQ_SWITCHSIM_CENTRAL_BUFFER_SWITCH_HH
#define DAMQ_SWITCHSIM_CENTRAL_BUFFER_SWITCH_HH

#include <deque>
#include <vector>

#include "switchsim/switch_unit.hh"

namespace damq {

/** Shared-pool switch. */
class CentralBufferSwitch final : public SwitchUnit
{
  public:
    /** @param num_ports   n.
     *  @param total_slots pool size (compare with n per-input
     *                     buffers of total_slots / n each). */
    CentralBufferSwitch(PortId num_ports, std::uint32_t total_slots);

    PortId numPorts() const override { return ports; }
    bool canAccept(PortId input, QueueKey out,
                   std::uint32_t len) const override;
    bool tryReceive(PortId input, const Packet &pkt) override;
    std::vector<Packet> transmit(const CanSendFn &can_send) override;
    void transmitInto(const CanSendFn &can_send,
                      std::vector<Packet> &sent) override;
    std::uint32_t totalPackets() const override { return packets; }
    std::uint32_t totalUsedSlots() const override { return used; }
    const SwitchUnitStats &unitStats() const override { return stats; }
    void reset() override;
    std::vector<std::string> checkInvariants() const override;
    bool faultLeakSlot(PortId input) override;

    /** Pool capacity. */
    std::uint32_t capacitySlots() const { return capacity; }

    /** Slots currently occupied by packets that entered @p input. */
    std::uint32_t usedSlotsByInput(PortId input) const
    {
        return usedByInput[input];
    }

  private:
    /** A stored packet remembers which input brought it in. */
    struct Stored
    {
        Packet packet;
        PortId arrivedOn;
    };

    PortId ports;
    std::uint32_t capacity;
    std::vector<std::deque<Stored>> queues; ///< per output
    std::vector<std::uint32_t> usedByInput;
    std::uint32_t used = 0;
    std::uint32_t packets = 0;
    SwitchUnitStats stats;
};

} // namespace damq

#endif // DAMQ_SWITCHSIM_CENTRAL_BUFFER_SWITCH_HH

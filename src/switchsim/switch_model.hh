/**
 * @file
 * An n x n switch with per-input buffers, a crossbar, and an
 * arbiter — the building block of the Omega-network evaluation.
 *
 * The switch is passive with respect to time: the network simulator
 * drives it once per network cycle (arbitrate -> pop -> receive),
 * which matches the synchronized "long clock" model of Section 4.2.
 */

#ifndef DAMQ_SWITCHSIM_SWITCH_MODEL_HH
#define DAMQ_SWITCHSIM_SWITCH_MODEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "queueing/buffer_model.hh"
#include "switchsim/arbiter.hh"
#include "switchsim/grant.hh"
#include "switchsim/switch_unit.hh"

namespace damq {

/** Aggregate per-switch event counters. */
using SwitchStats = SwitchUnitStats;

/**
 * One n x n switch: n input buffers of a chosen organization plus a
 * stateful arbiter.  This is the input-buffered organization; the
 * central-pool and output-queued alternatives implement the same
 * SwitchUnit interface.
 */
class SwitchModel final : public SwitchUnit
{
  public:
    /**
     * @param num_ports        n (inputs = outputs = n).
     * @param buffer_type      organization of each input buffer.
     * @param slots_per_buffer storage per input buffer, in slots.
     * @param arbitration      crossbar arbitration policy.
     * @param stale_threshold  smart-arbitration stale threshold.
     * @param num_vcs          virtual channels per output (1 = the
     *                         paper's single-VC switches).
     * @param sharing          admission-policy configuration applied
     *                         to every input buffer (static rules,
     *                         dynamic thresholds, or class QoS; also
     *                         carries the VOQ private-slot count).
     */
    SwitchModel(PortId num_ports, BufferType buffer_type,
                std::uint32_t slots_per_buffer,
                ArbitrationPolicy arbitration,
                std::uint32_t stale_threshold = 8, VcId num_vcs = 1,
                const SharingPolicyConfig &sharing = {});

    /** Number of ports (inputs and outputs). */
    PortId numPorts() const override { return ports; }

    /** Buffer organization used at every input. */
    BufferType bufferType() const { return type; }

    /** The buffer at input @p input. */
    BufferModel &buffer(PortId input) { return *buffers[input]; }
    const BufferModel &buffer(PortId input) const
    {
        return *buffers[input];
    }

    /** Virtual channels per output. */
    VcId numVcs() const { return vcs; }

    /**
     * Whether input @p input can accept a packet of @p len slots
     * routed to local queue @p out (used for blocking-protocol
     * back-pressure and discard decisions).
     */
    bool canAccept(PortId input, QueueKey out,
                   std::uint32_t len) const override;

    /** Class-aware variant consulted by class-QoS sharing. */
    bool canAcceptClass(PortId input, QueueKey out,
                        std::uint32_t len,
                        std::uint8_t traffic_class) const override;

    /**
     * Offer a packet to input @p input (pkt.outPort and pkt.vc must
     * already be set by routing / VC allocation).  Returns true and
     * stores it if space allows; returns false (and counts a
     * discard) otherwise.
     */
    bool tryReceive(PortId input, const Packet &pkt) override;

    /** Commit a packet already admitted at grant time: re-check
     *  only the static space rule (see SwitchUnit::receiveGranted
     *  for why the dynamic policy must not run again here). */
    bool receiveGranted(PortId input, const Packet &pkt) override;

    /** Compute this cycle's crossbar schedule. */
    GrantList arbitrate(const CanSendFn &can_send);

    /** Remove the granted head packets, in grant order. */
    std::vector<Packet> popGranted(const GrantList &grants);

    /**
     * Compute this cycle's schedule into caller-owned @p grants —
     * no per-cycle allocation once @p grants has warmed up.  Only
     * this switch's state (buffers read, arbiter fairness state
     * mutated) is touched, so distinct switches may arbitrate
     * concurrently as long as @p can_send reads are race-free.
     */
    void arbitrateInto(const CanSendFn &can_send, GrantList &grants)
    {
        arbiter->arbitrateInto(bufferPtrs, can_send, grants);
    }

    /**
     * Pop the packets granted in @p grants, in grant order,
     * reusing @p sent (cleared first).  Pairs with arbitrateInto
     * to split transmitInto across phase barriers.
     */
    void popGrantedInto(const GrantList &grants,
                        std::vector<Packet> &sent);

    /** SwitchUnit: arbitrate + pop in one step. */
    std::vector<Packet> transmit(const CanSendFn &can_send) override;

    /** SwitchUnit: arbitrate + pop reusing @p sent and an internal
     *  grant scratch list — no per-cycle allocation. */
    void transmitInto(const CanSendFn &can_send,
                      std::vector<Packet> &sent) override;

    /** Slots in use across all input buffers. */
    std::uint32_t totalUsedSlots() const override;

    /** Packets buffered across all input buffers. */
    std::uint32_t totalPackets() const override;

    /** Event counters. */
    const SwitchStats &stats() const { return switchStats; }

    /** SwitchUnit: same counters. */
    const SwitchUnitStats &unitStats() const override
    {
        return switchStats;
    }

    /** Clear buffers, arbiter fairness state, and counters. */
    void reset() override;

    /** Every buffer's violations, prefixed with its input port. */
    std::vector<std::string> checkInvariants() const override;

    /** SwitchUnit: visit each input buffer with its port number. */
    void forEachBuffer(const BufferVisitor &visit) override
    {
        for (PortId input = 0; input < ports; ++input)
            visit(input, *buffers[input]);
    }

    /** The crossbar arbiter's lifetime grant counters. */
    const ArbiterStats &arbiterStats() const
    {
        return arbiter->stats();
    }

    /** Leak a slot from input @p input's buffer. */
    bool faultLeakSlot(PortId input) override;

  private:
    PortId ports;
    VcId vcs;
    BufferType type;
    std::vector<std::unique_ptr<BufferModel>> buffers;
    std::vector<BufferModel *> bufferPtrs;
    std::unique_ptr<Arbiter> arbiter;
    SwitchStats switchStats;
    GrantList grantScratch; ///< reused by transmitInto every cycle
};

} // namespace damq

#endif // DAMQ_SWITCHSIM_SWITCH_MODEL_HH

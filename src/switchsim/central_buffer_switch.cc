#include "switchsim/central_buffer_switch.hh"

#include "common/logging.hh"

namespace damq {

CentralBufferSwitch::CentralBufferSwitch(PortId num_ports,
                                         std::uint32_t total_slots)
    : ports(num_ports), capacity(total_slots), queues(num_ports),
      usedByInput(num_ports, 0)
{
    damq_assert(num_ports > 0, "switch needs ports");
    damq_assert(total_slots > 0, "pool needs slots");
}

bool
CentralBufferSwitch::canAccept(PortId input, PortId,
                               std::uint32_t len) const
{
    damq_assert(input < ports, "canAccept: bad input ", input);
    // First come, first served on the shared pool: no per-input or
    // per-output reservation — this is exactly what lets a busy
    // input hog the memory.
    return used + len <= capacity;
}

bool
CentralBufferSwitch::tryReceive(PortId input, const Packet &pkt)
{
    damq_assert(input < ports, "tryReceive: bad input ", input);
    damq_assert(pkt.outPort < ports, "tryReceive: unrouted packet");
    if (used + pkt.lengthSlots > capacity) {
        ++stats.discarded;
        return false;
    }
    queues[pkt.outPort].push_back(Stored{pkt, input});
    used += pkt.lengthSlots;
    usedByInput[input] += pkt.lengthSlots;
    ++packets;
    ++stats.received;
    return true;
}

std::vector<Packet>
CentralBufferSwitch::transmit(const CanSendFn &can_send)
{
    std::vector<Packet> sent;
    for (PortId out = 0; out < ports; ++out) {
        if (queues[out].empty())
            continue;
        const Stored &head = queues[out].front();
        // The pool has a packet for every output simultaneously
        // available (idealized read bandwidth).
        if (!can_send(head.arrivedOn, out, head.packet))
            continue;
        Packet pkt = head.packet;
        used -= pkt.lengthSlots;
        usedByInput[head.arrivedOn] -= pkt.lengthSlots;
        --packets;
        ++stats.transmitted;
        queues[out].pop_front();
        sent.push_back(pkt);
    }
    return sent;
}

void
CentralBufferSwitch::reset()
{
    for (auto &q : queues)
        q.clear();
    std::fill(usedByInput.begin(), usedByInput.end(), 0);
    used = 0;
    packets = 0;
    stats.reset();
}

void
CentralBufferSwitch::debugValidate() const
{
    std::uint32_t slot_total = 0;
    std::uint32_t packet_total = 0;
    std::vector<std::uint32_t> by_input(ports, 0);
    for (PortId out = 0; out < ports; ++out) {
        for (const Stored &s : queues[out]) {
            damq_assert(s.packet.valid(), "invalid stored packet");
            damq_assert(s.packet.outPort == out,
                        "packet queued under the wrong output");
            slot_total += s.packet.lengthSlots;
            by_input[s.arrivedOn] += s.packet.lengthSlots;
            ++packet_total;
        }
    }
    damq_assert(slot_total == used, "pool slot accounting drifted");
    damq_assert(packet_total == packets, "packet count drifted");
    damq_assert(used <= capacity, "pool over capacity");
    for (PortId i = 0; i < ports; ++i)
        damq_assert(by_input[i] == usedByInput[i],
                    "per-input accounting drifted");
}

} // namespace damq

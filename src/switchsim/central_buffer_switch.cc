#include "switchsim/central_buffer_switch.hh"

#include "common/logging.hh"

namespace damq {

CentralBufferSwitch::CentralBufferSwitch(PortId num_ports,
                                         std::uint32_t total_slots)
    : ports(num_ports), capacity(total_slots), queues(num_ports),
      usedByInput(num_ports, 0)
{
    damq_assert(num_ports > 0, "switch needs ports");
    damq_assert(total_slots > 0, "pool needs slots");
}

bool
CentralBufferSwitch::canAccept(PortId input, QueueKey,
                               std::uint32_t len) const
{
    damq_assert(input < ports, "canAccept: bad input ", input);
    // First come, first served on the shared pool: no per-input or
    // per-output reservation — this is exactly what lets a busy
    // input hog the memory.
    return used + len <= capacity;
}

bool
CentralBufferSwitch::tryReceive(PortId input, const Packet &pkt)
{
    damq_assert(input < ports, "tryReceive: bad input ", input);
    damq_assert(pkt.outPort < ports, "tryReceive: unrouted packet");
    if (used + pkt.lengthSlots > capacity) {
        ++stats.discarded;
        return false;
    }
    queues[pkt.outPort].push_back(Stored{pkt, input});
    used += pkt.lengthSlots;
    usedByInput[input] += pkt.lengthSlots;
    ++packets;
    ++stats.received;
    return true;
}

std::vector<Packet>
CentralBufferSwitch::transmit(const CanSendFn &can_send)
{
    std::vector<Packet> sent;
    transmitInto(can_send, sent);
    return sent;
}

void
CentralBufferSwitch::transmitInto(const CanSendFn &can_send,
                                  std::vector<Packet> &sent)
{
    sent.clear();
    for (PortId out = 0; out < ports; ++out) {
        if (queues[out].empty())
            continue;
        const Stored &head = queues[out].front();
        // The pool has a packet for every output simultaneously
        // available (idealized read bandwidth).
        if (!can_send(head.arrivedOn, out, head.packet))
            continue;
        Packet pkt = head.packet;
        used -= pkt.lengthSlots;
        usedByInput[head.arrivedOn] -= pkt.lengthSlots;
        --packets;
        ++stats.transmitted;
        queues[out].pop_front();
        sent.push_back(pkt);
    }
}

void
CentralBufferSwitch::reset()
{
    for (auto &q : queues)
        q.clear();
    std::fill(usedByInput.begin(), usedByInput.end(), 0);
    used = 0;
    packets = 0;
    stats.reset();
}

std::vector<std::string>
CentralBufferSwitch::checkInvariants() const
{
    std::vector<std::string> violations;
    std::uint32_t slot_total = 0;
    std::uint32_t packet_total = 0;
    std::vector<std::uint32_t> by_input(ports, 0);
    for (PortId out = 0; out < ports; ++out) {
        for (const Stored &s : queues[out]) {
            if (!s.packet.valid())
                violations.push_back(detail::concat(
                    "invalid packet ", s.packet.id, " in pool queue ",
                    out));
            if (s.packet.outPort != out)
                violations.push_back(detail::concat(
                    "packet ", s.packet.id, " queued under output ",
                    out, " but routed to ", s.packet.outPort));
            slot_total += s.packet.lengthSlots;
            by_input[s.arrivedOn] += s.packet.lengthSlots;
            ++packet_total;
        }
    }
    if (slot_total != used)
        violations.push_back(detail::concat(
            "pool slot accounting drifted (", slot_total, " stored, ",
            used, " counted)"));
    if (packet_total != packets)
        violations.push_back(detail::concat(
            "packet count drifted (", packet_total, " stored, ",
            packets, " counted)"));
    if (used > capacity)
        violations.push_back(detail::concat(
            "pool over capacity (", used, " > ", capacity, ")"));
    for (PortId i = 0; i < ports; ++i) {
        if (by_input[i] != usedByInput[i])
            violations.push_back(detail::concat(
                "input ", i, " accounting drifted (", by_input[i],
                " stored, ", usedByInput[i], " counted)"));
    }
    return violations;
}

bool
CentralBufferSwitch::faultLeakSlot(PortId input)
{
    damq_assert(input < ports, "faultLeakSlot: bad input ", input);
    if (used >= capacity)
        return false;
    ++used;
    ++usedByInput[input];
    return true;
}

} // namespace damq

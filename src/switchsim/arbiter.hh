/**
 * @file
 * Crossbar arbitration policies from Section 4.2 of the paper.
 *
 * Both policies examine the input buffers one at a time in a
 * priority order and let the current buffer transmit from its
 * longest queue that is not blocked (output already claimed this
 * cycle, or downstream back-pressure).  They differ in how the
 * priority order evolves:
 *
 *  - **Dumb**: plain round-robin — the starting buffer advances
 *    every cycle no matter what.
 *  - **Smart**: the starting position advances only when the
 *    priority buffer actually transmitted, i.e., fruitless turns
 *    are not "counted" against a buffer.  In addition a per-queue
 *    *stale count* tracks how long a non-empty queue has gone
 *    without transmitting; queues whose stale count crosses a
 *    threshold take precedence over longer queues, keeping traffic
 *    inside a buffer fair.
 *
 * With virtual channels the candidate set per buffer is every
 * (output, VC) queue, but a physical output port still carries at
 * most one packet per cycle — VCs multiplex the link across cycles,
 * they do not widen it.
 */

#ifndef DAMQ_SWITCHSIM_ARBITER_HH
#define DAMQ_SWITCHSIM_ARBITER_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "queueing/buffer_model.hh"
#include "switchsim/grant.hh"

namespace damq {

/** Which arbitration policy a switch uses. */
enum class ArbitrationPolicy
{
    Dumb, ///< plain round-robin priority rotation
    Smart ///< rotation on service only, plus stale counts
};

/** Human-readable policy name. */
const char *arbitrationPolicyName(ArbitrationPolicy policy);

/** Parse a case-insensitive policy name; nullopt on bad input. */
std::optional<ArbitrationPolicy> tryArbitrationPolicyFromString(
    const std::string &name);

/**
 * Per-candidate back-pressure test supplied by the network layer:
 * may input @p input transmit packet @p pkt from queue @p key this
 * cycle?  (Blocking protocol: is there downstream space; discarding
 * protocol: always true.)
 */
using CanSendFn =
    std::function<bool(PortId input, QueueKey key, const Packet &pkt)>;

/**
 * Lifetime arbitration counters, exposed for telemetry.  Cheap to
 * maintain (one add per schedule), so they are always on; reset()
 * leaves them alone — they describe the arbiter's whole life.
 */
struct ArbiterStats
{
    std::uint64_t arbitrations = 0;   ///< schedules computed
    std::uint64_t grantsIssued = 0;   ///< grants across all schedules

    /** Smart only: a stale queue outranked a longer one. */
    std::uint64_t staleOverrides = 0;
};

/**
 * Stateful per-switch arbiter.  Produces a conflict-free grant set:
 * at most one grant per output port and at most
 * `maxReadsPerCycle()` grants per input buffer.
 */
class Arbiter
{
  public:
    /** @param num_inputs / @param num_outputs  switch geometry.
     *  @param num_vcs  virtual channels per output (1 = the paper). */
    Arbiter(PortId num_inputs, PortId num_outputs, VcId num_vcs = 1);

    virtual ~Arbiter() = default;

    Arbiter(const Arbiter &) = delete;
    Arbiter &operator=(const Arbiter &) = delete;

    /**
     * Compute this cycle's crossbar schedule into @p grants
     * (replacing its contents).  Taking the caller's list lets the
     * switch hand the same vector back every cycle, so arbitration
     * allocates nothing in steady state.
     *
     * @param buffers   the switch's input buffers (size numInputs).
     * @param can_send  back-pressure test (see CanSendFn).
     * @param grants    receives the conflict-free grant list.
     */
    virtual void arbitrateInto(
        const std::vector<BufferModel *> &buffers,
        const CanSendFn &can_send, GrantList &grants) = 0;

    /** Convenience wrapper: arbitrateInto a fresh list. */
    GrantList arbitrate(const std::vector<BufferModel *> &buffers,
                        const CanSendFn &can_send)
    {
        GrantList grants;
        arbitrateInto(buffers, can_send, grants);
        return grants;
    }

    /** Policy implemented by this arbiter. */
    virtual ArbitrationPolicy policy() const = 0;

    /** Lifetime grant/override counters. */
    const ArbiterStats &stats() const { return arbStats; }

    /** Forget all fairness state. */
    virtual void reset() = 0;

    PortId numInputs() const { return inputs; }
    PortId numOutputs() const { return outputs; }
    VcId numVcs() const { return vcs; }

  protected:
    /**
     * Shared core: serve buffers in the order start, start+1, ...
     * (mod numInputs), granting each buffer its best eligible
     * queue(s) into @p grants (replacing its contents).  @p select
     * picks the queue to serve for a buffer given the eligible
     * queues, enabling the stale-count override; it returns
     * kInvalidQueue to skip the buffer.  Eligible queues are
     * enumerated output-major (out 0 vc 0, out 0 vc 1, ...), so
     * with one VC the order is the pre-VC output order.
     */
    void serveRoundRobin(
        const std::vector<BufferModel *> &buffers,
        const CanSendFn &can_send, PortId start,
        const std::function<QueueKey(
            PortId input, const std::vector<QueueKey> &eligible,
            const BufferModel &buffer)> &select,
        GrantList &grants);

  private:
    PortId inputs;
    PortId outputs;
    VcId vcs;

  protected:
    /** Lifetime counters; serveRoundRobin maintains the first two. */
    ArbiterStats arbStats;

    /** Scratch: outputs already claimed this cycle. */
    std::vector<bool> outputTaken;

    /** Scratch: the current buffer's eligible queues. */
    std::vector<QueueKey> eligibleScratch;
};

/** Round-robin arbiter that rotates unconditionally. */
class DumbArbiter final : public Arbiter
{
  public:
    /** See Arbiter::Arbiter. */
    DumbArbiter(PortId num_inputs, PortId num_outputs,
                VcId num_vcs = 1);

    void arbitrateInto(const std::vector<BufferModel *> &buffers,
                       const CanSendFn &can_send,
                       GrantList &grants) override;

    ArbitrationPolicy policy() const override
    {
        return ArbitrationPolicy::Dumb;
    }

    void reset() override { rrStart = 0; }

  private:
    PortId rrStart = 0;
};

/**
 * Round-robin arbiter that only advances priority past a buffer
 * that transmitted, with per-queue stale counts for intra-buffer
 * fairness.
 */
class SmartArbiter final : public Arbiter
{
  public:
    /**
     * @param stale_threshold  cycles a waiting queue tolerates
     *        before it preempts longer queues.
     */
    SmartArbiter(PortId num_inputs, PortId num_outputs,
                 std::uint32_t stale_threshold = 8, VcId num_vcs = 1);

    void arbitrateInto(const std::vector<BufferModel *> &buffers,
                       const CanSendFn &can_send,
                       GrantList &grants) override;

    ArbitrationPolicy policy() const override
    {
        return ArbitrationPolicy::Smart;
    }

    void reset() override;

    /** Stale count of queue (@p input, @p key) — test visibility. */
    std::uint32_t staleCount(PortId input, QueueKey key) const
    {
        return staleCounts[queueIndex(input, key)];
    }

  private:
    /** Flat index of (@p input, @p key) into staleCounts. */
    std::size_t queueIndex(PortId input, QueueKey key) const
    {
        return (static_cast<std::size_t>(input) * numOutputs() +
                key.out) * numVcs() + key.vc;
    }

    PortId rrStart = 0;
    std::uint32_t staleThreshold;
    std::vector<std::uint32_t> staleCounts;
    std::vector<bool> servedScratch; ///< queues granted this cycle
};

/** Construct an arbiter implementing @p policy. */
std::unique_ptr<Arbiter> makeArbiter(ArbitrationPolicy policy,
                                     PortId num_inputs,
                                     PortId num_outputs,
                                     std::uint32_t stale_threshold = 8,
                                     VcId num_vcs = 1);

} // namespace damq

#endif // DAMQ_SWITCHSIM_ARBITER_HH

#include "switchsim/output_queued_switch.hh"

#include "common/logging.hh"

namespace damq {

OutputQueuedSwitch::OutputQueuedSwitch(PortId num_ports,
                                       std::uint32_t slots_per_output)
    : ports(num_ports), perOutput(slots_per_output),
      queues(num_ports), usedPerOutput(num_ports, 0)
{
    damq_assert(num_ports > 0, "switch needs ports");
    damq_assert(slots_per_output > 0, "output queues need slots");
}

bool
OutputQueuedSwitch::canAccept(PortId input, QueueKey out,
                              std::uint32_t len) const
{
    damq_assert(input < ports && out.out < ports,
                "canAccept: bad ports");
    return usedPerOutput[out.out] + len <= perOutput;
}

bool
OutputQueuedSwitch::tryReceive(PortId input, const Packet &pkt)
{
    damq_assert(input < ports, "tryReceive: bad input ", input);
    damq_assert(pkt.outPort < ports, "tryReceive: unrouted packet");
    if (usedPerOutput[pkt.outPort] + pkt.lengthSlots > perOutput) {
        ++stats.discarded;
        return false;
    }
    queues[pkt.outPort].push_back(pkt);
    usedPerOutput[pkt.outPort] += pkt.lengthSlots;
    used += pkt.lengthSlots;
    ++packets;
    ++stats.received;
    return true;
}

std::vector<Packet>
OutputQueuedSwitch::transmit(const CanSendFn &can_send)
{
    std::vector<Packet> sent;
    transmitInto(can_send, sent);
    return sent;
}

void
OutputQueuedSwitch::transmitInto(const CanSendFn &can_send,
                                 std::vector<Packet> &sent)
{
    sent.clear();
    for (PortId out = 0; out < ports; ++out) {
        if (queues[out].empty())
            continue;
        const Packet &head = queues[out].front();
        // The input argument is moot for output queueing; pass the
        // packet's source-agnostic 0.  (The network layer's
        // back-pressure test only uses the output and packet.)
        if (!can_send(0, out, head))
            continue;
        Packet pkt = head;
        queues[out].pop_front();
        usedPerOutput[out] -= pkt.lengthSlots;
        used -= pkt.lengthSlots;
        --packets;
        ++stats.transmitted;
        sent.push_back(pkt);
    }
}

void
OutputQueuedSwitch::reset()
{
    for (auto &q : queues)
        q.clear();
    std::fill(usedPerOutput.begin(), usedPerOutput.end(), 0);
    used = 0;
    packets = 0;
    stats.reset();
}

std::vector<std::string>
OutputQueuedSwitch::checkInvariants() const
{
    std::vector<std::string> violations;
    std::uint32_t slot_total = 0;
    std::uint32_t packet_total = 0;
    for (PortId out = 0; out < ports; ++out) {
        std::uint32_t q_slots = 0;
        for (const Packet &pkt : queues[out]) {
            if (!pkt.valid())
                violations.push_back(detail::concat(
                    "invalid packet ", pkt.id, " at output ", out));
            if (pkt.outPort != out)
                violations.push_back(detail::concat(
                    "packet ", pkt.id, " queued under output ", out,
                    " but routed to ", pkt.outPort));
            q_slots += pkt.lengthSlots;
        }
        if (q_slots != usedPerOutput[out])
            violations.push_back(detail::concat(
                "output ", out, " accounting drifted (", q_slots,
                " stored, ", usedPerOutput[out], " counted)"));
        if (usedPerOutput[out] > perOutput)
            violations.push_back(detail::concat(
                "output ", out, " queue over capacity (",
                usedPerOutput[out], " > ", perOutput, ")"));
        slot_total += q_slots;
        packet_total += static_cast<std::uint32_t>(queues[out].size());
    }
    if (slot_total != used)
        violations.push_back(detail::concat(
            "slot accounting drifted (", slot_total, " stored, ",
            used, " counted)"));
    if (packet_total != packets)
        violations.push_back(detail::concat(
            "packet count drifted (", packet_total, " stored, ",
            packets, " counted)"));
    return violations;
}

bool
OutputQueuedSwitch::faultLeakSlot(PortId input)
{
    damq_assert(input < ports, "faultLeakSlot: bad input ", input);
    // Output-queued storage has no per-input buffer; leak from the
    // same-numbered output queue instead.
    if (usedPerOutput[input] >= perOutput)
        return false;
    ++usedPerOutput[input];
    ++used;
    return true;
}

} // namespace damq

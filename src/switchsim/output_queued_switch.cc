#include "switchsim/output_queued_switch.hh"

#include "common/logging.hh"

namespace damq {

OutputQueuedSwitch::OutputQueuedSwitch(PortId num_ports,
                                       std::uint32_t slots_per_output)
    : ports(num_ports), perOutput(slots_per_output),
      queues(num_ports), usedPerOutput(num_ports, 0)
{
    damq_assert(num_ports > 0, "switch needs ports");
    damq_assert(slots_per_output > 0, "output queues need slots");
}

bool
OutputQueuedSwitch::canAccept(PortId input, PortId out,
                              std::uint32_t len) const
{
    damq_assert(input < ports && out < ports,
                "canAccept: bad ports");
    return usedPerOutput[out] + len <= perOutput;
}

bool
OutputQueuedSwitch::tryReceive(PortId input, const Packet &pkt)
{
    damq_assert(input < ports, "tryReceive: bad input ", input);
    damq_assert(pkt.outPort < ports, "tryReceive: unrouted packet");
    if (usedPerOutput[pkt.outPort] + pkt.lengthSlots > perOutput) {
        ++stats.discarded;
        return false;
    }
    queues[pkt.outPort].push_back(pkt);
    usedPerOutput[pkt.outPort] += pkt.lengthSlots;
    used += pkt.lengthSlots;
    ++packets;
    ++stats.received;
    return true;
}

std::vector<Packet>
OutputQueuedSwitch::transmit(const CanSendFn &can_send)
{
    std::vector<Packet> sent;
    for (PortId out = 0; out < ports; ++out) {
        if (queues[out].empty())
            continue;
        const Packet &head = queues[out].front();
        // The input argument is moot for output queueing; pass the
        // packet's source-agnostic 0.  (The network layer's
        // back-pressure test only uses the output and packet.)
        if (!can_send(0, out, head))
            continue;
        Packet pkt = head;
        queues[out].pop_front();
        usedPerOutput[out] -= pkt.lengthSlots;
        used -= pkt.lengthSlots;
        --packets;
        ++stats.transmitted;
        sent.push_back(pkt);
    }
    return sent;
}

void
OutputQueuedSwitch::reset()
{
    for (auto &q : queues)
        q.clear();
    std::fill(usedPerOutput.begin(), usedPerOutput.end(), 0);
    used = 0;
    packets = 0;
    stats.reset();
}

void
OutputQueuedSwitch::debugValidate() const
{
    std::uint32_t slot_total = 0;
    std::uint32_t packet_total = 0;
    for (PortId out = 0; out < ports; ++out) {
        std::uint32_t q_slots = 0;
        for (const Packet &pkt : queues[out]) {
            damq_assert(pkt.valid(), "invalid stored packet");
            damq_assert(pkt.outPort == out,
                        "packet queued under the wrong output");
            q_slots += pkt.lengthSlots;
        }
        damq_assert(q_slots == usedPerOutput[out],
                    "per-output accounting drifted");
        damq_assert(q_slots <= perOutput, "queue over capacity");
        slot_total += q_slots;
        packet_total += static_cast<std::uint32_t>(queues[out].size());
    }
    damq_assert(slot_total == used, "slot accounting drifted");
    damq_assert(packet_total == packets, "packet count drifted");
}

} // namespace damq

#include "switchsim/switch_unit.hh"

#include "common/logging.hh"
#include "common/string_util.hh"
#include "switchsim/central_buffer_switch.hh"
#include "switchsim/output_queued_switch.hh"
#include "switchsim/switch_model.hh"

namespace damq {

const char *
bufferPlacementName(BufferPlacement placement)
{
    switch (placement) {
      case BufferPlacement::Input: return "input";
      case BufferPlacement::Central: return "central";
      case BufferPlacement::Output: return "output";
    }
    damq_panic("unknown BufferPlacement ",
               static_cast<int>(placement));
}

std::optional<BufferPlacement>
tryBufferPlacementFromString(const std::string &name)
{
    const std::string lower = toLower(name);
    if (lower == "input")
        return BufferPlacement::Input;
    if (lower == "central")
        return BufferPlacement::Central;
    if (lower == "output")
        return BufferPlacement::Output;
    return std::nullopt;
}

BufferPlacement
bufferPlacementFromString(const std::string &name)
{
    if (const auto placement = tryBufferPlacementFromString(name))
        return *placement;
    damq_fatal("unknown buffer placement '", name,
               "' (expected input|central|output)");
}

void
SwitchUnit::debugValidate() const
{
    const std::vector<std::string> violations = checkInvariants();
    if (!violations.empty())
        damq_panic("switch invariant violated: ", violations.front(),
                   violations.size() > 1 ? " (and more)" : "");
}

std::unique_ptr<SwitchUnit>
makeSwitchUnit(BufferPlacement placement, PortId num_ports,
               BufferType buffer_type, std::uint32_t slots_per_input,
               ArbitrationPolicy arbitration,
               std::uint32_t stale_threshold)
{
    switch (placement) {
      case BufferPlacement::Input:
        return std::make_unique<SwitchModel>(
            num_ports, buffer_type, slots_per_input, arbitration,
            stale_threshold);
      case BufferPlacement::Central:
        return std::make_unique<CentralBufferSwitch>(
            num_ports, num_ports * slots_per_input);
      case BufferPlacement::Output:
        return std::make_unique<OutputQueuedSwitch>(
            num_ports, slots_per_input);
    }
    damq_panic("unknown BufferPlacement ",
               static_cast<int>(placement));
}

} // namespace damq

#include "switchsim/switch_unit.hh"

#include "common/enum_parse.hh"
#include "common/logging.hh"
#include "switchsim/central_buffer_switch.hh"
#include "switchsim/output_queued_switch.hh"
#include "switchsim/switch_model.hh"

namespace damq {

const char *
bufferPlacementName(BufferPlacement placement)
{
    switch (placement) {
      case BufferPlacement::Input: return "input";
      case BufferPlacement::Central: return "central";
      case BufferPlacement::Output: return "output";
    }
    damq_panic("unknown BufferPlacement ",
               static_cast<int>(placement));
}

namespace {

constexpr EnumName<BufferPlacement> kBufferPlacementNames[] = {
    {BufferPlacement::Input, "input"},
    {BufferPlacement::Central, "central"},
    {BufferPlacement::Output, "output"},
};

} // namespace

std::optional<BufferPlacement>
tryBufferPlacementFromString(const std::string &name)
{
    return parseEnumName(std::string_view(name),
                         kBufferPlacementNames);
}

void
SwitchUnit::debugValidate() const
{
    const std::vector<std::string> violations = checkInvariants();
    if (!violations.empty())
        damq_panic("switch invariant violated: ", violations.front(),
                   violations.size() > 1 ? " (and more)" : "");
}

std::unique_ptr<SwitchUnit>
makeSwitchUnit(BufferPlacement placement, PortId num_ports,
               BufferType buffer_type, std::uint32_t slots_per_input,
               ArbitrationPolicy arbitration,
               std::uint32_t stale_threshold, VcId num_vcs,
               const SharingPolicyConfig &sharing)
{
    if (num_vcs > 1 && placement != BufferPlacement::Input) {
        damq_fatal("virtual channels require input buffering (",
                   bufferPlacementName(placement),
                   " placement keeps no per-VC queues)");
    }
    if (sharing.kind != SharingPolicy::Static &&
        placement != BufferPlacement::Input) {
        damq_fatal("the '", sharingPolicyName(sharing.kind),
                   "' sharing policy requires input buffering (",
                   bufferPlacementName(placement),
                   " placement has no admission-policy layer)");
    }
    switch (placement) {
      case BufferPlacement::Input:
        return std::make_unique<SwitchModel>(
            num_ports, buffer_type, slots_per_input, arbitration,
            stale_threshold, num_vcs, sharing);
      case BufferPlacement::Central:
        return std::make_unique<CentralBufferSwitch>(
            num_ports, num_ports * slots_per_input);
      case BufferPlacement::Output:
        return std::make_unique<OutputQueuedSwitch>(
            num_ports, slots_per_input);
    }
    damq_panic("unknown BufferPlacement ",
               static_cast<int>(placement));
}

} // namespace damq

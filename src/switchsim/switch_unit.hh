/**
 * @file
 * The abstract switch interface the network simulator drives, and
 * the three buffer *placements* Section 2 of the paper weighs:
 *
 *  - input buffering (one buffer per input port) — the paper's
 *    choice, with the four buffer organizations of Figure 1;
 *  - a centralized buffer pool shared by the whole switch, which
 *    is space-optimal in queueing theory but suffers Fujimoto's
 *    "hogging" (a busy input can starve the others) and needs
 *    impractical memory bandwidth;
 *  - output-port buffering (Karol et al.), which eliminates
 *    head-of-line blocking entirely but requires the buffers to
 *    absorb n simultaneous writes.
 *
 * The latter two are modeled with idealized memory bandwidth so
 * the *space* behaviour — the thing the DAMQ design competes on —
 * is isolated.
 */

#ifndef DAMQ_SWITCHSIM_SWITCH_UNIT_HH
#define DAMQ_SWITCHSIM_SWITCH_UNIT_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "queueing/buffer_model.hh"
#include "switchsim/arbiter.hh"

namespace damq {

/** Where a switch keeps its packets. */
enum class BufferPlacement
{
    Input,   ///< per-input buffers (paper's design space)
    Central, ///< one shared pool for the whole switch
    Output   ///< per-output queues fed directly by arrivals
};

/** Human-readable placement name. */
const char *bufferPlacementName(BufferPlacement placement);

/** Parse a case-insensitive placement name; nullopt on bad input. */
std::optional<BufferPlacement> tryBufferPlacementFromString(
    const std::string &name);

/** Counters shared by every switch organization. */
struct SwitchUnitStats
{
    std::uint64_t received = 0;
    std::uint64_t discarded = 0;
    std::uint64_t transmitted = 0;

    void reset() { *this = SwitchUnitStats{}; }
};

/**
 * One switch, as the network simulator sees it: packets offered to
 * input ports, packets emitted from output ports once per cycle.
 */
class SwitchUnit
{
  public:
    virtual ~SwitchUnit() = default;

    /** Number of ports (inputs = outputs). */
    virtual PortId numPorts() const = 0;

    /**
     * Whether a packet of @p len slots routed to local queue
     * @p out (output port x VC; a bare PortId means VC 0) could be
     * accepted at input @p input right now (the blocking protocol's
     * back-pressure test).
     */
    virtual bool canAccept(PortId input, QueueKey out,
                           std::uint32_t len) const = 0;

    /**
     * As canAccept(), but carrying the packet's traffic class so
     * class-aware sharing policies (SharingPolicy::ClassQos) can
     * apply their per-class cap.  The default ignores the class:
     * only the input-buffered placement keeps BufferModel objects
     * with an admission-policy layer.
     */
    virtual bool canAcceptClass(PortId input, QueueKey out,
                                std::uint32_t len,
                                std::uint8_t traffic_class) const
    {
        (void)traffic_class;
        return canAccept(input, out, len);
    }

    /**
     * Offer a packet (pkt.outPort set).  Stores it and returns
     * true, or counts a discard and returns false.
     */
    virtual bool tryReceive(PortId input, const Packet &pkt) = 0;

    /**
     * Commit a packet whose admission was already decided by an
     * earlier-phase flow-control check (the upstream grant).  Only
     * the organization's static space rule is re-verified — that
     * check is monotone under the pops that can land between grant
     * and commit, while a dynamic sharing policy's verdict is not
     * (a delay-driven threshold re-tightens when the aged queue
     * head it was loosened by departs mid-cycle).  Defaults to
     * tryReceive(), which is equivalent wherever no dynamic policy
     * can be installed (central/output placements).
     */
    virtual bool receiveGranted(PortId input, const Packet &pkt)
    {
        return tryReceive(input, pkt);
    }

    /**
     * Emit this cycle's departures: at most one packet per output,
     * each cleared by @p can_send.  Returned packets carry the
     * local output they left through in `outPort`.
     */
    virtual std::vector<Packet> transmit(const CanSendFn &can_send) = 0;

    /**
     * Allocation-free variant of transmit(): replace the contents
     * of @p sent with this cycle's departures.  The simulators keep
     * one scratch vector per switch and hand it back every cycle,
     * so steady-state operation never touches the allocator.
     */
    virtual void transmitInto(const CanSendFn &can_send,
                              std::vector<Packet> &sent)
    {
        sent = transmit(can_send);
    }

    /** Packets currently stored. */
    virtual std::uint32_t totalPackets() const = 0;

    /** Slots currently occupied. */
    virtual std::uint32_t totalUsedSlots() const = 0;

    /** Event counters. */
    virtual const SwitchUnitStats &unitStats() const = 0;

    /** Drop all contents and state. */
    virtual void reset() = 0;

    /**
     * Check internal invariants without aborting: returns one
     * human-readable description per violation, empty when healthy.
     * The fault auditor calls this periodically; tests call it
     * directly.
     */
    virtual std::vector<std::string> checkInvariants() const = 0;

    /** Callback type for forEachBuffer. */
    using BufferVisitor =
        std::function<void(PortId input, BufferModel &buffer)>;

    /**
     * Visit every BufferModel inside the switch with the input port
     * it serves — the telemetry layer attaches its per-queue probes
     * this way.  The default visits nothing: the central-pool and
     * output-queued organizations store packets in plain queues,
     * not BufferModel objects, so there is nothing to probe.
     */
    virtual void forEachBuffer(const BufferVisitor &visit)
    {
        (void)visit;
    }

    /** Panic on the first invariant violation (tests). */
    void debugValidate() const;

    /**
     * Fault hook: corrupt the bookkeeping of the buffer reached
     * through input @p input as if one slot's state latched garbage.
     * Returns false when the targeted storage has no slot to lose.
     * The damage is intentionally detectable by checkInvariants().
     */
    virtual bool faultLeakSlot(PortId input) = 0;
};

/**
 * Build a switch:
 *  - Input placement: @p buffer_type at each input with
 *    @p slots_per_input slots, arbitration per @p arbitration;
 *  - Central placement: one pool of n * slots_per_input slots
 *    (equal total storage) with per-output queues;
 *  - Output placement: per-output queues of @p slots_per_input
 *    slots each (equal total storage).
 * @p buffer_type and @p arbitration are ignored for the non-input
 * placements.  @p num_vcs > 1 (virtual channels per output) is only
 * supported by the Input placement, whose BufferModel queues carry
 * the VC dimension; requesting it elsewhere is fatal.  Likewise a
 * non-static @p sharing policy needs the Input placement's
 * admission-policy layer and is fatal elsewhere.
 */
std::unique_ptr<SwitchUnit> makeSwitchUnit(
    BufferPlacement placement, PortId num_ports,
    BufferType buffer_type, std::uint32_t slots_per_input,
    ArbitrationPolicy arbitration, std::uint32_t stale_threshold = 8,
    VcId num_vcs = 1, const SharingPolicyConfig &sharing = {});

} // namespace damq

#endif // DAMQ_SWITCHSIM_SWITCH_UNIT_HH

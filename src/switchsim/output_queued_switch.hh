/**
 * @file
 * A switch with buffers at the output ports (Section 2's second
 * rejected alternative, after Karol, Hluchyj & Morgan).  Arrivals
 * are routed straight into their output's FIFO queue, so there is
 * no head-of-line blocking at all and mean queue lengths are the
 * shortest of any organization — but the write path is idealized:
 * all n inputs may deposit into the same output queue in one cycle,
 * which is precisely the multi-write-port memory the paper argues
 * is too expensive for a single-chip switch.  Storage is statically
 * split per output, so the organization also inherits SAMQ/SAFC's
 * space inflexibility.
 */

#ifndef DAMQ_SWITCHSIM_OUTPUT_QUEUED_SWITCH_HH
#define DAMQ_SWITCHSIM_OUTPUT_QUEUED_SWITCH_HH

#include <deque>
#include <vector>

#include "switchsim/switch_unit.hh"

namespace damq {

/** Output-queued switch. */
class OutputQueuedSwitch final : public SwitchUnit
{
  public:
    /** @param num_ports        n.
     *  @param slots_per_output static capacity of each output
     *                          queue. */
    OutputQueuedSwitch(PortId num_ports,
                       std::uint32_t slots_per_output);

    PortId numPorts() const override { return ports; }
    bool canAccept(PortId input, QueueKey out,
                   std::uint32_t len) const override;
    bool tryReceive(PortId input, const Packet &pkt) override;
    std::vector<Packet> transmit(const CanSendFn &can_send) override;
    void transmitInto(const CanSendFn &can_send,
                      std::vector<Packet> &sent) override;
    std::uint32_t totalPackets() const override { return packets; }
    std::uint32_t totalUsedSlots() const override { return used; }
    const SwitchUnitStats &unitStats() const override { return stats; }
    void reset() override;
    std::vector<std::string> checkInvariants() const override;
    bool faultLeakSlot(PortId input) override;

    /** Static capacity of each output queue. */
    std::uint32_t perOutputCapacity() const { return perOutput; }

    /** Occupancy of one output queue, in slots. */
    std::uint32_t usedSlotsAtOutput(PortId out) const
    {
        return usedPerOutput[out];
    }

  private:
    PortId ports;
    std::uint32_t perOutput;
    std::vector<std::deque<Packet>> queues;
    std::vector<std::uint32_t> usedPerOutput;
    std::uint32_t used = 0;
    std::uint32_t packets = 0;
    SwitchUnitStats stats;
};

} // namespace damq

#endif // DAMQ_SWITCHSIM_OUTPUT_QUEUED_SWITCH_HH

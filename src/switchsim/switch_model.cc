#include "switchsim/switch_model.hh"

#include "common/logging.hh"
#include "queueing/buffer_factory.hh"

namespace damq {

SwitchModel::SwitchModel(PortId num_ports, BufferType buffer_type,
                         std::uint32_t slots_per_buffer,
                         ArbitrationPolicy arbitration,
                         std::uint32_t stale_threshold, VcId num_vcs,
                         const SharingPolicyConfig &sharing)
    : ports(num_ports), vcs(num_vcs), type(buffer_type),
      arbiter(makeArbiter(arbitration, num_ports, num_ports,
                          stale_threshold, num_vcs))
{
    damq_assert(num_ports > 0, "switch needs at least one port");
    damq_assert(num_vcs > 0, "switch needs at least one VC");
    const QueueLayout layout{num_ports, num_vcs};
    buffers.reserve(num_ports);
    for (PortId input = 0; input < num_ports; ++input) {
        buffers.push_back(makeBuffer(buffer_type, layout,
                                     slots_per_buffer, sharing));
        bufferPtrs.push_back(buffers.back().get());
    }
}

bool
SwitchModel::canAccept(PortId input, QueueKey out,
                       std::uint32_t len) const
{
    damq_assert(input < ports, "canAccept: bad input port ", input);
    return buffers[input]->canAccept(out, len);
}

bool
SwitchModel::canAcceptClass(PortId input, QueueKey out,
                            std::uint32_t len,
                            std::uint8_t traffic_class) const
{
    damq_assert(input < ports, "canAccept: bad input port ", input);
    return buffers[input]->canAcceptClass(out, len, traffic_class);
}

bool
SwitchModel::tryReceive(PortId input, const Packet &pkt)
{
    damq_assert(input < ports, "tryReceive: bad input port ", input);
    damq_assert(pkt.outPort < ports, "tryReceive: unrouted packet");
    // Admission is by slots the record occupies *now*: the whole
    // packet in the packet-synchronized modes, just the head flit's
    // slot when a flit-level mode delivers a partial record (the
    // rest of the allocation was checked at grant time by the
    // FlowControlScheme's headSlotsNeeded rule).
    const QueueKey key{pkt.outPort, pkt.vc};
    if (!buffers[input]->canAcceptClass(key, pkt.slotsHeld(),
                                        pkt.trafficClass)) {
        ++switchStats.discarded;
        return false;
    }
    buffers[input]->push(pkt);
    ++switchStats.received;
    return true;
}

bool
SwitchModel::receiveGranted(PortId input, const Packet &pkt)
{
    damq_assert(input < ports, "receiveGranted: bad input port ",
                input);
    damq_assert(pkt.outPort < ports,
                "receiveGranted: unrouted packet");
    const QueueKey key{pkt.outPort, pkt.vc};
    if (!buffers[input]->canHold(key, pkt.slotsHeld())) {
        ++switchStats.discarded;
        return false;
    }
    buffers[input]->push(pkt);
    ++switchStats.received;
    return true;
}

GrantList
SwitchModel::arbitrate(const CanSendFn &can_send)
{
    GrantList grants;
    arbiter->arbitrateInto(bufferPtrs, can_send, grants);
    return grants;
}

std::vector<Packet>
SwitchModel::popGranted(const GrantList &grants)
{
    std::vector<Packet> popped;
    popped.reserve(grants.size());
    for (const Grant &g : grants) {
        damq_assert(g.input < ports && g.output < ports,
                    "grant outside switch geometry");
        popped.push_back(buffers[g.input]->pop(g.queue()));
        ++switchStats.transmitted;
    }
    return popped;
}

void
SwitchModel::popGrantedInto(const GrantList &grants,
                            std::vector<Packet> &sent)
{
    sent.clear();
    for (const Grant &g : grants) {
        damq_assert(g.input < ports && g.output < ports,
                    "grant outside switch geometry");
        sent.push_back(buffers[g.input]->pop(g.queue()));
        ++switchStats.transmitted;
    }
}

std::vector<Packet>
SwitchModel::transmit(const CanSendFn &can_send)
{
    std::vector<Packet> sent;
    transmitInto(can_send, sent);
    return sent;
}

void
SwitchModel::transmitInto(const CanSendFn &can_send,
                          std::vector<Packet> &sent)
{
    arbiter->arbitrateInto(bufferPtrs, can_send, grantScratch);
    sent.clear();
    for (const Grant &g : grantScratch) {
        damq_assert(g.input < ports && g.output < ports,
                    "grant outside switch geometry");
        sent.push_back(buffers[g.input]->pop(g.queue()));
        ++switchStats.transmitted;
    }
}

std::uint32_t
SwitchModel::totalUsedSlots() const
{
    std::uint32_t total = 0;
    for (const auto &buf : buffers)
        total += buf->usedSlots();
    return total;
}

std::uint32_t
SwitchModel::totalPackets() const
{
    std::uint32_t total = 0;
    for (const auto &buf : buffers)
        total += buf->totalPackets();
    return total;
}

void
SwitchModel::reset()
{
    for (auto &buf : buffers)
        buf->clear();
    arbiter->reset();
    switchStats.reset();
}

std::vector<std::string>
SwitchModel::checkInvariants() const
{
    std::vector<std::string> violations;
    for (PortId input = 0; input < ports; ++input) {
        for (const std::string &v : buffers[input]->checkInvariants())
            violations.push_back(detail::concat("in", input, ": ", v));
    }
    return violations;
}

bool
SwitchModel::faultLeakSlot(PortId input)
{
    damq_assert(input < ports, "faultLeakSlot: bad input ", input);
    return buffers[input]->faultLeakSlot();
}

} // namespace damq

#include "common/string_util.hh"

#include <cctype>
#include <cstdio>

namespace damq {

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatProbabilityPaperStyle(double p)
{
    if (p == 0.0)
        return "0";
    if (p < 0.0005)
        return "0+";
    return formatFixed(p, 3);
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> fields;
    std::string current;
    for (char c : text) {
        if (c == sep) {
            fields.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    fields.push_back(current);
    return fields;
}

std::string
toLower(std::string text)
{
    for (char &c : text)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return text;
}

std::string
padLeft(const std::string &text, std::size_t width)
{
    if (text.size() >= width)
        return text;
    return std::string(width - text.size(), ' ') + text;
}

std::string
padRight(const std::string &text, std::size_t width)
{
    if (text.size() >= width)
        return text;
    return text + std::string(width - text.size(), ' ');
}

} // namespace damq

/**
 * @file
 * Deterministic pseudo-random number generation for the simulators.
 *
 * Every stochastic component in this repository draws from a
 * @ref damq::Random instance seeded explicitly, so that every
 * experiment is exactly reproducible from its command line.  The
 * engine is xoshiro256** (public-domain, Blackman & Vigna), seeded
 * through SplitMix64 as its authors recommend.
 */

#ifndef DAMQ_COMMON_RANDOM_HH
#define DAMQ_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

namespace damq {

/**
 * SplitMix64: a tiny 64-bit generator used to expand a single seed
 * word into the xoshiro state.  Also usable standalone for hashing.
 */
class SplitMix64
{
  public:
    /** Construct from a seed word. */
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Produce the next 64-bit value. */
    std::uint64_t next();

  private:
    std::uint64_t state;
};

/**
 * xoshiro256**: fast, high-quality 64-bit PRNG with 256 bits of
 * state.  Satisfies the UniformRandomBitGenerator concept so it can
 * also feed <random> distributions when needed.
 */
class Xoshiro256StarStar
{
  public:
    using result_type = std::uint64_t;

    /** Construct with state expanded from @p seed via SplitMix64. */
    explicit Xoshiro256StarStar(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Produce the next 64-bit value. */
    result_type operator()();

    /** Smallest value operator() can return. */
    static constexpr result_type min() { return 0; }
    /** Largest value operator() can return. */
    static constexpr result_type max() { return ~result_type{0}; }

  private:
    std::array<std::uint64_t, 4> state;
};

/**
 * Derive an independent per-task seed from a base seed and a task
 * index.  The sweep runner hands every replication in a parallel
 * sweep the seed deriveTaskSeed(baseSeed, taskIndex), where the
 * index comes from the sweep's fixed enumeration order — so the
 * stream a task draws depends only on its position in the sweep,
 * never on which worker thread claimed it, and a parallel run is
 * bit-identical to the sequential one.
 */
std::uint64_t deriveTaskSeed(std::uint64_t base_seed,
                             std::uint64_t task_index);

/**
 * Convenience façade over the raw engine offering the draws the
 * simulators actually need: Bernoulli trials, uniform reals, and
 * uniform integer ranges.
 */
class Random
{
  public:
    /** Construct a generator with the given seed. */
    explicit Random(std::uint64_t seed = 1) : engine(seed) {}

    /** Uniform real in [0, 1). */
    double uniform();

    /** Bernoulli trial: true with probability @p p. */
    bool bernoulli(double p);

    /**
     * Uniform integer in [0, bound).  @p bound must be positive.
     * Uses Lemire's nearly-divisionless rejection method, so the
     * result is exactly uniform.
     */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in the inclusive range [lo, hi]. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Expose the raw engine (e.g., for std::shuffle). */
    Xoshiro256StarStar &raw() { return engine; }

  private:
    Xoshiro256StarStar engine;
};

} // namespace damq

#endif // DAMQ_COMMON_RANDOM_HH

/**
 * @file
 * A growable ring buffer with deque semantics and no steady-state
 * allocation.
 *
 * The engines' per-source backlog queues used std::deque, whose
 * libstdc++ implementation allocates and frees a 512-byte block for
 * every ~64 packets that stream through — enough churn to break the
 * "no allocation in the steady-state cycle loop" guarantee the perf
 * canary asserts.  RingQueue keeps one power-of-two array that only
 * ever grows: once a run's high-water mark is reached, push/pop
 * never touch the allocator again.
 *
 * Only the operations the engines need exist: push_back, front,
 * pop_front, size/empty, clear.  Elements must be movable.
 */

#ifndef DAMQ_COMMON_RING_QUEUE_HH
#define DAMQ_COMMON_RING_QUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace damq {

/** FIFO over a power-of-two ring that retains its capacity. */
template <typename T>
class RingQueue
{
  public:
    RingQueue() = default;

    /** Number of queued elements. */
    std::size_t size() const { return count; }

    /** Whether the queue is empty. */
    bool empty() const { return count == 0; }

    /** Slots currently reserved (diagnostics / tests). */
    std::size_t capacity() const { return slots.size(); }

    /** Append @p value at the tail, growing if full. */
    void push_back(T value)
    {
        if (count == slots.size())
            grow();
        slots[(head + count) & (slots.size() - 1)] =
            std::move(value);
        ++count;
    }

    /** The oldest element.  Undefined when empty. */
    T &front()
    {
        damq_assert(count > 0, "front() on an empty RingQueue");
        return slots[head];
    }

    const T &front() const
    {
        damq_assert(count > 0, "front() on an empty RingQueue");
        return slots[head];
    }

    /** Remove the oldest element.  Undefined when empty. */
    void pop_front()
    {
        damq_assert(count > 0, "pop_front() on an empty RingQueue");
        head = (head + 1) & (slots.size() - 1);
        --count;
    }

    /** Drop every element; capacity is retained. */
    void clear()
    {
        head = 0;
        count = 0;
    }

  private:
    /** Double the ring (at least kMinCapacity), preserving order. */
    void grow()
    {
        const std::size_t next =
            slots.empty() ? kMinCapacity : slots.size() * 2;
        std::vector<T> bigger(next);
        for (std::size_t i = 0; i < count; ++i)
            bigger[i] =
                std::move(slots[(head + i) & (slots.size() - 1)]);
        slots = std::move(bigger);
        head = 0;
    }

    static constexpr std::size_t kMinCapacity = 8;

    std::vector<T> slots;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace damq

#endif // DAMQ_COMMON_RING_QUEUE_HH

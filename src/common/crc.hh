/**
 * @file
 * CRC-32C (Castagnoli) for link-level frame protection.
 *
 * The packet header already carries a sealed checksum
 * (headerChecksum in queueing/packet.hh) that travels end to end;
 * the link-level retransmission protocol needs a *per-link* check
 * that also covers the link sequence number, so a frame damaged on
 * one hop is nacked and retransmitted by the immediate sender
 * instead of being discarded at the far end.  CRC-32C is the
 * polynomial real link layers use for exactly this job (iSCSI,
 * SCTP, Ethernet FCS's stronger sibling), and its error-detection
 * guarantees (all burst errors up to 32 bits, all 1-3 bit errors)
 * cover every corruption the fault injector can introduce.
 *
 * Software table-driven implementation; the table is built once at
 * static-initialization time from the reflected polynomial, so the
 * per-byte cost is one xor, one shift, and one lookup.
 */

#ifndef DAMQ_COMMON_CRC_HH
#define DAMQ_COMMON_CRC_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace damq {

namespace detail {

/** Reflected CRC-32C polynomial (0x1EDC6F41 bit-reversed). */
inline constexpr std::uint32_t kCrc32cPoly = 0x82F63B78u;

/** The 256-entry byte table, computed at compile time. */
constexpr std::array<std::uint32_t, 256>
makeCrc32cTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t byte = 0; byte < 256; ++byte) {
        std::uint32_t crc = byte;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? kCrc32cPoly : 0u);
        table[byte] = crc;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable =
    makeCrc32cTable();

} // namespace detail

/**
 * Update a running CRC-32C with @p len bytes of @p data.  Start
 * from crc32cInit(), feed any number of chunks, finish with
 * crc32cFinish() — or use crc32c() for a one-shot buffer.
 */
inline constexpr std::uint32_t
crc32cInit()
{
    return ~std::uint32_t{0};
}

inline std::uint32_t
crc32cUpdate(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        crc = (crc >> 8) ^
              detail::kCrc32cTable[(crc ^ bytes[i]) & 0xFFu];
    }
    return crc;
}

inline constexpr std::uint32_t
crc32cFinish(std::uint32_t crc)
{
    return ~crc;
}

/** One-shot CRC-32C of a buffer. */
inline std::uint32_t
crc32c(const void *data, std::size_t len)
{
    return crc32cFinish(crc32cUpdate(crc32cInit(), data, len));
}

/** Fold one integral value into a running CRC, byte by byte. */
template <typename T>
inline std::uint32_t
crc32cUpdateValue(std::uint32_t crc, T value)
{
    static_assert(std::is_integral_v<T>,
                  "crc32cUpdateValue wants an integral field");
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        const unsigned char byte = static_cast<unsigned char>(
            static_cast<std::uint64_t>(value) >> (8 * i));
        crc = (crc >> 8) ^
              detail::kCrc32cTable[(crc ^ byte) & 0xFFu];
    }
    return crc;
}

} // namespace damq

#endif // DAMQ_COMMON_CRC_HH

/**
 * @file
 * Fundamental scalar types shared by every DAMQ library.
 *
 * The simulators in this repository operate at two time scales:
 * raw clock cycles (the 20 MHz ComCoBB clock of the paper) and
 * "network cycles" (the synchronized 12-clock-cycle packet transfer
 * slots used by the Omega-network evaluation in Section 4.2 of the
 * paper).  Both are counted in @ref damq::Cycle.
 */

#ifndef DAMQ_COMMON_TYPES_HH
#define DAMQ_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace damq {

/** Simulation time, in cycles (clock cycles or network cycles). */
using Cycle = std::uint64_t;

/** Index of a switch port (input or output) within one switch. */
using PortId = std::uint32_t;

/** Index of a network endpoint (processor or memory module). */
using NodeId = std::uint32_t;

/** Unique identifier assigned to each packet at generation time. */
using PacketId = std::uint64_t;

/** Index of a storage slot inside a buffer's slot pool. */
using SlotId = std::uint32_t;

/** Sentinel meaning "no port". */
inline constexpr PortId kInvalidPort =
    std::numeric_limits<PortId>::max();

/** Sentinel meaning "no node". */
inline constexpr NodeId kInvalidNode =
    std::numeric_limits<NodeId>::max();

/** Sentinel meaning "no slot" (null link in a slot linked list). */
inline constexpr SlotId kNullSlot =
    std::numeric_limits<SlotId>::max();

/** Sentinel meaning "no packet". */
inline constexpr PacketId kInvalidPacket =
    std::numeric_limits<PacketId>::max();

/**
 * Number of clock cycles one synchronized packet transfer occupies in
 * the paper's Omega-network simulation (8 cycles to transmit a packet
 * plus 4 cycles to route it; see Section 4.2).
 */
inline constexpr Cycle kClocksPerNetworkCycle = 12;

} // namespace damq

#endif // DAMQ_COMMON_TYPES_HH

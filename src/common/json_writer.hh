/**
 * @file
 * Minimal streaming JSON emitter for the bench result files.
 *
 * The benches write two kinds of JSON: the deterministic
 * BENCH_<name>.json result files (which must be byte-identical
 * across runs and thread counts) and the PERF_<name>.json timing
 * sidecars.  Both need only a tiny subset of JSON — objects,
 * arrays, strings, numbers, booleans, null — emitted in insertion
 * order with stable formatting, which is exactly what this writer
 * does:
 *
 *  - doubles print with max_digits10 (17 significant digits), so
 *    every distinct double has a distinct, reproducible spelling
 *    that parses back to the same value;
 *  - non-finite doubles (JSON has no NaN/Inf) become null;
 *  - two-space indentation, keys in the order written.
 */

#ifndef DAMQ_COMMON_JSON_WRITER_HH
#define DAMQ_COMMON_JSON_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace damq {

/**
 * The JSON spelling of @p number: max_digits10 significant digits,
 * "null" for NaN/infinities.  Shared with the CSV writer's callers
 * so both sinks spell every double identically.
 */
std::string formatJsonNumber(double number);

/** Streams one JSON document to an ostream. */
class JsonWriter
{
  public:
    /** Write to @p out; the stream must outlive the writer. */
    explicit JsonWriter(std::ostream &out);

    /** Open the root or a nested object. */
    void beginObject();

    /** Close the innermost object. */
    void endObject();

    /** Open the root or a nested array. */
    void beginArray();

    /** Close the innermost array. */
    void endArray();

    /** Emit a key inside an object (must precede its value). */
    void key(std::string_view name);

    /** Emit a string value. */
    void value(std::string_view text);
    /** Emit a string value (disambiguates char literals). */
    void value(const char *text);
    /** Emit a double value; NaN and infinities emit null. */
    void value(double number);
    /** Emit an unsigned integer value. */
    void value(std::uint64_t number);
    /** Emit a signed integer value. */
    void value(std::int64_t number);
    /** Emit an int value (disambiguates integer literals). */
    void value(int number);
    /** Emit a boolean value. */
    void value(bool flag);
    /** Emit a null value. */
    void null();

    /**
     * Emit @p text verbatim as a value.  The caller guarantees it is
     * one complete, valid JSON value (the packet tracer uses this to
     * splice preformatted `args` objects into trace events).
     */
    void rawValue(std::string_view text);

    /** key() + value() in one call. */
    template <typename V>
    void field(std::string_view name, V &&v)
    {
        key(name);
        value(std::forward<V>(v));
    }

    /** Finish the document with a trailing newline (idempotent). */
    void finish();

  private:
    enum class Scope { Object, Array };

    /** Pre-value bookkeeping: commas, indentation, key checks. */
    void beforeValue();

    /** Newline plus current indentation. */
    void newline();

    /** Emit @p text JSON-escaped and quoted. */
    void quoted(std::string_view text);

    std::ostream &out;
    std::vector<Scope> stack;
    std::vector<bool> hasItems; ///< per scope: wrote an item yet?
    bool keyPending = false;
    bool finished = false;
};

} // namespace damq

#endif // DAMQ_COMMON_JSON_WRITER_HH

/**
 * @file
 * Small integer helpers used by topology math (radix digits, powers).
 */

#ifndef DAMQ_COMMON_BIT_UTIL_HH
#define DAMQ_COMMON_BIT_UTIL_HH

#include <cstdint>

#include "common/logging.hh"

namespace damq {

/** True iff @p x is a power of two. */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log2(x); @p x must be positive. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    unsigned result = 0;
    while (x > 1) {
        x >>= 1;
        ++result;
    }
    return result;
}

/**
 * Number of base-@p radix digits needed to express values in
 * [0, total); i.e., log_radix(total).  @p total must be an exact
 * power of @p radix — the Omega network requires it.
 */
inline unsigned
exactLogBase(std::uint64_t total, std::uint64_t radix)
{
    damq_assert(radix >= 2, "radix must be at least 2");
    unsigned digits = 0;
    std::uint64_t value = 1;
    while (value < total) {
        value *= radix;
        ++digits;
    }
    damq_assert(value == total,
                total, " is not an exact power of ", radix);
    return digits;
}

/** Integer power: base^exp. */
constexpr std::uint64_t
ipow(std::uint64_t base, unsigned exp)
{
    std::uint64_t result = 1;
    while (exp-- > 0)
        result *= base;
    return result;
}

/**
 * Extract the base-@p radix digit of @p value at position @p pos,
 * where position 0 is the *most significant* of @p ndigits digits.
 * This is the order in which a multistage network consumes
 * destination digits, one per stage.
 */
inline std::uint32_t
radixDigitMsbFirst(std::uint64_t value, std::uint64_t radix,
                   unsigned ndigits, unsigned pos)
{
    damq_assert(pos < ndigits, "digit position out of range");
    const std::uint64_t shift = ipow(radix, ndigits - 1 - pos);
    return static_cast<std::uint32_t>((value / shift) % radix);
}

} // namespace damq

#endif // DAMQ_COMMON_BIT_UTIL_HH

/**
 * @file
 * String formatting helpers shared by the stats tables and examples.
 */

#ifndef DAMQ_COMMON_STRING_UTIL_HH
#define DAMQ_COMMON_STRING_UTIL_HH

#include <string>
#include <vector>

namespace damq {

/** Format @p value with @p decimals digits after the point. */
std::string formatFixed(double value, int decimals);

/**
 * Format a probability the way Table 2 of the paper does: values
 * that are positive but would round to 0 at three decimals print as
 * "0+", an exact zero prints as "0", everything else prints with
 * three decimals.
 */
std::string formatProbabilityPaperStyle(double p);

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &text, char sep);

/** Lower-case ASCII copy of @p text. */
std::string toLower(std::string text);

/** Pad @p text with spaces on the left to width @p width. */
std::string padLeft(const std::string &text, std::size_t width);

/** Pad @p text with spaces on the right to width @p width. */
std::string padRight(const std::string &text, std::size_t width);

} // namespace damq

#endif // DAMQ_COMMON_STRING_UTIL_HH

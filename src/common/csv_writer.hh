/**
 * @file
 * Minimal CSV result sink for the sweep runner.
 *
 * Some downstream tooling (spreadsheets, pandas one-liners) wants
 * flat tables rather than the nested BENCH_*.json documents.  The
 * writer emits RFC-4180-style CSV: a header row, then one row per
 * record, fields quoted only when they contain a comma, quote, or
 * newline.  Numbers are formatted by the caller so the CSV spelling
 * matches the JSON spelling exactly.
 */

#ifndef DAMQ_COMMON_CSV_WRITER_HH
#define DAMQ_COMMON_CSV_WRITER_HH

#include <ostream>
#include <string>
#include <vector>

namespace damq {

/** Streams one CSV table to an ostream. */
class CsvWriter
{
  public:
    /** Write to @p out; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream &out);

    /** Emit the header row (call once, first). */
    void header(const std::vector<std::string> &columns);

    /** Emit one data row; must match the header's column count. */
    void row(const std::vector<std::string> &fields);

  private:
    /** Emit one line, quoting fields as needed. */
    void line(const std::vector<std::string> &fields);

    std::ostream &out;
    std::size_t columns_ = 0;
    bool wroteHeader = false;
};

} // namespace damq

#endif // DAMQ_COMMON_CSV_WRITER_HH

/**
 * @file
 * One case-insensitive, allocation-free enum parser for every
 * name<->value enum in the project.
 *
 * Each enum declares a static table of EnumName entries; both the
 * forward map (enumValueName) and the parser (parseEnumName) walk
 * that one table, so a spelling can never be accepted by the parser
 * and then printed differently (or vice versa).  This replaced five
 * hand-rolled toLower + if-chain parsers that had drifted apart in
 * style.
 *
 * The parser compares ASCII case-insensitively on string_view —
 * no temporary lower-cased std::string per lookup.
 */

#ifndef DAMQ_COMMON_ENUM_PARSE_HH
#define DAMQ_COMMON_ENUM_PARSE_HH

#include <cstddef>
#include <optional>
#include <string_view>

namespace damq {

/** One accepted spelling of one enum value. */
template <typename E>
struct EnumName
{
    E value;
    std::string_view name; ///< canonical (lower-case) spelling
};

namespace detail {

/** ASCII lower-case of one character. */
constexpr char
asciiLower(char c)
{
    return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

/** ASCII case-insensitive equality. */
constexpr bool
equalsIgnoreCase(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (asciiLower(a[i]) != asciiLower(b[i]))
            return false;
    }
    return true;
}

} // namespace detail

/**
 * Parse @p text against @p table (ASCII case-insensitive).
 * Returns std::nullopt on an unknown name, so front-ends can print
 * their own usage text and exit cleanly.
 */
template <typename E, std::size_t N>
constexpr std::optional<E>
parseEnumName(std::string_view text, const EnumName<E> (&table)[N])
{
    for (const EnumName<E> &entry : table) {
        if (detail::equalsIgnoreCase(text, entry.name))
            return entry.value;
    }
    return std::nullopt;
}

/**
 * Canonical spelling of @p value per @p table, or @p fallback when
 * the value is not listed (callers that enumerate exhaustively can
 * pass nullptr and panic on it).
 */
template <typename E, std::size_t N>
constexpr const char *
enumValueName(E value, const EnumName<E> (&table)[N],
              const char *fallback = nullptr)
{
    for (const EnumName<E> &entry : table) {
        if (entry.value == value)
            return entry.name.data();
    }
    return fallback;
}

} // namespace damq

#endif // DAMQ_COMMON_ENUM_PARSE_HH

#include "common/json_writer.hh"

#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace damq {

std::string
formatJsonNumber(double number)
{
    if (!std::isfinite(number))
        return "null";
    std::ostringstream text;
    text << std::setprecision(
                std::numeric_limits<double>::max_digits10)
         << number;
    return text.str();
}

JsonWriter::JsonWriter(std::ostream &out) : out(out) {}

void
JsonWriter::beforeValue()
{
    damq_assert(!finished, "JSON document already finished");
    if (stack.empty())
        return;
    if (stack.back() == Scope::Object) {
        damq_assert(keyPending,
                    "JSON object values need a key() first");
        keyPending = false;
        return;
    }
    if (hasItems.back())
        out << ',';
    hasItems.back() = true;
    newline();
}

void
JsonWriter::newline()
{
    out << '\n';
    for (std::size_t i = 0; i < stack.size(); ++i)
        out << "  ";
}

void
JsonWriter::quoted(std::string_view text)
{
    out << '"';
    for (const char c : text) {
        switch (c) {
          case '"':
            out << "\\\"";
            break;
          case '\\':
            out << "\\\\";
            break;
          case '\n':
            out << "\\n";
            break;
          case '\t':
            out << "\\t";
            break;
          case '\r':
            out << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream esc;
                esc << "\\u" << std::hex << std::setw(4)
                    << std::setfill('0') << static_cast<int>(c);
                out << esc.str();
            } else {
                out << c;
            }
        }
    }
    out << '"';
}

void
JsonWriter::beginObject()
{
    beforeValue();
    out << '{';
    stack.push_back(Scope::Object);
    hasItems.push_back(false);
}

void
JsonWriter::endObject()
{
    damq_assert(!stack.empty() && stack.back() == Scope::Object,
                "endObject outside an object");
    damq_assert(!keyPending, "dangling key at endObject");
    const bool items = hasItems.back();
    stack.pop_back();
    hasItems.pop_back();
    if (items)
        newline();
    out << '}';
    if (stack.empty())
        finish();
}

void
JsonWriter::beginArray()
{
    beforeValue();
    out << '[';
    stack.push_back(Scope::Array);
    hasItems.push_back(false);
}

void
JsonWriter::endArray()
{
    damq_assert(!stack.empty() && stack.back() == Scope::Array,
                "endArray outside an array");
    const bool items = hasItems.back();
    stack.pop_back();
    hasItems.pop_back();
    if (items)
        newline();
    out << ']';
    if (stack.empty())
        finish();
}

void
JsonWriter::key(std::string_view name)
{
    damq_assert(!stack.empty() && stack.back() == Scope::Object,
                "key() outside an object");
    damq_assert(!keyPending, "two keys in a row");
    if (hasItems.back())
        out << ',';
    hasItems.back() = true;
    newline();
    quoted(name);
    out << ": ";
    keyPending = true;
}

void
JsonWriter::value(std::string_view text)
{
    beforeValue();
    quoted(text);
}

void
JsonWriter::value(const char *text)
{
    value(std::string_view(text));
}

void
JsonWriter::value(double number)
{
    if (!std::isfinite(number)) {
        null();
        return;
    }
    beforeValue();
    out << formatJsonNumber(number);
}

void
JsonWriter::value(std::uint64_t number)
{
    beforeValue();
    out << number;
}

void
JsonWriter::value(std::int64_t number)
{
    beforeValue();
    out << number;
}

void
JsonWriter::value(int number)
{
    value(static_cast<std::int64_t>(number));
}

void
JsonWriter::value(bool flag)
{
    beforeValue();
    out << (flag ? "true" : "false");
}

void
JsonWriter::null()
{
    beforeValue();
    out << "null";
}

void
JsonWriter::rawValue(std::string_view text)
{
    beforeValue();
    out << text;
}

void
JsonWriter::finish()
{
    if (finished)
        return;
    damq_assert(stack.empty(), "finish() inside an open scope");
    out << '\n';
    finished = true;
}

} // namespace damq

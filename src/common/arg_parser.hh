/**
 * @file
 * A minimal command-line option parser for the example programs and
 * bench harnesses.  Supports `--name value` and `--name=value` forms
 * plus boolean flags, with typed accessors and a generated usage
 * string.
 */

#ifndef DAMQ_COMMON_ARG_PARSER_HH
#define DAMQ_COMMON_ARG_PARSER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace damq {

/**
 * Declarative option table + parser.  Typical use:
 *
 * @code
 * ArgParser args("omega_network", "Run a 64x64 Omega simulation");
 * args.addOption("buffer", "damq", "buffer type: fifo|samq|safc|damq");
 * args.addOption("load", "0.5", "offered load in [0,1]");
 * args.addFlag("verbose", "print per-cycle events");
 * args.parse(argc, argv);   // exits with usage on error or --help
 * double load = args.getDouble("load");
 * @endcode
 */
class ArgParser
{
  public:
    /** @param program  name shown in the usage banner.
     *  @param summary  one-line description of the program. */
    ArgParser(std::string program, std::string summary);

    /** Declare a value option with a default. */
    void addOption(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Declare a boolean flag (defaults to false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse the command line.  Unknown options, malformed values, or
     * `--help` print usage; `--help` exits 0, errors exit 1.
     */
    void parse(int argc, char **argv);

    /** String value of option @p name (declared default if unset). */
    std::string getString(const std::string &name) const;

    /** Value of @p name parsed as a long integer. */
    std::int64_t getInt(const std::string &name) const;

    /** Value of @p name parsed as a double. */
    double getDouble(const std::string &name) const;

    /** True iff flag @p name was given. */
    bool getFlag(const std::string &name) const;

    /**
     * True iff @p name appeared on the parsed command line (as
     * opposed to holding its declared default).  Lets callers layer
     * CLI overrides on top of per-program defaults: apply the value
     * only when the user actually typed the option.
     */
    bool wasSet(const std::string &name) const;

    /** Render the usage/help text. */
    std::string usage() const;

  private:
    struct Option
    {
        std::string name;
        std::string value;
        std::string help;
        bool isFlag = false;
        bool set = false; ///< appeared on the command line
    };

    const Option &find(const std::string &name) const;
    Option &findMutable(const std::string &name);

    std::string program;
    std::string summary;
    std::vector<Option> options;
};

} // namespace damq

#endif // DAMQ_COMMON_ARG_PARSER_HH

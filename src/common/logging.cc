#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

namespace damq {
namespace detail {

namespace {

/** Render one diagnostic line with a severity tag and location. */
void
emit(const char *tag, const char *file, int line,
     const std::string &message)
{
    std::cerr << tag << ": " << message << "\n"
              << "  at " << file << ":" << line << std::endl;
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &message)
{
    emit("panic", file, line, message);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &message)
{
    emit("fatal", file, line, message);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &message)
{
    emit("warn", file, line, message);
}

void
informImpl(const std::string &message)
{
    std::cerr << "info: " << message << std::endl;
}

} // namespace detail
} // namespace damq

#include "common/random.hh"

#include "common/logging.hh"

namespace damq {

namespace {

/** Rotate @p x left by @p k bits. */
inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
deriveTaskSeed(std::uint64_t base_seed, std::uint64_t task_index)
{
    // Decorrelate (base, index) pairs by pushing both words through
    // SplitMix64: seeding with base XOR a golden-ratio multiple of
    // the index keeps nearby indices far apart in the output space.
    SplitMix64 sm(base_seed ^
                  (task_index + 1) * 0x9e3779b97f4a7c15ULL);
    sm.next();
    return sm.next();
}

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : state)
        word = sm.next();
}

Xoshiro256StarStar::result_type
Xoshiro256StarStar::operator()()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Random::uniform()
{
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

bool
Random::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Random::below(std::uint64_t bound)
{
    damq_assert(bound > 0, "Random::below needs a positive bound");
    // Lemire's method: multiply-shift with a rejection zone that
    // removes modulo bias.
    std::uint64_t x = engine();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = engine();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Random::range(std::int64_t lo, std::int64_t hi)
{
    damq_assert(lo <= hi, "Random::range needs lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

} // namespace damq

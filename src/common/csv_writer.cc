#include "common/csv_writer.hh"

#include "common/logging.hh"

namespace damq {

CsvWriter::CsvWriter(std::ostream &out) : out(out) {}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    damq_assert(!wroteHeader, "CSV header written twice");
    columns_ = columns.size();
    wroteHeader = true;
    line(columns);
}

void
CsvWriter::row(const std::vector<std::string> &fields)
{
    damq_assert(wroteHeader, "CSV row before header");
    damq_assert(fields.size() == columns_, "CSV row has ",
                fields.size(), " fields, header has ", columns_);
    line(fields);
}

void
CsvWriter::line(const std::vector<std::string> &fields)
{
    bool first = true;
    for (const std::string &field : fields) {
        if (!first)
            out << ',';
        first = false;
        const bool needs_quotes =
            field.find_first_of(",\"\n\r") != std::string::npos;
        if (!needs_quotes) {
            out << field;
            continue;
        }
        out << '"';
        for (const char c : field) {
            if (c == '"')
                out << '"';
            out << c;
        }
        out << '"';
    }
    out << '\n';
}

} // namespace damq

#include "common/arg_parser.hh"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <utility>

#include "common/logging.hh"

namespace damq {

ArgParser::ArgParser(std::string program, std::string summary)
    : program(std::move(program)), summary(std::move(summary))
{
}

void
ArgParser::addOption(const std::string &name, const std::string &def,
                     const std::string &help)
{
    options.push_back(Option{name, def, help, false});
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    options.push_back(Option{name, "0", help, true});
}

const ArgParser::Option &
ArgParser::find(const std::string &name) const
{
    for (const auto &opt : options) {
        if (opt.name == name)
            return opt;
    }
    damq_panic("option '", name, "' was never declared");
}

ArgParser::Option &
ArgParser::findMutable(const std::string &name)
{
    for (auto &opt : options) {
        if (opt.name == name)
            return opt;
    }
    damq_panic("option '", name, "' was never declared");
}

void
ArgParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << usage();
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0) {
            std::cerr << "unexpected argument '" << arg << "'\n"
                      << usage();
            std::exit(1);
        }
        arg = arg.substr(2);

        std::string name = arg;
        std::string value;
        bool have_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            have_value = true;
        }

        bool declared = false;
        for (const auto &opt : options)
            declared = declared || opt.name == name;
        if (!declared) {
            std::cerr << "unknown option '--" << name << "'\n" << usage();
            std::exit(1);
        }

        Option &opt = findMutable(name);
        opt.set = true;
        if (opt.isFlag) {
            opt.value = have_value ? value : "1";
        } else {
            if (!have_value) {
                if (i + 1 >= argc) {
                    std::cerr << "option '--" << name
                              << "' needs a value\n" << usage();
                    std::exit(1);
                }
                value = argv[++i];
            }
            opt.value = value;
        }
    }
}

std::string
ArgParser::getString(const std::string &name) const
{
    return find(name).value;
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    const auto &opt = find(name);
    char *end = nullptr;
    const long long v = std::strtoll(opt.value.c_str(), &end, 0);
    if (end == opt.value.c_str() || *end != '\0')
        damq_fatal("option '--", name, "' expects an integer, got '",
                   opt.value, "'");
    return v;
}

double
ArgParser::getDouble(const std::string &name) const
{
    const auto &opt = find(name);
    char *end = nullptr;
    const double v = std::strtod(opt.value.c_str(), &end);
    if (end == opt.value.c_str() || *end != '\0')
        damq_fatal("option '--", name, "' expects a number, got '",
                   opt.value, "'");
    return v;
}

bool
ArgParser::wasSet(const std::string &name) const
{
    return find(name).set;
}

bool
ArgParser::getFlag(const std::string &name) const
{
    const auto &opt = find(name);
    return opt.value != "0" && opt.value != "";
}

std::string
ArgParser::usage() const
{
    std::ostringstream oss;
    oss << program << " - " << summary << "\n\noptions:\n";
    for (const auto &opt : options) {
        oss << "  --" << opt.name;
        if (!opt.isFlag)
            oss << " <value>  (default: " << opt.value << ")";
        oss << "\n      " << opt.help << "\n";
    }
    oss << "  --help\n      show this message\n";
    return oss.str();
}

} // namespace damq

/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * The severity split follows the gem5 convention:
 *   - panic():  an internal invariant was violated (a bug in this
 *               library).  Aborts, so a debugger can catch it.
 *   - fatal():  the *user* asked for something impossible (bad
 *               configuration, invalid arguments).  Exits cleanly.
 *   - warn():   something works but deserves the user's attention.
 *   - inform(): neutral status output.
 */

#ifndef DAMQ_COMMON_LOGGING_HH
#define DAMQ_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace damq {

namespace detail {

/** Terminate with an "internal error" banner; used by panic(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);

/** Terminate with a "user error" banner; used by fatal(). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);

/** Print a warning banner to stderr. */
void warnImpl(const char *file, int line, const std::string &message);

/** Print an informational message to stderr. */
void informImpl(const std::string &message);

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

} // namespace damq

/**
 * Report an internal inconsistency (a bug) and abort.
 * Accepts any sequence of ostream-able values.
 */
#define damq_panic(...)                                                     \
    ::damq::detail::panicImpl(__FILE__, __LINE__,                           \
                              ::damq::detail::concat(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit(1). */
#define damq_fatal(...)                                                     \
    ::damq::detail::fatalImpl(__FILE__, __LINE__,                           \
                              ::damq::detail::concat(__VA_ARGS__))

/** Print a warning that does not stop the program. */
#define damq_warn(...)                                                      \
    ::damq::detail::warnImpl(__FILE__, __LINE__,                            \
                             ::damq::detail::concat(__VA_ARGS__))

/** Print a status message. */
#define damq_inform(...)                                                    \
    ::damq::detail::informImpl(::damq::detail::concat(__VA_ARGS__))

/**
 * Check an invariant that must hold regardless of user input.
 * Unlike assert(), this is active in release builds: the simulators'
 * correctness claims rest on these checks.
 */
#define damq_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::damq::detail::panicImpl(                                      \
                __FILE__, __LINE__,                                         \
                ::damq::detail::concat("assertion '", #cond,                \
                                       "' failed: ", ##__VA_ARGS__));       \
        }                                                                   \
    } while (0)

#endif // DAMQ_COMMON_LOGGING_HH

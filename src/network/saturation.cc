#include "network/saturation.hh"

namespace damq {

std::vector<SweepPoint>
sweepLoads(const NetworkConfig &config, const std::vector<double> &loads)
{
    std::vector<SweepPoint> curve;
    curve.reserve(loads.size());
    for (const double load : loads) {
        NetworkConfig point = config;
        point.offeredLoad = load;
        NetworkSimulator sim(point);
        const NetworkResult result = sim.run();

        SweepPoint sp;
        sp.offeredLoad = load;
        sp.deliveredThroughput = result.deliveredThroughput;
        sp.avgLatencyClocks = result.latencyClocks.mean();
        sp.p99LatencyClocks = result.latencyClocks.mean() +
                              2.33 * result.latencyClocks.stddev();
        sp.discardFraction = result.discardFraction;
        curve.push_back(sp);
    }
    return curve;
}

SaturationSummary
measureSaturation(const NetworkConfig &config)
{
    NetworkConfig full = config;
    full.offeredLoad = 1.0;
    NetworkSimulator sim(full);
    const NetworkResult result = sim.run();

    SaturationSummary summary;
    summary.saturationThroughput = result.deliveredThroughput;
    summary.saturatedLatencyClocks = result.latencyClocks.mean();
    return summary;
}

double
latencyAtLoad(const NetworkConfig &config, double load)
{
    NetworkConfig point = config;
    point.offeredLoad = load;
    NetworkSimulator sim(point);
    return sim.run().latencyClocks.mean();
}

} // namespace damq

#include "network/saturation.hh"

namespace damq {

// One definition of each sweep per simulator family, so the many
// benches and tests that sweep loads share object code.

template std::vector<SweepPoint> sweepLoads(
    const NetworkConfig &, const std::vector<double> &);
template std::vector<SweepPoint> sweepLoads(
    const MeshConfig &, const std::vector<double> &);
template std::vector<SweepPoint> sweepLoads(
    const TorusConfig &, const std::vector<double> &);
template std::vector<SweepPoint> sweepLoads(
    const CutThroughConfig &, const std::vector<double> &);
template std::vector<SweepPoint> sweepLoads(
    const VarLenConfig &, const std::vector<double> &);

template SaturationSummary measureSaturation(const NetworkConfig &);
template SaturationSummary measureSaturation(const MeshConfig &);
template SaturationSummary measureSaturation(const TorusConfig &);
template SaturationSummary measureSaturation(
    const CutThroughConfig &);
template SaturationSummary measureSaturation(const VarLenConfig &);

template double latencyAtLoad(const NetworkConfig &, double);
template double latencyAtLoad(const MeshConfig &, double);
template double latencyAtLoad(const TorusConfig &, double);
template double latencyAtLoad(const CutThroughConfig &, double);
template double latencyAtLoad(const VarLenConfig &, double);

} // namespace damq

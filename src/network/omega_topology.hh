/**
 * @file
 * Omega multistage interconnection network topology (Lawrie, 1975):
 * N inputs and N outputs connected through log_r(N) stages of r x r
 * switches, with a perfect-shuffle interconnection in front of each
 * stage.  Routing is digit-controlled: at stage k the switch output
 * port equals the k-th most significant base-r digit of the
 * destination address.
 *
 * Line numbering: within a stage, the N "lines" are numbered
 * 0..N-1; switch s owns lines s*r .. s*r+r-1 (line = s*r + port).
 * The perfect shuffle rotates the base-r digits of a line number
 * left by one position.
 */

#ifndef DAMQ_NETWORK_OMEGA_TOPOLOGY_HH
#define DAMQ_NETWORK_OMEGA_TOPOLOGY_HH

#include <cstdint>

#include "common/types.hh"

namespace damq {

/** A (switch, port) coordinate inside one stage. */
struct StageCoord
{
    std::uint32_t switchIndex = 0;
    PortId port = 0;
};

/** Immutable description of an N x N radix-r Omega network. */
class OmegaTopology
{
  public:
    /**
     * @param num_ports N (must be an exact power of @p radix).
     * @param radix     switch degree r.
     */
    OmegaTopology(std::uint32_t num_ports, std::uint32_t radix);

    /** Endpoints on each side. */
    std::uint32_t numPorts() const { return ports; }

    /** Switch degree. */
    std::uint32_t radix() const { return degree; }

    /** Number of switch stages, log_r(N). */
    std::uint32_t numStages() const { return stages; }

    /** Switches per stage, N / r. */
    std::uint32_t switchesPerStage() const { return ports / degree; }

    /** Perfect shuffle of line @p line (base-r left digit rotation). */
    std::uint32_t shuffle(std::uint32_t line) const;

    /** Where source @p src enters stage 0 (through one shuffle). */
    StageCoord firstStageInput(NodeId src) const;

    /**
     * Where output @p port of switch @p switch_index in stage
     * @p stage lands in stage+1 (through one shuffle).  @p stage
     * must not be the last stage.
     */
    StageCoord nextStageInput(std::uint32_t stage,
                              std::uint32_t switch_index,
                              PortId port) const;

    /** Endpoint fed by output @p port of last-stage switch. */
    NodeId sinkFor(std::uint32_t switch_index, PortId port) const;

    /**
     * Output port a packet for destination @p dest takes at stage
     * @p stage (the stage-th most significant base-r digit).
     */
    PortId outputPortFor(NodeId dest, std::uint32_t stage) const;

  private:
    std::uint32_t ports;
    std::uint32_t degree;
    std::uint32_t stages;
};

} // namespace damq

#endif // DAMQ_NETWORK_OMEGA_TOPOLOGY_HH

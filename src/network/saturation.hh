/**
 * @file
 * Load sweeps and saturation measurement.
 *
 * The paper (after Pfister & Norton) characterizes each network by
 * its latency-vs-throughput curve: nearly flat latency up to a
 * knee, then a near-vertical wall at the *saturation throughput* —
 * the highest rate the network can actually deliver.  We measure
 * saturation by offering full load (every source generates every
 * cycle) and recording what comes out the other side; the blocking
 * protocol's source queues absorb the excess, so the delivered rate
 * converges to the network's capacity.
 */

#ifndef DAMQ_NETWORK_SATURATION_HH
#define DAMQ_NETWORK_SATURATION_HH

#include <vector>

#include "network/network_sim.hh"

namespace damq {

/** One point of a latency/throughput curve. */
struct SweepPoint
{
    double offeredLoad = 0.0;
    double deliveredThroughput = 0.0;
    double avgLatencyClocks = 0.0;
    double p99LatencyClocks = 0.0; ///< upper tail via mean+2.33*sd proxy
    double discardFraction = 0.0;
};

/** Saturation characteristics of one configuration. */
struct SaturationSummary
{
    /** Delivered throughput under full offered load. */
    double saturationThroughput = 0.0;

    /** Mean in-network latency (clocks) under full offered load. */
    double saturatedLatencyClocks = 0.0;
};

/**
 * Run @p config once per load in @p loads (same seed each time) and
 * collect the latency/throughput curve.
 */
std::vector<SweepPoint> sweepLoads(const NetworkConfig &config,
                                   const std::vector<double> &loads);

/** Measure saturation by running @p config at offered load 1.0. */
SaturationSummary measureSaturation(const NetworkConfig &config);

/** Mean in-network latency (clocks) of @p config at @p load. */
double latencyAtLoad(const NetworkConfig &config, double load);

} // namespace damq

#endif // DAMQ_NETWORK_SATURATION_HH

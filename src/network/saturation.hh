/**
 * @file
 * Load sweeps and saturation measurement for any core-based
 * simulator.
 *
 * The paper (after Pfister & Norton) characterizes each network by
 * its latency-vs-throughput curve: nearly flat latency up to a
 * knee, then a near-vertical wall at the *saturation throughput* —
 * the highest rate the network can actually deliver.  We measure
 * saturation by offering full load (every source generates every
 * cycle) and recording what comes out the other side; the blocking
 * protocol's source queues absorb the excess, so the delivered rate
 * converges to the network's capacity.
 *
 * The sweep machinery is generic: SaturationTraits<Config> maps a
 * simulator's config/result pair onto the load knob and the three
 * curve quantities, so the same sweepLoads/measureSaturation/
 * latencyAtLoad functions drive the Omega network, the mesh, the
 * torus, the clock-granularity cut-through model, and the
 * variable-length model.  Latency units follow the simulator
 * (clocks for the Omega-network models, cycles for mesh/torus);
 * within one config family the curve is self-consistent.
 */

#ifndef DAMQ_NETWORK_SATURATION_HH
#define DAMQ_NETWORK_SATURATION_HH

#include <vector>

#include "network/cutthrough_sim.hh"
#include "network/mesh_sim.hh"
#include "network/network_sim.hh"
#include "network/torus_sim.hh"
#include "network/varlen_sim.hh"

namespace damq {

/** One point of a latency/throughput curve. */
struct SweepPoint
{
    double offeredLoad = 0.0;
    double deliveredThroughput = 0.0;
    double avgLatencyClocks = 0.0;
    double p99LatencyClocks = 0.0; ///< upper tail via mean+2.33*sd proxy
    double discardFraction = 0.0;
};

/** Saturation characteristics of one configuration. */
struct SaturationSummary
{
    /** Delivered throughput under full offered load. */
    double saturationThroughput = 0.0;

    /** Mean in-network latency (clocks) under full offered load. */
    double saturatedLatencyClocks = 0.0;
};

/**
 * Adapter from a simulator's (Config, Result) pair to the sweep
 * machinery: which field is the load knob, and where the delivered
 * throughput / latency distribution / discard fraction live in the
 * result.  Specialized for every public simulator config.
 */
template <typename Config>
struct SaturationTraits;

template <>
struct SaturationTraits<NetworkConfig>
{
    using Simulator = NetworkSimulator;
    static void setLoad(NetworkConfig &c, double load)
    {
        c.offeredLoad = load;
    }
    static double throughput(const NetworkResult &r)
    {
        return r.deliveredThroughput;
    }
    static const RunningStats &latency(const NetworkResult &r)
    {
        return r.latencyClocks;
    }
    static double discardFraction(const NetworkResult &r)
    {
        return r.discardFraction;
    }
};

template <>
struct SaturationTraits<MeshConfig>
{
    using Simulator = MeshSimulator;
    static void setLoad(MeshConfig &c, double load)
    {
        c.offeredLoad = load;
    }
    static double throughput(const MeshResult &r)
    {
        return r.deliveredThroughput;
    }
    static const RunningStats &latency(const MeshResult &r)
    {
        return r.latencyCycles;
    }
    static double discardFraction(const MeshResult &r)
    {
        return r.discardFraction;
    }
};

template <>
struct SaturationTraits<TorusConfig>
{
    using Simulator = TorusSimulator;
    static void setLoad(TorusConfig &c, double load)
    {
        c.offeredLoad = load;
    }
    static double throughput(const TorusResult &r)
    {
        return r.deliveredThroughput;
    }
    static const RunningStats &latency(const TorusResult &r)
    {
        return r.latencyCycles;
    }
    static double discardFraction(const TorusResult &r)
    {
        return r.discardFraction;
    }
};

template <>
struct SaturationTraits<CutThroughConfig>
{
    using Simulator = CutThroughSimulator;
    static void setLoad(CutThroughConfig &c, double load)
    {
        c.offeredLoad = load;
    }
    static double throughput(const CutThroughResult &r)
    {
        return r.deliveredLoad;
    }
    static const RunningStats &latency(const CutThroughResult &r)
    {
        return r.latencyClocks;
    }
    static double discardFraction(const CutThroughResult &r)
    {
        return r.generated == 0
                   ? 0.0
                   : static_cast<double>(r.discarded) /
                         static_cast<double>(r.generated);
    }
};

template <>
struct SaturationTraits<VarLenConfig>
{
    using Simulator = VarLenNetworkSimulator;
    static void setLoad(VarLenConfig &c, double load)
    {
        c.offeredSlotLoad = load;
    }
    static double throughput(const VarLenResult &r)
    {
        return r.deliveredSlotThroughput;
    }
    static const RunningStats &latency(const VarLenResult &r)
    {
        return r.latencyClocks;
    }
    static double discardFraction(const VarLenResult &)
    {
        return 0.0; // blocking only: nothing is ever discarded
    }
};

/**
 * Run @p config once per load in @p loads (same seed each time) and
 * collect the latency/throughput curve.
 */
template <typename Config>
std::vector<SweepPoint>
sweepLoads(const Config &config, const std::vector<double> &loads)
{
    using Traits = SaturationTraits<Config>;
    std::vector<SweepPoint> curve;
    curve.reserve(loads.size());
    for (const double load : loads) {
        Config point = config;
        Traits::setLoad(point, load);
        typename Traits::Simulator sim(point);
        const auto result = sim.run();
        const RunningStats &lat = Traits::latency(result);

        SweepPoint sp;
        sp.offeredLoad = load;
        sp.deliveredThroughput = Traits::throughput(result);
        sp.avgLatencyClocks = lat.mean();
        sp.p99LatencyClocks = lat.mean() + 2.33 * lat.stddev();
        sp.discardFraction = Traits::discardFraction(result);
        curve.push_back(sp);
    }
    return curve;
}

/** Measure saturation by running @p config at offered load 1.0. */
template <typename Config>
SaturationSummary
measureSaturation(const Config &config)
{
    using Traits = SaturationTraits<Config>;
    Config full = config;
    Traits::setLoad(full, 1.0);
    typename Traits::Simulator sim(full);
    const auto result = sim.run();

    SaturationSummary summary;
    summary.saturationThroughput = Traits::throughput(result);
    summary.saturatedLatencyClocks = Traits::latency(result).mean();
    return summary;
}

/** Mean in-network latency of @p config at @p load. */
template <typename Config>
double
latencyAtLoad(const Config &config, double load)
{
    using Traits = SaturationTraits<Config>;
    Config point = config;
    Traits::setLoad(point, load);
    typename Traits::Simulator sim(point);
    return Traits::latency(sim.run()).mean();
}

extern template std::vector<SweepPoint> sweepLoads(
    const NetworkConfig &, const std::vector<double> &);
extern template std::vector<SweepPoint> sweepLoads(
    const MeshConfig &, const std::vector<double> &);
extern template std::vector<SweepPoint> sweepLoads(
    const TorusConfig &, const std::vector<double> &);
extern template std::vector<SweepPoint> sweepLoads(
    const CutThroughConfig &, const std::vector<double> &);
extern template std::vector<SweepPoint> sweepLoads(
    const VarLenConfig &, const std::vector<double> &);

extern template SaturationSummary measureSaturation(
    const NetworkConfig &);
extern template SaturationSummary measureSaturation(
    const MeshConfig &);
extern template SaturationSummary measureSaturation(
    const TorusConfig &);
extern template SaturationSummary measureSaturation(
    const CutThroughConfig &);
extern template SaturationSummary measureSaturation(
    const VarLenConfig &);

extern template double latencyAtLoad(const NetworkConfig &, double);
extern template double latencyAtLoad(const MeshConfig &, double);
extern template double latencyAtLoad(const TorusConfig &, double);
extern template double latencyAtLoad(const CutThroughConfig &,
                                     double);
extern template double latencyAtLoad(const VarLenConfig &, double);

} // namespace damq

#endif // DAMQ_NETWORK_SATURATION_HH

#include "network/varlen_sim.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/string_util.hh"

namespace damq {

namespace {

/**
 * The variable-length engine drives its TrafficSource open loop
 * only (no delivery callback wiring), so the closed-loop / finite
 * workloads are rejected up front.
 */
core::WorkloadConfig
openLoopWorkload(const SimCommonConfig &common)
{
    const core::WorkloadKind kind = common.workload.kind;
    if (kind == core::WorkloadKind::Batch ||
        kind == core::WorkloadKind::ReqReply ||
        kind == core::WorkloadKind::Trace) {
        damq_fatal("the variable-length simulator only supports the "
                   "open-loop workloads (geometric/onoff/mmpp); ",
                   core::workloadKindName(kind),
                   " needs the synchronized engine");
    }
    return common.workload;
}

} // namespace

std::uint32_t
LengthDistribution::sample(Random &rng) const
{
    damq_assert(!weights.empty(), "empty length distribution");
    double total = 0.0;
    for (const double w : weights)
        total += w;
    damq_assert(total > 0.0, "length distribution has no mass");
    double draw = rng.uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw < 0.0)
            return static_cast<std::uint32_t>(i + 1);
    }
    return static_cast<std::uint32_t>(weights.size());
}

double
LengthDistribution::mean() const
{
    double total = 0.0;
    double weighted = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        total += weights[i];
        weighted += weights[i] * static_cast<double>(i + 1);
    }
    damq_assert(total > 0.0, "length distribution has no mass");
    return weighted / total;
}

VarLenNetworkSimulator::VarLenNetworkSimulator(const VarLenConfig &config)
    : core::SimEngine(config.common), cfg(config),
      topo(config.numPorts, config.radix),
      traffic(core::makeTrafficPattern(
                  config.traffic, config.numPorts,
                  config.hotSpotFraction, /*transpose_side=*/0,
                  config.common.seed),
              config.numPorts,
              // offeredSlotLoad = P(generate) * E[length]; invert
              // for the per-cycle packet generation probability.
              std::min(1.0, config.offeredSlotLoad /
                                config.lengths.mean()),
              openLoopWorkload(config.common)),
      sourceQueues(config.numPorts),
      sourceLinkBusyUntil(config.numPorts, 0)
{
    switches.resize(topo.numStages());
    linkState.resize(topo.numStages());
    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t i = 0; i < topo.switchesPerStage(); ++i) {
            switches[stage].push_back(std::make_unique<SwitchModel>(
                cfg.radix, cfg.bufferType, cfg.slotsPerBuffer,
                cfg.arbitration, cfg.staleThreshold));
            SwitchLinkState state;
            state.outputBusyUntil.assign(cfg.radix, 0);
            state.readBusyUntil.assign(cfg.radix, 0);
            state.queueReadBusyUntil.assign(
                static_cast<std::size_t>(cfg.radix) * cfg.radix, 0);
            linkState[stage].push_back(std::move(state));
        }
    }

    initTelemetry();
}

void
VarLenNetworkSimulator::configureTelemetry(obs::Telemetry &t)
{
    // Same trace row layout as NetworkSimulator: one process per
    // stage plus an "endpoints" pseudo-process.
    endpointPid = static_cast<std::int64_t>(topo.numStages());
    obs::PacketTracer *tracer = t.trace();
    if (tracer) {
        for (std::uint32_t stage = 0; stage < topo.numStages();
             ++stage)
            tracer->setProcessName(stage,
                                   detail::concat("stage", stage));
        tracer->setProcessName(endpointPid, "endpoints");
    }

    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t idx = 0; idx < topo.switchesPerStage();
             ++idx) {
            switches[stage][idx]->forEachBuffer(
                [&](PortId port, BufferModel &buffer) {
                    const std::int64_t tid =
                        static_cast<std::int64_t>(idx) * cfg.radix +
                        port;
                    t.attachProbe(
                        buffer,
                        detail::concat("s", stage, ".sw", idx, ".in",
                                       port),
                        stage, tid);
                    if (tracer)
                        tracer->setThreadName(
                            stage, tid,
                            detail::concat("sw", idx, ".in", port));
                });
        }
    }

    t.addSampleHook([this]() {
        obs::MetricRegistry &m = telemetry->metrics();
        m.gauge("net.generated")
            .set(static_cast<double>(generated));
        m.gauge("net.delivered")
            .set(static_cast<double>(delivered));
        m.gauge("net.deliveredSlots")
            .set(static_cast<double>(deliveredSlotsTotal));
        m.gauge("net.inFlight")
            .set(static_cast<double>(packetsEverywhere()));

        std::uint64_t grants = 0;
        std::uint64_t stale = 0;
        for (const auto &stage : switches) {
            for (const auto &sw : stage) {
                const ArbiterStats &stats = sw->arbiterStats();
                grants += stats.grantsIssued;
                stale += stats.staleOverrides;
            }
        }
        m.gauge("arb.grants").set(static_cast<double>(grants));
        m.gauge("arb.staleOverrides")
            .set(static_cast<double>(stale));
    });
}

bool
VarLenNetworkSimulator::readPortFree(std::uint32_t stage,
                                     std::uint32_t sw, PortId input,
                                     PortId out) const
{
    const SwitchLinkState &state = linkState[stage][sw];
    if (cfg.bufferType == BufferType::Safc) {
        // SAFC has an independent read path per queue.
        return state.queueReadBusyUntil[input * cfg.radix + out] <=
               currentCycle;
    }
    return state.readBusyUntil[input] <= currentCycle;
}

void
VarLenNetworkSimulator::markReadBusy(std::uint32_t stage,
                                     std::uint32_t sw, PortId input,
                                     PortId out, Cycle until)
{
    SwitchLinkState &state = linkState[stage][sw];
    if (cfg.bufferType == BufferType::Safc) {
        state.queueReadBusyUntil[input * cfg.radix + out] = until;
    } else {
        state.readBusyUntil[input] = until;
    }
}

void
VarLenNetworkSimulator::phaseAdvance()
{
    completeTransfers();
    arbitrateAndLaunch();
}

void
VarLenNetworkSimulator::completeTransfers()
{
    auto finished = [this](const Transfer &t) {
        return t.completesAt <= currentCycle;
    };
    for (Transfer &t : inFlight) {
        if (!finished(t))
            continue;
        if (t.toSink) {
            damq_assert(t.packet.dest == t.sink,
                        "varlen: misrouted packet");
            ++delivered;
            deliveredSlotsTotal += t.packet.lengthSlots;
            if (telemetry) {
                if (obs::PacketTracer *tr = telemetry->trace())
                    tr->asyncEnd("pkt", "pkt", t.packet.id,
                                 currentCycle, endpointPid, t.sink);
            }
            if (measuring) {
                ++windowDeliveredPackets;
                windowDeliveredSlots += t.packet.lengthSlots;
                latencyClocks.add(
                    static_cast<double>(currentCycle -
                                        t.packet.injectedAt) *
                    static_cast<double>(kClocksPerNetworkCycle));
            }
        } else {
            SwitchModel &target = *switches[t.stage][t.dest.switchIndex];
            target.buffer(t.dest.port).pushReserved(t.packet);
        }
    }
    inFlight.erase(std::remove_if(inFlight.begin(), inFlight.end(),
                                  finished),
                   inFlight.end());
}

void
VarLenNetworkSimulator::arbitrateAndLaunch()
{
    const std::uint32_t last_stage = topo.numStages() - 1;

    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t idx = 0; idx < topo.switchesPerStage();
             ++idx) {
            SwitchModel &sw = *switches[stage][idx];
            SwitchLinkState &links = linkState[stage][idx];

            auto can_send = [&](PortId input, QueueKey key,
                                const Packet &pkt) {
                const PortId out = key.out;
                if (links.outputBusyUntil[out] > currentCycle)
                    return false;
                if (!readPortFree(stage, idx, input, out))
                    return false;
                if (stage == last_stage)
                    return true;
                const StageCoord next =
                    topo.nextStageInput(stage, idx, out);
                const PortId next_out =
                    topo.outputPortFor(pkt.dest, stage + 1);
                return switches[stage + 1][next.switchIndex]->canAccept(
                    next.port, next_out, pkt.lengthSlots);
            };

            const GrantList grants = sw.arbitrate(can_send);
            for (const Grant &g : grants) {
                Packet pkt = sw.buffer(g.input).pop(g.output);
                const Cycle busy_until =
                    currentCycle + pkt.lengthSlots;
                links.outputBusyUntil[g.output] = busy_until;
                markReadBusy(stage, idx, g.input, g.output,
                             busy_until);

                Transfer t;
                t.completesAt = busy_until;
                t.packet = pkt;
                if (stage == last_stage) {
                    t.toSink = true;
                    t.sink = topo.sinkFor(idx, g.output);
                } else {
                    t.toSink = false;
                    t.stage = stage + 1;
                    t.dest = topo.nextStageInput(stage, idx, g.output);
                    t.packet.outPort =
                        topo.outputPortFor(pkt.dest, stage + 1);
                    ++t.packet.hops;
                    const bool reserved =
                        switches[t.stage][t.dest.switchIndex]
                            ->buffer(t.dest.port)
                            .reserve(t.packet.outPort,
                                     t.packet.lengthSlots);
                    damq_assert(reserved,
                                "varlen: reservation failed after a "
                                "successful back-pressure check");
                }
                inFlight.push_back(t);
            }
        }
    }
}

void
VarLenNetworkSimulator::phaseInject()
{
    for (NodeId src = 0; src < cfg.numPorts; ++src) {
        if (traffic.shouldGenerate(src, currentCycle, rng)) {
            Packet pkt;
            pkt.id = nextPacketId++;
            pkt.source = src;
            pkt.dest = traffic.destinationFor(src, rng);
            pkt.lengthSlots = cfg.lengths.sample(rng);
            pkt.generatedAt = currentCycle;
            sourceQueues[src].push_back(pkt);
            ++generated;
            if (measuring)
                ++windowGenerated;
            if (telemetry) {
                if (obs::PacketTracer *tr = telemetry->trace())
                    tr->instant("gen", "pkt", currentCycle,
                                endpointPid, src);
            }
        }

        if (sourceQueues[src].empty() ||
            sourceLinkBusyUntil[src] > currentCycle) {
            continue;
        }
        Packet &head = sourceQueues[src].front();
        const StageCoord coord = topo.firstStageInput(src);
        const PortId out = topo.outputPortFor(head.dest, 0);
        BufferModel &buffer =
            switches[0][coord.switchIndex]->buffer(coord.port);
        if (!buffer.reserve(out, head.lengthSlots))
            continue;

        Packet pkt = head;
        sourceQueues[src].pop_front();
        pkt.outPort = out;
        pkt.injectedAt = currentCycle;
        sourceLinkBusyUntil[src] = currentCycle + pkt.lengthSlots;
        if (telemetry) {
            if (obs::PacketTracer *tr = telemetry->trace())
                tr->asyncBegin(
                    "pkt", "pkt", pkt.id, currentCycle, endpointPid,
                    src,
                    detail::concat("{\"src\": ", pkt.source,
                                   ", \"dest\": ", pkt.dest,
                                   ", \"slots\": ", pkt.lengthSlots,
                                   "}"));
        }

        Transfer t;
        t.completesAt = currentCycle + pkt.lengthSlots;
        t.toSink = false;
        t.stage = 0;
        t.dest = coord;
        t.packet = pkt;
        inFlight.push_back(t);
    }
}

void
VarLenNetworkSimulator::beginMeasurement()
{
    windowDeliveredPackets = 0;
    windowDeliveredSlots = 0;
    windowGenerated = 0;
    latencyClocks.reset();
}

VarLenResult
VarLenNetworkSimulator::run()
{
    runSchedule();

    VarLenResult result;
    result.generatedPackets = windowGenerated;
    result.deliveredPackets = windowDeliveredPackets;
    result.deliveredSlots = windowDeliveredSlots;
    result.measuredCycles = common.measureCycles;
    result.deliveredSlotThroughput =
        static_cast<double>(windowDeliveredSlots) /
        (static_cast<double>(cfg.numPorts) *
         static_cast<double>(common.measureCycles));
    result.latencyClocks = latencyClocks;
    return result;
}

std::uint64_t
VarLenNetworkSimulator::packetsEverywhere() const
{
    std::uint64_t total = inFlight.size();
    for (const auto &stage : switches)
        for (const auto &sw : stage)
            total += sw->totalPackets();
    for (const auto &q : sourceQueues)
        total += q.size();
    return total;
}

void
VarLenNetworkSimulator::debugValidate() const
{
    for (const auto &stage : switches)
        for (const auto &sw : stage)
            sw->debugValidate();
}

} // namespace damq

#include "network/omega_topology.hh"

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace damq {

OmegaTopology::OmegaTopology(std::uint32_t num_ports, std::uint32_t radix)
    : ports(num_ports), degree(radix),
      stages(exactLogBase(num_ports, radix))
{
    damq_assert(radix >= 2, "omega radix must be at least 2");
    damq_assert(num_ports >= radix, "omega needs at least one switch");
}

std::uint32_t
OmegaTopology::shuffle(std::uint32_t line) const
{
    damq_assert(line < ports, "shuffle: line out of range");
    // Left-rotate the base-r digits: the most significant digit
    // becomes the least significant one.
    const std::uint32_t msd_weight = ports / degree;
    return (line % msd_weight) * degree + line / msd_weight;
}

StageCoord
OmegaTopology::firstStageInput(NodeId src) const
{
    damq_assert(src < ports, "firstStageInput: bad source");
    const std::uint32_t line = shuffle(src);
    return StageCoord{line / degree, line % degree};
}

StageCoord
OmegaTopology::nextStageInput(std::uint32_t stage,
                              std::uint32_t switch_index,
                              PortId port) const
{
    damq_assert(stage + 1 < stages, "nextStageInput past the last stage");
    damq_assert(switch_index < switchesPerStage(), "bad switch index");
    damq_assert(port < degree, "bad port");
    const std::uint32_t line = shuffle(switch_index * degree + port);
    return StageCoord{line / degree, line % degree};
}

NodeId
OmegaTopology::sinkFor(std::uint32_t switch_index, PortId port) const
{
    damq_assert(switch_index < switchesPerStage(), "bad switch index");
    damq_assert(port < degree, "bad port");
    return switch_index * degree + port;
}

PortId
OmegaTopology::outputPortFor(NodeId dest, std::uint32_t stage) const
{
    damq_assert(dest < ports, "outputPortFor: bad destination");
    return radixDigitMsbFirst(dest, degree, stages, stage);
}

} // namespace damq

/**
 * @file
 * Run-harness knobs shared by every network-level simulator.
 *
 * The four simulators (synchronized Omega, 2D mesh, clock-accurate
 * cut-through, variable-length) differ in topology and timing model
 * but share the same experimental harness: a seeded PRNG, a
 * warmup/measure schedule, an optional fault plan with periodic
 * invariant audits and a deadlock watchdog, and optional telemetry.
 * Those knobs live here, embedded by value as `common` in each
 * simulator's config struct, so a flag like --seed or --trace means
 * exactly the same thing to every front-end.
 *
 * Not every simulator honors every field: the cut-through simulator
 * (which counts *clocks*, not network cycles — its warmup/measure
 * values are clock counts) has no watchdog, and the variable-length
 * simulator models neither faults nor audits.  Ignored fields are
 * simply unused; setting them is harmless.
 */

#ifndef DAMQ_NETWORK_SIM_COMMON_HH
#define DAMQ_NETWORK_SIM_COMMON_HH

#include <cstdint>

#include "common/types.hh"
#include "fault/fault_injector.hh"
#include "network/core/recovery.hh"
#include "network/core/vc_policy.hh"
#include "network/core/workload.hh"
#include "obs/telemetry.hh"

namespace damq {

/** Harness configuration embedded in every simulator config. */
struct SimCommonConfig
{
    /** Master PRNG seed (traffic; the fault plan seeds separately). */
    std::uint64_t seed = 1;

    /** Cycles (clocks, for the cut-through sim) before measuring. */
    Cycle warmupCycles = 1000;

    /** Cycles (clocks, for the cut-through sim) measured. */
    Cycle measureCycles = 10000;

    /**
     * Fault plan (all rates default to zero).  The injector owns a
     * PRNG separate from the traffic generator's, so a run with all
     * rates zero is bit-identical to one without the fault
     * subsystem.
     */
    FaultConfig faults;

    /** Run the invariant audit every this many cycles (0 = off). */
    Cycle auditEveryCycles = 0;

    /** Watchdog threshold: cycles of buffered-but-motionless
     *  traffic before it fires (0 = off). */
    Cycle watchdogStallCycles = 0;

    /**
     * Virtual channels per link (>= 1).  One VC reproduces the
     * historical single-queue-per-output behaviour bit for bit;
     * more than one requires input buffering (the per-VC queues
     * live in the input buffers) and is honoured only by the
     * synchronized engines.
     */
    VcId vcs = 1;

    /**
     * How packets are assigned to VCs when vcs > 1.  Dateline (the
     * default) is what makes blocking flow control deadlock-free on
     * torus rings; it degenerates to VC 0 on ring-free topologies.
     */
    VcPolicy vcPolicy = VcPolicy::Dateline;

    /**
     * Link-fault recovery (defaults to RecoveryPolicy::None).  With
     * retransmission on, dropped/corrupted frames are recovered at
     * the link level; with reroute on, declared-dead links are
     * detoured around.  Honoured by the synchronized engines only
     * (and reroute needs input buffering); policy none allocates no
     * protocol state, keeping baselines byte-identical.
     */
    RecoveryConfig recovery;

    /**
     * Intra-simulation shards (>= 1).  The synchronized engine
     * partitions the topology's switches into this many contiguous
     * ranges and advances them on parallel threads between
     * deterministic phase barriers; results are bit-identical at any
     * shard count.  Only input-buffered placement shards; central/
     * output placement rejects shards > 1, and enabling telemetry
     * degrades to one shard (with a warning) because probe hooks sit
     * inside the buffer hot path.  Orthogonal to the sweep runner's
     * --threads: that parallelizes across simulations, this
     * parallelizes within one.
     */
    std::uint32_t shards = 1;

    /**
     * Workload selection and parameters (--workload / --batch /
     * --reply-window / --trace-file; defaults to the open-loop
     * geometric process).  A simulator's legacy `burstiness` /
     * `meanBurstCycles` config fields are a deprecated alias: when
     * they exceed 1 and the kind here is still Geometric, the
     * engine rewrites the workload to the two-state OnOff process,
     * reproducing the historical draw sequence bit for bit.
     */
    core::WorkloadConfig workload;

    /**
     * Telemetry plan (defaults to everything off).  When disabled
     * the simulators allocate no Telemetry object at all, so the
     * hot path pays only null-pointer branches and results stay
     * byte-identical to pre-telemetry builds.
     */
    obs::TelemetryConfig telemetry;
};

/**
 * Defaults with a different warmup/measure schedule — for simulators
 * whose time base (clocks, long-transfer cycles) needs a different
 * window than the synchronized default.
 */
inline SimCommonConfig
simCommonWithSchedule(Cycle warmup, Cycle measure)
{
    SimCommonConfig common;
    common.warmupCycles = warmup;
    common.measureCycles = measure;
    return common;
}

} // namespace damq

#endif // DAMQ_NETWORK_SIM_COMMON_HH

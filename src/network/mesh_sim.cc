#include "network/mesh_sim.hh"

#include "common/logging.hh"

namespace damq {

MeshSimulator::MeshSimulator(const MeshConfig &config)
    : cfg(config), rng(config.seed),
      sourceQueues(config.width * config.height)
{
    damq_assert(cfg.width >= 2 && cfg.height >= 2,
                "mesh needs at least 2x2 nodes");
    const std::uint32_t n = numNodes();
    if (cfg.traffic == "hotspot") {
        pattern = std::make_unique<HotSpotTraffic>(
            n, cfg.hotSpotFraction, NodeId{0});
    } else if (cfg.traffic == "transpose") {
        damq_assert(cfg.width == cfg.height,
                    "transpose traffic needs a square mesh");
        pattern = std::make_unique<TransposeTraffic>(cfg.width);
    } else {
        pattern = makeTraffic(cfg.traffic, n, cfg.seed);
    }

    nodes.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        nodes.push_back(std::make_unique<SwitchModel>(
            kMeshPorts, cfg.bufferType, cfg.slotsPerBuffer,
            cfg.arbitration, cfg.staleThreshold));
    }
}

PortId
MeshSimulator::routeFrom(NodeId node, NodeId dest) const
{
    // Dimension-order: correct X first, then Y, then deliver.
    const std::int64_t x = node % cfg.width;
    const std::int64_t y = node / cfg.width;
    const std::int64_t tx = dest % cfg.width;
    const std::int64_t ty = dest / cfg.width;
    if (tx > x)
        return kEast;
    if (tx < x)
        return kWest;
    if (ty > y)
        return kNorth;
    if (ty < y)
        return kSouth;
    return kLocal;
}

std::pair<NodeId, PortId>
MeshSimulator::neighbor(NodeId node, PortId out) const
{
    const std::uint32_t x = node % cfg.width;
    const std::uint32_t y = node / cfg.width;
    switch (out) {
      case kEast:
        damq_assert(x + 1 < cfg.width, "routed off the east edge");
        return {node + 1, kWest};
      case kWest:
        damq_assert(x > 0, "routed off the west edge");
        return {node - 1, kEast};
      case kNorth:
        damq_assert(y + 1 < cfg.height, "routed off the north edge");
        return {node + cfg.width, kSouth};
      case kSouth:
        damq_assert(y > 0, "routed off the south edge");
        return {node - cfg.width, kNorth};
      default:
        damq_panic("neighbor() of the local port");
    }
}

void
MeshSimulator::step()
{
    ++currentCycle;
    moveTrafficForward();
    generateAndInject();
}

void
MeshSimulator::moveTrafficForward()
{
    struct Move
    {
        NodeId node;
        Packet packet;
    };
    std::vector<Move> moves;

    for (NodeId node = 0; node < numNodes(); ++node) {
        auto can_send = [&](PortId, PortId out, const Packet &pkt) {
            if (out == kLocal)
                return true; // the host always consumes
            if (cfg.protocol == FlowControl::Discarding)
                return true;
            const auto [next, in_port] = neighbor(node, out);
            const PortId next_out = routeFrom(next, pkt.dest);
            return nodes[next]->canAccept(in_port, next_out,
                                          pkt.lengthSlots);
        };
        for (Packet &pkt : nodes[node]->transmit(can_send))
            moves.push_back(Move{node, pkt});
    }

    for (Move &move : moves) {
        if (move.packet.outPort == kLocal) {
            deliver(move.packet, move.node);
            continue;
        }
        const auto [next, in_port] =
            neighbor(move.node, move.packet.outPort);
        Packet pkt = move.packet;
        pkt.outPort = routeFrom(next, pkt.dest);
        ++pkt.hops;
        if (!nodes[next]->tryReceive(in_port, pkt)) {
            damq_assert(cfg.protocol == FlowControl::Discarding,
                        "blocking mesh transmitted into a full "
                        "buffer");
            ++counters.discardedInternal;
        }
    }
}

void
MeshSimulator::generateAndInject()
{
    for (NodeId src = 0; src < numNodes(); ++src) {
        if (rng.bernoulli(cfg.offeredLoad)) {
            Packet pkt;
            pkt.id = nextPacketId++;
            pkt.source = src;
            pkt.dest = pattern->destinationFor(src, rng);
            pkt.lengthSlots = 1;
            pkt.generatedAt = currentCycle;
            ++counters.generated;
            if (cfg.protocol == FlowControl::Blocking) {
                sourceQueues[src].push_back(pkt);
            } else if (!tryInject(src, pkt)) {
                ++counters.discardedAtEntry;
            }
        }
        if (cfg.protocol == FlowControl::Blocking &&
            !sourceQueues[src].empty()) {
            if (tryInject(src, sourceQueues[src].front()))
                sourceQueues[src].pop_front();
        }
    }
}

bool
MeshSimulator::tryInject(NodeId src, Packet pkt)
{
    pkt.outPort = routeFrom(src, pkt.dest);
    pkt.injectedAt = currentCycle;
    if (!nodes[src]->canAccept(kLocal, pkt.outPort, pkt.lengthSlots))
        return false;
    const bool accepted = nodes[src]->tryReceive(kLocal, pkt);
    damq_assert(accepted, "canAccept/tryReceive disagree");
    ++counters.injected;
    return true;
}

void
MeshSimulator::deliver(const Packet &pkt, NodeId node)
{
    if (pkt.dest != node) {
        ++counters.misrouted;
        damq_panic("mesh packet ", pkt.id, " for node ", pkt.dest,
                   " delivered at node ", node);
    }
    ++counters.delivered;
    if (measuring) {
        latencyCycles.add(
            static_cast<double>(currentCycle - pkt.injectedAt));
        hopSamples.add(static_cast<double>(pkt.hops));
    }
}

MeshResult
MeshSimulator::run()
{
    for (Cycle c = 0; c < cfg.warmupCycles; ++c)
        step();
    const NetworkCounters at_start = counters;
    measuring = true;
    latencyCycles.reset();
    hopSamples.reset();
    for (Cycle c = 0; c < cfg.measureCycles; ++c)
        step();
    measuring = false;

    MeshResult result;
    result.window = counters - at_start;
    result.measuredCycles = cfg.measureCycles;
    result.offeredLoad = cfg.offeredLoad;
    result.deliveredThroughput =
        static_cast<double>(result.window.delivered) /
        (static_cast<double>(numNodes()) *
         static_cast<double>(cfg.measureCycles));
    result.discardFraction =
        result.window.generated == 0
            ? 0.0
            : static_cast<double>(result.window.discarded()) /
                  static_cast<double>(result.window.generated);
    result.latencyCycles = latencyCycles;
    result.avgHops = hopSamples.mean();
    return result;
}

std::uint64_t
MeshSimulator::packetsInFlight() const
{
    std::uint64_t total = 0;
    for (const auto &node : nodes)
        total += node->totalPackets();
    return total;
}

std::uint64_t
MeshSimulator::packetsAtSources() const
{
    std::uint64_t total = 0;
    for (const auto &q : sourceQueues)
        total += q.size();
    return total;
}

void
MeshSimulator::debugValidate() const
{
    for (const auto &node : nodes)
        node->debugValidate();
}

} // namespace damq

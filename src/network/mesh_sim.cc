#include "network/mesh_sim.hh"

#include <sstream>

#include "common/logging.hh"

namespace damq {

MeshSimulator::MeshSimulator(const MeshConfig &config)
    : cfg(config), rng(config.common.seed),
      sourceQueues(config.width * config.height),
      injector(config.common.faults),
      auditor(config.common.auditEveryCycles),
      watchdog(config.common.watchdogStallCycles),
      nextSeq(config.width * config.height, 0)
{
    damq_assert(cfg.width >= 2 && cfg.height >= 2,
                "mesh needs at least 2x2 nodes");
    const std::uint32_t n = numNodes();
    if (cfg.traffic == "hotspot") {
        pattern = std::make_unique<HotSpotTraffic>(
            n, cfg.hotSpotFraction, NodeId{0});
    } else if (cfg.traffic == "transpose") {
        damq_assert(cfg.width == cfg.height,
                    "transpose traffic needs a square mesh");
        pattern = std::make_unique<TransposeTraffic>(cfg.width);
    } else {
        pattern = makeTraffic(cfg.traffic, n, cfg.common.seed);
    }

    nodes.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        nodes.push_back(std::make_unique<SwitchModel>(
            kMeshPorts, cfg.bufferType, cfg.slotsPerBuffer,
            cfg.arbitration, cfg.staleThreshold));
        const std::size_t comp =
            injector.addComponent(detail::concat("node", i));
        const std::size_t wcomp =
            watchdog.addComponent(detail::concat("node", i));
        damq_assert(comp == i && wcomp == i,
                    "component registration order broken");
    }
    prevTransmitted.assign(n, 0);
    moveScratch.reserve(n * kMeshPorts);
    sentScratch.reserve(kMeshPorts);

    setupTelemetry();
}

void
MeshSimulator::setupTelemetry()
{
    if (!cfg.common.telemetry.enabled())
        return;
    telemetry = std::make_unique<obs::Telemetry>(cfg.common.telemetry);

    // Trace row layout: one process per mesh node, one thread per
    // input port, plus a pseudo-process for the hosts.
    static const char *const kPortName[kMeshPorts] = {
        "east", "west", "north", "south", "local"};
    endpointPid = static_cast<std::int64_t>(numNodes());
    obs::PacketTracer *tracer = telemetry->trace();
    if (tracer)
        tracer->setProcessName(endpointPid, "hosts");

    for (NodeId node = 0; node < numNodes(); ++node) {
        const std::uint32_t x = node % cfg.width;
        const std::uint32_t y = node / cfg.width;
        if (tracer)
            tracer->setProcessName(
                node, detail::concat("node", x, ",", y));
        nodes[node]->forEachBuffer(
            [&](PortId port, BufferModel &buffer) {
                telemetry->attachProbe(
                    buffer,
                    detail::concat("n", x, ",", y, ".",
                                   kPortName[port]),
                    node, port);
                if (tracer)
                    tracer->setThreadName(node, port,
                                          kPortName[port]);
            });
    }

    telemetry->addSampleHook([this]() {
        obs::MetricRegistry &m = telemetry->metrics();
        m.gauge("net.generated")
            .set(static_cast<double>(counters.generated));
        m.gauge("net.injected")
            .set(static_cast<double>(counters.injected));
        m.gauge("net.delivered")
            .set(static_cast<double>(counters.delivered));
        m.gauge("net.discarded")
            .set(static_cast<double>(counters.discarded()));
        m.gauge("net.faultDropped")
            .set(static_cast<double>(counters.faultDropped));
        m.gauge("net.inFlight")
            .set(static_cast<double>(packetsInFlight()));
        m.gauge("net.sourceQueued")
            .set(static_cast<double>(packetsAtSources()));

        std::uint64_t grants = 0;
        std::uint64_t stale = 0;
        for (const auto &node : nodes) {
            grants += node->arbiterStats().grantsIssued;
            stale += node->arbiterStats().staleOverrides;
        }
        m.gauge("arb.grants").set(static_cast<double>(grants));
        m.gauge("arb.staleOverrides")
            .set(static_cast<double>(stale));
    });
}

void
MeshSimulator::traceLoss(const Packet &pkt, const char *why)
{
    if (!telemetry)
        return;
    obs::PacketTracer *tr = telemetry->trace();
    if (!tr)
        return;
    tr->instant(why, "pkt", currentCycle, endpointPid, pkt.source);
    tr->asyncEnd("pkt", "pkt", pkt.id, currentCycle, endpointPid,
                 pkt.source);
}

PortId
MeshSimulator::routeFrom(NodeId node, NodeId dest) const
{
    // Dimension-order: correct X first, then Y, then deliver.
    const std::int64_t x = node % cfg.width;
    const std::int64_t y = node / cfg.width;
    const std::int64_t tx = dest % cfg.width;
    const std::int64_t ty = dest / cfg.width;
    if (tx > x)
        return kEast;
    if (tx < x)
        return kWest;
    if (ty > y)
        return kNorth;
    if (ty < y)
        return kSouth;
    return kLocal;
}

std::pair<NodeId, PortId>
MeshSimulator::neighbor(NodeId node, PortId out) const
{
    const std::uint32_t x = node % cfg.width;
    const std::uint32_t y = node / cfg.width;
    switch (out) {
      case kEast:
        damq_assert(x + 1 < cfg.width, "routed off the east edge");
        return {node + 1, kWest};
      case kWest:
        damq_assert(x > 0, "routed off the west edge");
        return {node - 1, kEast};
      case kNorth:
        damq_assert(y + 1 < cfg.height, "routed off the north edge");
        return {node + cfg.width, kSouth};
      case kSouth:
        damq_assert(y > 0, "routed off the south edge");
        return {node - cfg.width, kNorth};
      default:
        damq_panic("neighbor() of the local port");
    }
}

void
MeshSimulator::step()
{
    ++currentCycle;
    if (telemetry)
        telemetry->beginCycle(currentCycle);
    injectStructuralFaults();
    moveTrafficForward();
    generateAndInject();
    runAudit();
    watchdogCheck();
    if (telemetry)
        telemetry->endCycle();
}

void
MeshSimulator::moveTrafficForward()
{
    std::vector<Move> &moves = moveScratch;
    moves.clear();
    std::vector<Packet> &sent = sentScratch;

    for (NodeId node = 0; node < numNodes(); ++node) {
        if (injector.arbiterStuck(node, currentCycle))
            continue;
        auto can_send = [&](PortId, PortId out, const Packet &pkt) {
            if (out == kLocal)
                return true; // the host always consumes
            if (cfg.protocol == FlowControl::Discarding)
                return true;
            const auto [next, in_port] = neighbor(node, out);
            if (injector.creditDelayed(next, currentCycle))
                return false;
            const PortId next_out = routeFrom(next, pkt.dest);
            return nodes[next]->canAccept(in_port, next_out,
                                          pkt.lengthSlots);
        };
        if (auditor.due(currentCycle)) {
            const GrantList grants = nodes[node]->arbitrate(can_send);
            auditor.record(
                currentCycle, injector.componentName(node),
                auditGrantLegality(
                    grants, kMeshPorts, kMeshPorts,
                    nodes[node]->buffer(0).maxReadsPerCycle()));
            sent = nodes[node]->popGranted(grants);
        } else {
            nodes[node]->transmitInto(can_send, sent);
        }
        for (Packet &pkt : sent)
            moves.push_back(Move{node, pkt});
    }

    for (Move &move : moves) {
        // Link faults happen between switches (and on the local
        // delivery path); the receiver verifies the header seal
        // before routing, so corruption can never steer a packet
        // off the mesh.
        if (injector.dropOnLink(move.node, currentCycle,
                                move.packet)) {
            ++counters.faultDropped;
            traceLoss(move.packet, "drop@fault");
            continue;
        }
        injector.corruptOnLink(move.node, currentCycle, move.packet);
        if (injector.enabled() && !headerIntact(move.packet)) {
            injector.recordDetectedCorruption();
            ++counters.faultDropped;
            traceLoss(move.packet, "drop@corrupt");
            continue;
        }
        if (move.packet.outPort == kLocal) {
            deliver(move.packet, move.node);
            continue;
        }
        const auto [next, in_port] =
            neighbor(move.node, move.packet.outPort);
        Packet pkt = move.packet;
        pkt.outPort = routeFrom(next, pkt.dest);
        ++pkt.hops;
        if (!nodes[next]->tryReceive(in_port, pkt)) {
            damq_assert(cfg.protocol == FlowControl::Discarding,
                        "blocking mesh transmitted into a full "
                        "buffer");
            ++counters.discardedInternal;
            traceLoss(pkt, "drop@internal");
        }
    }
}

void
MeshSimulator::generateAndInject()
{
    for (NodeId src = 0; src < numNodes(); ++src) {
        if (!draining && rng.bernoulli(cfg.offeredLoad)) {
            Packet pkt;
            pkt.id = nextPacketId++;
            pkt.source = src;
            pkt.dest = pattern->destinationFor(src, rng);
            pkt.lengthSlots = 1;
            pkt.generatedAt = currentCycle;
            pkt.seq = nextSeq[src]++;
            sealHeader(pkt);
            ++counters.generated;
            if (telemetry) {
                if (obs::PacketTracer *tr = telemetry->trace())
                    tr->instant("gen", "pkt", currentCycle,
                                endpointPid, src);
            }
            if (cfg.protocol == FlowControl::Blocking) {
                sourceQueues[src].push_back(pkt);
            } else if (!tryInject(src, pkt)) {
                ++counters.discardedAtEntry;
                if (telemetry) {
                    if (obs::PacketTracer *tr = telemetry->trace())
                        tr->instant("drop@entry", "pkt",
                                    currentCycle, endpointPid, src);
                }
            }
        }
        if (cfg.protocol == FlowControl::Blocking &&
            !sourceQueues[src].empty()) {
            if (tryInject(src, sourceQueues[src].front()))
                sourceQueues[src].pop_front();
        }
    }
}

bool
MeshSimulator::tryInject(NodeId src, Packet pkt)
{
    pkt.outPort = routeFrom(src, pkt.dest);
    pkt.injectedAt = currentCycle;
    if (!nodes[src]->canAccept(kLocal, pkt.outPort, pkt.lengthSlots))
        return false;
    const bool accepted = nodes[src]->tryReceive(kLocal, pkt);
    damq_assert(accepted, "canAccept/tryReceive disagree");
    ++counters.injected;
    if (telemetry) {
        if (obs::PacketTracer *tr = telemetry->trace())
            tr->asyncBegin("pkt", "pkt", pkt.id, currentCycle,
                           endpointPid, src,
                           detail::concat("{\"src\": ", pkt.source,
                                          ", \"dest\": ", pkt.dest,
                                          "}"));
    }
    return true;
}

void
MeshSimulator::deliver(const Packet &pkt, NodeId node)
{
    if (pkt.dest != node) {
        ++counters.misrouted;
        damq_panic("mesh packet ", pkt.id, " for node ", pkt.dest,
                   " delivered at node ", node);
    }
    ++counters.delivered;
    if (telemetry) {
        if (obs::PacketTracer *tr = telemetry->trace())
            tr->asyncEnd("pkt", "pkt", pkt.id, currentCycle,
                         endpointPid, node);
    }
    if (measuring) {
        latencyCycles.add(
            static_cast<double>(currentCycle - pkt.injectedAt));
        hopSamples.add(static_cast<double>(pkt.hops));
    }
}

MeshResult
MeshSimulator::run()
{
    for (Cycle c = 0; c < cfg.common.warmupCycles; ++c)
        step();
    const NetworkCounters at_start = counters;
    measuring = true;
    latencyCycles.reset();
    hopSamples.reset();
    for (Cycle c = 0; c < cfg.common.measureCycles; ++c)
        step();
    measuring = false;

    MeshResult result;
    result.window = counters - at_start;
    result.measuredCycles = cfg.common.measureCycles;
    result.offeredLoad = cfg.offeredLoad;
    result.deliveredThroughput =
        static_cast<double>(result.window.delivered) /
        (static_cast<double>(numNodes()) *
         static_cast<double>(cfg.common.measureCycles));
    result.discardFraction =
        result.window.generated == 0
            ? 0.0
            : static_cast<double>(result.window.discarded()) /
                  static_cast<double>(result.window.generated);
    result.latencyCycles = latencyCycles;
    result.avgHops = hopSamples.mean();

    if (telemetry)
        telemetry->writeFiles();
    return result;
}

std::uint64_t
MeshSimulator::packetsInFlight() const
{
    std::uint64_t total = 0;
    for (const auto &node : nodes)
        total += node->totalPackets();
    return total;
}

std::uint64_t
MeshSimulator::packetsAtSources() const
{
    std::uint64_t total = 0;
    for (const auto &q : sourceQueues)
        total += q.size();
    return total;
}

void
MeshSimulator::debugValidate() const
{
    for (const auto &node : nodes)
        node->debugValidate();
}

void
MeshSimulator::injectStructuralFaults()
{
    if (!injector.enabled())
        return;
    for (NodeId node = 0; node < numNodes(); ++node) {
        if (!injector.rollSlotLeak(node, currentCycle))
            continue;
        const PortId input =
            static_cast<PortId>(currentCycle % kMeshPorts);
        if (nodes[node]->faultLeakSlot(input)) {
            injector.recordFault(
                FaultKind::SlotLeak, node, currentCycle,
                detail::concat("slot lost via input ", input));
        }
    }
}

void
MeshSimulator::runAudit()
{
    if (!auditor.due(currentCycle))
        return;
    auditor.beginAudit();
    for (NodeId node = 0; node < numNodes(); ++node) {
        auditor.record(currentCycle, injector.componentName(node),
                       nodes[node]->checkInvariants());
        for (PortId in = 0; in < kMeshPorts; ++in) {
            auditor.record(
                currentCycle, injector.componentName(node),
                auditQueueFifoOrder(nodes[node]->buffer(in)));
        }
    }
    const std::uint64_t accounted =
        counters.delivered + counters.discardedInternal +
        counters.faultDropped + packetsInFlight();
    if (counters.injected != accounted) {
        auditor.record(
            currentCycle, "mesh",
            {detail::concat(
                "packet accounting broken: injected ",
                counters.injected, " != delivered ",
                counters.delivered, " + discarded ",
                counters.discardedInternal, " + fault-dropped ",
                counters.faultDropped, " + in-flight ",
                packetsInFlight())});
    }
}

void
MeshSimulator::watchdogCheck()
{
    if (!watchdog.enabled())
        return;
    for (NodeId node = 0; node < numNodes(); ++node) {
        const std::uint64_t transmitted =
            nodes[node]->unitStats().transmitted;
        const bool moved = transmitted != prevTransmitted[node];
        prevTransmitted[node] = transmitted;
        watchdog.observe(node, currentCycle,
                         nodes[node]->totalPackets() > 0, moved);
    }
    if (watchdog.check(currentCycle,
                       [this] { return snapshotText(); })) {
        damq_warn("deadlock watchdog fired:\n",
                  watchdog.diagnostic());
    }
}

bool
MeshSimulator::drain(Cycle max_cycles)
{
    draining = true;
    for (Cycle c = 0; c < max_cycles; ++c) {
        if (packetsInFlight() == 0 && packetsAtSources() == 0)
            break;
        step();
    }
    draining = false;
    return packetsInFlight() == 0 && packetsAtSources() == 0;
}

FaultReport
MeshSimulator::faultReport() const
{
    FaultReport report;
    injector.fillReport(report);
    auditor.fillReport(report);
    watchdog.fillReport(report);
    return report;
}

std::string
MeshSimulator::snapshotText() const
{
    std::ostringstream out;
    out << "    snapshot at cycle " << currentCycle << " (seed "
        << cfg.common.seed << ", fault seed " << cfg.common.faults.seed << ")\n";
    for (NodeId node = 0; node < numNodes(); ++node) {
        const SwitchModel &sw = *nodes[node];
        if (sw.totalPackets() == 0)
            continue; // keep the snapshot readable on big meshes
        out << "    node" << node << ": " << sw.totalPackets()
            << " packets in " << sw.totalUsedSlots() << " slots";
        for (PortId in = 0; in < sw.numPorts(); ++in) {
            for (PortId o = 0; o < sw.numPorts(); ++o) {
                if (const Packet *head = sw.buffer(in).peek(o))
                    out << " in" << in << "->out" << o
                        << " head dest " << head->dest;
            }
        }
        out << "\n";
    }
    return out.str();
}

} // namespace damq

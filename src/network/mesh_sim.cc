#include "network/mesh_sim.hh"

#include "common/logging.hh"

namespace damq {

const MeshConfig &
MeshSimulator::validated(const MeshConfig &config)
{
    damq_assert(config.width >= 2 && config.height >= 2,
                "mesh needs at least 2x2 nodes");
    if (config.traffic == "transpose") {
        damq_assert(config.width == config.height,
                    "transpose traffic needs a square mesh");
    }
    return config;
}

core::SyncConfig
MeshSimulator::syncConfigOf(const MeshConfig &config)
{
    core::SyncConfig sync;
    sync.placement = BufferPlacement::Input;
    sync.bufferType = config.bufferType;
    sync.slotsPerBuffer = config.slotsPerBuffer;
    sync.protocol = config.protocol;
    sync.arbitration = config.arbitration;
    sync.staleThreshold = config.staleThreshold;
    sync.sharing = config.sharing;
    sync.trafficClasses = config.trafficClasses;
    sync.traffic = config.traffic;
    sync.hotSpotFraction = config.hotSpotFraction;
    sync.transposeSide = config.width;
    sync.offeredLoad = config.offeredLoad;
    sync.latencyUnitScale = 1.0; // mesh latency is in cycles
    sync.accountingScope = "mesh";
    sync.common = config.common;
    return sync;
}

MeshSimulator::MeshSimulator(const MeshConfig &config)
    : cfg(validated(config)), grid(config.width, config.height),
      engine(grid, syncConfigOf(config))
{
}

std::pair<NodeId, PortId>
MeshSimulator::neighbor(NodeId node, PortId out) const
{
    if (out == kLocal)
        damq_panic("neighbor() of the local port");
    const core::HopTarget next = grid.hop(node, out);
    return {next.switchId, next.inputPort};
}

MeshResult
MeshSimulator::run()
{
    const core::SyncResult r = engine.run();
    MeshResult result;
    result.window = r.window;
    result.measuredCycles = r.measuredCycles;
    result.deliveredThroughput = r.deliveredThroughput;
    result.offeredLoad = r.offeredLoad;
    result.discardFraction = r.discardFraction;
    result.latencyCycles = r.latency;
    result.latencyP50 = r.latencyP50;
    result.latencyP99 = r.latencyP99;
    result.e2eLatencyP50 = r.e2eLatencyP50;
    result.e2eLatencyP99 = r.e2eLatencyP99;
    result.e2eLatencyP999 = r.e2eLatencyP999;
    result.e2eSamples = r.e2eSamples;
    result.classLatency = r.classLatency;
    result.avgHops = r.hops.mean();
    result.watchdogTrips = faultReport().watchdogFired ? 1 : 0;
    return result;
}

} // namespace damq

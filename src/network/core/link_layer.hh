/**
 * @file
 * LinkLayer: per-link retransmission state for the recovery
 * protocol (see recovery.hh for the policy overview).
 *
 * The paper's synchronized transfer already spends its 12-clock
 * network cycle on a full handshake, so the model gives each link a
 * same-cycle ack/nack: the receiver checks the frame CRC (computed
 * over the sealed header plus the link sequence number) and answers
 * within the transfer cycle.  A frame that is nacked (CRC mismatch)
 * or unacknowledged (dropped, link forced down, receiver frozen)
 * stays in the sender's retransmit buffer and is retried after an
 * exponential backoff; the link admits no new frames while a retry
 * is pending, so packets can never overtake each other on a link
 * (stop-and-wait preserves the per-link FIFO order the auditor
 * checks).  Because at most one new frame enters a link per cycle,
 * each link holds at most one pending frame.
 *
 * After maxRetries consecutive failures the link is declared dead
 * in the LinkStateMask; the engine then either reroutes the pending
 * packet and everything queued behind it (retransmit+reroute) or
 * charges them to the fault counters (retransmit).  Dead links are
 * probed periodically and revived when the underlying fault episode
 * has ended.
 *
 * The engine owns the wire: it rolls the fault hooks, computes the
 * CRCs, and calls back into this class with the verdict.  This
 * class owns every per-link counter and the pending-frame storage,
 * and none of it exists when RecoveryPolicy is none.
 */

#ifndef DAMQ_NETWORK_CORE_LINK_LAYER_HH
#define DAMQ_NETWORK_CORE_LINK_LAYER_HH

#include <cstdint>
#include <vector>

#include "common/crc.hh"
#include "common/types.hh"
#include "fault/fault_report.hh"
#include "network/core/link_state.hh"
#include "network/core/recovery.hh"
#include "queueing/packet.hh"

namespace damq {
namespace core {

/**
 * CRC-32C over a link frame: the end-to-end header fields (covering
 * the same fields as the sealed headerCheck, plus the seal itself)
 * and the link-level sequence number.  Sender and receiver compute
 * it independently; a mismatch nacks the frame.  Unlike the plain
 * header seal this also covers the link seq, so a duplicated or
 * replayed frame cannot masquerade as the expected one.
 */
inline std::uint32_t
linkFrameCrc(const Packet &pkt, std::uint32_t link_seq)
{
    std::uint32_t crc = crc32cInit();
    crc = crc32cUpdateValue(crc, pkt.id);
    crc = crc32cUpdateValue(crc, pkt.source);
    crc = crc32cUpdateValue(crc, pkt.dest);
    crc = crc32cUpdateValue(crc, pkt.seq);
    crc = crc32cUpdateValue(crc, pkt.lengthSlots);
    crc = crc32cUpdateValue(crc, pkt.headerCheck);
    crc = crc32cUpdateValue(crc, link_seq);
    return crc32cFinish(crc);
}

/** Per-link retransmission protocol state (see file docs). */
class LinkLayer
{
  public:
    LinkLayer(const RecoveryConfig &config, std::size_t num_links);

    const RecoveryConfig &configuration() const { return cfg; }

    /** The dead-link mask this layer maintains. */
    LinkStateMask &linkMask() { return mask; }
    const LinkStateMask &linkMask() const { return mask; }

    /** Protocol counters (engine-writable: it owns the wire). */
    RecoveryStats &stats() { return counters; }
    const RecoveryStats &stats() const { return counters; }

    /**
     * Whether @p link admits a new frame this cycle: not declared
     * dead and no retransmission pending (stop-and-wait).
     */
    bool canSendFresh(LinkId link) const
    {
        return !pending[link].active && mask.linkUp(link);
    }

    /** Whether @p link holds an unacknowledged frame. */
    bool hasPending(LinkId link) const { return pending[link].active; }

    /** Next link-level sequence number for a fresh frame. */
    std::uint32_t assignSeq(LinkId link) { return txSeq[link]++; }

    /**
     * Stash the pristine copy of a fresh frame before it rolls the
     * wire faults, so a failure can retransmit the original.
     */
    void holdFrame(LinkId link, const Packet &pkt, std::uint32_t seq,
                   Cycle now);

    /** The frame's wire crossing succeeded: release the copy. */
    void onAck(LinkId link);

    enum class Verdict
    {
        Retry,      ///< retransmission scheduled
        DeclareDead ///< retry budget exhausted — link is dead
    };

    /**
     * The frame's wire crossing failed (@p nacked: CRC mismatch
     * reported same-cycle; otherwise the ack timed out).  Schedules
     * the retransmission with exponential backoff, or reports that
     * the link must be declared dead.  The caller handles
     * DeclareDead via declareDead() + takePending().
     */
    Verdict onFail(LinkId link, bool nacked, Cycle now);

    /** Whether @p link's pending retransmission is due at @p now. */
    bool retryDue(LinkId link, Cycle now) const
    {
        const PendingFrame &frame = pending[link];
        return frame.active && !mask.linkDown(link) &&
               now >= frame.nextTryAt;
    }

    /** The pending frame's pristine packet (must exist). */
    const Packet &pendingPacket(LinkId link) const;

    /** The pending frame's link sequence number (must exist). */
    std::uint32_t pendingSeq(LinkId link) const;

    /** Remove and return the pending frame's packet (must exist). */
    Packet takePending(LinkId link);

    /** Mark @p link dead in the mask (counted once). */
    void declareDead(LinkId link);

    /** Bring a dead link back: clear the mask bit and the failure
     *  streak (counted as a revival). */
    void revive(LinkId link);

    /** Whether a dead-link revival probe is due at @p now. */
    bool probeDue(Cycle now) const
    {
        return mask.deadLinks() > 0 && cfg.reviveProbeCycles > 0 &&
               now % cfg.reviveProbeCycles == 0;
    }

    /** Packets held in retransmit buffers (for accounting). */
    std::uint64_t packetsHeld() const { return heldCount; }

    /** Links with a pending frame (fast-path skip for retries). */
    std::uint32_t pendingLinks() const { return activeCount; }

    /** Fold the protocol counters into @p report. */
    void fillReport(FaultReport &report) const
    {
        report.recovery = counters;
    }

  private:
    /** One unacknowledged frame, waiting in the sender. */
    struct PendingFrame
    {
        Packet pkt;                  ///< pristine retransmit copy
        std::uint32_t seq = 0;       ///< link sequence number
        std::uint32_t attempts = 0;  ///< failed attempts so far
        Cycle nextTryAt = 0;         ///< earliest retransmit cycle
        bool active = false;
    };

    /** Backoff before attempt @p attempts (1-based). */
    Cycle backoff(std::uint32_t attempts) const;

    RecoveryConfig cfg;
    LinkStateMask mask;
    RecoveryStats counters;
    std::vector<PendingFrame> pending;   ///< per link
    std::vector<std::uint32_t> txSeq;    ///< per link
    std::uint64_t heldCount = 0;
    std::uint32_t activeCount = 0;
};

} // namespace core
} // namespace damq

#endif // DAMQ_NETWORK_CORE_LINK_LAYER_HH

/**
 * @file
 * Virtual-channel assignment for the synchronized engine.
 *
 * A virtual channel multiplexes one physical link into several
 * independently flow-controlled queues.  The engine uses them to
 * make blocking flow control deadlock-free on wraparound rings: the
 * *dateline* policy (Dally & Seitz) starts every packet on VC 0 and
 * moves it to the highest VC when it crosses a ring's wraparound
 * link.  Minimal dimension-order routing crosses each ring's wrap
 * at most once, so the channel-dependency graph splits into a VC-0
 * chain that never contains the wrap link and a VC-(n-1) chain that
 * starts at it — both acyclic — with only VC-0 → VC-(n-1) edges
 * between them.  Turning into a new dimension restarts the packet
 * on VC 0; dimensions cannot form cycles among themselves because
 * dimension-order routing visits them in a fixed order.
 *
 * The VcAllocator answers one question per hop — which VC does this
 * packet occupy on the link out of this switch? — using only the
 * topology's ring geometry (Topology::portDimension /
 * hopCrossesDateline) and the packet's current VC and arrival port.
 * Topologies without rings make every policy collapse to VC 0.
 */

#ifndef DAMQ_NETWORK_CORE_VC_POLICY_HH
#define DAMQ_NETWORK_CORE_VC_POLICY_HH

#include <optional>
#include <string>

#include "network/core/topology.hh"
#include "queueing/packet.hh"

namespace damq {

/** How packets are assigned to virtual channels, hop by hop. */
enum class VcPolicy
{
    None,    ///< every packet stays on VC 0
    Dateline ///< ring-wrap crossings escape to the highest VC
};

/** Human-readable policy name. */
const char *vcPolicyName(VcPolicy policy);

/** Parse a case-insensitive policy name; nullopt on bad input. */
std::optional<VcPolicy> tryVcPolicyFromString(const std::string &name);

namespace core {

/**
 * Per-hop VC assignment over a topology's ring geometry.  With one
 * VC (or the None policy, or a ring-free topology) every answer is
 * VC 0, which keeps single-VC runs byte-identical.
 */
class VcAllocator
{
  public:
    /** @param topology must outlive the allocator.
     *  @param policy   assignment rule.
     *  @param num_vcs  VCs per link (>= 1). */
    VcAllocator(const Topology &topology, VcPolicy policy,
                VcId num_vcs);

    /** VCs per link. */
    VcId numVcs() const { return vcs; }

    /** Assignment rule in use. */
    VcPolicy policy() const { return rule; }

    /**
     * VC that @p pkt occupies on the link out of switch @p sw
     * through port @p out.  A packet keeps its VC while it continues
     * along the same ring, restarts on VC 0 when it enters a new
     * dimension (pkt.inPort tells the two apart), and escapes to the
     * highest VC on the hop that crosses the ring's dateline.
     */
    VcId linkVc(const Packet &pkt, SwitchId sw, PortId out) const;

  private:
    const Topology &topo;
    VcPolicy rule;
    VcId vcs;
};

} // namespace core
} // namespace damq

#endif // DAMQ_NETWORK_CORE_VC_POLICY_HH

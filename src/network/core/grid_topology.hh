/**
 * @file
 * core::Topology for 2D grids: the open mesh and the wraparound
 * torus.
 *
 * Both use dimension-order routing (correct X first, then Y, then
 * deliver through the local port).  On the open mesh that is the
 * classic deadlock-free XY route.  On the torus each dimension
 * additionally picks the shorter way around the ring (ties go to
 * the positive direction), which restores edge symmetry but — as
 * with any minimal DOR on rings without virtual channels — can
 * deadlock under blocking flow control.  The topology therefore
 * exposes its ring geometry (portDimension / hopCrossesDateline) so
 * the engine's dateline VC policy can break the ring cycles; torus
 * runs default to blocking flow control with two VCs.
 *
 * Nodes are numbered row-major (node = y * width + x), matching the
 * pre-core MeshSimulator's iteration order.
 */

#ifndef DAMQ_NETWORK_CORE_GRID_TOPOLOGY_HH
#define DAMQ_NETWORK_CORE_GRID_TOPOLOGY_HH

#include "network/core/topology.hh"

namespace damq {

/** Ports of a grid node (four directions + the local host port). */
enum MeshPort : PortId
{
    kEast = 0,
    kWest = 1,
    kNorth = 2,
    kSouth = 3,
    kLocal = 4,
    kMeshPorts = 5
};

namespace core {

/** A width x height grid of 5-port nodes, open or wrapped. */
class GridTopology : public Topology
{
  public:
    /**
     * @param width      nodes per row (>= 2).
     * @param height     rows (>= 2).
     * @param wraparound true for a torus, false for an open mesh.
     */
    GridTopology(std::uint32_t width, std::uint32_t height,
                 bool wraparound);

    std::uint32_t width() const { return gridWidth; }
    std::uint32_t height() const { return gridHeight; }
    bool wraparound() const { return wrap; }

    std::uint32_t numSwitches() const override
    {
        return gridWidth * gridHeight;
    }

    std::uint32_t portsPerSwitch() const override
    {
        return kMeshPorts;
    }

    std::uint32_t numEndpoints() const override
    {
        return gridWidth * gridHeight;
    }

    PortId route(SwitchId sw, NodeId dest) const override;

    HopTarget hop(SwitchId sw, PortId out) const override;

    /** A mesh (no wraparound) has no links off its edges. */
    bool hasLink(SwitchId sw, PortId out) const override;

    /** Every grid node hosts an endpoint on its local port. */
    PortId localInputPort(SwitchId /*sw*/) const override
    {
        return kLocal;
    }

    InjectPoint injectionPoint(NodeId src) const override
    {
        return InjectPoint{src, kLocal};
    }

    std::string switchName(SwitchId sw) const override;

    /** East/west ports ride the X rings, north/south the Y rings. */
    int portDimension(PortId port) const override;

    /** True on a torus when @p out is the ring's wraparound link. */
    bool hopCrossesDateline(SwitchId sw, PortId out) const override;

    bool snapshotSkipsEmpty() const override { return true; }

    std::int64_t numTraceProcesses() const override
    {
        return static_cast<std::int64_t>(numSwitches());
    }

    std::string traceProcessName(std::int64_t pid) const override;

    const char *endpointProcessName() const override
    {
        return "hosts";
    }

    void traceRow(SwitchId sw, PortId port, std::int64_t &pid,
                  std::int64_t &tid) const override
    {
        pid = static_cast<std::int64_t>(sw);
        tid = static_cast<std::int64_t>(port);
    }

    std::string traceThreadName(SwitchId sw,
                                PortId port) const override;

    std::string probeName(SwitchId sw, PortId port) const override;

  private:
    std::uint32_t gridWidth;
    std::uint32_t gridHeight;
    bool wrap;
};

/** The open 2D mesh (XY dimension-order routing). */
class MeshTopology final : public GridTopology
{
  public:
    MeshTopology(std::uint32_t width, std::uint32_t height)
        : GridTopology(width, height, false)
    {
    }
};

/** The 2D torus (wraparound rings, shortest-way DOR). */
class TorusTopology final : public GridTopology
{
  public:
    TorusTopology(std::uint32_t width, std::uint32_t height)
        : GridTopology(width, height, true)
    {
    }
};

} // namespace core
} // namespace damq

#endif // DAMQ_NETWORK_CORE_GRID_TOPOLOGY_HH

#include "network/core/shard.hh"

#include "common/logging.hh"

namespace damq {

ShardRuntime::ShardRuntime(unsigned shard_count)
    : count(shard_count == 0 ? 1 : shard_count)
{
    workers.reserve(count - 1);
    for (unsigned s = 1; s < count; ++s)
        workers.emplace_back([this, s] { workerLoop(s); });
}

ShardRuntime::~ShardRuntime()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wakeWorkers.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ShardRuntime::run(const PhaseFn &fn)
{
    if (count == 1) {
        fn(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        task = &fn;
        pending = count - 1;
        ++generation;
    }
    wakeWorkers.notify_all();

    // The coordinator is shard 0.
    fn(0);

    std::unique_lock<std::mutex> lock(mutex);
    wakeCoordinator.wait(lock, [this] { return pending == 0; });
    task = nullptr;
}

void
ShardRuntime::workerLoop(unsigned shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        const PhaseFn *fn = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex);
            wakeWorkers.wait(lock, [this, seen] {
                return stopping || generation != seen;
            });
            if (stopping)
                return;
            seen = generation;
            fn = task;
        }
        (*fn)(shard);
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (--pending == 0)
                wakeCoordinator.notify_one();
        }
    }
}

unsigned
ShardPlan::shardOf(std::uint32_t sw) const
{
    // Ranges are near-equal, so a direct estimate lands on the right
    // shard or one off; nudge rather than binary-search.
    const unsigned n = shards();
    damq_assert(n > 0 && sw < begin[n], "shardOf: switch out of range");
    unsigned s = static_cast<unsigned>(
        (static_cast<std::uint64_t>(sw) * n) / begin[n]);
    while (s + 1 < n && sw >= begin[s + 1])
        ++s;
    while (s > 0 && sw < begin[s])
        --s;
    return s;
}

ShardPlan
ShardPlan::build(std::uint32_t num_switches, unsigned shard_count,
                 const std::vector<std::uint32_t> &inject_switch)
{
    damq_assert(shard_count >= 1, "ShardPlan: need at least one shard");
    damq_assert(shard_count <= num_switches,
                "ShardPlan: more shards than switches");
    ShardPlan plan;
    plan.begin.resize(shard_count + 1);
    for (unsigned s = 0; s <= shard_count; ++s)
        plan.begin[s] = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(num_switches) * s) /
            shard_count);
    plan.sources.resize(shard_count);
    for (std::uint32_t src = 0; src < inject_switch.size(); ++src)
        plan.sources[plan.shardOf(inject_switch[src])]
            .push_back(src);
    return plan;
}

} // namespace damq

#include "network/core/sim_engine.hh"

namespace damq {
namespace core {

SimEngine::SimEngine(const SimCommonConfig &common_config)
    : common(common_config), rng(common_config.seed),
      injector(common_config.faults),
      auditor(common_config.auditEveryCycles),
      watchdog(common_config.watchdogStallCycles)
{
}

void
SimEngine::step()
{
    ++currentCycle;
    if (telemetry)
        telemetry->beginCycle(currentCycle);
    phaseFaults();
    phaseAdvance();
    phaseInject();
    phaseAudit();
    phaseWatchdog();
    if (telemetry)
        telemetry->endCycle();
    if (measuring)
        onMeasuredCycle();
}

void
SimEngine::runSchedule()
{
    for (Cycle c = 0; c < common.warmupCycles; ++c)
        step();
    measuring = true;
    beginMeasurement();
    for (Cycle c = 0; c < common.measureCycles; ++c)
        step();
    measuring = false;
    if (telemetry)
        telemetry->writeFiles();
}

void
SimEngine::initTelemetry()
{
    if (!common.telemetry.enabled())
        return;
    telemetry = std::make_unique<obs::Telemetry>(common.telemetry);
    configureTelemetry(*telemetry);
}

FaultReport
SimEngine::faultReport() const
{
    FaultReport report;
    injector.fillReport(report);
    auditor.fillReport(report);
    watchdog.fillReport(report);
    return report;
}

} // namespace core
} // namespace damq

/**
 * @file
 * The flit-granular advance of SyncEngine: wormhole and virtual
 * cut-through switching under credit (or on-off) flow control.
 *
 * One flit crosses one link per cycle.  A packet earns a *virtual
 * channel* of a link through the ordinary crossbar arbiter (head
 * flits only); from then on it owns that VC stream — its flits
 * cross without re-arbitration until the tail frees the VC, so
 * flits of two packets can never interleave within a VC.  The
 * physical wire, by contrast, is flit-multiplexed among the link's
 * VC streams cycle by cycle (rotating priority): a packet stalled
 * waiting for downstream credits holds only its own VC, never the
 * wire — the property that lets the dateline escape VC keep moving
 * and preserves the torus deadlock-freedom argument under wormhole
 * (Dally's virtual-channel construction).  Upstream, a streaming
 * packet stays the head of its queue, advancing its flit cursor
 * each sent flit and popping only when the tail leaves; downstream
 * it occupies slots as flits arrive, so buffer occupancy is
 * flit-granular on both sides (Packet::slotsHeld).
 *
 * Credit accounting (creditBased schemes): the sender consumes one
 * credit per flit placed on a link; the downstream buffer hands
 * credits back on the three events that change what it holds —
 *   - an arriving flit lands in a slot the packet already held
 *     (slotsHeld did not grow): immediate rebate;
 *   - a sent flit shrinks slotsHeld: one credit back;
 *   - the tail-send pop frees the packet's last slot: one credit
 *     back.
 * Per packet the returns telescope to exactly its length, so at
 * quiescence every counter is back at its cap (credits issued ==
 * credits returned, checked by the conformance tests).  Hand-backs
 * are deferred to the end-of-cycle barrier: within a cycle every
 * sender reads start-of-cycle counter values, and only the owner of
 * a link's sending switch ever decrements its counters — which is
 * what keeps the advance bit-identical at any shard count.
 *
 * The per-(link,VC) counters cap at capacity minus one *head's
 * worth* of slots per other VC (one slot under wormhole, a whole
 * packet under VCT), so no VC can claim the head-room another VC's
 * head needs to enter — the dateline escape VC always finds room
 * eventually, preserving the torus deadlock argument at flit
 * granularity.
 */

#include "network/core/sync_engine.hh"

#include <algorithm>

#include "common/logging.hh"

namespace damq {
namespace core {

void
SyncEngine::FlitAdvance::exchangeSerial()
{
    damq_panic("flit advance has no serial exchange — the fault "
               "classes requiring one are rejected at construction");
}

void
SyncEngine::setupFlitState()
{
    if (cfg.placement != BufferPlacement::Input)
        damq_fatal(switchingName(cfg.switching),
                   " switching requires input-buffered placement "
                   "(per-link credit counters assume one feeding "
                   "link per buffer)");
    if (cfg.common.recovery.enabled())
        damq_fatal("flit-level switching does not compose with the "
                   "link-level recovery protocol yet (frames are "
                   "whole packets there)");
    const FaultConfig &f = cfg.common.faults;
    if (f.headerBitFlipRate > 0.0 || f.packetDropRate > 0.0 ||
        f.slotLeakRate > 0.0 || f.linkDownRate > 0.0 ||
        f.linkDownFraction > 0.0 || f.routerDownRate > 0.0)
        damq_fatal("flit-level switching supports only the "
                   "arbiter-stuck and credit-delay fault classes; "
                   "losing or corrupting individual flits would "
                   "strand the rest of their packet");
    if (cfg.common.vcs > 2)
        damq_fatal("flit-level switching supports at most 2 VCs "
                   "(the per-VC credit head-room rule reserves one "
                   "head's worth of slots per other VC)");
    if (cfg.flitsPerPacket == 0)
        damq_fatal("flitsPerPacket must be at least 1");
    if (cfg.bufferType == BufferType::Voq &&
        !scheme->reservesWholePacket())
        damq_fatal("VOQ's private-slot guarantee needs whole-packet "
                   "admission; wormhole body flits land without an "
                   "admission check and could eat another queue's "
                   "private slots (use virtual cut-through or "
                   "packet-sync switching)");
    // Every VC must be able to admit a head even when the others
    // are saturated up to their per-VC credit caps — that head-room
    // is one downstream slot under wormhole but a whole packet
    // under VCT, so the buffer must fit one head's worth per VC.
    const std::uint32_t headroom =
        scheme->headSlotsNeeded(cfg.flitsPerPacket);
    if (cfg.slotsPerBuffer <
        static_cast<std::uint32_t>(cfg.common.vcs) * headroom)
        damq_fatal(switchingName(cfg.switching),
                   " switching with ", cfg.common.vcs,
                   " VCs needs slotsPerBuffer >= ",
                   cfg.common.vcs * headroom, " (vcs x ", headroom,
                   " head slots), got ", cfg.slotsPerBuffer);

    flit = std::make_unique<FlitState>();
    const std::uint32_t links = topo.numLinks();
    const std::uint32_t n = topo.numSwitches();
    flit->streams.resize(static_cast<std::size_t>(links) * numVcs);
    flit->sendFlit.assign(links, 0);
    flit->linkCredits.assign(links, 0);
    flit->linkCreditCap.assign(links, 0);
    flit->vcCredits.assign(static_cast<std::size_t>(links) * numVcs,
                           0);
    flit->vcCreditCap.assign(links, 0);
    flit->feedLink.assign(static_cast<std::size_t>(n) * portCount,
                          kNoFeedLink);
    flit->sends.assign(n, 0);
    for (SwitchId sw = 0; sw < n; ++sw) {
        for (PortId out = 0; out < portCount; ++out) {
            if (!topo.hasLink(sw, out))
                continue;
            const LinkId link = linkIdOf(sw, out, portCount);
            if (chanToSink[link])
                continue; // sinks absorb flits without credits
            const SwitchId next_sw = chanNextSwitch[link];
            const PortId next_in = chanNextInput[link];
            damq_assert(
                flit->feedLink[next_sw * portCount + next_in] ==
                    kNoFeedLink,
                "two links feed one input buffer — per-link "
                "credits are unsound here");
            flit->feedLink[next_sw * portCount + next_in] = link;
            const std::int32_t cap = static_cast<std::int32_t>(
                switchStore[next_sw].buffer(next_in).capacitySlots());
            flit->linkCreditCap[link] = cap;
            flit->linkCredits[link] = cap;
            // One head's worth of head-room per other VC (checked
            // >= headroom above), so the dateline escape VC can
            // always eventually admit a head.
            const std::int32_t vc_cap =
                cap - static_cast<std::int32_t>(
                          (numVcs - 1) * headroom);
            flit->vcCreditCap[link] = vc_cap;
            for (VcId vc = 0; vc < numVcs; ++vc)
                flit->vcCredits[static_cast<std::size_t>(link) *
                                    numVcs +
                                vc] = vc_cap;
        }
    }
    // Injection must not share a buffer with a link: injected
    // packets consume slots no upstream paid credits for.
    for (NodeId src = 0; src < topo.numEndpoints(); ++src) {
        const InjectPoint entry = topo.injectionPoint(src);
        damq_assert(
            flit->feedLink[entry.switchId * portCount + entry.port] ==
                kNoFeedLink,
            "injection point shares an input buffer with a link — "
            "credits cannot account for it");
    }
    flit->shard.resize(shardPool->shards());
    for (FlitShard &fs : flit->shard) {
        // At most one flit per link leaves a switch per cycle.
        fs.moves.reserve(static_cast<std::size_t>(n) * portCount);
        fs.returns.reserve(static_cast<std::size_t>(n) * portCount *
                           2);
        fs.tailGrants.reserve(portCount);
        fs.tailVcs.reserve(portCount);
        fs.reads.assign(portCount, 0);
    }
}

bool
SyncEngine::flitCanSendHead(SwitchId sw, QueueKey out_key,
                            const Packet &pkt)
{
    const LinkId link = sw * portCount + out_key.out;
    // A wire already claimed by a continuation this cycle carries
    // no second flit; a different VC's *stalled* stream does not
    // block the wire (virtual channels multiplex it).
    if (flit->sendFlit[link])
        return false;
    const VcId next_vc = linkVcFlat(pkt, link, out_key.out);
    // The target VC must be free: a stream owns its VC from head
    // grant to tail crossing, so flits of two packets never
    // interleave within a VC.
    if (flit->streams[static_cast<std::size_t>(link) * numVcs +
                      next_vc]
            .active)
        return false;
    if (chanToSink[link])
        return true; // sinks always accept
    const SwitchId next_sw = chanNextSwitch[link];
    if (injector.creditDelayed(next_sw, currentCycle))
        return false;
    const PortId next_out =
        routeAfterHop(sw, out_key.out, next_sw, pkt);
    if (next_out == kInvalidPort)
        return false;
    // Wormhole heads need one downstream slot; VCT heads need the
    // whole packet's worth (the cut-through guarantee) — plus room
    // for every flit the link's other streams have committed but
    // not yet delivered, or two VCT packets could jointly overbook
    // the buffer.  (Conservative for partitioned organizations,
    // whose per-queue space is not actually shared.)
    std::uint32_t needed = scheme->headSlotsNeeded(pkt.lengthSlots);
    if (scheme->reservesWholePacket())
        needed += flitCommitted(link);
    if (scheme->creditBased() &&
        (flit->linkCredits[link] < static_cast<std::int32_t>(needed) ||
         flit->vcCredits[static_cast<std::size_t>(link) * numVcs +
                         next_vc] <
             static_cast<std::int32_t>(needed)))
        return false;
    // Exact organization-aware check on top of the credit counters:
    // a partitioned buffer can be "full" for this queue with total
    // credits to spare.
    return switchStore[next_sw].canAcceptClass(
        chanNextInput[link], QueueKey{next_out, next_vc}, needed,
        pkt.trafficClass);
}

std::uint32_t
SyncEngine::flitCommitted(LinkId link)
{
    const SwitchId sw = link / portCount;
    std::uint32_t committed = 0;
    for (VcId vc = 0; vc < numVcs; ++vc) {
        const FlitStream &st =
            flit->streams[static_cast<std::size_t>(link) * numVcs +
                          vc];
        if (!st.active)
            continue;
        const Packet *head =
            switchStore[sw].buffer(st.input).peek(st.srcKey);
        damq_assert(head && head->id == st.packet,
                    "active flit stream lost its packet");
        committed += head->lengthSlots - head->flitsSent;
    }
    return committed;
}

bool
SyncEngine::flitCanContinue(LinkId link, const FlitStream &st,
                            const Packet &head)
{
    // The next flit must have arrived upstream (wormhole pipelining
    // lets a packet stream out of a buffer it is still streaming
    // into).
    if (head.flitsSent >= head.arrivedFlits())
        return false;
    if (chanToSink[link])
        return true;
    const SwitchId next_sw = chanNextSwitch[link];
    if (injector.creditDelayed(next_sw, currentCycle))
        return false;
    // In-place arrival: if the downstream record has forwarded
    // everything that arrived, the next flit lands in the one slot
    // the packet still anchors — no new slot, no credit head-room
    // needed.  Without this a partial packet pipelining through a
    // full buffer could never receive its next flit and would hold
    // its VC forever (deadlock).  The credit it consumes is rebated
    // at this cycle's barrier (see flitExchange).
    const PortId next_in = chanNextInput[link];
    bool grows = true;
    bool found = false;
    switchStore[next_sw].buffer(next_in).forEachInQueue(
        st.dstKey, [&](const Packet &p) {
            if (p.id != st.packet)
                return;
            found = true;
            grows = p.flitsSent < p.arrivedFlits();
        });
    damq_assert(found, "streaming packet has no downstream record");
    if (!grows)
        return true;
    if (scheme->creditBased() &&
        (flit->linkCredits[link] < 1 ||
         flit->vcCredits[static_cast<std::size_t>(link) * numVcs +
                         st.linkVc] < 1))
        return false;
    return switchStore[next_sw].canAccept(next_in, st.dstKey, 1);
}

void
SyncEngine::flitArbitrate(unsigned shard)
{
    ShardScratch &sc = shardScratch[shard];
    FlitShard &fs = flit->shard[shard];
    for (SwitchId sw = plan.begin[shard]; sw < plan.begin[shard + 1];
         ++sw) {
        GrantList &grants = grantStore[sw];
        grants.clear();
        std::fill(fs.reads.begin(), fs.reads.end(), 0);
        const std::uint32_t budget =
            switchStore[sw].buffer(0).maxReadsPerCycle();
        // Stream continuations claim wires and read ports first, in
        // link order; only then may the arbiter grant new heads
        // onto the leftovers.  Each wire carries one flit per
        // cycle, picked among its VC streams with a rotating
        // priority (cycle-based, so it is identical at any shard
        // count) — a stalled VC never starves the other.
        for (PortId out = 0; out < portCount; ++out) {
            const LinkId link = sw * portCount + out;
            flit->sendFlit[link] = 0;
            for (VcId i = 0; i < numVcs; ++i) {
                const VcId vc = static_cast<VcId>(
                    (currentCycle + i) % numVcs);
                const FlitStream &st =
                    flit->streams[static_cast<std::size_t>(link) *
                                      numVcs +
                                  vc];
                if (!st.active)
                    continue;
                if (fs.reads[st.input] >= budget)
                    continue; // read ports exhausted this cycle
                const Packet *head =
                    switchStore[sw].buffer(st.input).peek(st.srcKey);
                damq_assert(head && head->id == st.packet,
                            "active flit stream lost its packet");
                if (!flitCanContinue(link, st, *head))
                    continue;
                flit->sendFlit[link] =
                    static_cast<std::uint8_t>(1 + vc);
                ++fs.reads[st.input];
                break;
            }
        }
        // A stuck arbiter issues no new grants; streams in flight
        // keep draining (their arbitration already happened).
        if (injector.arbiterStuck(sw, currentCycle))
            continue;
        sc.arbSwitch = sw;
        switchStore[sw].arbitrateInto(sc.canSend, grants);
        // The arbiter caps reads among its own grants but cannot
        // see the continuations' claims — drop what exceeds the
        // remaining budget, in grant order.
        std::size_t kept = 0;
        for (const Grant &g : grants) {
            if (fs.reads[g.input] >= budget)
                continue;
            ++fs.reads[g.input];
            grants[kept++] = g;
        }
        grants.resize(kept);
    }
}

void
SyncEngine::flitConsumeCredit(FlitShard &fs, LinkId link, VcId vc)
{
    if (chanToSink[link] || !scheme->creditBased())
        return;
    std::int32_t &lc = flit->linkCredits[link];
    std::int32_t &vcc =
        flit->vcCredits[static_cast<std::size_t>(link) * numVcs + vc];
    --lc;
    --vcc;
    // At most one flit crosses a link per cycle, so only an
    // in-place send (rebated at the barrier) may dip below zero,
    // and only to -1.
    damq_assert(lc >= -1 && vcc >= -1,
                "flit sent without a credit — admission check is "
                "broken");
    ++fs.issued;
}

void
SyncEngine::flitDeferReturn(FlitShard &fs, SwitchId sw, PortId input,
                            VcId vc)
{
    const LinkId feeder = flit->feedLink[sw * portCount + input];
    if (feeder == kNoFeedLink || !scheme->creditBased())
        return; // injection-fed buffer: no upstream to repay
    fs.returns.push_back(CreditReturn{feeder, vc});
}

void
SyncEngine::flitPop(unsigned shard)
{
    ShardScratch &sc = shardScratch[shard];
    FlitShard &fs = flit->shard[shard];
    fs.moves.clear();
    fs.returns.clear();
    fs.issued = 0;
    for (SwitchId sw = plan.begin[shard]; sw < plan.begin[shard + 1];
         ++sw) {
        fs.tailGrants.clear();
        fs.tailVcs.clear();
        // Continuations, in the link order A1 decided them.
        for (PortId out = 0; out < portCount; ++out) {
            const LinkId link = sw * portCount + out;
            if (!flit->sendFlit[link])
                continue;
            const VcId wire_vc =
                static_cast<VcId>(flit->sendFlit[link] - 1);
            FlitStream &st =
                flit->streams[static_cast<std::size_t>(link) *
                                  numVcs +
                              wire_vc];
            BufferModel &buf = switchStore[sw].buffer(st.input);
            const Packet *head = buf.peek(st.srcKey);
            if (head->flitsSent + 1 == head->lengthSlots) {
                // Tail flit: the send is the pop — it frees the
                // stream's VC in the same cycle.
                fs.tailGrants.push_back(
                    Grant{st.input, st.srcKey.out, st.srcKey.vc});
                fs.tailVcs.push_back(wire_vc);
                st.active = false;
            } else {
                const VcId held_vc = head->vc;
                const bool shrank = buf.flitSent(st.srcKey);
                if (shrank)
                    flitDeferReturn(fs, sw, st.input, held_vc);
                fs.moves.push_back(
                    FlitMove{link, wire_vc, FlitType::Body,
                             Packet{}});
                ++flit->sends[sw];
            }
            flitConsumeCredit(fs, link, wire_vc);
        }
        // New heads granted this cycle.
        for (const Grant &g : grantStore[sw]) {
            const LinkId link = sw * portCount + g.output;
            BufferModel &buf = switchStore[sw].buffer(g.input);
            const Packet *head = buf.peek(g.queue());
            const VcId link_vc = linkVcFlat(*head, link, g.output);
            FlitStream &st =
                flit->streams[static_cast<std::size_t>(link) *
                                  numVcs +
                              link_vc];
            damq_assert(!st.active,
                        "head granted onto an occupied VC stream");
            if (head->lengthSlots == 1) {
                // Single-flit packet: head and tail at once — no
                // stream forms.
                fs.tailGrants.push_back(g);
                fs.tailVcs.push_back(link_vc);
            } else {
                st.packet = head->id;
                st.active = true;
                st.input = g.input;
                st.srcKey = g.queue();
                st.linkVc = link_vc;
                Packet copy = *head;
                const bool shrank = buf.flitSent(g.queue());
                if (shrank)
                    flitDeferReturn(fs, sw, g.input, copy.vc);
                fs.moves.push_back(
                    FlitMove{link, link_vc, FlitType::Head, copy});
                ++flit->sends[sw];
            }
            flitConsumeCredit(fs, link, link_vc);
        }
        // Tail and single-flit pops in one batch (keeps the
        // SwitchModel transmit counters true).
        if (!fs.tailGrants.empty()) {
            switchStore[sw].popGrantedInto(fs.tailGrants, sc.sent);
            for (std::size_t i = 0; i < sc.sent.size(); ++i) {
                const Grant &g = fs.tailGrants[i];
                const LinkId link = sw * portCount + g.output;
                const Packet &p = sc.sent[i];
                flitDeferReturn(fs, sw, g.input, p.vc);
                fs.moves.push_back(FlitMove{
                    link, fs.tailVcs[i],
                    p.lengthSlots == 1 ? FlitType::HeadTail
                                       : FlitType::Tail,
                    p});
                ++flit->sends[sw];
            }
        }
    }
}

void
SyncEngine::flitExchange(unsigned shard)
{
    FlitShard &own = flit->shard[shard];
    const SwitchId begin_sw = plan.begin[shard];
    const SwitchId end_sw = plan.begin[shard + 1];
    // Every shard scans the full move list and applies only the
    // flits landing on a switch it owns — sound because each input
    // buffer is fed by exactly one link and a link carries at most
    // one flit per cycle.
    for (unsigned s = 0; s < plan.shards(); ++s) {
        for (const FlitMove &m : flit->shard[s].moves) {
            if (chanToSink[m.link])
                continue; // coordinator delivers sinks in order
            const SwitchId next_sw = chanNextSwitch[m.link];
            if (next_sw < begin_sw || next_sw >= end_sw)
                continue;
            FlitStream &st =
                flit->streams[static_cast<std::size_t>(m.link) *
                                  numVcs +
                              m.vc];
            const PortId in = chanNextInput[m.link];
            if (m.type == FlitType::Head ||
                m.type == FlitType::HeadTail) {
                Packet pkt = m.pkt;
                // Same per-hop rewrite as the packet engine: link
                // VC from the wire, then route at the new switch.
                pkt.vc = m.vc;
                pkt.inPort = in;
                pkt.outPort = topo.route(next_sw, pkt.dest);
                ++pkt.hops;
                pkt.flitsArrived = 1;
                pkt.flitsSent = 0;
                st.dstKey = QueueKey{pkt.outPort, pkt.vc};
                // Credit flow control: the head was admitted by
                // flitCanSendHead at grant time, so the commit
                // re-verifies only the static space rule (the
                // dynamic policy verdict must not run again — see
                // SwitchUnit::receiveGranted).
                const bool accepted =
                    switchStore[next_sw].receiveGranted(in, pkt);
                damq_assert(accepted,
                            "flit admission check lied: head flit "
                            "rejected downstream");
            } else {
                const bool grew =
                    switchStore[next_sw].buffer(in).flitArrived(
                        st.dstKey);
                if (!grew && scheme->creditBased()) {
                    // Rebate: the flit landed in a slot its packet
                    // already held (downstream is streaming out as
                    // fast as we stream in).
                    own.returns.push_back(
                        CreditReturn{m.link, m.vc});
                }
            }
        }
    }
}

void
SyncEngine::flitFinishExchange()
{
    for (unsigned s = 0; s < plan.shards(); ++s) {
        FlitShard &fs = flit->shard[s];
        // Sink deliveries in global move order — deliver()'s
        // Welford statistics are order-sensitive floating point.
        // A packet's latency stops at its tail flit, so
        // serialization latency is included.
        for (const FlitMove &m : fs.moves) {
            if (!chanToSink[m.link])
                continue;
            if (m.type == FlitType::Tail ||
                m.type == FlitType::HeadTail)
                deliver(m.pkt, chanSink[m.link]);
        }
        flit->creditsIssued += fs.issued;
        for (const CreditReturn &r : fs.returns) {
            std::int32_t &lc = flit->linkCredits[r.link];
            std::int32_t &vcc =
                flit->vcCredits[static_cast<std::size_t>(r.link) *
                                    numVcs +
                                r.vc];
            ++lc;
            ++vcc;
            ++flit->creditsReturned;
            damq_assert(lc <= flit->linkCreditCap[r.link] &&
                            vcc <= flit->vcCreditCap[r.link],
                        "credit counter exceeded its cap — a "
                        "return was double-counted");
        }
    }
}

bool
SyncEngine::flitCreditsAtRest() const
{
    if (!flit || !scheme->creditBased())
        return true;
    const std::uint32_t links = topo.numLinks();
    for (LinkId link = 0; link < links; ++link) {
        if (flit->linkCreditCap[link] == 0)
            continue; // sink or absent link: no counters
        if (flit->linkCredits[link] != flit->linkCreditCap[link])
            return false;
        for (VcId vc = 0; vc < numVcs; ++vc) {
            if (flit->vcCredits[static_cast<std::size_t>(link) *
                                    numVcs +
                                vc] != flit->vcCreditCap[link])
                return false;
        }
    }
    return true;
}

std::vector<std::string>
SyncEngine::flitCheckInvariants() const
{
    std::vector<std::string> violations;
    const std::uint32_t links = topo.numLinks();
    for (LinkId link = 0; link < links; ++link) {
        for (VcId vc = 0; vc < numVcs; ++vc) {
            const FlitStream &st =
                flit->streams[static_cast<std::size_t>(link) *
                                  numVcs +
                              vc];
            if (!st.active)
                continue;
            // A live stream must still be draining its packet: the
            // tail send deactivates the stream in the same cycle it
            // pops, so a dangling stream means a tail failed to
            // free its VC.
            const SwitchId sw = link / portCount;
            const Packet *head =
                switchStore[sw].buffer(st.input).peek(st.srcKey);
            if (!head || head->id != st.packet) {
                violations.push_back(detail::concat(
                    "link ", link, " vc ", vc,
                    ": active stream for packet ", st.packet,
                    " but its queue head is gone — tail flit did "
                    "not free the VC"));
            } else if (head->flitsSent >= head->lengthSlots) {
                violations.push_back(detail::concat(
                    "link ", link, " vc ", vc, ": packet ",
                    st.packet, " sent all ", head->lengthSlots,
                    " flits but still holds its VC"));
            }
        }
        if (scheme->creditBased() && flit->linkCreditCap[link] > 0) {
            if (flit->linkCredits[link] > flit->linkCreditCap[link] ||
                flit->linkCredits[link] < 0)
                violations.push_back(detail::concat(
                    "link ", link, ": ", flit->linkCredits[link],
                    " credits outside [0, ",
                    flit->linkCreditCap[link], "]"));
            const std::int32_t used = static_cast<std::int32_t>(
                switchStore[chanNextSwitch[link]]
                    .buffer(chanNextInput[link])
                    .usedSlots());
            if (flit->linkCredits[link] + used !=
                flit->linkCreditCap[link])
                violations.push_back(detail::concat(
                    "link ", link, ": credits ",
                    flit->linkCredits[link], " + used slots ", used,
                    " != capacity ", flit->linkCreditCap[link],
                    " — a credit leaked"));
        }
    }
    // At most one partially-arrived packet per (input buffer, VC):
    // a buffer is fed by one link and each of the link's VCs
    // streams one packet at a time — two partials on one VC means
    // flits of two packets interleaved within it.
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        for (PortId in = 0; in < portCount; ++in) {
            const BufferModel &buf = switchStore[sw].buffer(in);
            for (VcId vc = 0; vc < numVcs; ++vc) {
                std::uint32_t partial = 0;
                for (PortId out = 0; out < portCount; ++out) {
                    const_cast<BufferModel &>(buf).forEachInQueue(
                        QueueKey{out, vc},
                        [&partial](const Packet &pkt) {
                            if (!pkt.fullyArrived())
                                ++partial;
                        });
                }
                if (partial > 1)
                    violations.push_back(detail::concat(
                        "switch ", sw, " input ", in, " vc ", vc,
                        ": ", partial,
                        " partially-arrived packets share one VC "
                        "— flits of two packets interleaved on "
                        "its link"));
            }
        }
    }
    return violations;
}

} // namespace core
} // namespace damq

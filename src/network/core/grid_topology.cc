#include "network/core/grid_topology.hh"

#include "common/logging.hh"
#include "common/string_util.hh"

namespace damq {
namespace core {

GridTopology::GridTopology(std::uint32_t width, std::uint32_t height,
                           bool wraparound)
    : gridWidth(width), gridHeight(height), wrap(wraparound)
{
    damq_assert(width >= 2 && height >= 2,
                "grid needs at least 2x2 nodes");
}

PortId
GridTopology::route(SwitchId sw, NodeId dest) const
{
    // Dimension-order: correct X first, then Y, then deliver.
    const std::int64_t x = sw % gridWidth;
    const std::int64_t y = sw / gridWidth;
    const std::int64_t tx = dest % gridWidth;
    const std::int64_t ty = dest / gridWidth;
    if (!wrap) {
        if (tx > x)
            return kEast;
        if (tx < x)
            return kWest;
        if (ty > y)
            return kNorth;
        if (ty < y)
            return kSouth;
        return kLocal;
    }
    // Torus: take the shorter way around each ring; a tie goes to
    // the positive (east/north) direction.
    if (tx != x) {
        const std::int64_t fwd = (tx - x + gridWidth) % gridWidth;
        const std::int64_t bwd = (x - tx + gridWidth) % gridWidth;
        return fwd <= bwd ? kEast : kWest;
    }
    if (ty != y) {
        const std::int64_t fwd = (ty - y + gridHeight) % gridHeight;
        const std::int64_t bwd = (y - ty + gridHeight) % gridHeight;
        return fwd <= bwd ? kNorth : kSouth;
    }
    return kLocal;
}

HopTarget
GridTopology::hop(SwitchId sw, PortId out) const
{
    const std::uint32_t x = sw % gridWidth;
    const std::uint32_t y = sw / gridWidth;
    HopTarget target;
    if (out == kLocal) {
        target.toSink = true;
        target.sink = sw;
        return target;
    }
    switch (out) {
      case kEast:
        if (wrap) {
            target.switchId =
                x + 1 == gridWidth ? sw - (gridWidth - 1) : sw + 1;
        } else {
            damq_assert(x + 1 < gridWidth,
                        "routed off the east edge");
            target.switchId = sw + 1;
        }
        target.inputPort = kWest;
        return target;
      case kWest:
        if (wrap) {
            target.switchId = x == 0 ? sw + (gridWidth - 1) : sw - 1;
        } else {
            damq_assert(x > 0, "routed off the west edge");
            target.switchId = sw - 1;
        }
        target.inputPort = kEast;
        return target;
      case kNorth:
        if (wrap) {
            target.switchId = y + 1 == gridHeight
                                  ? sw - gridWidth * (gridHeight - 1)
                                  : sw + gridWidth;
        } else {
            damq_assert(y + 1 < gridHeight,
                        "routed off the north edge");
            target.switchId = sw + gridWidth;
        }
        target.inputPort = kSouth;
        return target;
      case kSouth:
        if (wrap) {
            target.switchId = y == 0
                                  ? sw + gridWidth * (gridHeight - 1)
                                  : sw - gridWidth;
        } else {
            damq_assert(y > 0, "routed off the south edge");
            target.switchId = sw - gridWidth;
        }
        target.inputPort = kNorth;
        return target;
      default:
        damq_panic("hop() through bad grid port ",
                   static_cast<int>(out));
    }
}

bool
GridTopology::hasLink(SwitchId sw, PortId out) const
{
    if (wrap || out == kLocal)
        return true;
    const std::uint32_t x = sw % gridWidth;
    const std::uint32_t y = sw / gridWidth;
    switch (out) {
      case kEast:
        return x + 1 < gridWidth;
      case kWest:
        return x > 0;
      case kNorth:
        return y + 1 < gridHeight;
      case kSouth:
        return y > 0;
      default:
        return false;
    }
}

std::string
GridTopology::switchName(SwitchId sw) const
{
    return detail::concat("node", sw);
}

int
GridTopology::portDimension(PortId port) const
{
    switch (port) {
      case kEast:
      case kWest:
        return 0;
      case kNorth:
      case kSouth:
        return 1;
      default:
        return -1; // the local port belongs to no ring
    }
}

bool
GridTopology::hopCrossesDateline(SwitchId sw, PortId out) const
{
    if (!wrap)
        return false;
    const std::uint32_t x = sw % gridWidth;
    const std::uint32_t y = sw / gridWidth;
    switch (out) {
      case kEast:
        return x + 1 == gridWidth;
      case kWest:
        return x == 0;
      case kNorth:
        return y + 1 == gridHeight;
      case kSouth:
        return y == 0;
      default:
        return false;
    }
}

std::string
GridTopology::traceProcessName(std::int64_t pid) const
{
    const std::int64_t x = pid % gridWidth;
    const std::int64_t y = pid / gridWidth;
    return detail::concat("node", x, ",", y);
}

static const char *const kGridPortName[kMeshPorts] = {
    "east", "west", "north", "south", "local"};

std::string
GridTopology::traceThreadName(SwitchId, PortId port) const
{
    return kGridPortName[port];
}

std::string
GridTopology::probeName(SwitchId sw, PortId port) const
{
    const std::uint32_t x = sw % gridWidth;
    const std::uint32_t y = sw / gridWidth;
    return detail::concat("n", x, ",", y, ".", kGridPortName[port]);
}

} // namespace core
} // namespace damq

/**
 * @file
 * Simulator-level types shared by every network simulator: the
 * flow-control protocol (Section 4) and the monotone event counters
 * every engine accumulates.  These lived in network_sim.hh before
 * the core extraction; network_sim.hh re-exports them, so existing
 * includes keep working.
 */

#ifndef DAMQ_NETWORK_CORE_SIM_TYPES_HH
#define DAMQ_NETWORK_CORE_SIM_TYPES_HH

#include <cstdint>
#include <optional>
#include <string>

namespace damq {

/** How a full downstream buffer is handled (Section 4). */
enum class FlowControl
{
    Discarding, ///< packets entering a full buffer are dropped
    Blocking,   ///< the transmitter is held off by back-pressure
    /**
     * Flit-level back-pressure by per-hop credit counters: a sender
     * holds one credit per downstream slot its flits may occupy and
     * stalls at zero; the receiver returns a credit per slot freed.
     * Only meaningful under the flit-level switching modes
     * (wormhole / virtual cut-through); packet-synchronized configs
     * reject it at construction.
     */
    Credit,
    /**
     * Flit-level back-pressure by an on/off wire: the sender reads
     * the receiver's free-space state directly each cycle instead
     * of tracking credits.  Flit modes only, like Credit.
     */
    OnOff
};

/** Human-readable protocol name. */
const char *flowControlName(FlowControl protocol);

/** Parse a case-insensitive protocol name; nullopt on bad input. */
std::optional<FlowControl> tryFlowControlFromString(
    const std::string &name);

/** Monotone event counters (lifetime totals). */
struct NetworkCounters
{
    std::uint64_t generated = 0;        ///< packets created by sources
    std::uint64_t injected = 0;         ///< entered a first-hop buffer
    std::uint64_t delivered = 0;        ///< reached their sink
    std::uint64_t discardedAtEntry = 0; ///< dropped entering the fabric
    std::uint64_t discardedInternal = 0;///< dropped at a later hop
    std::uint64_t misrouted = 0;        ///< delivered to wrong sink (bug!)
    std::uint64_t faultDropped = 0;     ///< removed by injected faults
                                        ///  (drops + detected corruptions)

    /** Element-wise difference (for measurement windows). */
    NetworkCounters operator-(const NetworkCounters &rhs) const;

    /** All discards. */
    std::uint64_t discarded() const
    {
        return discardedAtEntry + discardedInternal;
    }
};

} // namespace damq

#endif // DAMQ_NETWORK_CORE_SIM_TYPES_HH

/**
 * @file
 * The link-state mask: which links the recovery protocol has
 * declared dead.
 *
 * Links are numbered flat as sw * portsPerSwitch + out — the same
 * scheme the fault injector's hard-fault plan uses — so a LinkId is
 * meaningful to the topology, the injector, the link layer, and the
 * fault-tolerant router alike.  The mask records *detected* state,
 * not ground truth: a forced-down link only appears here after the
 * retransmission protocol has burned through its retry budget, and
 * it leaves again when a revival probe succeeds.  The mask version
 * counter lets routing tables cache until something changes.
 */

#ifndef DAMQ_NETWORK_CORE_LINK_STATE_HH
#define DAMQ_NETWORK_CORE_LINK_STATE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace damq {
namespace core {

/** Flat link index: sw * portsPerSwitch + out. */
using LinkId = std::uint32_t;

/** Flat link id of output @p out of switch @p sw. */
inline LinkId
linkIdOf(std::uint32_t sw, PortId out, std::uint32_t ports_per_switch)
{
    return static_cast<LinkId>(sw) * ports_per_switch + out;
}

/** Which links are (detected as) dead, with a change version. */
class LinkStateMask
{
  public:
    LinkStateMask() = default;

    explicit LinkStateMask(std::size_t num_links)
        : down(num_links, 0)
    {
    }

    std::size_t numLinks() const { return down.size(); }

    bool linkUp(LinkId link) const { return down[link] == 0; }
    bool linkDown(LinkId link) const { return down[link] != 0; }

    /** Number of links currently declared dead. */
    std::uint32_t deadLinks() const { return deadCount; }

    /**
     * Monotonic change counter; bumps whenever a link's state
     * flips, so routing tables can cache per version.
     */
    std::uint64_t version() const { return changeVersion; }

    void setLinkDown(LinkId link)
    {
        if (down[link])
            return;
        down[link] = 1;
        ++deadCount;
        ++changeVersion;
    }

    void setLinkUp(LinkId link)
    {
        if (!down[link])
            return;
        down[link] = 0;
        --deadCount;
        ++changeVersion;
    }

    /** Visit every dead link (ascending LinkId). */
    template <typename Fn>
    void forEachDeadLink(Fn &&fn) const
    {
        if (deadCount == 0)
            return;
        for (LinkId link = 0; link < down.size(); ++link) {
            if (down[link])
                fn(link);
        }
    }

  private:
    std::vector<std::uint8_t> down;
    std::uint32_t deadCount = 0;
    std::uint64_t changeVersion = 0;
};

} // namespace core
} // namespace damq

#endif // DAMQ_NETWORK_CORE_LINK_STATE_HH

#include "network/core/workload.hh"

#include <algorithm>
#include <cctype>
#include <deque>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace damq {
namespace core {

const char *
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Geometric: return "geometric";
      case WorkloadKind::OnOff: return "onoff";
      case WorkloadKind::Mmpp: return "mmpp";
      case WorkloadKind::Batch: return "batch";
      case WorkloadKind::ReqReply: return "reqreply";
      case WorkloadKind::Trace: return "trace";
    }
    return "?";
}

std::optional<WorkloadKind>
tryWorkloadKindFromString(const std::string &name)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "geometric" || lower == "bernoulli")
        return WorkloadKind::Geometric;
    if (lower == "onoff")
        return WorkloadKind::OnOff;
    if (lower == "mmpp")
        return WorkloadKind::Mmpp;
    if (lower == "batch")
        return WorkloadKind::Batch;
    if (lower == "reqreply")
        return WorkloadKind::ReqReply;
    if (lower == "trace")
        return WorkloadKind::Trace;
    return std::nullopt;
}

namespace {

/** Open-loop Bernoulli at the offered load: one draw per call. */
class GeometricProcess : public InjectionProcess
{
  public:
    explicit GeometricProcess(double load) : load(load) {}

    const char *name() const override { return "geometric"; }

    bool shouldGenerate(NodeId, Cycle, Random &rng) override
    {
        return rng.bernoulli(load);
    }

  private:
    double load;
};

/**
 * The historical two-state burst source, draw-for-draw identical to
 * the pre-redesign TrafficSource: one transition draw, then one
 * generation draw at load * B while on (0 while off).
 */
class OnOffProcess : public InjectionProcess
{
  public:
    OnOffProcess(std::uint32_t num_sources, double load,
                 double burstiness, Cycle mean_burst_cycles)
        : load(load), burstiness(burstiness),
          meanOn(static_cast<double>(mean_burst_cycles)),
          sourceOn(num_sources, false)
    {
    }

    const char *name() const override { return "onoff"; }

    bool shouldGenerate(NodeId src, Cycle, Random &rng) override
    {
        // On a fraction 1/B of the time, generating at rate
        // load * B while on.
        const double mean_off = meanOn * (burstiness - 1.0);
        if (sourceOn[src]) {
            if (rng.bernoulli(1.0 / meanOn))
                sourceOn[src] = false;
        } else {
            if (rng.bernoulli(1.0 / mean_off))
                sourceOn[src] = true;
        }
        const double gen = sourceOn[src] ? load * burstiness : 0.0;
        return rng.bernoulli(gen);
    }

  private:
    double load;
    double burstiness;
    double meanOn;
    std::vector<bool> sourceOn;
};

/**
 * 2-state Markov-modulated Bernoulli: rate load * B in the high
 * state, load / B in the low state, stationary high fraction
 * 1/(B+1), so the mean rate is exactly the offered load.  Two draws
 * per source per cycle (transition, then generation) regardless of
 * state.
 */
class MmppProcess : public InjectionProcess
{
  public:
    MmppProcess(std::uint32_t num_sources, double load,
                double burstiness, Cycle mean_burst_cycles)
        : rateHigh(load * burstiness), rateLow(load / burstiness),
          leaveHigh(1.0 / static_cast<double>(mean_burst_cycles)),
          leaveLow(1.0 / (static_cast<double>(mean_burst_cycles) *
                          burstiness)),
          sourceHigh(num_sources, false)
    {
    }

    const char *name() const override { return "mmpp"; }

    bool shouldGenerate(NodeId src, Cycle, Random &rng) override
    {
        if (sourceHigh[src]) {
            if (rng.bernoulli(leaveHigh))
                sourceHigh[src] = false;
        } else {
            if (rng.bernoulli(leaveLow))
                sourceHigh[src] = true;
        }
        return rng.bernoulli(sourceHigh[src] ? rateHigh : rateLow);
    }

  private:
    double rateHigh;
    double rateLow;
    double leaveHigh;
    double leaveLow;
    std::vector<bool> sourceHigh;
};

/**
 * Fixed per-source quota offered at the configured rate; once a
 * source's quota is spent it never draws again, and the process
 * reports exhausted so the engine can drain-and-measure.
 */
class BatchProcess : public InjectionProcess
{
  public:
    BatchProcess(std::uint32_t num_sources, double load,
                 std::uint64_t batch_packets)
        : load(load), remaining(num_sources, batch_packets),
          totalRemaining(static_cast<std::uint64_t>(num_sources) *
                         batch_packets)
    {
        stats_.batchRemaining = totalRemaining;
    }

    const char *name() const override { return "batch"; }

    bool shouldGenerate(NodeId src, Cycle, Random &rng) override
    {
        if (remaining[src] == 0)
            return false;
        if (!rng.bernoulli(load))
            return false;
        --remaining[src];
        --totalRemaining;
        stats_.batchRemaining = totalRemaining;
        return true;
    }

    bool exhausted() const override { return totalRemaining == 0; }

  private:
    double load;
    std::vector<std::uint64_t> remaining;
    std::uint64_t totalRemaining;
};

/**
 * Memory-like closed loop: a source issues requests (Bernoulli at
 * the offered load) while it has window headroom; delivery of a
 * request queues a reply at its destination, which that node sends
 * ahead of any new request (no RNG draw); delivery of the reply
 * frees the requester's window slot.
 */
class ReqReplyProcess : public InjectionProcess
{
  public:
    ReqReplyProcess(std::uint32_t num_sources, double load,
                    std::uint32_t reply_window)
        : load(load), replyWindow(reply_window),
          outstanding(num_sources, 0), pendingReplies(num_sources)
    {
    }

    const char *name() const override { return "reqreply"; }

    bool shouldGenerate(NodeId src, Cycle now, Random &rng) override
    {
        if (drainPending(src, now))
            return true;
        stagedDest = kInvalidNode;
        stagedKindV = PacketKind::Request;
        if (outstanding[src] >= replyWindow)
            return false;
        if (!rng.bernoulli(load))
            return false;
        ++outstanding[src];
        ++stats_.requestsSent;
        return true;
    }

    bool drainPending(NodeId src, Cycle) override
    {
        if (pendingReplies[src].empty())
            return false;
        stagedDest = pendingReplies[src].front();
        pendingReplies[src].pop_front();
        --pendingTotal;
        stagedKindV = PacketKind::Reply;
        ++stats_.repliesSent;
        return true;
    }

    NodeId stagedDestination() const override { return stagedDest; }
    PacketKind stagedKind() const override { return stagedKindV; }

    void onDelivered(const Packet &pkt, Cycle) override
    {
        if (pkt.kind == PacketKind::Request) {
            ++stats_.requestsDelivered;
            pendingReplies[pkt.dest].push_back(pkt.source);
            ++pendingTotal;
        } else if (pkt.kind == PacketKind::Reply) {
            ++stats_.repliesDelivered;
            damq_assert(outstanding[pkt.dest] > 0,
                        "reply delivered to a node with no "
                        "outstanding requests");
            --outstanding[pkt.dest];
        }
    }

    bool closedLoop() const override { return true; }

    std::uint64_t pendingOffers() const override
    {
        return pendingTotal;
    }

  private:
    double load;
    std::uint32_t replyWindow;
    NodeId stagedDest = kInvalidNode;
    PacketKind stagedKindV = PacketKind::Request;
    std::uint64_t pendingTotal = 0;
    std::vector<std::uint32_t> outstanding;
    std::vector<std::deque<NodeId>> pendingReplies;
};

/** Replay of a recorded trace; never touches the RNG. */
class TraceProcess : public InjectionProcess
{
  public:
    TraceProcess(std::vector<WorkloadTraceEntry> entries,
                 std::uint32_t num_sources)
        : queues(num_sources)
    {
        for (const WorkloadTraceEntry &e : entries)
            queues[e.source].push_back(e);
        std::uint64_t total = entries.size();
        remaining = total;
    }

    const char *name() const override { return "trace"; }

    bool shouldGenerate(NodeId src, Cycle now, Random &) override
    {
        if (queues[src].empty() || queues[src].front().cycle > now)
            return false;
        stagedDest = queues[src].front().dest;
        queues[src].pop_front();
        --remaining;
        return true;
    }

    NodeId stagedDestination() const override { return stagedDest; }

    bool exhausted() const override { return remaining == 0; }

  private:
    std::vector<std::deque<WorkloadTraceEntry>> queues;
    std::uint64_t remaining = 0;
    NodeId stagedDest = kInvalidNode;
};

/**
 * Reject peak rates above one packet per source per cycle.  With
 * QoS stamping (src % classes) every source of class c peaks at the
 * same time-local rate, so an overcommitted peak is overcommitted
 * within each class too — say so in the error.
 */
void
validatePeakRate(const char *kind, double load, double burstiness,
                 std::uint32_t traffic_classes)
{
    const double peak = load * burstiness;
    if (peak <= 1.0)
        return;
    std::ostringstream oss;
    oss << kind << " workload peak rate " << peak << " (load " << load
        << " x burstiness " << burstiness
        << ") exceeds 1 packet/source/cycle";
    if (traffic_classes > 1) {
        oss << "; with --classes " << traffic_classes
            << " every class is driven at this per-source peak, so "
               "each QoS class is overcommitted individually";
    }
    damq_fatal(oss.str());
}

} // namespace

std::unique_ptr<InjectionProcess>
makeInjectionProcess(const WorkloadConfig &workload,
                     std::uint32_t num_sources, double offered_load,
                     std::uint32_t traffic_classes)
{
    // The single construction-path validation: every front end (CLI
    // flags, bench configs, the legacy burstiness alias) funnels
    // through here.
    if (offered_load < 0.0 || offered_load > 1.0) {
        damq_fatal("offered load ", offered_load,
                   " is not a probability (need 0 <= load <= 1)");
    }
    if (workload.burstiness < 1.0) {
        damq_fatal("workload burstiness ", workload.burstiness,
                   " must be >= 1 (peak/average factor)");
    }
    if (workload.meanBurstCycles == 0)
        damq_fatal("workload mean burst cycles must be >= 1");

    switch (workload.kind) {
      case WorkloadKind::Geometric:
        validatePeakRate("geometric", offered_load, 1.0,
                         traffic_classes);
        return std::make_unique<GeometricProcess>(offered_load);

      case WorkloadKind::OnOff:
        if (workload.burstiness <= 1.0) {
            damq_fatal("onoff workload needs burstiness > 1 "
                       "(use geometric for an unmodulated source)");
        }
        validatePeakRate("onoff", offered_load, workload.burstiness,
                         traffic_classes);
        return std::make_unique<OnOffProcess>(
            num_sources, offered_load, workload.burstiness,
            workload.meanBurstCycles);

      case WorkloadKind::Mmpp:
        if (workload.burstiness <= 1.0) {
            damq_fatal("mmpp workload needs burstiness > 1 "
                       "(use geometric for an unmodulated source)");
        }
        validatePeakRate("mmpp", offered_load, workload.burstiness,
                         traffic_classes);
        return std::make_unique<MmppProcess>(
            num_sources, offered_load, workload.burstiness,
            workload.meanBurstCycles);

      case WorkloadKind::Batch:
        if (workload.batchPackets == 0)
            damq_fatal("batch workload needs --batch >= 1 packets");
        validatePeakRate("batch", offered_load, 1.0, traffic_classes);
        return std::make_unique<BatchProcess>(
            num_sources, offered_load, workload.batchPackets);

      case WorkloadKind::ReqReply:
        if (workload.replyWindow == 0) {
            damq_fatal("reqreply workload needs --reply-window >= 1 "
                       "outstanding requests");
        }
        validatePeakRate("reqreply", offered_load, 1.0,
                         traffic_classes);
        return std::make_unique<ReqReplyProcess>(
            num_sources, offered_load, workload.replyWindow);

      case WorkloadKind::Trace:
        if (workload.traceFile.empty())
            damq_fatal("trace workload needs --trace-file");
        return std::make_unique<TraceProcess>(
            parseWorkloadTrace(workload.traceFile, num_sources),
            num_sources);
    }
    damq_panic("unhandled workload kind");
}

std::vector<WorkloadTraceEntry>
parseWorkloadTrace(const std::string &path, std::uint32_t num_nodes)
{
    std::ifstream in(path);
    if (!in)
        damq_fatal("cannot open workload trace '", path, "'");

    std::vector<WorkloadTraceEntry> entries;
    std::vector<Cycle> lastCycle(num_nodes, 0);
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::uint64_t cycle = 0, src = 0, dest = 0;
        if (!(fields >> cycle))
            continue; // blank or comment-only line
        if (!(fields >> src >> dest)) {
            damq_fatal("trace '", path, "' line ", lineno,
                       ": expected 'cycle src dest'");
        }
        if (src >= num_nodes || dest >= num_nodes) {
            damq_fatal("trace '", path, "' line ", lineno,
                       ": endpoint out of range (network has ",
                       num_nodes, " nodes)");
        }
        if (!entries.empty() && cycle < lastCycle[src]) {
            damq_fatal("trace '", path, "' line ", lineno,
                       ": cycles must be non-decreasing per source");
        }
        lastCycle[src] = cycle;
        entries.push_back(WorkloadTraceEntry{
            cycle, static_cast<NodeId>(src),
            static_cast<NodeId>(dest)});
    }
    return entries;
}

void
writeWorkloadTrace(const std::string &path,
                   const std::vector<WorkloadTraceEntry> &entries)
{
    std::ofstream out(path);
    if (!out)
        damq_fatal("cannot write workload trace '", path, "'");
    out << "# cycle src dest\n";
    for (const WorkloadTraceEntry &e : entries)
        out << e.cycle << ' ' << e.source << ' ' << e.dest << '\n';
}

} // namespace core
} // namespace damq

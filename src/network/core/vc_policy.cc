#include "network/core/vc_policy.hh"

#include "common/enum_parse.hh"
#include "common/logging.hh"

namespace damq {

namespace {

constexpr EnumName<VcPolicy> kVcPolicyNames[] = {
    {VcPolicy::None, "none"},
    {VcPolicy::Dateline, "dateline"},
};

} // namespace

const char *
vcPolicyName(VcPolicy policy)
{
    if (const char *name = enumValueName(policy, kVcPolicyNames))
        return name;
    damq_panic("unknown VcPolicy ", static_cast<int>(policy));
}

std::optional<VcPolicy>
tryVcPolicyFromString(const std::string &name)
{
    return parseEnumName(std::string_view(name), kVcPolicyNames);
}

namespace core {

VcAllocator::VcAllocator(const Topology &topology, VcPolicy policy,
                         VcId num_vcs)
    : topo(topology), rule(policy), vcs(num_vcs)
{
    damq_assert(num_vcs >= 1, "links need at least one VC");
}

VcId
VcAllocator::linkVc(const Packet &pkt, SwitchId sw, PortId out) const
{
    if (vcs <= 1 || rule == VcPolicy::None)
        return 0;
    const int dim = topo.portDimension(out);
    if (dim < 0)
        return 0; // delivery port — the sink keeps no VC queues
    // Continue on the current VC only while travelling along the
    // same ring; entering the fabric (inPort invalid) or turning
    // into a new dimension restarts on VC 0.
    VcId vc = 0;
    if (pkt.inPort != kInvalidPort &&
        topo.portDimension(pkt.inPort) == dim) {
        vc = pkt.vc;
    }
    if (topo.hopCrossesDateline(sw, out))
        vc = vcs - 1;
    return vc;
}

} // namespace core
} // namespace damq

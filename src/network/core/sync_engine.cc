#include "network/core/sync_engine.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/string_util.hh"
#include "switchsim/switch_model.hh"

namespace damq {
namespace core {

TrafficSource
SyncEngine::makeSource(const Topology &topology,
                       const SyncConfig &config)
{
    damq_assert(config.burstiness >= 1.0,
                "burstiness must be at least 1");
    if (config.burstiness > 1.0 &&
        config.offeredLoad * config.burstiness > 1.0) {
        damq_fatal("offeredLoad * burstiness must not exceed 1 "
                   "(peak rate is a probability); got ",
                   config.offeredLoad * config.burstiness);
    }
    return TrafficSource(
        makeTrafficPattern(config.traffic, topology.numEndpoints(),
                           config.hotSpotFraction,
                           config.transposeSide, config.common.seed),
        topology.numEndpoints(), config.offeredLoad,
        config.burstiness, config.meanBurstCycles);
}

SyncEngine::SyncEngine(const Topology &topology,
                       const SyncConfig &config)
    : SimEngine(config.common), topo(topology), cfg(config),
      vcAlloc(topology, config.common.vcPolicy, config.common.vcs),
      traffic(makeSource(topology, config)),
      sourceQueues(topology.numEndpoints()),
      nextSeq(topology.numEndpoints(), 0),
      latencyHist(config.latencyUnitScale, 4096),
      perSourceLatency(topology.numEndpoints())
{
    const std::uint32_t n = topo.numSwitches();
    switches.reserve(n);
    for (SwitchId sw = 0; sw < n; ++sw) {
        switches.push_back(makeSwitchUnit(
            cfg.placement, topo.portsPerSwitch(), cfg.bufferType,
            cfg.slotsPerBuffer, cfg.arbitration,
            cfg.staleThreshold, cfg.common.vcs));
        // Registration order defines both the fault-plan component
        // handles and the watchdog's stable snapshot order, and
        // must equal the topology's flat SwitchId order.
        const std::size_t comp =
            injector.addComponent(topo.switchName(sw));
        const std::size_t wcomp =
            watchdog.addComponent(topo.switchName(sw));
        damq_assert(comp == sw && wcomp == comp,
                    "component registration order broken");
    }
    prevTransmitted.assign(n, 0);

    // Size every per-cycle scratch structure up front: at most one
    // departure per switch output exists at once, so these bounds
    // hold for the simulation's whole lifetime.
    moveScratch.reserve(static_cast<std::size_t>(n) *
                        topo.portsPerSwitch());
    sentScratch.reserve(topo.portsPerSwitch());
    pendingScratch.reserve(topo.numEndpoints());

    // Register the flat link numbering with the injector so its
    // hard-fault plan (forced-down links/routers) and the recovery
    // layer agree on link ids.  Eligibility comes from the topology
    // (delivery links to sinks are excluded by default).
    {
        std::vector<std::uint8_t> eligible(topo.numLinks(), 0);
        std::vector<std::size_t> reverse(
            topo.numLinks(), FaultInjector::kNoReverseLink);
        for (SwitchId sw = 0; sw < n; ++sw) {
            for (PortId out = 0; out < topo.portsPerSwitch(); ++out) {
                if (!topo.hasLink(sw, out))
                    continue; // mesh edge: no such link
                const LinkId link =
                    linkIdOf(sw, out, topo.portsPerSwitch());
                eligible[link] = topo.linkFaultEligible(sw, out);
                // Physical pairing: on a duplex fabric a frame
                // over (sw, out) arrives at the input port whose
                // same-numbered output leads straight back.  Only
                // verified reciprocity pairs up — a unidirectional
                // fabric (the Omega stages) pairs nothing.
                const HopTarget next = topo.hop(sw, out);
                if (next.toSink ||
                    !topo.hasLink(next.switchId, next.inputPort))
                    continue;
                const HopTarget back =
                    topo.hop(next.switchId, next.inputPort);
                if (!back.toSink && back.switchId == sw &&
                    back.inputPort == out)
                    reverse[link] =
                        linkIdOf(next.switchId, next.inputPort,
                                 topo.portsPerSwitch());
            }
        }
        injector.configureLinks(topo.numLinks(),
                                topo.portsPerSwitch(), eligible,
                                reverse);
    }

    // Recovery protocol state exists only when the policy asks for
    // it; with RecoveryPolicy::None nothing below is allocated and
    // the engine's hot path is byte-identical to pre-recovery runs.
    if (cfg.common.recovery.enabled()) {
        linkLayer = std::make_unique<LinkLayer>(cfg.common.recovery,
                                                topo.numLinks());
        linkUsed.assign(topo.numLinks(), 0);
        linksUsedScratch.reserve(topo.numLinks());
        if (cfg.common.recovery.reroute()) {
            if (cfg.placement != BufferPlacement::Input) {
                damq_fatal("recovery policy retransmit+reroute "
                           "requires input buffering (re-homing "
                           "pops the per-output queues held at the "
                           "inputs)");
            }
            faultRouter = std::make_unique<FaultRouter>(
                topo, linkLayer->linkMask());
        }
    }

    initTelemetry();
}

void
SyncEngine::configureTelemetry(obs::Telemetry &t)
{
    // Trace row layout is topology-defined: one process per
    // pipeline stage (Omega) or per node (grids), plus a
    // pseudo-process for the endpoints.
    endpointPid = topo.numTraceProcesses();
    obs::PacketTracer *tracer = t.trace();
    if (tracer) {
        for (std::int64_t pid = 0; pid < endpointPid; ++pid)
            tracer->setProcessName(pid, topo.traceProcessName(pid));
        tracer->setProcessName(endpointPid,
                               topo.endpointProcessName());
    }

    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        switches[sw]->forEachBuffer(
            [&](PortId port, BufferModel &buffer) {
                std::int64_t pid = 0;
                std::int64_t tid = 0;
                topo.traceRow(sw, port, pid, tid);
                t.attachProbe(buffer, topo.probeName(sw, port), pid,
                              tid);
                if (tracer)
                    tracer->setThreadName(
                        pid, tid, topo.traceThreadName(sw, port));
            });
    }

    // The time series tracks the lifetime counters plus the live
    // occupancy; gauges register on the first sample (the hooks run
    // before the row is taken) and are refreshed only when due.
    t.addSampleHook([this]() {
        obs::MetricRegistry &m = telemetry->metrics();
        m.gauge("net.generated")
            .set(static_cast<double>(counters.generated));
        m.gauge("net.injected")
            .set(static_cast<double>(counters.injected));
        m.gauge("net.delivered")
            .set(static_cast<double>(counters.delivered));
        m.gauge("net.discarded")
            .set(static_cast<double>(counters.discarded()));
        m.gauge("net.faultDropped")
            .set(static_cast<double>(counters.faultDropped));
        m.gauge("net.inFlight")
            .set(static_cast<double>(packetsInFlight()));
        m.gauge("net.sourceQueued")
            .set(static_cast<double>(packetsAtSources()));

        std::uint64_t grants = 0;
        std::uint64_t stale = 0;
        if (cfg.placement == BufferPlacement::Input) {
            for (const auto &sw : switches) {
                const auto &stats =
                    static_cast<const SwitchModel &>(*sw)
                        .arbiterStats();
                grants += stats.grantsIssued;
                stale += stats.staleOverrides;
            }
        }
        m.gauge("arb.grants").set(static_cast<double>(grants));
        m.gauge("arb.staleOverrides")
            .set(static_cast<double>(stale));

        if (linkLayer) {
            const RecoveryStats &rs = linkLayer->stats();
            m.gauge("net.retransmits")
                .set(static_cast<double>(rs.retransmits));
            m.gauge("net.recovered")
                .set(static_cast<double>(rs.packetsRecovered));
            m.gauge("net.rerouted")
                .set(static_cast<double>(rs.packetsRerouted));
            m.gauge("net.deadLinks")
                .set(static_cast<double>(
                    linkLayer->linkMask().deadLinks()));
        }
    });
}

void
SyncEngine::onMeasuredCycle()
{
    std::uint64_t queued = 0;
    for (const auto &q : sourceQueues)
        queued += q.size();
    sourceQueueSamples.add(
        static_cast<double>(queued) /
        static_cast<double>(topo.numEndpoints()));

    std::uint64_t buffered = 0;
    for (const auto &sw : switches)
        buffered += sw->totalPackets();
    switchOccupancySamples.add(
        static_cast<double>(buffered) /
        static_cast<double>(switches.size()));
}

void
SyncEngine::phaseAdvance()
{
    // Steps 1+2: every switch decides and pops its departures.
    // Back-pressure tests only look *downstream*, and deliveries
    // are deferred until every switch has transmitted, so the
    // decisions are made against a consistent start-of-cycle
    // snapshot even though the pops are interleaved.
    //
    // With per-input buffers, each downstream buffer has exactly
    // one upstream writer, so a start-of-cycle space check cannot
    // be invalidated.  The central pool and output queues are
    // shared across inputs, and several switches can commit into
    // the same downstream structure in one cycle — so the blocking
    // back-pressure test also counts the arrivals already granted
    // this cycle.  (Two outputs of one switch can never reach the
    // same downstream switch in the supported topologies, so
    // accounting between transmit() calls is exact.)
    const bool shared_structures =
        cfg.placement != BufferPlacement::Input;
    const bool hard_faults = common.faults.hardFaultsEnabled();
    std::unordered_map<std::uint64_t, std::uint32_t> &pending =
        pendingScratch;
    pending.clear();
    auto pending_key = [&](SwitchId sw, PortId out) {
        const std::uint64_t structure =
            cfg.placement == BufferPlacement::Output ? out : 0;
        return static_cast<std::uint64_t>(sw) *
                   topo.portsPerSwitch() +
               structure;
    };

    if (linkLayer) {
        // Protocol work precedes fresh arbitration: dead links are
        // probed for revival, due retransmissions claim their
        // links, and re-homed packets try to re-enter the fabric.
        for (const LinkId link : linksUsedScratch)
            linkUsed[link] = 0;
        linksUsedScratch.clear();
        const std::uint64_t mask_version =
            linkLayer->linkMask().version();
        applyDeadLinks();
        probeDeadLinks();
        if (faultRouter &&
            linkLayer->linkMask().version() != mask_version)
            rekeyQueuedPackets();
        processRetries();
        processRehomes();
    }

    std::vector<Move> &moves = moveScratch;
    moves.clear();
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        // A stuck arbiter issues no grants at all this cycle.
        if (injector.arbiterStuck(sw, currentCycle))
            continue;
        // Neither does a router frozen by a hard fault.
        if (hard_faults &&
            injector.routerForcedDown(sw, currentCycle))
            continue;
        auto can_send = [&, sw](PortId, QueueKey out_key,
                                const Packet &pkt) {
            if (linkLayer) {
                // Stop-and-wait: a link holding an unacked frame, a
                // declared-dead link, or a link a retransmission
                // used this cycle admits no fresh frame.
                const LinkId link = linkIdOf(
                    sw, out_key.out, topo.portsPerSwitch());
                if (!linkLayer->canSendFresh(link) || linkUsed[link])
                    return false;
            }
            if (cfg.protocol == FlowControl::Discarding)
                return true; // transmit blindly; receiver may drop
            const HopTarget next = topo.hop(sw, out_key.out);
            if (next.toSink)
                return true; // sinks always accept
            // A delayed credit makes the downstream switch report
            // "full" even when space exists: transfers stall but
            // no packet is lost.
            if (injector.creditDelayed(next.switchId, currentCycle))
                return false;
            const PortId next_out = routeAfterHop(
                sw, out_key.out, next.switchId, pkt);
            if (next_out == kInvalidPort)
                return false; // dest unroutable from downstream
            // The VC the packet will occupy on this link decides
            // which downstream queue must have room.
            const VcId next_vc =
                vcAlloc.linkVc(pkt, sw, out_key.out);
            std::uint32_t held = 0;
            if (shared_structures) {
                const auto found = pending.find(
                    pending_key(next.switchId, next_out));
                if (found != pending.end())
                    held = found->second;
            }
            return switches[next.switchId]->canAccept(
                next.inputPort, QueueKey{next_out, next_vc},
                pkt.lengthSlots + held);
        };
        // When a grant-legality audit is due, split the
        // input-buffered switch's transmit into arbitrate + pop so
        // the schedule itself can be checked.
        std::vector<Packet> &sent = sentScratch;
        if (cfg.placement == BufferPlacement::Input &&
            auditor.due(currentCycle)) {
            auto *sm =
                static_cast<SwitchModel *>(switches[sw].get());
            const GrantList grants = sm->arbitrate(can_send);
            auditor.record(
                currentCycle, injector.componentName(sw),
                auditGrantLegality(
                    grants, topo.portsPerSwitch(),
                    topo.portsPerSwitch(),
                    sm->buffer(0).maxReadsPerCycle(),
                    cfg.common.vcs));
            sent = sm->popGranted(grants);
        } else {
            switches[sw]->transmitInto(can_send, sent);
        }
        for (Packet &pkt : sent) {
            if (shared_structures) {
                const HopTarget next = topo.hop(sw, pkt.outPort);
                if (!next.toSink) {
                    const PortId next_out = routeAfterHop(
                        sw, pkt.outPort, next.switchId, pkt);
                    if (next_out != kInvalidPort)
                        pending[pending_key(next.switchId,
                                            next_out)] +=
                            pkt.lengthSlots;
                }
            }
            moves.push_back(Move{sw, pkt});
        }
    }

    for (Move &move : moves) {
        if (linkLayer) {
            // Recovery on: the frame crosses under the link-level
            // protocol (CRC, same-cycle ack/nack, retransmission).
            const LinkId link = linkIdOf(move.sw,
                                         move.packet.outPort,
                                         topo.portsPerSwitch());
            wireCross(move.sw, move.packet,
                      linkLayer->assignSeq(link),
                      /*is_retry=*/false);
            continue;
        }
        // Hard faults without recovery: every frame onto a
        // forced-down link (or into a frozen router) is lost.
        if (hard_faults &&
            hardFaultLoss(move.sw, move.packet.outPort)) {
            ++counters.faultDropped;
            traceLoss(move.packet, "drop@linkdown");
            continue;
        }
        // Link faults: the packet can vanish or arrive with a
        // flipped header bit.  The receiving side verifies the
        // sealed checksum before using any header field, so a
        // corrupted packet is detected and discarded — never
        // misrouted or silently delivered.
        if (injector.dropOnLink(move.sw, currentCycle,
                                move.packet)) {
            ++counters.faultDropped;
            traceLoss(move.packet, "drop@fault");
            continue;
        }
        injector.corruptOnLink(move.sw, currentCycle, move.packet);
        if (injector.enabled() && !headerIntact(move.packet)) {
            injector.recordDetectedCorruption();
            ++counters.faultDropped;
            traceLoss(move.packet, "drop@corrupt");
            continue;
        }
        const HopTarget next = topo.hop(move.sw, move.packet.outPort);
        if (next.toSink) {
            deliver(move.packet, next.sink);
            continue;
        }
        Packet pkt = move.packet;
        // The link VC must be computed from the packet's state at
        // the switch it left, before vc/inPort are rewritten for
        // the next hop.
        pkt.vc =
            vcAlloc.linkVc(move.packet, move.sw, move.packet.outPort);
        pkt.inPort = next.inputPort;
        pkt.outPort = topo.route(next.switchId, pkt.dest);
        ++pkt.hops;
        SwitchUnit &target = *switches[next.switchId];
        const bool accepted = target.tryReceive(next.inputPort, pkt);
        if (!accepted) {
            damq_assert(cfg.protocol == FlowControl::Discarding,
                        "blocking protocol transmitted into a full "
                        "buffer — back-pressure check is broken");
            ++counters.discardedInternal;
            traceLoss(pkt, "drop@internal");
        }
    }
}

PortId
SyncEngine::routeFor(SwitchId sw, const Packet &pkt)
{
    return faultRouter
               ? faultRouter->nextHop(sw, pkt.dest, pkt.routeDown)
                     .port
               : topo.route(sw, pkt.dest);
}

PortId
SyncEngine::routeAfterHop(SwitchId sw, PortId out, SwitchId next_sw,
                          const Packet &pkt)
{
    if (!faultRouter)
        return topo.route(next_sw, pkt.dest);
    const bool down = pkt.routeDown || faultRouter->downHop(sw, out);
    return faultRouter->nextHop(next_sw, pkt.dest, down).port;
}

bool
SyncEngine::hardFaultLoss(SwitchId sw, PortId out)
{
    const LinkId link = linkIdOf(sw, out, topo.portsPerSwitch());
    if (injector.linkForcedDown(link, currentCycle))
        return true;
    const HopTarget next = topo.hop(sw, out);
    return !next.toSink &&
           injector.routerForcedDown(next.switchId, currentCycle);
}

bool
SyncEngine::wireCross(SwitchId sw, const Packet &pristine,
                      std::uint32_t seq, bool is_retry)
{
    const PortId out = pristine.outPort;
    const LinkId link = linkIdOf(sw, out, topo.portsPerSwitch());
    const HopTarget next = topo.hop(sw, out);
    RecoveryStats &rs = linkLayer->stats();
    ++rs.framesSent;
    if (is_retry)
        ++rs.retransmits;

    // A hard fault loses the frame outright; so does a transient
    // drop.  Either way no ack comes back and the sender times out.
    bool lost = false;
    if (common.faults.hardFaultsEnabled()) {
        lost = injector.linkForcedDown(link, currentCycle) ||
               (!next.toSink && injector.routerForcedDown(
                                    next.switchId, currentCycle));
    }
    if (!lost)
        lost = injector.dropOnLink(sw, currentCycle, pristine);
    if (lost) {
        frameFailed(sw, link, pristine, seq, is_retry,
                    /*nacked=*/false);
        return false;
    }

    // The receiver sees the wire copy; a corrupted frame fails the
    // CRC check there and is nacked within the transfer cycle.
    Packet wire = pristine;
    injector.corruptOnLink(sw, currentCycle, wire);
    if (linkFrameCrc(wire, seq) != linkFrameCrc(pristine, seq)) {
        injector.recordDetectedCorruption();
        frameFailed(sw, link, pristine, seq, is_retry,
                    /*nacked=*/true);
        return false;
    }

    // Acked.  The CRC catches every single-bit flip (the fault
    // model's whole repertoire), so an accepted frame is pristine.
    linkLayer->onAck(link);
    if (is_retry) {
        // The link carried this retransmission; no fresh frame may
        // use it again this cycle.
        linkUsed[link] = 1;
        linksUsedScratch.push_back(link);
    }

    if (next.toSink) {
        deliver(pristine, next.sink);
        return true;
    }
    Packet pkt = pristine;
    pkt.vc = vcAlloc.linkVc(pristine, sw, out);
    pkt.inPort = next.inputPort;
    if (faultRouter && faultRouter->active()) {
        pkt.routeDown =
            pristine.routeDown || faultRouter->downHop(sw, out);
        const FaultRouter::Hop onward = faultRouter->nextHop(
            next.switchId, pkt.dest, pkt.routeDown);
        pkt.outPort = onward.port;
        if (pkt.outPort == kInvalidPort) {
            // Reachability collapsed while the frame was in
            // flight: the wire worked (the ack above stands), but
            // no legal route onward exists — charge the loss to
            // the faults.
            ++counters.faultDropped;
            traceLoss(pkt, "drop@unroutable");
            return true;
        }
        if (pkt.routeDown && !onward.down) {
            // The frame's descent chain vanished while it was in
            // flight (epoch change): it must restart as a climber,
            // but climbing out of a down-link's buffer is the one
            // dependency edge the up*-down* order forbids.  It
            // re-enters through the local injection buffer via the
            // re-home queue instead.
            ++pkt.hops;
            rehomeQueue.push_back(Rehome{next.switchId, pkt});
            return true;
        }
    } else {
        pkt.outPort = routeFor(next.switchId, pkt);
    }
    ++pkt.hops;
    SwitchUnit &target = *switches[next.switchId];
    const bool accepted = target.tryReceive(next.inputPort, pkt);
    if (!accepted) {
        damq_assert(cfg.protocol == FlowControl::Discarding,
                    "blocking protocol transmitted into a full "
                    "buffer — back-pressure check is broken");
        ++counters.discardedInternal;
        traceLoss(pkt, "drop@internal");
    }
    return true;
}

void
SyncEngine::frameFailed(SwitchId sw, LinkId link,
                        const Packet &pristine, std::uint32_t seq,
                        bool is_retry, bool nacked)
{
    if (!is_retry)
        linkLayer->holdFrame(link, pristine, seq, currentCycle);
    if (linkLayer->onFail(link, nacked, currentCycle) ==
        LinkLayer::Verdict::DeclareDead) {
        // Deferred to next cycle's pre-pass: declaring now would
        // change the routing function mid-cycle, after this
        // cycle's capacity checks already ran against it.
        deadPending.push_back(DeadLink{sw, link});
    }
}

void
SyncEngine::applyDeadLinks()
{
    for (const DeadLink &dead : deadPending)
        handleDeadLink(dead.sw, dead.link);
    deadPending.clear();
}

void
SyncEngine::handleDeadLink(SwitchId sw, LinkId link)
{
    linkLayer->declareDead(link);
    Packet victim = linkLayer->takePending(link);
    if (faultRouter) {
        // Re-home the stranded frame and everything queued behind
        // it; their detours are computed when they re-enter.
        rehomeQueue.push_back(Rehome{sw, victim});
        rehomeQueuedPackets(
            sw, static_cast<PortId>(link % topo.portsPerSwitch()));
    } else {
        // Retransmit-only: the stranded frame is charged to the
        // fault counters.  Packets queued behind the dead output
        // stay blocked — the watchdog will diagnose the partition.
        ++counters.faultDropped;
        ++linkLayer->stats().packetsLostAfterRetry;
        traceLoss(victim, "drop@deadlink");
    }
}

void
SyncEngine::rehomeQueuedPackets(SwitchId sw, PortId out)
{
    auto *sm = static_cast<SwitchModel *>(switches[sw].get());
    for (PortId in = 0; in < sm->numPorts(); ++in) {
        BufferModel &buf = sm->buffer(in);
        for (VcId vc = 0; vc < cfg.common.vcs; ++vc) {
            const QueueKey key{out, vc};
            while (buf.peek(key) != nullptr)
                rehomeQueue.push_back(Rehome{sw, buf.pop(key)});
        }
    }
}

void
SyncEngine::rekeyQueuedPackets()
{
    // Every packet restarts as a climber: its old phase bit and
    // queue key both belong to routes of the previous epoch, and a
    // standing restart (fresh up*-then-down* route from the buffer
    // it already sits in) is legal from scratch.  Packets whose
    // key survives the change are re-pushed in order; the rest
    // join the re-home queue and re-enter via processRehomes().
    std::vector<Packet> keep;
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        auto *sm = static_cast<SwitchModel *>(switches[sw].get());
        for (PortId in = 0; in < sm->numPorts(); ++in) {
            BufferModel &buf = sm->buffer(in);
            for (PortId out = 0; out < sm->numPorts(); ++out) {
                for (VcId vc = 0; vc < cfg.common.vcs; ++vc) {
                    const QueueKey key{out, vc};
                    if (buf.peek(key) == nullptr)
                        continue;
                    keep.clear();
                    while (buf.peek(key) != nullptr) {
                        Packet pkt = buf.pop(key);
                        pkt.routeDown = false;
                        const PortId want = routeFor(sw, pkt);
                        // Keeping the packet in place requires both
                        // that the new routing still picks this
                        // output and that waiting for it from this
                        // buffer is not a down→up turn of the new
                        // orientation; everything else re-enters
                        // through the local buffer.
                        if (want == out &&
                            !faultRouter->illegalTurn(sw, in, out))
                            keep.push_back(pkt);
                        else if (want == kInvalidPort) {
                            // Cut off from its sink by the change.
                            ++counters.faultDropped;
                            traceLoss(pkt, "drop@unroutable");
                        } else
                            rehomeQueue.push_back(Rehome{sw, pkt});
                    }
                    for (const Packet &pkt : keep) {
                        // Refill in arrival order.  The pops above
                        // freed at least these slots, but the
                        // escape-slot reservation can still refuse
                        // a refill on the margin — those packets
                        // re-enter through the re-home queue.
                        if (buf.canAccept(key, pkt.lengthSlots))
                            buf.push(pkt);
                        else
                            rehomeQueue.push_back(Rehome{sw, pkt});
                    }
                }
            }
        }
    }
}

void
SyncEngine::processRetries()
{
    if (linkLayer->pendingLinks() == 0)
        return;
    const std::uint32_t ports = topo.portsPerSwitch();
    for (LinkId link = 0; link < topo.numLinks(); ++link) {
        if (!linkLayer->retryDue(link, currentCycle))
            continue;
        const SwitchId sw = link / ports;
        const Packet &pristine = linkLayer->pendingPacket(link);
        // Mirror can_send: a retransmission into a full downstream
        // buffer waits for room without consuming an attempt (the
        // failure streak tracks the *wire*, not back-pressure).
        const HopTarget next = topo.hop(sw, pristine.outPort);
        if (cfg.protocol != FlowControl::Discarding &&
            !next.toSink) {
            if (injector.creditDelayed(next.switchId, currentCycle))
                continue;
            // A frame whose arrival will not enter a buffer — the
            // destination became unroutable (dropped on arrival)
            // or its descent chain vanished (diverted to the
            // re-home queue) — needs no downstream space, and
            // holding it would block the link indefinitely.
            bool needs_space = true;
            PortId next_out = kInvalidPort;
            if (faultRouter && faultRouter->active()) {
                const bool went_down =
                    pristine.routeDown ||
                    faultRouter->downHop(sw, pristine.outPort);
                const FaultRouter::Hop onward = faultRouter->nextHop(
                    next.switchId, pristine.dest, went_down);
                next_out = onward.port;
                needs_space = next_out != kInvalidPort &&
                              !(went_down && !onward.down);
            } else {
                next_out = routeAfterHop(
                    sw, pristine.outPort, next.switchId, pristine);
            }
            if (needs_space) {
                const VcId next_vc =
                    vcAlloc.linkVc(pristine, sw, pristine.outPort);
                if (!switches[next.switchId]->canAccept(
                        next.inputPort, QueueKey{next_out, next_vc},
                        pristine.lengthSlots))
                    continue;
            }
        }
        wireCross(sw, pristine, linkLayer->pendingSeq(link),
                  /*is_retry=*/true);
    }
}

void
SyncEngine::processRehomes()
{
    if (rehomeQueue.empty())
        return;
    // One bounded pass: whatever cannot re-enter yet stays queued
    // (and counts as in-flight for the packet accounting).
    for (std::size_t n = rehomeQueue.size(); n > 0; --n) {
        Rehome item = rehomeQueue.front();
        rehomeQueue.pop_front();
        Packet &pkt = item.pkt;
        // Re-homing is a standing restart: the packet's old phase
        // belonged to routes through the now-dead link, and a fresh
        // up*-then-down* route from here is legal from scratch.
        pkt.routeDown = false;
        const PortId detour = routeFor(item.sw, pkt);
        if (detour == kInvalidPort) {
            // The failures cut this packet off from its sink.
            ++counters.faultDropped;
            ++linkLayer->stats().packetsLostAfterRetry;
            traceLoss(pkt, "drop@unroutable");
            continue;
        }
        const LinkId link =
            linkIdOf(item.sw, detour, topo.portsPerSwitch());
        auto *sm =
            static_cast<SwitchModel *>(switches[item.sw].get());
        // Re-entry goes through the local injection buffer when
        // the switch has one: no fabric link feeds that buffer, so
        // a displaced packet waiting there can never extend a
        // channel-dependency chain — re-entry cannot close a
        // deadlock cycle no matter which output it waits for.  The
        // packet keeps its VC.
        const PortId local = topo.localInputPort(item.sw);
        const PortId entry =
            local != kInvalidPort ? local : pkt.inPort;
        if (linkLayer->linkMask().linkUp(link) &&
            sm->canAccept(entry, QueueKey{detour, pkt.vc},
                          pkt.lengthSlots)) {
            pkt.outPort = detour;
            pkt.inPort = entry;
            const bool ok = sm->tryReceive(entry, pkt);
            damq_assert(ok, "canAccept/tryReceive disagree on a "
                            "re-homed packet");
            ++linkLayer->stats().packetsRerouted;
        } else {
            rehomeQueue.push_back(item);
        }
    }
}

void
SyncEngine::probeDeadLinks()
{
    if (!linkLayer->probeDue(currentCycle))
        return;
    const std::uint32_t ports = topo.portsPerSwitch();
    // Reviving inside the visit is safe: the mask's storage does
    // not move, and clearing the current bit never hides later
    // dead links from the ascending walk.
    linkLayer->linkMask().forEachDeadLink([&](LinkId link) {
        if (injector.linkForcedDown(link, currentCycle))
            return; // episode still running
        const HopTarget next = topo.hop(link / ports, link % ports);
        if (!next.toSink && injector.routerForcedDown(
                                next.switchId, currentCycle))
            return; // receiver still frozen
        linkLayer->revive(link);
    });
}

void
SyncEngine::traceLoss(const Packet &pkt, const char *why)
{
    if (!telemetry)
        return;
    obs::PacketTracer *tr = telemetry->trace();
    if (!tr)
        return;
    tr->instant(why, "pkt", currentCycle, endpointPid, pkt.source);
    tr->asyncEnd("pkt", "pkt", pkt.id, currentCycle, endpointPid,
                 pkt.source);
}

void
SyncEngine::phaseInject()
{
    for (NodeId src = 0; src < topo.numEndpoints(); ++src) {
        // Drain mode makes no PRNG draws: generation is skipped
        // entirely, but blocked source queues keep retrying below.
        if (!draining && traffic.shouldGenerate(src, rng)) {
            Packet pkt;
            pkt.id = nextPacketId++;
            pkt.source = src;
            pkt.dest = traffic.destinationFor(src, rng);
            pkt.lengthSlots = 1;
            pkt.generatedAt = currentCycle;
            pkt.seq = nextSeq[src]++;
            sealHeader(pkt);
            ++counters.generated;
            if (telemetry) {
                if (obs::PacketTracer *tr = telemetry->trace())
                    tr->instant("gen", "pkt", currentCycle,
                                endpointPid, src);
            }

            if (cfg.protocol == FlowControl::Blocking) {
                sourceQueues[src].push_back(pkt);
            } else if (!tryInject(src, pkt)) {
                ++counters.discardedAtEntry;
                if (telemetry) {
                    if (obs::PacketTracer *tr = telemetry->trace())
                        tr->instant("drop@entry", "pkt",
                                    currentCycle, endpointPid, src);
                }
            }
        }

        if (cfg.protocol == FlowControl::Blocking &&
            !sourceQueues[src].empty()) {
            // The link from the source delivers at most one packet
            // per cycle, and only the head may try.
            if (tryInject(src, sourceQueues[src].front()))
                sourceQueues[src].pop_front();
        }
    }
}

bool
SyncEngine::tryInject(NodeId src, Packet pkt)
{
    const InjectPoint entry = topo.injectionPoint(src);
    // A frozen router grants no credit to its host link either.
    if (common.faults.hardFaultsEnabled() &&
        injector.routerForcedDown(entry.switchId, currentCycle))
        return false;
    pkt.outPort = routeFor(entry.switchId, pkt);
    if (pkt.outPort == kInvalidPort) {
        // The destination is unroutable from here (partitioned
        // fabric).  Consume the packet into the fault accounting
        // rather than blocking the source queue forever.
        ++counters.injected;
        ++counters.faultDropped;
        traceLoss(pkt, "drop@unroutable");
        return true;
    }
    pkt.inPort = entry.port; // injected packets start on VC 0
    pkt.injectedAt = currentCycle;
    SwitchUnit &first = *switches[entry.switchId];
    if (!first.canAccept(entry.port, pkt.outPort, pkt.lengthSlots))
        return false;
    const bool accepted = first.tryReceive(entry.port, pkt);
    damq_assert(accepted, "canAccept/tryReceive disagree");
    ++counters.injected;
    if (telemetry) {
        if (obs::PacketTracer *tr = telemetry->trace())
            tr->asyncBegin("pkt", "pkt", pkt.id, currentCycle,
                           endpointPid, src,
                           detail::concat("{\"src\": ", pkt.source,
                                          ", \"dest\": ", pkt.dest,
                                          "}"));
    }
    return true;
}

void
SyncEngine::deliver(const Packet &pkt, NodeId sink)
{
    if (pkt.dest != sink) {
        ++counters.misrouted;
        damq_panic("packet ", pkt.id, " for node ", pkt.dest,
                   " delivered to node ", sink,
                   " — routing is broken");
    }
    ++counters.delivered;
    if (telemetry) {
        if (obs::PacketTracer *tr = telemetry->trace())
            tr->asyncEnd("pkt", "pkt", pkt.id, currentCycle,
                         endpointPid, sink);
    }
    if (measuring) {
        const double latency =
            static_cast<double>(currentCycle - pkt.injectedAt) *
            cfg.latencyUnitScale;
        latencyStats.add(latency);
        latencyHist.add(latency);
        perSourceLatency[pkt.source].add(latency);
        hopStats.add(static_cast<double>(pkt.hops));
    }
}

void
SyncEngine::beginMeasurement()
{
    windowStart = counters;
    latencyStats.reset();
    latencyHist.reset();
    hopStats.reset();
    sourceQueueSamples.reset();
    switchOccupancySamples.reset();
    for (auto &stats : perSourceLatency)
        stats.reset();
}

SyncResult
SyncEngine::run()
{
    runSchedule();

    SyncResult result;
    result.window = counters - windowStart;
    result.measuredCycles = common.measureCycles;
    result.offeredLoad = cfg.offeredLoad;
    const double denom = static_cast<double>(topo.numEndpoints()) *
                         static_cast<double>(common.measureCycles);
    result.deliveredThroughput =
        static_cast<double>(result.window.delivered) / denom;
    result.discardFraction =
        result.window.generated == 0
            ? 0.0
            : static_cast<double>(result.window.discarded()) /
                  static_cast<double>(result.window.generated);
    result.latency = latencyStats;
    result.latencyP50 = latencyHist.quantile(0.5);
    result.latencyP99 = latencyHist.quantile(0.99);
    result.hops = hopStats;
    result.avgSourceQueueLen = sourceQueueSamples.mean();
    result.avgSwitchOccupancy = switchOccupancySamples.mean();

    // Jain fairness over the per-source mean latencies.
    double sum = 0.0;
    double sum_sq = 0.0;
    std::size_t active = 0;
    double worst = 0.0;
    for (const RunningStats &stats : perSourceLatency) {
        if (stats.count() == 0)
            continue;
        const double mean = stats.mean();
        sum += mean;
        sum_sq += mean * mean;
        worst = std::max(worst, mean);
        ++active;
    }
    result.latencyFairness =
        active == 0 || sum_sq == 0.0
            ? 1.0
            : sum * sum / (static_cast<double>(active) * sum_sq);
    result.worstSourceLatency = worst;

    return result;
}

std::uint64_t
SyncEngine::packetsInFlight() const
{
    std::uint64_t total = 0;
    for (const auto &sw : switches)
        total += sw->totalPackets();
    // Unacked frames in retransmit buffers and displaced packets
    // awaiting their detour are still inside the fabric.
    if (linkLayer)
        total += linkLayer->packetsHeld();
    total += rehomeQueue.size();
    return total;
}

std::uint64_t
SyncEngine::packetsAtSources() const
{
    std::uint64_t total = 0;
    for (const auto &q : sourceQueues)
        total += q.size();
    return total;
}

void
SyncEngine::debugValidate() const
{
    for (const auto &sw : switches)
        sw->debugValidate();
}

void
SyncEngine::phaseFaults()
{
    if (!injector.enabled())
        return;
    // Roll every hard-fault episode in fixed id order, so the draw
    // sequence never depends on which links traffic happens to use.
    if (common.faults.routerDownRate > 0.0) {
        for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw)
            injector.routerForcedDown(sw, currentCycle);
    }
    if (common.faults.linkDownRate > 0.0) {
        for (LinkId link = 0; link < topo.numLinks(); ++link)
            injector.linkForcedDown(link, currentCycle);
    }
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        if (!injector.rollSlotLeak(sw, currentCycle))
            continue;
        // Deterministic target without an extra draw.
        const PortId input = static_cast<PortId>(
            currentCycle % topo.portsPerSwitch());
        if (switches[sw]->faultLeakSlot(input)) {
            injector.recordFault(
                FaultKind::SlotLeak, sw, currentCycle,
                detail::concat("slot lost via input ", input));
        }
    }
}

void
SyncEngine::phaseAudit()
{
    if (!auditor.due(currentCycle))
        return;
    auditor.beginAudit();
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        auditor.record(currentCycle, injector.componentName(sw),
                       switches[sw]->checkInvariants());
        if (cfg.placement != BufferPlacement::Input)
            continue;
        // Rerouting legitimately reorders: a re-homed packet jumps
        // to another queue, and detoured packets can overtake
        // same-source packets on the original path — so the
        // per-source FIFO audit only applies without reroute.
        if (faultRouter)
            continue;
        // Per-source FIFO delivery order, walked in place via
        // forEachInQueue — no queue snapshot is copied.
        const auto *sm =
            static_cast<const SwitchModel *>(switches[sw].get());
        for (PortId in = 0; in < sm->numPorts(); ++in) {
            auditor.record(currentCycle,
                           injector.componentName(sw),
                           auditQueueFifoOrder(sm->buffer(in)));
        }
    }
    // End-to-end conservation: every packet that entered the fabric
    // must be delivered, discarded, removed by a fault, or still
    // buffered — nothing may vanish unaccounted.
    const std::uint64_t accounted =
        counters.delivered + counters.discardedInternal +
        counters.faultDropped + packetsInFlight();
    if (counters.injected != accounted) {
        auditor.record(
            currentCycle, cfg.accountingScope,
            {detail::concat(
                "packet accounting broken: injected ",
                counters.injected, " != delivered ",
                counters.delivered, " + discarded ",
                counters.discardedInternal, " + fault-dropped ",
                counters.faultDropped, " + in-flight ",
                packetsInFlight())});
    }
}

void
SyncEngine::phaseWatchdog()
{
    if (!watchdog.enabled())
        return;
    const bool hard_faults = common.faults.hardFaultsEnabled();
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        const std::uint64_t transmitted =
            switches[sw]->unitStats().transmitted;
        const bool moved = transmitted != prevTransmitted[sw];
        prevTransmitted[sw] = transmitted;
        bool has_work = switches[sw]->totalPackets() > 0;
        // A router frozen by an injected hard fault is stalled by
        // design, not deadlocked — don't let it trip the watchdog.
        if (has_work && hard_faults &&
            injector.routerForcedDown(sw, currentCycle))
            has_work = false;
        watchdog.observe(sw, currentCycle, has_work, moved);
    }
    if (watchdog.check(currentCycle,
                       [this] { return snapshotText(); })) {
        damq_warn("deadlock watchdog fired:\n",
                  watchdog.diagnostic());
    }
}

FaultReport
SyncEngine::faultReport() const
{
    FaultReport report = SimEngine::faultReport();
    if (linkLayer)
        linkLayer->fillReport(report);
    return report;
}

bool
SyncEngine::drain(Cycle max_cycles)
{
    draining = true;
    for (Cycle c = 0; c < max_cycles; ++c) {
        if (packetsInFlight() == 0 && packetsAtSources() == 0)
            break;
        step();
    }
    draining = false;
    return packetsInFlight() == 0 && packetsAtSources() == 0;
}

std::string
SyncEngine::snapshotText() const
{
    std::ostringstream out;
    out << "    snapshot at cycle " << currentCycle << " (seed "
        << common.seed << ", fault seed " << common.faults.seed
        << ")\n";
    for (SwitchId id = 0; id < topo.numSwitches(); ++id) {
        const SwitchUnit &sw = *switches[id];
        if (topo.snapshotSkipsEmpty() && sw.totalPackets() == 0)
            continue; // keep the snapshot readable on big fabrics
        out << "    " << topo.switchName(id) << ": "
            << sw.totalPackets() << " packets in "
            << sw.totalUsedSlots() << " slots";
        if (cfg.placement == BufferPlacement::Input) {
            const auto *sm = static_cast<const SwitchModel *>(&sw);
            const VcId vcs = cfg.common.vcs;
            for (PortId in = 0; in < sm->numPorts(); ++in) {
                for (PortId o = 0; o < sm->numPorts(); ++o) {
                    for (VcId v = 0; v < vcs; ++v) {
                        const Packet *head =
                            sm->buffer(in).peek(QueueKey{o, v});
                        if (!head)
                            continue;
                        out << " in" << in << "->out" << o;
                        if (vcs > 1)
                            out << ".vc" << v;
                        out << " head dest " << head->dest;
                    }
                }
            }
        }
        out << "\n";
    }
    return out.str();
}

} // namespace core
} // namespace damq
